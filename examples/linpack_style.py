#!/usr/bin/env python3
"""Package-style code through the full pipeline: a LINPACK-flavored
driver calling DGEFA/DGESL-like subroutines.

The paper's benchmarks are library subroutines (MINPACK's fdjac2 and
hybrj, EISPACK's tql2); this example shows the frontend handling the
same structure: a main program CALLing factor/solve subroutines, which
the inliner flattens before analysis, instrumentation, and simulation.

Run:  python examples/linpack_style.py
"""

from repro import (
    CDConfig,
    CDPolicy,
    LRUPolicy,
    analyze_program,
    generate_trace,
    instrument_program,
    parse_source,
    simulate,
)
from repro.tracegen.interpreter import Interpreter

SOURCE = """
PROGRAM LINSYS
PARAMETER (N = 48)
DIMENSION A(N, N), B(N), X(N)
C ---- build a diagonally dominant system with known solution ----
DO 10 J = 1, N
  DO 20 I = 1, N
    A(I, J) = 1.0 / FLOAT(I + J)
20 CONTINUE
  A(J, J) = A(J, J) + FLOAT(N)
  X(J) = FLOAT(J)
10 CONTINUE
CALL MATVEC(A, X, B)
C ---- factor and solve; X is overwritten with the computed solution ----
CALL GEFA(A)
CALL GESL(A, B)
C ---- residual check against the known solution ----
ERR = 0.0
DO 30 I = 1, N
  ERR = ERR + ABS(B(I) - FLOAT(I))
30 CONTINUE
PRINT *, ERR
END

SUBROUTINE MATVEC(A, V, W)
PARAMETER (N = 48)
DIMENSION A(N, N), V(N), W(N)
DO 10 I = 1, N
  W(I) = 0.0
10 CONTINUE
DO 20 J = 1, N
  DO 30 I = 1, N
    W(I) = W(I) + A(I, J) * V(J)
30 CONTINUE
20 CONTINUE
RETURN
END

SUBROUTINE GEFA(A)
C Gaussian elimination without pivoting (the system is dominant),
C column-oriented like LINPACK's dgefa
PARAMETER (N = 48)
DIMENSION A(N, N)
DO 10 K = 1, N - 1
  DO 20 I = K + 1, N
    A(I, K) = A(I, K) / A(K, K)
20 CONTINUE
  DO 30 J = K + 1, N
    T = A(K, J)
    DO 40 I = K + 1, N
      A(I, J) = A(I, J) - T * A(I, K)
40  CONTINUE
30 CONTINUE
10 CONTINUE
RETURN
END

SUBROUTINE GESL(A, B)
C forward elimination then back substitution (LINPACK dgesl, job = 0)
PARAMETER (N = 48)
DIMENSION A(N, N), B(N)
DO 10 K = 1, N - 1
  DO 20 I = K + 1, N
    B(I) = B(I) - A(I, K) * B(K)
20 CONTINUE
10 CONTINUE
DO 30 K1 = 1, N
  K = N + 1 - K1
  B(K) = B(K) / A(K, K)
  IF (K > 1) THEN
    DO 40 I = 1, K - 1
      B(I) = B(I) - A(I, K) * B(K)
40  CONTINUE
  ENDIF
30 CONTINUE
RETURN
END
"""


def main() -> None:
    program = parse_source(SOURCE)
    analysis = analyze_program(program)
    print(f"After inlining: {len(list(analysis.tree.nodes()))} loops, "
          f"Δ = {analysis.tree.max_depth}, "
          f"V = {analysis.program_virtual_size} pages\n")

    # Verify the numerics: the solve recovers x = (1, 2, …, N).
    interpreter = Interpreter(program)
    interpreter.run()
    residual = float(interpreter.scalars["ERR"])
    print(f"Solution residual sum |x_i - i| = {residual:.3e}")
    assert residual < 1e-6, "the linear solve failed"

    plan = instrument_program(program, analysis=analysis)
    trace = generate_trace(program, plan=plan)
    print(trace.summary())

    cd = simulate(trace, CDPolicy(CDConfig(pi_cap=2)))
    lru = simulate(trace, LRUPolicy(frames=max(1, round(cd.mem_average))))
    print(f"\nCD : {cd.describe()}")
    print(f"LRU: {lru.describe()}")
    print(
        "\nElimination's localities shrink smoothly (the active trailing"
        "\nsubmatrix), so fixed LRU nearly matches CD's fault count here —"
        "\nbut CD releases memory as the localities shrink, finishing with"
        f"\n{(lru.space_time - cd.space_time) / cd.space_time:+.1%} "
        "space-time relative to LRU."
    )


if __name__ == "__main__":
    main()
