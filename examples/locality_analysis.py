#!/usr/bin/env python3
"""The paper's worked examples, reproduced: Figure 1 (hierarchical
localities), Figure 2 (priority indexes), and the Figure-5 locality
arithmetic, printed with the per-array contribution breakdown.

Run:  python examples/locality_analysis.py
"""

from repro import analyze_program, parse_source

FIGURE1 = """
PROGRAM FIG1
DIMENSION E(64, 10), F(64, 10), G(200, 10), H(200, 10)
DO 10 I = 1, 10
  DO 20 K = 1, 10
    E(I, K) = F(I, K)
20 CONTINUE
  DO 30 K = 1, 200
    G(K, I) = H(K, I)
30 CONTINUE
10 CONTINUE
END
"""

FIGURE5 = """
PROGRAM FIG5
PARAMETER (N = 10)
DIMENSION A(640), B(640), C(640), D(640), E(640), F(640)
DIMENSION CC(64, N), DD(64, N)
DO 40 I = 1, N
  A(I) = B(I) + 1.0
  DO 20 J = 1, N
    C(J) = D(J) + CC(I, J) + DD(J, I)
20 CONTINUE
  DO 30 J = 1, N
    E(J) = F(J)
    DO 10 K = 1, N
      E(K) = E(K) + F(J)
10  CONTINUE
30 CONTINUE
40 CONTINUE
END
"""


def show(source: str, headline: str) -> None:
    print("=" * 72)
    print(headline)
    print("=" * 72)
    analysis = analyze_program(parse_source(source))
    for node in analysis.tree.nodes():
        report = analysis.reports[node.loop_id]
        pad = "  " * node.level
        print(f"{pad}DO {node.var} (line {report.line}): "
              f"Λ={report.level}  PI={report.priority_index}  "
              f"X={report.virtual_size} pages"
              f"{'' if report.forms_locality else '  (no locality: default)'}")
        for c in report.contributions:
            print(f"{pad}    {c.array:4s} -> {c.pages:3d} pages   "
                  f"{c.order.value:11s} d={c.depth_difference}  [{c.rule}]")
    print()


def main() -> None:
    show(FIGURE1, "Figure 1: row-wise E/F form the loop-10 locality; "
                  "column-wise G/H form per-column localities in loop 30")
    show(FIGURE5, "Figure 5: the paper's ALLOCATE-argument walkthrough "
                  "(A,B->1; C,D,E,F->AVS; CC->N; DD->1)")
    print("The paper's X1 for loop 4 sums to: 1+1 + 10+10+10+10 + 10 + 1 = 53")


if __name__ == "__main__":
    main()
