#!/usr/bin/env python3
"""Full policy comparison on one benchmark: LRU fault/ST curves over all
allocations, WS curves over the window grid, the CD operating points,
and an ASCII plot of the space-time landscape.

Run:  python examples/policy_comparison.py [WORKLOAD]   (default CONDUCT)
"""

import sys

from repro.experiments.runner import artifacts_for
from repro.vm.policies import CDConfig


def ascii_curve(points, width=60, label="") -> str:
    """One-line-per-point ASCII rendering of (x, y) pairs."""
    ys = [y for _x, y in points]
    top = max(ys)
    lines = [f"{label} (peak {top:.2e})"]
    for x, y in points:
        bar = "#" * max(1, int(width * y / top))
        lines.append(f"  {x:>6} | {bar} {y:.2e}")
    return "\n".join(lines)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "CONDUCT"
    artifacts = artifacts_for(name)
    trace = artifacts.trace
    print(trace.summary())
    print()

    # CD operating points: one per directive-set choice.
    print("CD operating points (directive sets by PI cap):")
    for cap in (None, 2, 1):
        result = artifacts.cd_result(CDConfig(pi_cap=cap))
        print(f"  cap={str(cap):>4}: MEM={result.mem_average:7.2f}  "
              f"PF={result.page_faults:6d}  ST={result.space_time:.3e}")
    print()

    # LRU sweep (stack-distance analysis: every allocation in one pass).
    lru_points = []
    v = artifacts.lru.max_useful_frames
    for frames in sorted({1, 2, 4, 8, v // 8 or 3, v // 4 or 5, v // 2 or 7, v}):
        if frames < 1:
            continue
        lru_points.append((frames, artifacts.lru.space_time(frames)))
    print(ascii_curve(lru_points, label=f"LRU space-time vs allocation on {name}"))
    print()

    # WS sweep.
    ws_points = []
    for tau in artifacts.ws.default_taus(count=10):
        ws_points.append((tau, artifacts.ws.space_time(tau)))
    print(ascii_curve(ws_points, label=f"WS space-time vs window on {name}"))
    print()

    lru_best = artifacts.lru.min_space_time()
    ws_best = artifacts.ws.min_space_time()
    cd_best = artifacts.best_cd_result()
    print("Minimum space-time by policy:")
    print(f"  CD : {cd_best.space_time:.3e}  (cap={cd_best.parameter})")
    print(f"  LRU: {lru_best.space_time:.3e}  (m={int(lru_best.parameter)})")
    print(f"  WS : {ws_best.space_time:.3e}  (tau={int(ws_best.parameter)})")


if __name__ == "__main__":
    main()
