#!/usr/bin/env python3
"""Closing the paper's loop: compiler-predicted locality sizes vs the
localities actually observed in the trace.

The CD policy's premise is that "a fair amount of run time behavior can
be predicted from the high level source code."  This example checks it:

* the *compiler side* — the X arguments of the inserted ALLOCATE
  directives (Section 2's locality calculus);
* the *empirical side* — bounded locality intervals detected directly
  from the reference string (the Madison-Batson BLI model the paper
  builds on), at three window scales showing the hierarchy.

Run:  python examples/bli_validation.py
"""

from repro.experiments.runner import artifacts_for
from repro.vm.bli import BLIAnalyzer, compare_with_predictions
from repro.workloads import workload_names


def main() -> None:
    print("Hierarchical locality structure (detected from traces):\n")
    for name in workload_names():
        artifacts = artifacts_for(name)
        analyzer = BLIAnalyzer(artifacts.trace)
        print(analyzer.summary())
        comparison = compare_with_predictions(artifacts.trace)
        print(f"  -> {comparison.describe()}\n")

    print("Reading the ratios: close to 1 means the compiler's innermost")
    print("ALLOCATE sizes match the fine-scale localities the program")
    print("actually exhibits; large ratios flag row-order phases whose")
    print("page working sets exceed any single-iteration estimate (the")
    print("reason the paper sizes those at the *outer* loop level).")


if __name__ == "__main__":
    main()
