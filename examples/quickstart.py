#!/usr/bin/env python3
"""Quickstart: the whole pipeline on a small program.

Parses a mini-FORTRAN kernel, analyzes its localities, inserts memory
directives, executes it to get the page-reference trace, and replays the
trace under CD, LRU, and WS at matched average memory.

Run:  python examples/quickstart.py
"""

from repro import (
    CDConfig,
    CDPolicy,
    LRUPolicy,
    WorkingSetPolicy,
    analyze_program,
    generate_trace,
    instrument_program,
    parse_source,
    render_instrumented,
    simulate,
)
from repro.vm.analyzers import WSSweep

SOURCE = """
PROGRAM DEMO
PARAMETER (N = 64, M = 16)
DIMENSION A(N, M), B(N, M), V(N)
C fill the field column-wise, then smooth it, then row-reduce it
DO 10 J = 1, M
  DO 20 I = 1, N
    A(I, J) = FLOAT(I + J)
20 CONTINUE
10 CONTINUE
DO 30 ITER = 1, 4
  DO 40 J = 1, M
    DO 50 I = 2, N - 1
      B(I, J) = 0.25 * (A(I-1, J) + 2.0 * A(I, J) + A(I+1, J))
50  CONTINUE
40 CONTINUE
  DO 60 I = 1, N
    S = 0.0
    DO 70 J = 1, M
      S = S + B(I, J)
70  CONTINUE
    V(I) = S
60 CONTINUE
30 CONTINUE
END
"""


def main() -> None:
    program = parse_source(SOURCE)

    # 1. Source-level locality analysis (Section 2 of the paper).
    analysis = analyze_program(program)
    print(f"Loop nest depth Δ = {analysis.tree.max_depth}, "
          f"virtual size V = {analysis.program_virtual_size} pages\n")
    for node in analysis.tree.nodes():
        report = analysis.reports[node.loop_id]
        print(f"  {'  ' * node.level}DO {node.var}: level {report.level}, "
              f"PI={report.priority_index}, locality X={report.virtual_size} pages")

    # 2. Directive insertion (Algorithms 1 and 2).
    plan = instrument_program(program, analysis=analysis)
    print("\nInstrumented program (Figure-5c style):\n")
    print(render_instrumented(program, plan))

    # 3. Trace generation: actually run the numerics.
    trace = generate_trace(program, plan=plan)
    print(trace.summary())

    # 4. Replay under the three policies at matched average memory.
    cd = simulate(trace, CDPolicy(CDConfig(pi_cap=2)))
    frames = max(1, round(cd.mem_average))
    lru = simulate(trace, LRUPolicy(frames=frames))
    tau = WSSweep(trace).tau_for_mem(cd.mem_average)
    ws = simulate(trace, WorkingSetPolicy(tau=tau))

    print("\nPolicy comparison at matched average memory:")
    for result in (cd, lru, ws):
        print(f"  {result.describe()}")
    print(f"\nCD saved {lru.page_faults - cd.page_faults} faults vs LRU "
          f"and {ws.page_faults - cd.page_faults} vs WS at the same memory.")


if __name__ == "__main__":
    main()
