#!/usr/bin/env python3
"""Porting your own kernel through the CD pipeline, step by step.

Takes a fresh kernel (a banded matrix-vector iteration that is not in
the bundled catalog), and walks the full adoption path a user would
follow:

1. parse and sanity-check the source;
2. read the compiler's locality report (is the analysis seeing what you
   expect?);
3. inspect the inserted directives;
4. generate the trace and validate its footprint against the analysis;
5. pick the CD operating point and compare against tuned LRU/WS.

Run:  python examples/custom_workload.py
"""

from repro import (
    CDConfig,
    CDPolicy,
    analyze_program,
    generate_trace,
    instrument_program,
    parse_source,
    simulate,
)
from repro.analysis.explain import explain_program
from repro.vm.analyzers import LRUSweep, WSSweep

MY_KERNEL = """
PROGRAM BANDIT
PARAMETER (N = 256, BW = 3)
DIMENSION AB(7, N), X(N), Y(N)
C ---- banded matrix in LAPACK-style band storage: AB(d, j) ----
DO 10 J = 1, N
  DO 20 K = 1, 7
    AB(K, J) = 1.0 / FLOAT(K + J)
20 CONTINUE
  X(J) = 1.0
10 CONTINUE
C ---- repeated band matrix-vector products ----
DO 30 ITER = 1, 12
  DO 40 J = 1, N
    Y(J) = 0.0
40 CONTINUE
  DO 50 J = 1, N
    DO 60 K = 1, 7
      I = J + K - 1 - BW
      IF (I >= 1 .AND. I <= N) THEN
        Y(I) = Y(I) + AB(K, J) * X(J)
      ENDIF
60  CONTINUE
50 CONTINUE
  DO 70 J = 1, N
    X(J) = Y(J) / 2.0
70 CONTINUE
30 CONTINUE
END
"""


def main() -> None:
    # 1. Parse (errors carry line numbers).
    program = parse_source(MY_KERNEL)

    # 2. The compiler's view: the full markdown locality report.
    analysis = analyze_program(program)
    print(explain_program(program, analysis=analysis))

    # 3. Directives are already listed in the report; build the plan.
    plan = instrument_program(program, analysis=analysis)

    # 4. Trace and validate: every analysis AVS must match the traced
    #    footprint (a mismatch means the kernel touches less than it
    #    declares — usually a porting bug).
    trace = generate_trace(program, plan=plan)
    print(trace.summary())
    for array, touched in trace.footprint_by_array().items():
        _first, count = trace.array_pages[array]
        status = "ok" if touched == count else f"only {touched}/{count} touched"
        print(f"  {array:4s}: {status}")

    # 5. Pick the CD operating point: try each directive-set level and
    #    keep the best (the paper reruns programs the same way), then
    #    compare against baselines tuned to the same memory.
    candidates = [
        simulate(trace, CDPolicy(CDConfig(pi_cap=cap))) for cap in (None, 2, 1)
    ]
    cd = min(candidates, key=lambda r: r.space_time)
    lru_sweep = LRUSweep(trace)
    ws_sweep = WSSweep(trace)
    lru = lru_sweep.result(max(1, round(cd.mem_average)))
    ws = ws_sweep.result(ws_sweep.tau_for_mem(cd.mem_average))
    print()
    for result in (cd, lru, ws):
        print(f"  {result.describe()}")
    best_lru = lru_sweep.min_space_time()
    ratio = cd.space_time / best_lru.space_time
    print(f"\n  best possible LRU over all allocations: "
          f"ST={best_lru.space_time:.3e} at m={int(best_lru.parameter)}.")
    print(f"  CD with zero tuning lands at {ratio:.2f}x that optimum — on a"
          "\n  streaming kernel like this one (the band matrix is touched"
          "\n  once per pass, so there is little to predict) the compiler"
          "\n  cannot beat an oracle-tuned partition; on phase-varying"
          "\n  programs it does (see examples/oracle_directives.py).")


if __name__ == "__main__":
    main()
