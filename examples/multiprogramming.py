#!/usr/bin/env python3
"""CD in a multiprogramming environment — the evaluation the paper
leaves as future work ("The performance of CD in a multiprogramming
environment is still to be evaluated").

Runs a mix of benchmark programs sharing one physical memory under
round-robin scheduling, managed by CD (directive-driven allocation with
the paper's swapping mechanism) and by WS with classical load control,
across a range of memory sizes.

Run:  python examples/multiprogramming.py
"""

from repro.experiments.runner import artifacts_for
from repro.vm.multiprog import MultiprogSimulator

MIX = ["TQL", "FDJAC", "HYBRJ"]


def main() -> None:
    traces = [(name, artifacts_for(name).trace) for name in MIX]
    total_demand = sum(t.total_pages for _n, t in traces)
    print(f"Workload mix: {', '.join(MIX)} "
          f"(combined virtual space {total_demand} pages)\n")

    header = (f"{'frames':>7}  {'policy':>6}  {'makespan':>10}  "
              f"{'faults':>7}  {'swaps':>5}  {'util':>5}  {'thru':>6}")
    print(header)
    print("-" * len(header))
    for frames in (96, 64, 48, 32):
        for mode in ("cd", "ws"):
            sim = MultiprogSimulator(traces, total_frames=frames, mode=mode)
            result = sim.run()
            print(f"{frames:>7}  {mode.upper():>6}  {result.makespan:>10}  "
                  f"{result.total_faults:>7}  {result.swaps:>5}  "
                  f"{result.mem_utilization:>5.2f}  {result.throughput:>6.3f}")
    print()
    print("CD uses the compiler's locality sizes to bound each process's")
    print("allocation, so it avoids the working-set over-commitment that")
    print("forces WS load control to swap under pressure.")


if __name__ == "__main__":
    main()
