#!/usr/bin/env python3
"""How good is the compiler's locality arithmetic?  Oracle study.

Three CD runs over the same phased reference string:

1. **Oracle directives** — ALLOCATE events sized *exactly* to each
   phase's locality (the best any compiler could do);
2. **Compiler directives** — the real pipeline on an equivalent
   mini-FORTRAN program (Section-2 analysis + Algorithm 1);
3. **No directives** — CD degenerates to its minimum allocation.

LRU and WS at the oracle's average memory complete the picture.

Run:  python examples/oracle_directives.py
"""

from repro import parse_source, instrument_program, generate_trace
from repro.tracegen.synthetic import phased_localities, with_allocate_events
from repro.vm.analyzers import WSSweep
from repro.vm.policies import CDConfig, CDPolicy, LRUPolicy, WorkingSetPolicy
from repro.vm.simulator import simulate

# A program whose phases mirror the synthetic string below: a 20-page
# row-order pass alternating with a 2-page vector pass, 4 rounds.
SOURCE = """
PROGRAM PHASES
DIMENSION A(64, 20), V(128)
DO 10 ROUND = 1, 4
  DO 20 I = 1, 64
    DO 30 J = 1, 20
      A(I, J) = A(I, J) + 1.0
30  CONTINUE
20 CONTINUE
  DO 40 K = 1, 128
    V(K) = V(K) * 0.5
40 CONTINUE
10 CONTINUE
END
"""


def main() -> None:
    # --- oracle side: synthetic phases with exact ALLOCATE events ---
    phases = [(20, 1280), (2, 128)] * 4
    oracle_trace = with_allocate_events(phased_localities(phases), phases)
    oracle = simulate(oracle_trace, CDPolicy())
    bare = simulate(oracle_trace.without_directives(), CDPolicy())
    frames = max(1, round(oracle.mem_average))
    lru = simulate(oracle_trace.without_directives(), LRUPolicy(frames=frames))
    tau = WSSweep(oracle_trace.without_directives()).tau_for_mem(oracle.mem_average)
    ws = simulate(oracle_trace.without_directives(), WorkingSetPolicy(tau=tau))

    print("Synthetic phased string (oracle ALLOCATE events):")
    print(f"  CD + oracle     : MEM={oracle.mem_average:6.2f}  PF={oracle.page_faults}")
    print(f"  CD, no events   : MEM={bare.mem_average:6.2f}  PF={bare.page_faults}")
    print(
        f"  LRU @ {frames:3d} frames: "
        f"MEM={lru.mem_average:6.2f}  PF={lru.page_faults}"
    )
    print(f"  WS  @ tau={tau:5d} : MEM={ws.mem_average:6.2f}  PF={ws.page_faults}")

    # --- compiler side: the real pipeline on the equivalent program ---
    program = parse_source(SOURCE)
    plan = instrument_program(program)
    trace = generate_trace(program, plan=plan)
    compiled = simulate(trace, CDPolicy(CDConfig(pi_cap=2)))
    lru2 = simulate(
        trace, LRUPolicy(frames=max(1, round(compiled.mem_average)))
    )
    print("\nEquivalent mini-FORTRAN program (compiler directives, PI cap 2):")
    print(
        f"  CD + compiler   : "
        f"MEM={compiled.mem_average:6.2f}  PF={compiled.page_faults}"
    )
    print(f"  LRU, same memory: MEM={lru2.mem_average:6.2f}  PF={lru2.page_faults}")
    print("\nThe compiler's Section-2 arithmetic lands close to the oracle:")
    print("both shrink the allocation for the vector phase and grow it for")
    print("the row-order pass, which a fixed LRU partition cannot do.")


if __name__ == "__main__":
    main()
