PROGRAM FIG5
PARAMETER (N = 10)
DIMENSION A(640), B(640), C(640), D(640), E(640), F(640), CC(64, N), DD(64, N)
ALLOCATE ((3,53))
DO 40 I = 1, N
  A(I) = B(I) + 1.0
  LOCK (3,A,B)
  ALLOCATE ((3,53) else (1,4))
  DO 20 J = 1, N
    C(J) = D(J) + CC(I, J) + DD(J, I)
    20 CONTINUE
  ALLOCATE ((3,53) else (2,11))
  DO 30 J = 1, N
    E(J) = F(J)
    LOCK (2,E,F)
    ALLOCATE ((3,53) else (2,11) else (1,2))
    DO 10 K = 1, N
      E(K) = E(K) + F(J)
      10 CONTINUE
    30 CONTINUE
  40 CONTINUE
UNLOCK (A,B,E,F)
END
