#!/usr/bin/env python3
"""Directive insertion on a bundled benchmark: prints each workload's
source instrumented with ALLOCATE/LOCK/UNLOCK directives (Figure-5c
style) and the run-time directive events of its first loop iterations.

Run:  python examples/directive_insertion.py [WORKLOAD]   (default TQL)
"""

import sys

from repro import get_workload, instrument_program, render_instrumented
from repro.tracegen.interpreter import generate_trace


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "TQL"
    workload = get_workload(name)
    program = workload.program()

    plan = instrument_program(program, symbols=workload.symbols())
    print(f"--- {workload.name}: {plan.directive_count} directives inserted ---\n")
    print(render_instrumented(program, plan))

    trace = generate_trace(program, plan=plan, symbols=workload.symbols())
    print(f"--- first 15 run-time directive events (of {len(trace.directives)}) ---")
    for event in trace.directives[:15]:
        if event.requests:
            args = " else ".join(
                f"({r.priority_index},{r.pages})" for r in event.requests
            )
            detail = f"ALLOCATE ({args})"
        elif event.kind.value == "lock":
            detail = f"LOCK (PJ={event.priority_index}, pages={list(event.lock_pages)})"
        else:
            detail = f"UNLOCK (pages={list(event.lock_pages)})"
        print(f"  @ref {event.position:>7}  loop {event.site:>2}  {detail}")


if __name__ == "__main__":
    main()
