"""Suite-wide fixtures.

The artifact cache persists to disk (``.repro-cache`` by default);
tests must neither depend on nor pollute a developer's cache, so the
whole session is pointed at a throwaway directory.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden table snapshots instead of comparing",
    )


@pytest.fixture(autouse=True, scope="session")
def _isolated_artifact_cache(tmp_path_factory, request):
    cache_root = tmp_path_factory.mktemp("repro-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(cache_root))
    request.addfinalizer(mp.undo)
