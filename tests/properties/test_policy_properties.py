"""Hypothesis property tests on the VM policies and analyzers.

These pin down the classical theory the simulator must satisfy:

* LRU is a stack algorithm — faults are monotone non-increasing in the
  allocation (no Belady anomaly), and the one-pass stack analyzer agrees
  exactly with the event simulator;
* OPT is optimal — never more faults than LRU or FIFO at equal frames;
* WS fault counts are monotone in τ, mean WS size is monotone in τ, and
  the gap analyzer agrees exactly with the event simulator;
* every policy's resident set respects its bound.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tracegen.events import ReferenceTrace
from repro.vm.analyzers import LRUSweep, WSSweep
from repro.vm.policies import (
    CDConfig,
    CDPolicy,
    FIFOPolicy,
    LRUPolicy,
    OPTPolicy,
    WorkingSetPolicy,
)
from repro.vm.simulator import simulate

# Reference strings over a small page universe, with enough length to
# exercise evictions and window expiry.
pages_strategy = st.lists(
    st.integers(min_value=0, max_value=12), min_size=1, max_size=300
)


def trace_of(pages):
    return ReferenceTrace(
        program_name="PROP",
        pages=np.asarray(pages, dtype=np.int32),
        total_pages=max(pages) + 1,
    )


class TestLRUProperties:
    @given(pages=pages_strategy, frames=st.integers(1, 14))
    @settings(max_examples=60, deadline=None)
    def test_analyzer_matches_simulator(self, pages, frames):
        trace = trace_of(pages)
        sweep = LRUSweep(trace)
        exact = simulate(trace, LRUPolicy(frames=frames))
        assert sweep.faults(frames) == exact.page_faults
        assert abs(sweep.mem(frames) - exact.mem_average) < 1e-9
        assert abs(sweep.space_time(frames) - exact.space_time) < 1e-6

    @given(pages=pages_strategy)
    @settings(max_examples=60, deadline=None)
    def test_inclusion_property(self, pages):
        # Stack algorithm: more frames never fault more.
        sweep = LRUSweep(trace_of(pages))
        faults = [sweep.faults(m) for m in range(1, 15)]
        assert faults == sorted(faults, reverse=True)

    @given(pages=pages_strategy, frames=st.integers(1, 14))
    @settings(max_examples=40, deadline=None)
    def test_full_allocation_only_cold_faults(self, pages, frames):
        trace = trace_of(pages)
        sweep = LRUSweep(trace)
        distinct = len(set(pages))
        assert sweep.faults(max(distinct, 1)) == distinct

    @given(pages=pages_strategy, frames=st.integers(1, 14))
    @settings(max_examples=40, deadline=None)
    def test_resident_bound(self, pages, frames):
        policy = LRUPolicy(frames=frames)
        simulate(trace_of(pages), policy)
        assert policy.resident_size <= frames


class TestOPTProperties:
    @given(pages=pages_strategy, frames=st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_opt_never_worse_than_lru(self, pages, frames):
        trace = trace_of(pages)
        opt = simulate(trace, OPTPolicy(frames=frames))
        lru = simulate(trace, LRUPolicy(frames=frames))
        assert opt.page_faults <= lru.page_faults

    @given(pages=pages_strategy, frames=st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_opt_never_worse_than_fifo(self, pages, frames):
        trace = trace_of(pages)
        opt = simulate(trace, OPTPolicy(frames=frames))
        fifo = simulate(trace, FIFOPolicy(frames=frames))
        assert opt.page_faults <= fifo.page_faults

    @given(pages=pages_strategy)
    @settings(max_examples=40, deadline=None)
    def test_opt_lower_bounded_by_cold_faults(self, pages):
        trace = trace_of(pages)
        opt = simulate(trace, OPTPolicy(frames=14))
        assert opt.page_faults == len(set(pages))


class TestWSProperties:
    @given(pages=pages_strategy, tau=st.integers(1, 400))
    @settings(max_examples=60, deadline=None)
    def test_analyzer_matches_simulator(self, pages, tau):
        trace = trace_of(pages)
        sweep = WSSweep(trace)
        exact = simulate(trace, WorkingSetPolicy(tau=tau))
        assert sweep.faults(tau) == exact.page_faults
        assert abs(sweep.mem(tau) - exact.mem_average) < 1e-9
        assert abs(sweep.space_time(tau) - exact.space_time) < 1e-6

    @given(pages=pages_strategy)
    @settings(max_examples=40, deadline=None)
    def test_faults_monotone_in_tau(self, pages):
        sweep = WSSweep(trace_of(pages))
        faults = [sweep.faults(t) for t in (1, 2, 4, 8, 16, 64, 256)]
        assert faults == sorted(faults, reverse=True)

    @given(pages=pages_strategy)
    @settings(max_examples=40, deadline=None)
    def test_mean_ws_size_monotone_in_tau(self, pages):
        sweep = WSSweep(trace_of(pages))
        sizes = [sweep.mem(t) for t in (1, 2, 4, 8, 16, 64, 256)]
        assert all(a <= b + 1e-12 for a, b in zip(sizes, sizes[1:]))

    @given(pages=pages_strategy, tau=st.integers(1, 400))
    @settings(max_examples=40, deadline=None)
    def test_ws_size_bounded_by_tau_and_universe(self, pages, tau):
        policy = WorkingSetPolicy(tau=tau)
        simulate(trace_of(pages), policy)
        assert policy.resident_size <= min(tau, len(set(pages)))


class TestCDProperties:
    @given(
        pages=pages_strategy,
        target=st.integers(1, 10),
        limit=st.one_of(st.none(), st.integers(1, 10)),
    )
    @settings(max_examples=60, deadline=None)
    def test_resident_respects_limit(self, pages, target, limit):
        from repro.directives.model import AllocateRequest
        from repro.tracegen.events import DirectiveEvent, DirectiveKind

        trace = ReferenceTrace(
            program_name="PROP",
            pages=np.asarray(pages, dtype=np.int32),
            total_pages=max(pages) + 1,
            directives=[
                DirectiveEvent(
                    position=0,
                    kind=DirectiveKind.ALLOCATE,
                    site=0,
                    requests=(AllocateRequest(1, target),),
                )
            ],
        )
        policy = CDPolicy(CDConfig(memory_limit=limit))
        simulate(trace, policy)
        # Unlocked residency never exceeds the target; total residency
        # never exceeds the physical limit (no locks in this test).
        assert policy.resident_size <= max(
            policy.allocation_target, 1
        ), "CD exceeded its allocation"
        if limit is not None:
            assert policy.resident_size <= limit

    @given(pages=pages_strategy, target=st.integers(1, 14))
    @settings(max_examples=40, deadline=None)
    def test_cd_with_big_target_behaves_like_lru(self, pages, target):
        from repro.directives.model import AllocateRequest
        from repro.tracegen.events import DirectiveEvent, DirectiveKind

        trace = ReferenceTrace(
            program_name="PROP",
            pages=np.asarray(pages, dtype=np.int32),
            total_pages=max(pages) + 1,
            directives=[
                DirectiveEvent(
                    position=0,
                    kind=DirectiveKind.ALLOCATE,
                    site=0,
                    requests=(AllocateRequest(1, target),),
                )
            ],
        )
        cd = simulate(trace, CDPolicy())
        lru = simulate(trace.without_directives(), LRUPolicy(frames=target))
        assert cd.page_faults == lru.page_faults
