"""Hypothesis property tests on the closed-form static engine.

Driven by the oracle's fuzzer at several reference caps, asserting the
three-way agreement the static tier promises — static ≡ symbolic ≡
vectorized-exact — plus its structural invariants:

* the static string's kept references and run journal reproduce the
  exact interpreter's page string element-for-element;
* the static surrogate equals the symbolic (trace-backed) surrogate's
  analyzer results at every sampled allocation and window — the two
  collapse paths may keep different representatives, but the weighted
  histograms they induce are the same;
* closed-form crossing math agrees with brute force on random
  progressions (the kernel the whole tier stands on);
* reference conservation: kept weights always sum to the string length.
"""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.staticloc import generate_static_string
from repro.analysis.staticloc.affine import ap_crossings
from repro.analysis.symbolic import SymbolicLRU, SymbolicWS, generate_runtrace
from repro.oracle.generator import generate_case
from repro.tracegen.interpreter import generate_trace
from repro.vm.analyzers import LRUSweep, WSSweep

#: small enough to truncate mid-nest, large enough to leave runs intact
_BOUNDS = (257, 5_000, 200_000)

seed_strategy = st.integers(min_value=0, max_value=400)
bound_strategy = st.sampled_from(_BOUNDS)


def _pair(seed, bound):
    """(static string, exact trace) or None when the case raises (the
    oracle checks both tiers raise identically; properties skip)."""
    program = generate_case(seed).program
    try:
        trace = generate_trace(program, max_references=bound)
        string = generate_static_string(program, max_references=bound)
    except Exception:
        return None
    return string, trace


@given(seed=seed_strategy, bound=bound_strategy)
@settings(max_examples=40, deadline=None)
def test_static_string_reproduces_exact_pages(seed, bound):
    pair = _pair(seed, bound)
    assume(pair is not None)
    string, trace = pair
    n = len(trace.pages)
    assert string.n_references == n
    assert string.truncated == trace.truncated
    assert (string.kept_pages == trace.pages[string.kept_pos]).all()
    covered = np.zeros(n, dtype=bool)
    covered[string.kept_pos] = True
    for r in string.runs:
        end = r.start + r.block * r.repeats
        assert (
            trace.pages[r.start : end - r.block]
            == trace.pages[r.start + r.block : end]
        ).all()
        covered[r.start : end] = True
    assert covered.all()


@given(seed=seed_strategy, bound=bound_strategy)
@settings(max_examples=25, deadline=None)
def test_static_equals_symbolic_equals_exact_lru(seed, bound):
    pair = _pair(seed, bound)
    assume(pair is not None)
    string, trace = pair
    try:
        runtrace = generate_runtrace(
            generate_case(seed).program, max_references=bound
        )
    except Exception:
        assume(False)
    exact = LRUSweep(trace)
    static = SymbolicLRU(string.surrogate())
    symbolic = SymbolicLRU(runtrace)
    for frames in (1, 2, 5, max(exact.max_useful_frames, 1)):
        assert static.faults(frames) == exact.faults(frames)
        assert static.faults(frames) == symbolic.faults(frames)


@given(seed=seed_strategy, bound=bound_strategy)
@settings(max_examples=25, deadline=None)
def test_static_equals_exact_ws(seed, bound):
    pair = _pair(seed, bound)
    assume(pair is not None)
    string, trace = pair
    exact = WSSweep(trace)
    static = SymbolicWS(string.surrogate())
    n = len(trace.pages)
    for tau in sorted({1, 3, 17, max(1, n // 2), n + 1}):
        assert static.faults(tau) == exact.faults(tau)
        assert static.mem(tau) == exact.mem(tau)


@given(seed=seed_strategy, bound=bound_strategy)
@settings(max_examples=40, deadline=None)
def test_static_collapse_conserves_references(seed, bound):
    pair = _pair(seed, bound)
    assume(pair is not None)
    string, _ = pair
    surrogate = string.surrogate()
    assert surrogate.verify_weights()
    assert int(surrogate.weights.sum()) == string.n_references


@given(
    lin0=st.integers(min_value=0, max_value=10_000),
    dlin=st.integers(min_value=-300, max_value=300),
    trips=st.integers(min_value=0, max_value=600),
    epp=st.sampled_from([1, 2, 16, 64, 256]),
)
@settings(max_examples=200, deadline=None)
def test_ap_crossings_matches_brute_force(lin0, dlin, trips, epp):
    if dlin < 0:
        lin0 -= dlin * max(trips - 1, 0)  # keep offsets non-negative
    got = ap_crossings(lin0, dlin, trips, epp)
    t = np.arange(trips, dtype=np.int64)
    page = (lin0 + dlin * t) // epp
    want = np.nonzero(page[:-1] != page[1:])[0] if trips else []
    assert got.tolist() == list(want)
