"""Hypothesis property tests on the symbolic (trace-free) engine.

Driven by the same fuzzer the oracle uses, at several reference caps so
truncation lands both outside and *inside* compiled nests:

* symbolic LRU fault counts are monotone non-increasing in the
  allocation (the stack property survives the weighted collapse);
* the symbolic WS size curve never exceeds the distinct-page count, and
  its fault counts are monotone non-increasing in τ;
* the symbolic CD walk's MEM (and every other field) equals the
  closed-form fast path's;
* the collapse itself conserves references (kept weights sum to n).
"""

from hypothesis import assume, given, settings, strategies as st

from repro.analysis.symbolic import (
    Surrogate,
    SymbolicLRU,
    SymbolicWS,
    generate_runtrace,
    simulate_cd_symbolic,
)
from repro.oracle.generator import generate_case
from repro.vm.fastsim import cd_fast_applicable, simulate_cd_fast
from repro.vm.policies import CDConfig

#: small enough to truncate mid-nest, large enough to leave runs intact
_BOUNDS = (257, 5_000, 200_000)

seed_strategy = st.integers(min_value=0, max_value=400)
bound_strategy = st.sampled_from(_BOUNDS)


def _runtrace(seed, bound):
    # A few fuzzer cases legitimately raise at runtime (the oracle
    # checks both tiers raise identically); properties skip those.
    try:
        return generate_runtrace(
            generate_case(seed).program, max_references=bound
        )
    except Exception:
        return None


@given(seed=seed_strategy, bound=bound_strategy)
@settings(max_examples=40, deadline=None)
def test_symbolic_lru_faults_monotone_in_frames(seed, bound):
    rt = _runtrace(seed, bound)
    assume(rt is not None)
    lru = SymbolicLRU(rt)
    top = max(lru.max_useful_frames, 1) + 2
    faults = [lru.faults(m) for m in range(1, top + 1)]
    assert faults == sorted(faults, reverse=True)
    assert faults[-1] == faults[-2]  # beyond max useful: cold misses only


@given(seed=seed_strategy, bound=bound_strategy)
@settings(max_examples=40, deadline=None)
def test_symbolic_ws_curve_bounded_by_distinct_pages(seed, bound):
    rt = _runtrace(seed, bound)
    assume(rt is not None)
    ws = SymbolicWS(rt)
    distinct = len(set(rt.trace.pages.tolist()))
    n = len(rt.trace.pages)
    taus = sorted({1, 2, 7, max(1, n // 2), n + 3})
    for tau in taus:
        assert ws.mem(tau) <= distinct + 1e-9
    faults = [ws.faults(tau) for tau in taus]
    assert faults == sorted(faults, reverse=True)


@given(seed=seed_strategy, bound=bound_strategy)
@settings(max_examples=40, deadline=None)
def test_symbolic_cd_mem_matches_fastsim(seed, bound):
    rt = _runtrace(seed, bound)
    assume(rt is not None)
    for config in (CDConfig(), CDConfig(pi_cap=1), CDConfig(min_allocation=3)):
        if not cd_fast_applicable(rt.trace, config):
            continue
        sym = simulate_cd_symbolic(rt, config)
        fast = simulate_cd_fast(rt.trace, config)
        assert sym.mem_average == fast.mem_average
        assert sym.page_faults == fast.page_faults
        assert sym.space_time == fast.space_time


@given(seed=seed_strategy, bound=bound_strategy)
@settings(max_examples=40, deadline=None)
def test_collapse_conserves_references(seed, bound):
    rt = _runtrace(seed, bound)
    assume(rt is not None)
    surrogate = Surrogate(rt.trace.pages, rt.runs)
    assert surrogate.verify_weights()
    assert len(surrogate.kept_pos) <= len(rt.trace.pages)
