"""Hypothesis property tests on the frontend and analysis pipeline.

A grammar-directed generator produces random (valid) mini-FORTRAN
programs; the properties pin the pipeline end to end:

* unparse∘parse is a fixpoint (round-trip stability);
* priority indexes: innermost loops get 1, parents exceed children,
  nothing exceeds Δ;
* ALLOCATE directives keep the paper's invariants (strictly decreasing
  PI, non-increasing X) on every generated program;
* the interpreter is deterministic and in-bounds.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.locality import analyze_program
from repro.analysis.priority import assign_priority_indexes
from repro.directives import instrument_program
from repro.frontend.parser import parse_source
from repro.frontend.symbols import SymbolTable
from repro.frontend.unparse import unparse_program
from repro.tracegen.interpreter import generate_trace


@st.composite
def mini_programs(draw):
    """A random, always-valid mini-FORTRAN program.

    Arrays: V (vector, 128), A and B (64x4 matrices).  Loops nest up to
    three deep with bounds small enough to keep traces tiny; statements
    reference arrays with loop variables from the enclosing nest, biased
    to stay in bounds by construction (all loops run 1..4, all
    subscripts are plain variables or +1 offsets within bounds).
    """
    lines = ["PROGRAM RAND", "DIMENSION V(128), A(64, 4), B(64, 4)"]
    loop_vars = ("I", "J", "K")

    def emit_block(depth, indent, available_vars):
        n_stmts = draw(st.integers(1, 3))
        for _ in range(n_stmts):
            make_loop = depth < 3 and draw(st.booleans())
            if make_loop:
                var = loop_vars[depth]
                bound = draw(st.integers(2, 4))
                lines.append(f"{indent}DO {var} = 1, {bound}")
                emit_block(depth + 1, indent + "  ", available_vars + [var])
                lines.append(f"{indent}ENDDO")
            else:
                lines.append(indent + draw(_statement(available_vars)))

    def _statement(available_vars):
        refs = []
        if available_vars:
            v = st.sampled_from(available_vars)
            refs.append(v.map(lambda x: f"V({x})"))
            refs.append(v.map(lambda x: f"V({x} + 1)"))
            refs.append(
                st.tuples(v, st.integers(1, 4)).map(
                    lambda t: f"A({t[0]}, {t[1]})"
                )
            )
            refs.append(
                st.tuples(st.integers(1, 60), v).map(
                    lambda t: f"B({t[0]}, MOD({t[1]}, 4) + 1)"
                )
            )
        refs.append(st.just("1.5"))
        expr = st.sampled_from(["X", "Y"])
        rhs = draw(st.one_of(refs))
        lhs = draw(
            st.one_of(
                [st.just(draw(expr))]
                + ([st.sampled_from(available_vars).map(lambda x: f"V({x})")]
                   if available_vars else [])
            )
        )
        return st.just(f"{lhs} = {rhs} + 0.5")

    emit_block(0, "", [])
    lines.append("END")
    return "\n".join(lines) + "\n"


class TestRoundTrip:
    @given(source=mini_programs())
    @settings(max_examples=50, deadline=None)
    def test_unparse_parse_fixpoint(self, source):
        program = parse_source(source)
        once = unparse_program(program)
        twice = unparse_program(parse_source(once))
        assert once == twice

    @given(source=mini_programs())
    @settings(max_examples=50, deadline=None)
    def test_structure_preserved(self, source):
        program = parse_source(source)
        reparsed = parse_source(unparse_program(program))
        assert len(list(program.loops())) == len(list(reparsed.loops()))


class TestPriorityInvariants:
    @given(source=mini_programs())
    @settings(max_examples=50, deadline=None)
    def test_procedure1_invariants(self, source):
        program = parse_source(source)
        analysis = analyze_program(program)
        pi = assign_priority_indexes(analysis.tree)
        delta = analysis.tree.max_depth
        for node in analysis.tree.nodes():
            assert 1 <= pi[node.loop_id] <= max(delta, 1)
            if node.is_innermost:
                assert pi[node.loop_id] == 1
            for child in node.children:
                assert pi[node.loop_id] > pi[child.loop_id]


class TestDirectiveInvariants:
    @given(source=mini_programs())
    @settings(max_examples=50, deadline=None)
    def test_allocate_invariants(self, source):
        program = parse_source(source)
        plan = instrument_program(program)
        tree = analyze_program(program).tree
        for loop_id, directive in plan.allocates.items():
            pis = [r.priority_index for r in directive.requests]
            sizes = [r.pages for r in directive.requests]
            assert pis == sorted(pis, reverse=True)
            assert all(a > b for a, b in zip(pis, pis[1:]))
            assert sizes == sorted(sizes, reverse=True)
            # One request per enclosing loop level.
            node = tree.by_id[loop_id]
            assert len(directive.requests) == node.level

    @given(source=mini_programs())
    @settings(max_examples=50, deadline=None)
    def test_lock_pj_at_least_two(self, source):
        program = parse_source(source)
        plan = instrument_program(program)
        for lock in plan.locks_before.values():
            assert lock.priority_index >= 2


class TestInterpreterInvariants:
    @given(source=mini_programs())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, source):
        program = parse_source(source)
        a = generate_trace(program)
        b = generate_trace(program)
        assert a.length == b.length
        assert (a.pages == b.pages).all()

    @given(source=mini_programs())
    @settings(max_examples=30, deadline=None)
    def test_pages_in_bounds(self, source):
        program = parse_source(source)
        trace = generate_trace(program)
        if trace.length:
            assert int(trace.pages.min()) >= 0
            assert int(trace.pages.max()) < trace.total_pages

    @given(source=mini_programs())
    @settings(max_examples=30, deadline=None)
    def test_locality_sizes_bounded(self, source):
        program = parse_source(source)
        analysis = analyze_program(program)
        symbols = SymbolTable.from_program(program)
        total = sum(
            analysis.page_config.array_virtual_size(info)
            for info in symbols.arrays.values()
        )
        for report in analysis.reports.values():
            assert 1 <= report.virtual_size <= max(total, 1)
