"""Hypothesis property test: inline expansion preserves semantics.

For randomly generated loop bodies over a shared array, the program
``setup; CALL S(V); CALL S(V)`` and its hand-flattened equivalent must
produce identical page traces and identical final array contents.
"""

from hypothesis import given, settings, strategies as st

from repro.frontend.parser import parse_source
from repro.tracegen.interpreter import Interpreter, generate_trace


@st.composite
def loop_bodies(draw):
    """A random single-loop body operating on formal array ``A(128)``.

    Statements use the loop variable I with safe offsets, plus scalar
    temporaries, so any draw is a valid, in-bounds program.
    """
    n_stmts = draw(st.integers(1, 4))
    lines = []
    for _ in range(n_stmts):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            c = draw(st.floats(0.1, 2.0).map(lambda v: round(v, 3)))
            lines.append(f"A(I) = A(I) * {c}")
        elif kind == 1:
            lines.append("T = A(I) + 1.0")
            lines.append("A(I) = T * 0.5")
        elif kind == 2:
            lines.append("IF (I > 1) A(I) = A(I) + A(I-1) * 0.25")
        else:
            lines.append("IF (A(I) > 10.0) A(I) = 10.0")
    return lines


def _sources(body_lines):
    body = "\n".join(body_lines)
    called = (
        "DIMENSION V(128)\n"
        "DO 10 I = 1, 128\n"
        "V(I) = FLOAT(I) * 0.1\n"
        "10 CONTINUE\n"
        "CALL S(V)\n"
        "CALL S(V)\n"
        "END\n"
        "SUBROUTINE S(A)\n"
        "DIMENSION A(128)\n"
        "DO 20 I = 1, 128\n"
        f"{body}\n"
        "20 CONTINUE\n"
        "RETURN\n"
        "END\n"
    )
    flat_body = body.replace("A(", "V(").replace("V(I) = T", "V(I) = T")
    flat = (
        "DIMENSION V(128)\n"
        "DO 10 I = 1, 128\n"
        "V(I) = FLOAT(I) * 0.1\n"
        "10 CONTINUE\n"
        "DO 20 I = 1, 128\n"
        f"{flat_body}\n"
        "20 CONTINUE\n"
        "DO 30 I = 1, 128\n"
        f"{flat_body}\n"
        "30 CONTINUE\n"
        "END\n"
    )
    return called, flat


class TestInlinePreservesSemantics:
    @given(body=loop_bodies())
    @settings(max_examples=30, deadline=None)
    def test_traces_identical(self, body):
        called, flat = _sources(body)
        a = generate_trace(parse_source(called))
        b = generate_trace(parse_source(flat))
        assert a.length == b.length
        assert (a.pages == b.pages).all()

    @given(body=loop_bodies())
    @settings(max_examples=30, deadline=None)
    def test_values_identical(self, body):
        called, flat = _sources(body)
        ia = Interpreter(parse_source(called))
        ia.run()
        ib = Interpreter(parse_source(flat))
        ib.run()
        assert (ia.arrays["V"] == ib.arrays["V"]).all()
