"""Hypothesis properties of the locality calculus itself."""

from hypothesis import given, settings, strategies as st

from repro.analysis.locality import SizingStrategy, analyze_program
from repro.analysis.parameters import PageConfig
from repro.frontend.parser import parse_source


@st.composite
def nest_programs(draw):
    """Random 1-3 deep loop nests over one matrix and one vector, with a
    random mix of row-wise, column-wise, and invariant references."""
    depth = draw(st.integers(1, 3))
    loop_vars = ["I", "J", "K"][:depth]
    lines = ["PROGRAM NESTP", "DIMENSION A(64, 8), V(256)"]
    for level, var in enumerate(loop_vars):
        lines.append("  " * level + f"DO {var} = 1, 8")
    body_indent = "  " * depth
    n_refs = draw(st.integers(1, 3))
    for _ in range(n_refs):
        var = draw(st.sampled_from(loop_vars))
        shape = draw(st.integers(0, 3))
        if shape == 0:
            lines.append(f"{body_indent}X = A({var}, 3)")  # column-walk
        elif shape == 1:
            lines.append(f"{body_indent}X = A(3, {var})")  # row-walk
        elif shape == 2:
            lines.append(f"{body_indent}X = V({var} * 8)")
        else:
            lines.append(f"{body_indent}X = V(17)")  # invariant
    for level in reversed(range(depth)):
        lines.append("  " * level + "ENDDO")
    lines.append("END")
    return "\n".join(lines) + "\n"


class TestCalculusInvariants:
    @given(source=nest_programs())
    @settings(max_examples=60, deadline=None)
    def test_conservative_never_smaller(self, source):
        program_a = parse_source(source)
        program_c = parse_source(source)
        active = analyze_program(program_a, strategy=SizingStrategy.ACTIVE_PAGE)
        conservative = analyze_program(
            program_c, strategy=SizingStrategy.CONSERVATIVE
        )
        for loop_id, report in active.reports.items():
            assert (
                conservative.reports[loop_id].virtual_size
                >= report.virtual_size
            )

    @given(source=nest_programs())
    @settings(max_examples=60, deadline=None)
    def test_outer_directive_covers_inner(self, source):
        # After Algorithm 1's raise, every directive's request sizes are
        # non-increasing from outer to inner.
        from repro.directives import instrument_program

        plan = instrument_program(parse_source(source))
        for directive in plan.allocates.values():
            sizes = [r.pages for r in directive.requests]
            assert sizes == sorted(sizes, reverse=True)

    @given(source=nest_programs())
    @settings(max_examples=60, deadline=None)
    def test_smaller_pages_never_shrink_page_counts(self, source):
        # Halving the page size can only increase (or keep) any locality
        # size measured in pages.
        big = analyze_program(
            parse_source(source), page_config=PageConfig(page_bytes=256)
        )
        small = analyze_program(
            parse_source(source), page_config=PageConfig(page_bytes=128)
        )
        for loop_id, report in big.reports.items():
            assert small.reports[loop_id].virtual_size >= report.virtual_size

    @given(source=nest_programs())
    @settings(max_examples=60, deadline=None)
    def test_allocation_covers_trace_peak_need(self, source):
        # Granting the outermost request must eliminate capacity misses:
        # CD with the full directive set takes exactly cold faults when
        # the top-level request covers the program's touched pages.
        from repro.directives import instrument_program
        from repro.tracegen.interpreter import generate_trace
        from repro.vm.policies import CDPolicy
        from repro.vm.simulator import simulate

        program = parse_source(source)
        plan = instrument_program(program)
        trace = generate_trace(program, plan=plan)
        top = plan.allocates[0].requests[0].pages
        if top >= trace.total_pages:
            result = simulate(trace, CDPolicy())
            assert result.page_faults == trace.distinct_pages
