"""Property tests: the event stream conserves the simulator's metrics.

With ``sample_interval=1`` the tracer records the resident-set size
after every reference, so the ST index — Σ resident over references
plus resident × service over fault intervals — must be *exactly*
reconstructible from the events, for any reference string, any policy,
and any directive placement.  Derandomized so CI failures replay.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.directives.model import AllocateRequest
from repro.obs import Fault, RingBufferSink, Tracer
from repro.obs.events import ResidentSample
from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.vm.policies import (
    CDConfig,
    CDPolicy,
    LRUPolicy,
    PFFPolicy,
    WorkingSetPolicy,
)
from repro.vm.simulator import simulate

pages_strategy = st.lists(
    st.integers(min_value=0, max_value=9), min_size=1, max_size=200
)

SETTINGS = settings(max_examples=50, deadline=None, derandomize=True)


def trace_of(pages, directives=None):
    return ReferenceTrace(
        program_name="PROP",
        pages=np.asarray(pages, dtype=np.int32),
        total_pages=max(pages) + 1,
        directives=list(directives or []),
    )


def alloc_at(position, pi, pages):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.ALLOCATE,
        site=position,
        requests=(AllocateRequest(pi, pages),),
    )


def reconstruct(trace, policy, fault_service=7):
    """(simulator result, metrics recomputed purely from the events)."""
    ring = RingBufferSink()
    result = simulate(
        trace,
        policy,
        fault_service=fault_service,
        tracer=Tracer(ring),
        sample_interval=1,
    )
    faults = [e for e in ring.events if isinstance(e, Fault)]
    samples = [e for e in ring.events if isinstance(e, ResidentSample)]
    st_from_events = sum(s.resident for s in samples) + fault_service * sum(
        f.resident for f in faults
    )
    mem_from_events = (
        sum(s.resident for s in samples) / len(samples) if samples else 0.0
    )
    return result, len(faults), st_from_events, mem_from_events


class TestSTReconstruction:
    @given(pages=pages_strategy, frames=st.integers(1, 12))
    @SETTINGS
    def test_lru(self, pages, frames):
        result, faults, st_ev, mem_ev = reconstruct(
            trace_of(pages), LRUPolicy(frames=frames)
        )
        assert faults == result.page_faults
        assert st_ev == result.space_time
        assert abs(mem_ev - result.mem_average) < 1e-9

    @given(pages=pages_strategy, tau=st.integers(1, 40))
    @SETTINGS
    def test_ws(self, pages, tau):
        result, faults, st_ev, mem_ev = reconstruct(
            trace_of(pages), WorkingSetPolicy(tau=tau)
        )
        assert faults == result.page_faults
        assert st_ev == result.space_time
        assert abs(mem_ev - result.mem_average) < 1e-9

    @given(pages=pages_strategy, threshold=st.integers(1, 40))
    @SETTINGS
    def test_pff(self, pages, threshold):
        result, faults, st_ev, _ = reconstruct(
            trace_of(pages), PFFPolicy(threshold=threshold)
        )
        assert faults == result.page_faults
        assert st_ev == result.space_time

    @given(
        pages=pages_strategy,
        grants=st.lists(
            st.tuples(
                st.integers(0, 199),  # position (clamped to the trace)
                st.integers(1, 3),  # priority index
                st.integers(1, 8),  # pages requested
            ),
            max_size=4,
        ),
        memory_limit=st.one_of(st.none(), st.integers(2, 6)),
    )
    @SETTINGS
    def test_cd_with_random_directives(self, pages, grants, memory_limit):
        directives = [
            alloc_at(min(pos, len(pages)), pi, req)
            for pos, pi, req in sorted(grants)
        ]
        trace = trace_of(pages, directives)
        result, faults, st_ev, mem_ev = reconstruct(
            trace, CDPolicy(CDConfig(memory_limit=memory_limit))
        )
        assert faults == result.page_faults
        assert st_ev == result.space_time
        assert abs(mem_ev - result.mem_average) < 1e-9

    @given(pages=pages_strategy, frames=st.integers(1, 12))
    @SETTINGS
    def test_tracing_never_changes_the_metrics(self, pages, frames):
        trace = trace_of(pages)
        untraced = simulate(trace, LRUPolicy(frames=frames), fault_service=7)
        traced, _, _, _ = reconstruct(trace, LRUPolicy(frames=frames))
        assert untraced.page_faults == traced.page_faults
        assert untraced.space_time == traced.space_time
        assert untraced.mem_average == traced.mem_average
