"""Tests for the top-level public API surface."""

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_policy_classes_exported(self):
        for cls_name in (
            "LRUPolicy",
            "FIFOPolicy",
            "ClockPolicy",
            "OPTPolicy",
            "PFFPolicy",
            "WorkingSetPolicy",
            "CDPolicy",
        ):
            assert hasattr(repro, cls_name)

    def test_pipeline_symbols_exported(self):
        for sym in (
            "parse_source",
            "analyze_program",
            "instrument_program",
            "generate_trace",
            "simulate",
        ):
            assert callable(getattr(repro, sym))


class TestQuickCompare:
    def test_returns_three_results(self):
        results = repro.quick_compare("TQL")
        assert [r.policy for r in results] == ["CD", "LRU", "WS"]

    def test_memory_matched(self):
        cd, lru, ws = repro.quick_compare("TQL")
        assert lru.mem_average == pytest.approx(cd.mem_average, abs=1.0)
        assert ws.mem_average == pytest.approx(cd.mem_average, rel=0.15, abs=1.0)

    def test_pipeline_end_to_end_on_fresh_source(self):
        source = (
            "DIMENSION V(256)\n"
            "DO 10 ITER = 1, 3\n"
            "DO 20 I = 1, 256\n"
            "V(I) = V(I) + 1.0\n"
            "20 CONTINUE\n"
            "10 CONTINUE\n"
            "END\n"
        )
        program = repro.parse_source(source)
        plan = repro.instrument_program(program)
        trace = repro.generate_trace(program, plan=plan)
        result = repro.simulate(trace, repro.CDPolicy())
        assert result.references == 256 * 3 * 2  # read + write per element
        assert result.page_faults >= 4  # V occupies 4 pages
