"""Instrumentation of the simulators and policies.

The central contracts: the event stream *is* the run — fault events
equal the PF count, space-time is exactly reconstructible from the
samples, lock pins balance — and turning tracing on never changes the
metrics the untraced replay produces.
"""

import numpy as np
import pytest

from repro.directives.model import AllocateRequest as AllocReq
from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.vm.fastsim import simulate_cd_fast
from repro.vm.multiprog import MultiprogSimulator
from repro.vm.policies import (
    CDConfig,
    CDPolicy,
    LRUPolicy,
    PFFPolicy,
    WorkingSetPolicy,
)
from repro.vm.policies.cd_adaptive import AdaptiveCDPolicy
from repro.vm.simulator import simulate
from repro.obs import (
    AllocateGrant,
    Evict,
    Fault,
    ForcedRelease,
    LevelChange,
    Lock,
    Resume,
    RingBufferSink,
    Suspend,
    Tracer,
    Unlock,
)
from repro.obs.events import ResidentSample


def make_trace(pages, directives=None, name="TEST"):
    pages = np.asarray(pages, dtype=np.int32)
    total = int(pages.max()) + 1 if len(pages) else 1
    return ReferenceTrace(
        program_name=name,
        pages=pages,
        total_pages=total,
        directives=list(directives or []),
    )


def alloc(position, *pairs, site=0):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.ALLOCATE,
        site=site,
        requests=tuple(AllocReq(pi, x) for pi, x in pairs),
    )


def lock(position, pages, site=0, pj=2):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.LOCK,
        site=site,
        lock_pages=tuple(pages),
        priority_index=pj,
    )


def unlock(position, pages, site=0):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.UNLOCK,
        site=site,
        lock_pages=tuple(pages),
    )


def traced(trace, policy, **kwargs):
    ring = RingBufferSink()
    result = simulate(trace, policy, tracer=Tracer(ring), **kwargs)
    return result, ring.events


def by_type(events, cls):
    return [e for e in events if isinstance(e, cls)]


class TestSimulatorTracing:
    @pytest.mark.parametrize(
        "make_policy",
        [
            lambda: LRUPolicy(frames=3),
            lambda: WorkingSetPolicy(tau=5),
            lambda: PFFPolicy(threshold=4),
            lambda: CDPolicy(CDConfig()),
        ],
        ids=["lru", "ws", "pff", "cd"],
    )
    def test_fault_conservation_and_identical_metrics(self, make_policy):
        pages = ([0, 1, 2, 3] * 6 + [7, 8] * 9) * 3
        trace = make_trace(pages, [alloc(0, (1, 3))])
        baseline = simulate(trace, make_policy())
        result, events = traced(trace, make_policy())
        assert (
            result.page_faults,
            result.mem_average,
            result.space_time,
        ) == (
            baseline.page_faults,
            baseline.mem_average,
            baseline.space_time,
        )
        faults = by_type(events, Fault)
        assert len(faults) == result.page_faults

    def test_st_reconstruction_identity(self):
        trace = make_trace([0, 1, 2, 3, 0, 4] * 15, [alloc(0, (1, 2))])
        result, events = traced(trace, CDPolicy(CDConfig()))
        samples = sum(e.resident for e in by_type(events, ResidentSample))
        fault_part = result.fault_service * sum(
            e.resident for e in by_type(events, Fault)
        )
        assert samples + fault_part == result.space_time

    def test_sample_interval_spacing(self):
        trace = make_trace([0, 1] * 50)
        _, events = traced(trace, LRUPolicy(frames=2), sample_interval=10)
        samples = by_type(events, ResidentSample)
        assert [s.time for s in samples] == list(range(0, 100, 10))

    def test_sample_interval_validated(self):
        trace = make_trace([0, 1])
        with pytest.raises(ValueError):
            simulate(trace, LRUPolicy(frames=2), tracer=Tracer(), sample_interval=0)

    def test_tracer_uninstalled_after_run(self):
        policy = LRUPolicy(frames=2)
        result, _ = traced(make_trace([0, 1, 2]), policy)
        assert result.page_faults == 3
        assert policy.tracer is None

    def test_untraced_policy_has_no_tracer(self):
        assert LRUPolicy(frames=2).tracer is None


class TestEvictEvents:
    def test_lru_capacity_evictions(self):
        trace = make_trace([0, 1, 2, 0, 1, 2])
        _, events = traced(trace, LRUPolicy(frames=2))
        evictions = by_type(events, Evict)
        assert evictions and all(e.reason == "capacity" for e in evictions)
        # every eviction names a page that previously faulted in
        faulted = {e.page for e in by_type(events, Fault)}
        assert {e.page for e in evictions} <= faulted

    def test_ws_window_expiry(self):
        trace = make_trace([0, 1, 2, 3, 4, 5])
        _, events = traced(trace, WorkingSetPolicy(tau=2))
        assert [e.reason for e in by_type(events, Evict)] == ["window"] * 4

    def test_pff_shrink(self):
        # Fault slowly over disjoint pages with a tiny threshold: each
        # fault sweeps the previously-resident, unused pages out.
        trace = make_trace([0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3])
        _, events = traced(trace, PFFPolicy(threshold=2))
        evictions = by_type(events, Evict)
        assert [e.page for e in evictions] == [0, 1]
        assert all(e.reason == "pff-shrink" for e in evictions)

    def test_cd_shrink_on_target_drop(self):
        directives = [alloc(0, (2, 4)), alloc(8, (1, 1), site=1)]
        trace = make_trace([0, 1, 2, 3] * 2 + [0] * 8, directives)
        _, events = traced(trace, CDPolicy(CDConfig()))
        shrinks = [e for e in by_type(events, Evict) if e.reason == "shrink"]
        # Target 4 -> 1 sheds three residents at the grant; page 0 then
        # faults back in and displaces the one survivor: four in all.
        assert len(shrinks) == 4


class TestDirectiveEvents:
    def test_grant_stream_matches_targets(self):
        directives = [alloc(0, (2, 4), site=0), alloc(6, (1, 2), site=1)]
        trace = make_trace([0, 1, 2, 3, 0, 1, 4, 5] * 4, directives)
        _, events = traced(trace, CDPolicy(CDConfig()))
        grants = by_type(events, AllocateGrant)
        assert [(g.site, g.pages, g.target) for g in grants] == [
            (0, 4, 4),
            (1, 2, 2),
        ]

    def test_lock_ledger_balances(self):
        directives = [
            lock(0, (0, 1), site=0),
            lock(4, (2,), site=1),
            unlock(8, (0, 1), site=0),
            unlock(12, (2,), site=1),
        ]
        trace = make_trace([0, 1, 2, 3] * 4, directives)
        _, events = traced(trace, CDPolicy(CDConfig()))
        pinned = sum(len(e.pages) for e in by_type(events, Lock))
        unpinned = sum(len(e.pages) for e in by_type(events, Unlock))
        assert pinned == unpinned == 3
        assert not by_type(events, ForcedRelease)

    def test_superseded_lock_emits_forced_release(self):
        # The same site re-locks different pages: the first pin must be
        # released as "superseded" so the ledger still balances.
        directives = [
            lock(0, (0,), site=0),
            lock(4, (1,), site=0),
            unlock(8, (1,), site=0),
        ]
        trace = make_trace([0, 1] * 5, directives)
        _, events = traced(trace, CDPolicy(CDConfig()))
        forced = by_type(events, ForcedRelease)
        assert [(e.pages, e.reason) for e in forced] == [((0,), "superseded")]
        pinned = sum(len(e.pages) for e in by_type(events, Lock))
        released = sum(len(e.pages) for e in by_type(events, Unlock)) + sum(
            len(e.pages) for e in forced
        )
        assert pinned == released

    def test_trailing_unlock_is_traced(self):
        # UNLOCK after the last reference still reaches the tracer.
        directives = [lock(0, (0,), site=0), unlock(4, (0,), site=0)]
        trace = make_trace([0, 1, 0, 1], directives)
        _, events = traced(trace, CDPolicy(CDConfig()))
        assert len(by_type(events, Unlock)) == 1


class TestAdaptiveTracing:
    def test_level_changes_emitted(self):
        # Site 0 re-executes with a too-small grant: faulting every
        # reference forces a raise, which the event stream records.
        directives = [alloc(i * 60, (2, 6), (1, 1), site=0) for i in range(6)]
        trace = make_trace(list(range(6)) * 60, directives)
        policy = AdaptiveCDPolicy(raise_threshold=50, min_evidence=10)
        _, events = traced(trace, policy)
        changes = by_type(events, LevelChange)
        assert policy.level_raises + policy.level_drops == len(changes)
        assert changes and changes[0].new_level == changes[0].old_level + 1


class TestFastsimTracing:
    def test_synthesized_stream_matches_simulator(self):
        pages = ([0, 1, 2, 3] * 10 + [5, 6] * 12) * 4
        directives = [alloc(0, (2, 4)), alloc(40, (1, 2), site=1)]
        trace = make_trace(pages, directives)
        ring_fast = RingBufferSink()
        fast = simulate_cd_fast(
            trace, CDConfig(), tracer=Tracer(ring_fast)
        )
        ring_slow = RingBufferSink()
        slow = simulate(trace, CDPolicy(CDConfig()), tracer=Tracer(ring_slow))
        assert fast.page_faults == slow.page_faults
        fast_faults = [(e.time, e.page) for e in by_type(ring_fast.events, Fault)]
        slow_faults = [(e.time, e.page) for e in by_type(ring_slow.events, Fault)]
        assert fast_faults == slow_faults
        fast_grants = [
            (g.site, g.pages, g.target)
            for g in by_type(ring_fast.events, AllocateGrant)
        ]
        slow_grants = [
            (g.site, g.pages, g.target)
            for g in by_type(ring_slow.events, AllocateGrant)
        ]
        assert fast_grants == slow_grants

    def test_untraced_fastsim_unchanged(self):
        trace = make_trace([0, 1, 2] * 30, [alloc(0, (1, 2))])
        a = simulate_cd_fast(trace, CDConfig())
        ring = RingBufferSink()
        b = simulate_cd_fast(trace, CDConfig(), tracer=Tracer(ring))
        assert (a.page_faults, a.mem_average, a.space_time) == (
            b.page_faults,
            b.mem_average,
            b.space_time,
        )


class TestMultiprogTracing:
    def _workloads(self):
        a = make_trace(list(range(6)) * 40, [alloc(0, (1, 2))], name="A")
        b = make_trace([10, 11] * 100, [alloc(0, (1, 2))], name="B")
        return [("A", a), ("B", b)]

    def test_faults_attributed_per_process(self):
        ring = RingBufferSink()
        sim = MultiprogSimulator(
            self._workloads(), total_frames=6, mode="cd", tracer=Tracer(ring)
        )
        result = sim.run()
        faults = by_type(ring.events, Fault)
        per_proc = {p.name: p.faults for p in result.processes}
        for name, expected in per_proc.items():
            assert sum(1 for f in faults if f.proc == name) == expected
        assert all(f.proc for f in faults)

    def test_suspend_resume_pairing(self):
        # A thrashing partner under a tight pool forces swap activity.
        thrash = make_trace(list(range(12)) * 30, [alloc(0, (1, 6))], name="T")
        cozy = make_trace([20, 21] * 200, [alloc(0, (1, 2))], name="C")
        ring = RingBufferSink()
        sim = MultiprogSimulator(
            [("T", thrash), ("C", cozy)],
            total_frames=5,
            mode="cd",
            tracer=Tracer(ring),
        )
        result = sim.run()
        suspends = by_type(ring.events, Suspend)
        assert len(suspends) == result.swaps
        if suspends:
            resumes = by_type(ring.events, Resume)
            assert resumes, "swapped processes must come back"

    def test_aggregate_resident_samples(self):
        ring = RingBufferSink()
        sim = MultiprogSimulator(
            self._workloads(),
            total_frames=6,
            mode="cd",
            tracer=Tracer(ring),
            sample_interval=100,
        )
        sim.run()
        samples = by_type(ring.events, ResidentSample)
        assert samples
        assert all(s.resident <= 6 for s in samples)

    def test_sample_interval_validated(self):
        with pytest.raises(ValueError):
            MultiprogSimulator(
                self._workloads(), total_frames=6, sample_interval=0
            )
