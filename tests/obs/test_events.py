"""Event schema, sinks, and tracer plumbing."""

import json

import pytest

from repro.obs import (
    EVENT_TYPES,
    NULL_TRACER,
    Admit,
    AllocateDeny,
    AllocateGrant,
    AllocateRequest,
    Defer,
    Depart,
    Evict,
    Fault,
    ForcedRelease,
    JsonlSink,
    LevelChange,
    Lock,
    NullTracer,
    PoolSample,
    Resume,
    RingBufferSink,
    SummarySink,
    Suspend,
    Tracer,
    Unlock,
    event_from_dict,
    load_events,
)
from repro.obs.events import (
    JobDone,
    JobFail,
    JobRetry,
    JobStart,
    ResidentSample,
    WorkerHeartbeat,
)

SAMPLES = [
    Fault(time=3, page=7, resident=4),
    Fault(time=9, page=2, resident=5, proc="P1"),
    Evict(time=10, page=7, reason="shrink"),
    AllocateRequest(time=12, site=1, requests=((2, 6), (1, 2))),
    AllocateGrant(time=12, site=1, pages=6, priority_index=2, target=6),
    AllocateDeny(time=12, site=1, pages=9, priority_index=2, reason="over-limit"),
    Lock(time=14, site=2, pages=(3, 4), priority_index=1),
    Unlock(time=20, site=2, pages=(3,)),
    ForcedRelease(time=22, site=2, pages=(4,), priority_index=1, reason="pressure"),
    Suspend(time=30, reason="swap", proc="P2"),
    Suspend(time=31, reason="preempt", proc="P3", frames=12),
    Resume(time=40, proc="P2"),
    Admit(time=42, proc="P4", frames=8, waited=120),
    Defer(time=43, proc="P5", frames=16, reason="no-frames"),
    Depart(time=44, proc="P4", frames=8, refs=2400, faults=17),
    PoolSample(time=45, used=40, free=8, admitted=3, deferred=2, suspended=1),
    ResidentSample(time=41, resident=6),
    LevelChange(time=50, site=3, old_level=1, new_level=2),
    JobStart(time=60, job="table:1", attempt=1, worker=4242),
    JobRetry(time=61, job="table:1", attempt=1, error="killed", backoff=0.05),
    JobFail(time=62, job="warm:tql", attempts=3, error="timeout after 2s"),
    JobDone(time=63, job="table:1", attempts=2, seconds=1.25),
    WorkerHeartbeat(time=64, worker=4242, job="table:1"),
]


class TestEventSchema:
    def test_registry_covers_every_event(self):
        assert {type(e) for e in SAMPLES} == set(EVENT_TYPES.values())

    def test_kinds_unique(self):
        kinds = [cls.kind for cls in EVENT_TYPES.values()]
        assert len(kinds) == len(set(kinds))

    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_round_trip(self, event):
        d = event.to_dict()
        assert d["kind"] == event.kind
        # to_dict must be JSON-serializable as-is
        restored = event_from_dict(json.loads(json.dumps(d)))
        assert restored == event
        assert type(restored) is type(event)

    def test_tuples_become_lists(self):
        d = AllocateRequest(time=0, site=0, requests=((2, 6),)).to_dict()
        assert d["requests"] == [[2, 6]]
        assert Lock(time=0, site=0, pages=(1, 2), priority_index=1).to_dict()[
            "pages"
        ] == [1, 2]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "warp-core-breach", "time": 0})

    def test_old_logs_without_new_fields_still_load(self):
        # A suspend serialized before the ``frames`` field existed must
        # deserialize with the default, not KeyError.
        old = {"kind": "suspend", "time": 5, "reason": "swap", "proc": "P1"}
        event = event_from_dict(old)
        assert event == Suspend(time=5, reason="swap", proc="P1", frames=0)

    def test_missing_required_field_still_fails(self):
        with pytest.raises(KeyError):
            event_from_dict({"kind": "admit", "time": 1, "proc": "P1"})

    def test_events_frozen(self):
        with pytest.raises(AttributeError):
            SAMPLES[0].page = 99


class TestRingBufferSink:
    def test_unbounded_keeps_everything(self):
        sink = RingBufferSink()
        for e in SAMPLES:
            sink.handle(e)
        assert sink.events == SAMPLES
        assert sink.total_seen == len(SAMPLES)

    def test_bounded_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for e in SAMPLES:
            sink.handle(e)
        assert sink.events == SAMPLES[-3:]
        assert sink.total_seen == len(SAMPLES)
        assert len(sink) == 3

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "deep" / "events.jsonl"
        sink = JsonlSink(path)
        for e in SAMPLES:
            sink.handle(e)
        sink.close()
        assert sink.count == len(SAMPLES)
        assert load_events(path) == SAMPLES

    def test_no_events_no_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()


class TestSummarySink:
    def test_aggregates(self):
        sink = SummarySink()
        for e in SAMPLES:
            sink.handle(e)
        summary = sink.summary()
        assert summary["faults"] == 2
        assert summary["events"] == len(SAMPLES)
        assert summary["peak_resident"] == 6
        assert summary["last_time"] == 64  # the engine heartbeat sample
        assert summary["by_kind"]["fault"] == 2


class TestTracer:
    def test_fans_out_to_all_sinks(self):
        a, b = RingBufferSink(), SummarySink()
        tracer = Tracer(a, b)
        tracer.emit(SAMPLES[0])
        assert a.events == [SAMPLES[0]]
        assert b.faults == 1

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            tracer.emit(SAMPLES[0])
        assert load_events(path) == [SAMPLES[0]]

    def test_null_tracer_drops(self):
        NULL_TRACER.emit(SAMPLES[0])  # must not raise
        assert NullTracer().enabled is False
        assert Tracer().enabled is True
