"""Derived metrics (histograms, attribution, curves) and the report."""

import pytest

from repro.obs import (
    AllocateDeny,
    AllocateGrant,
    Evict,
    Fault,
    ForcedRelease,
    Lock,
    Unlock,
    build_profile,
    render_profile,
)
from repro.obs.events import ResidentSample
from repro.obs.metrics import (
    attribute_faults,
    interarrival_histogram,
    lock_hold_times,
    mem_over_time,
)


class TestInterarrivalHistogram:
    def test_power_of_two_buckets(self):
        # gaps: 1, 2, 4, 100, 1000
        hist = dict(interarrival_histogram([0, 1, 3, 7, 107, 1107]))
        assert hist["1"] == 1
        assert hist["2"] == 1
        assert hist["3-4"] == 1
        assert hist["65-128"] == 1
        assert hist[">128"] == 1

    def test_all_buckets_present(self):
        labels = [label for label, _ in interarrival_histogram([0, 5])]
        assert labels == [
            "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128", ">128",
        ]

    def test_too_few_faults(self):
        assert sum(n for _, n in interarrival_histogram([42])) == 0
        assert sum(n for _, n in interarrival_histogram([])) == 0


class TestAttribution:
    def test_pages_map_to_arrays(self):
        layout = {"A": (0, 4), "B": (4, 4)}
        counts = attribute_faults([0, 3, 4, 5, 99], layout)
        assert counts == {"A": 2, "B": 2, "(other)": 1}

    def test_no_other_bucket_when_all_match(self):
        assert "(other)" not in attribute_faults([1], {"A": (0, 4)})


class TestLockHoldTimes:
    def test_pairing_and_durations(self):
        events = [
            Lock(time=10, site=0, pages=(1, 2), priority_index=2),
            Unlock(time=30, site=0, pages=(1,)),
            ForcedRelease(
                time=50, site=0, pages=(2,), priority_index=2, reason="pressure"
            ),
            Lock(time=60, site=1, pages=(3,), priority_index=3),
        ]
        holds = {h.page: h for h in lock_hold_times(events)}
        assert holds[1].ended_by == "unlock" and holds[1].duration == 20
        assert holds[2].ended_by == "forced" and holds[2].duration == 40
        assert holds[3].ended_by == "open" and holds[3].duration is None

    def test_superseded(self):
        events = [
            Lock(time=0, site=0, pages=(1,), priority_index=2),
            ForcedRelease(
                time=5, site=0, pages=(1,), priority_index=2, reason="superseded"
            ),
        ]
        (hold,) = lock_hold_times(events)
        assert hold.ended_by == "superseded"


class TestMemOverTime:
    def test_short_stream_passthrough(self):
        events = [ResidentSample(time=t, resident=t + 1) for t in range(5)]
        assert mem_over_time(events, buckets=48) == [
            (0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0), (4, 5.0),
        ]

    def test_downsampling_preserves_plateau(self):
        events = [ResidentSample(time=t, resident=7) for t in range(0, 1000, 2)]
        curve = mem_over_time(events, buckets=10)
        assert len(curve) == 10
        assert all(value == 7.0 for _, value in curve)

    def test_empty_bucket_inherits_previous(self):
        # Samples only at the ends: middle buckets carry the last value.
        events = [
            ResidentSample(time=0, resident=2),
            ResidentSample(time=1, resident=4),
            *[ResidentSample(time=t, resident=4) for t in range(2, 10)],
            ResidentSample(time=1000, resident=9),
        ]
        curve = mem_over_time(events, buckets=10)
        assert curve[5][1] == curve[0][1] > 0  # inherited, not zero
        assert curve[-1][1] == 9.0

    def test_no_samples(self):
        assert mem_over_time([Fault(time=0, page=1, resident=1)]) == []


class TestBuildProfile:
    def events(self):
        return [
            AllocateGrant(time=0, site=0, pages=3, priority_index=1, target=3),
            Fault(time=1, page=0, resident=1),
            ResidentSample(time=1, resident=1),
            Fault(time=2, page=4, resident=2),
            ResidentSample(time=2, resident=2),
            Evict(time=5, page=0, reason="shrink"),
            AllocateDeny(
                time=6, site=1, pages=9, priority_index=2, reason="over-limit"
            ),
            ResidentSample(time=7, resident=1),
        ]

    def test_aggregates(self):
        profile = build_profile(self.events(), array_pages={"A": (0, 4)})
        assert profile.faults == 2
        assert profile.fault_times == [1, 2]
        assert profile.per_array_faults == {"A": 1, "(other)": 1}
        assert profile.evict_reasons == {"shrink": 1}
        assert profile.grants == 1
        assert profile.denies == 1
        assert profile.deny_reasons == {"over-limit": 1}
        assert profile.peak_resident == 2
        assert profile.mean_resident == pytest.approx(4 / 3)
        assert profile.event_counts["fault"] == 2

    def test_empty_stream(self):
        profile = build_profile([])
        assert profile.faults == 0
        assert profile.mem_curve == []
        assert profile.lock_holds == []


class TestRenderProfile:
    def profile(self):
        events = [
            Fault(time=10, page=1, resident=3),
            Fault(time=50, page=6, resident=4),
            ResidentSample(time=10, resident=3),
            ResidentSample(time=50, resident=4),
            Evict(time=60, page=1, reason="capacity"),
            Lock(time=5, site=0, pages=(2,), priority_index=2),
            Unlock(time=80, site=0, pages=(2,)),
        ]
        return build_profile(events, array_pages={"A": (0, 4), "B": (4, 4)})

    def test_text_sections(self):
        text = render_profile(self.profile())
        for heading in (
            "events",
            "fault inter-arrival",
            "fault attribution by array",
            "resident set over time",
            "evictions by reason",
            "lock hold times",
        ):
            assert heading in text
        assert "capacity" in text

    def test_markdown_mode(self):
        md = render_profile(self.profile(), fmt="markdown")
        assert "| events |" in md or "| kind |" in md or "##" in md

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            render_profile(self.profile(), fmt="html")

    def test_headline_uses_result(self):
        from repro.vm.metrics import SimulationResult

        result = SimulationResult(
            policy="CD",
            program="TQL",
            page_faults=2,
            references=100,
            mem_average=3.5,
            space_time=12345.0,
            parameter=None,
            fault_service=2000,
        )
        text = render_profile(self.profile(), result=result)
        assert "CD" in text and "TQL" in text and "12" in text
