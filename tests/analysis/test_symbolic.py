"""Unit tests for the symbolic (trace-free) locality engine.

Synthetic page strings pin the run detector and the collapse algebra;
a catalog workload pins the end-to-end equality against the exact
trace-backed analyzers; a deliberately non-affine nest pins the CD301
fallback path (exact trace, zero runs from that nest, coverage report).
"""

import numpy as np
import pytest

from repro.analysis.symbolic import (
    Run,
    Surrogate,
    SymbolicLRU,
    SymbolicWS,
    detect_runs,
    generate_runtrace,
    simulate_cd_symbolic,
)
from repro.frontend.parser import parse_source
from repro.tracegen.events import ReferenceTrace
from repro.tracegen.interpreter import generate_trace
from repro.vm.analyzers import LRUSweep, WSSweep
from repro.vm.fastsim import simulate_cd_fast
from repro.vm.policies import CDConfig


def _trace_of(pages):
    return ReferenceTrace(
        program_name="SYN",
        pages=np.asarray(pages, dtype=np.int32),
        total_pages=int(max(pages)) + 1,
    )


class TestDetectRuns:
    def test_finds_verified_periodic_run(self):
        pages = np.array([7, 8, 9] * 10, dtype=np.int32)
        runs = detect_runs(pages, [(0, len(pages), [3])])
        assert runs == [Run(0, 3, 10)]

    def test_wrong_hint_finds_nothing(self):
        pages = np.arange(30, dtype=np.int32)  # aperiodic
        assert detect_runs(pages, [(0, 30, [3])]) == []

    def test_runs_never_straddle_boundaries(self):
        pages = np.array([1, 2] * 12, dtype=np.int32)
        runs = detect_runs(pages, [(0, 24, [2])], boundaries=[10])
        assert runs  # both halves long enough to collapse
        for r in runs:
            assert not (r.start < 10 < r.start + r.block * r.repeats)

    def test_partial_trailing_period_is_excluded(self):
        pages = np.array([1, 2, 3] * 5 + [1], dtype=np.int32)
        runs = detect_runs(pages, [(0, 16, [3])])
        assert runs == [Run(0, 3, 5)]

    def test_smaller_period_wins_and_claims_positions(self):
        pages = np.array([4] * 12, dtype=np.int32)
        runs = detect_runs(pages, [(0, 12, [1, 2])])
        assert runs == [Run(0, 1, 12)]


class TestSurrogateAlgebra:
    def _pages(self):
        rng = np.random.default_rng(7)
        head = rng.integers(0, 6, size=17)
        body = np.tile(rng.integers(0, 6, size=4), 25)
        tail = rng.integers(0, 6, size=13)
        return np.concatenate([head, body, tail]).astype(np.int32)

    def _runtrace_like(self):
        pages = self._pages()
        runs = detect_runs(pages, [(0, len(pages), [4])])
        assert runs, "the synthetic string must contain a collapsible run"
        return pages, runs

    def test_weights_conserve_references(self):
        pages, runs = self._runtrace_like()
        s = Surrogate(pages, runs)
        assert s.verify_weights()
        assert len(s.kept_pos) < len(pages)

    def test_weighted_lru_equals_exact_sweep(self):
        pages, runs = self._runtrace_like()
        s = Surrogate(pages, runs)
        exact = LRUSweep(_trace_of(pages))
        sym = SymbolicLRU(s, program="SYN")
        for frames in range(1, max(exact.max_useful_frames, 1) + 2):
            assert sym.faults(frames) == exact.faults(frames)
            assert sym.mem(frames) == exact.mem(frames)
            assert sym.space_time(frames) == exact.space_time(frames)
        a, b = sym.min_space_time(), exact.min_space_time()
        assert (a.parameter, a.space_time) == (b.parameter, b.space_time)
        assert sym.knee_frames() == exact.knee_frames()

    def test_weighted_ws_equals_exact_sweep(self):
        pages, runs = self._runtrace_like()
        s = Surrogate(pages, runs)
        exact = WSSweep(_trace_of(pages))
        sym = SymbolicWS(s, program="SYN")
        n = len(pages)
        for tau in sorted({1, 2, 3, 5, 11, n // 2, n, n + 4}):
            assert sym.faults(tau) == exact.faults(tau)
            assert sym.mem(tau) == exact.mem(tau)
            assert sym.space_time(tau) == exact.space_time(tau)
        a, b = sym.min_space_time(), exact.min_space_time()
        assert (a.parameter, a.space_time) == (b.parameter, b.space_time)

    def test_batched_st_matches_scalar(self):
        pages, runs = self._runtrace_like()
        sym = SymbolicWS(Surrogate(pages, runs), program="SYN")
        taus = np.arange(1, len(pages) + 10, 3, dtype=np.int64)
        batch = sym._st_many(taus)
        scalar = np.array([sym.space_time(int(t)) for t in taus])
        np.testing.assert_array_equal(batch, scalar)


class TestSymbolicCD:
    def test_walk_matches_fastsim_on_workload(self):
        from repro.analysis.symbolic import symbolic_artifacts_for

        art = symbolic_artifacts_for("FIELD")
        for config in (CDConfig(), CDConfig(pi_cap=1), CDConfig(pi_cap=2)):
            sym = simulate_cd_symbolic(
                art.runtrace, config, surrogate=art.surrogate
            )
            fast = simulate_cd_fast(art.trace, config)
            assert sym.page_faults == fast.page_faults
            assert sym.mem_average == fast.mem_average
            assert sym.space_time == fast.space_time

    def test_memory_limit_rejected_like_fast_path(self):
        from repro.analysis.symbolic import symbolic_artifacts_for

        art = symbolic_artifacts_for("INIT")
        with pytest.raises(ValueError):
            simulate_cd_symbolic(art.runtrace, CDConfig(memory_limit=4))
        # ...but the artifact-level entry point falls back cleanly.
        result = art.cd_result(CDConfig(pi_cap=2, memory_limit=4))
        assert result.page_faults > 0


_NONAFFINE = """\
      PROGRAM TWISTY
      DIMENSION A(64), B(64)
      DO 10 I = 1, 8
         A(I*I) = B(I*I) + 1.0
10    CONTINUE
      END
"""


class TestNonAffineFallback:
    def test_fallback_trace_is_exact_and_flagged(self):
        program = parse_source(_NONAFFINE)
        rt = generate_runtrace(program)
        exact = generate_trace(program, compile_nests=False)
        np.testing.assert_array_equal(rt.trace.pages, exact.pages)
        from repro.staticcheck import lint_program

        flagged = [
            d for d in lint_program(program) if d.rule == "CD301"
        ]
        assert flagged, "the quadratic subscript must be CD301-flagged"

    def test_workload_coverage_report(self):
        from repro.analysis.symbolic import symbolic_artifacts_for

        # FIELD carries four CD301-flagged subscripts; INIT none.  The
        # flags are advisory: both traces stay exact either way.
        assert symbolic_artifacts_for("FIELD").coverage()["nonaffine_sites"] == 4
        assert symbolic_artifacts_for("INIT").coverage()["nonaffine_sites"] == 0


class TestEndToEndEquality:
    def test_symbolic_artifacts_match_trace_artifacts(self):
        from repro.analysis.symbolic import symbolic_artifacts_for
        from repro.experiments.runner import artifacts_for

        sym = symbolic_artifacts_for("INIT")
        exact = artifacts_for("INIT")
        np.testing.assert_array_equal(sym.trace.pages, exact.trace.pages)
        a, b = sym.lru.min_space_time(), exact.lru.min_space_time()
        assert (a.parameter, a.page_faults, a.space_time) == (
            b.parameter,
            b.page_faults,
            b.space_time,
        )
        a, b = sym.ws.min_space_time(), exact.ws.min_space_time()
        assert (a.parameter, a.page_faults, a.space_time) == (
            b.parameter,
            b.page_faults,
            b.space_time,
        )
        a, b = sym.best_cd_result(), exact.best_cd_result()
        assert (a.parameter, a.page_faults, a.space_time) == (
            b.parameter,
            b.page_faults,
            b.space_time,
        )
