"""Unit tests for Procedure 1 (Figure 2): priority-index assignment."""

from repro.analysis.looptree import LoopTree
from repro.analysis.priority import assign_priority_indexes, priority_of
from repro.frontend.parser import parse_source


def priorities(src):
    tree = LoopTree(parse_source(src))
    pi = assign_priority_indexes(tree)
    return tree, pi


class TestProcedure1:
    def test_single_loop(self):
        tree, pi = priorities("DO I = 1, 2\nX = 1\nENDDO\nEND\n")
        assert pi[tree.roots[0].loop_id] == 1

    def test_innermost_gets_one(self):
        # Property (1): "The highest priority, PI = 1 is associated with
        # the inner most loops."
        src = "DO I = 1, 2\nDO J = 1, 2\nX = 1\nENDDO\nENDDO\nEND\n"
        tree, pi = priorities(src)
        inner = tree.roots[0].children[0]
        assert pi[inner.loop_id] == 1

    def test_outermost_gets_delta(self):
        # Property (2): "The lowest priority, PI = Δ is associated with
        # the outer most loop."
        src = (
            "DO I = 1, 2\nDO J = 1, 2\nDO K = 1, 2\n"
            "X = 1\nENDDO\nENDDO\nENDDO\nEND\n"
        )
        tree, pi = priorities(src)
        assert tree.max_depth == 3
        assert pi[tree.roots[0].loop_id] == 3

    def test_figure5b_example(self):
        # Figure 5b of the paper: loop 4 (outermost) has PI=3; its child
        # loop 2 (innermost) has PI=1; its child loop 3 has PI=2 because
        # loop 1 nests inside it.
        src = (
            "DO 40 I = 1, 4\n"  # loop 4
            "X = 1\n"
            "DO 20 J = 1, 4\n"  # loop 2
            "X = 2\n"
            "20 CONTINUE\n"
            "DO 30 J = 1, 4\n"  # loop 3
            "X = 3\n"
            "DO 10 K = 1, 4\n"  # loop 1
            "X = 4\n"
            "10 CONTINUE\n"
            "30 CONTINUE\n"
            "40 CONTINUE\n"
            "END\n"
        )
        tree, pi = priorities(src)
        loop4 = tree.roots[0]
        loop2, loop3 = loop4.children
        (loop1,) = loop3.children
        assert pi[loop4.loop_id] == 3
        assert pi[loop2.loop_id] == 1
        assert pi[loop3.loop_id] == 2
        assert pi[loop1.loop_id] == 1

    def test_max_rule_on_shared_outer(self):
        # Property (3): a loop's PI is its distance to the deepest
        # innermost loop below it — the "maximum(PI+1, old PI)" rule.
        src = (
            "DO A1 = 1, 2\n"
            "DO B1 = 1, 2\nX = 1\nENDDO\n"  # shallow chain: would give 2
            "DO B2 = 1, 2\nDO C2 = 1, 2\nDO D2 = 1, 2\n"
            "X = 2\nENDDO\nENDDO\nENDDO\n"  # deep chain: gives 4
            "ENDDO\nEND\n"
        )
        tree, pi = priorities(src)
        assert pi[tree.roots[0].loop_id] == 4

    def test_two_independent_nests(self):
        src = (
            "DO I = 1, 2\nX = 1\nENDDO\n"
            "DO J = 1, 2\nDO K = 1, 2\nX = 2\nENDDO\nENDDO\n"
            "END\n"
        )
        tree, pi = priorities(src)
        assert pi[tree.roots[0].loop_id] == 1
        assert pi[tree.roots[1].loop_id] == 2

    def test_matches_structural_priority(self):
        src = (
            "DO A1 = 1, 2\n"
            "DO B1 = 1, 2\nDO C1 = 1, 2\nX = 1\nENDDO\nENDDO\n"
            "DO B2 = 1, 2\nX = 2\nENDDO\n"
            "ENDDO\nEND\n"
        )
        tree, pi = priorities(src)
        for node in tree.nodes():
            assert pi[node.loop_id] == priority_of(node)

    def test_every_loop_assigned(self):
        src = (
            "DO I = 1, 2\nDO J = 1, 2\nX = 1\nENDDO\n"
            "DO K = 1, 2\nX = 2\nENDDO\nENDDO\nEND\n"
        )
        tree, pi = priorities(src)
        assert set(pi) == {n.loop_id for n in tree.nodes()}

    def test_pi_bounded_by_delta(self):
        src = (
            "DO I = 1, 2\nDO J = 1, 2\nDO K = 1, 2\nX = 1\n"
            "ENDDO\nENDDO\nENDDO\nEND\n"
        )
        tree, pi = priorities(src)
        delta = tree.max_depth
        assert all(1 <= v <= delta for v in pi.values())
