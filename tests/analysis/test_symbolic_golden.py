"""Golden-file regression tests for the symbolic engine's predictions.

One JSON snapshot per catalog workload pins the trace-free engine's
headline numbers — trace/collapse shape, affine coverage, and the
LRU / WS / CD space-time minima — so any change to the recipe tier,
the run detector, or the weighted analyzers shows up as a diff against
``tests/analysis/golden/``.

After an intentional change, regenerate with::

    pytest tests/analysis/test_symbolic_golden.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.workloads import workload_names

GOLDEN_DIR = Path(__file__).parent / "golden"


def _snapshot(name):
    from repro.analysis.symbolic import symbolic_artifacts_for
    from repro.staticcheck import lint_program

    art = symbolic_artifacts_for(name)
    lru_min = art.lru.min_space_time()
    ws_min = art.ws.min_space_time()
    cd = art.best_cd_result()
    flagged = sum(
        1
        for d in lint_program(art.analysis.program, plan=art.plan)
        if d.rule == "CD301"
    )
    return {
        "references": len(art.trace.pages),
        "kept_references": len(art.surrogate.kept_pos),
        "runs": len(art.runtrace.runs),
        "nonaffine_sites": flagged,
        "lru_min": {
            "frames": lru_min.parameter,
            "page_faults": lru_min.page_faults,
            "space_time": lru_min.space_time,
        },
        "ws_min": {
            "tau": ws_min.parameter,
            "page_faults": ws_min.page_faults,
            "space_time": ws_min.space_time,
        },
        "cd": {
            "pi_cap": cd.parameter,
            "page_faults": cd.page_faults,
            "mem_average": round(cd.mem_average, 9),
            "space_time": cd.space_time,
        },
    }


@pytest.mark.parametrize("name", workload_names())
def test_symbolic_predictions_match_golden(name, request):
    got = _snapshot(name)
    path = GOLDEN_DIR / f"{name.lower()}.json"
    text = json.dumps(got, indent=2, sort_keys=True) + "\n"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"updated {path}")
    assert path.exists(), (
        f"missing snapshot {path} — generate it with "
        "pytest tests/analysis/test_symbolic_golden.py --update-golden"
    )
    expected = json.loads(path.read_text())
    assert got == expected, (
        f"{name} symbolic predictions drifted from the golden snapshot; "
        "if the change is intentional, rerun with --update-golden and "
        "commit the diff"
    )
