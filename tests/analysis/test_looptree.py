"""Unit tests for the loop tree (Δ and Λ parameters)."""

import pytest

from repro.analysis.looptree import LoopTree
from repro.frontend.parser import parse_source


def tree_of(src):
    return LoopTree(parse_source(src))


TRIPLE_NEST = (
    "DIMENSION A(8, 8)\n"
    "DO 10 I = 1, 8\n"
    "DO 20 J = 1, 8\n"
    "DO 30 K = 1, 8\n"
    "A(K, J) = A(K, J) + I\n"
    "30 CONTINUE\n"
    "20 CONTINUE\n"
    "10 CONTINUE\n"
    "END\n"
)


class TestStructure:
    def test_single_loop_level(self):
        t = tree_of("DO I = 1, 3\nX = I\nENDDO\nEND\n")
        assert len(t.roots) == 1
        assert t.roots[0].level == 1
        assert t.roots[0].is_innermost

    def test_levels_increase_inward(self):
        t = tree_of(TRIPLE_NEST)
        levels = [n.level for n in t.nodes()]
        assert levels == [1, 2, 3]

    def test_max_depth_is_delta(self):
        assert tree_of(TRIPLE_NEST).max_depth == 3

    def test_max_depth_no_loops(self):
        assert tree_of("X = 1\nEND\n").max_depth == 0

    def test_sibling_loops_share_parent(self):
        src = (
            "DO I = 1, 2\n"
            "DO J = 1, 2\nX = 1\nENDDO\n"
            "DO K = 1, 2\nX = 2\nENDDO\n"
            "ENDDO\nEND\n"
        )
        t = tree_of(src)
        root = t.roots[0]
        assert [c.var for c in root.children] == ["J", "K"]
        assert all(c.parent is root for c in root.children)

    def test_two_separate_nests(self):
        src = (
            "DO I = 1, 2\nX = 1\nENDDO\n"
            "DO J = 1, 2\nDO K = 1, 2\nX = 2\nENDDO\nENDDO\n"
            "END\n"
        )
        t = tree_of(src)
        assert len(t.roots) == 2
        assert t.roots[0].subtree_depth == 1
        assert t.roots[1].subtree_depth == 2

    def test_nest_depth_of_inner_node(self):
        t = tree_of(TRIPLE_NEST)
        innermost = [n for n in t.nodes() if n.is_innermost][0]
        assert t.nest_depth(innermost) == 3

    def test_ancestors_inner_to_outer(self):
        t = tree_of(TRIPLE_NEST)
        innermost = [n for n in t.nodes() if n.is_innermost][0]
        assert [a.var for a in innermost.ancestors()] == ["J", "I"]

    def test_path_down_to(self):
        t = tree_of(TRIPLE_NEST)
        outer = t.roots[0]
        innermost = [n for n in t.nodes() if n.is_innermost][0]
        path = outer.path_down_to(innermost)
        assert [n.var for n in path] == ["I", "J", "K"]

    def test_path_down_to_self(self):
        t = tree_of(TRIPLE_NEST)
        outer = t.roots[0]
        assert outer.path_down_to(outer) == [outer]

    def test_path_down_to_unrelated_raises(self):
        src = "DO I = 1, 2\nX = 1\nENDDO\nDO J = 1, 2\nX = 2\nENDDO\nEND\n"
        t = tree_of(src)
        with pytest.raises(ValueError):
            t.roots[0].path_down_to(t.roots[1])

    def test_enclosing_vars(self):
        t = tree_of(TRIPLE_NEST)
        innermost = [n for n in t.nodes() if n.is_innermost][0]
        assert t.enclosing_vars(innermost) == ["K", "J", "I"]


class TestDirectRefs:
    def test_refs_attach_to_containing_loop(self):
        t = tree_of(TRIPLE_NEST)
        innermost = [n for n in t.nodes() if n.is_innermost][0]
        assert {r.name for r in innermost.direct_refs} == {"A"}
        assert t.roots[0].direct_refs == []

    def test_refs_in_if_condition(self):
        src = (
            "DIMENSION V(8)\n"
            "DO I = 1, 8\n"
            "IF (V(I) > 0) X = 1\n"
            "ENDDO\nEND\n"
        )
        t = tree_of(src)
        assert [r.name for r in t.roots[0].direct_refs] == ["V"]

    def test_refs_in_if_block_branches(self):
        src = (
            "DIMENSION V(8), W(8)\n"
            "DO I = 1, 8\n"
            "IF (I > 2) THEN\nX = V(I)\nELSE\nX = W(I)\nENDIF\n"
            "ENDDO\nEND\n"
        )
        t = tree_of(src)
        assert {r.name for r in t.roots[0].direct_refs} == {"V", "W"}

    def test_loop_bound_refs_attach_to_enclosing_level(self):
        src = (
            "DIMENSION LIM(4), A(8)\n"
            "DO I = 1, 4\n"
            "DO J = 1, LIM(I)\n"
            "X = A(J)\n"
            "ENDDO\nENDDO\nEND\n"
        )
        t = tree_of(src)
        outer = t.roots[0]
        assert {r.name for r in outer.direct_refs} == {"LIM"}

    def test_toplevel_refs(self):
        t = tree_of("DIMENSION V(8)\nX = V(1)\nEND\n")
        assert [r.name for r in t.toplevel_refs] == ["V"]

    def test_all_refs_spans_subtree(self):
        t = tree_of(TRIPLE_NEST)
        assert {r.name for r in t.roots[0].all_refs()} == {"A"}

    def test_direct_statements_exclude_nested_loops(self):
        src = (
            "DIMENSION A(4)\n"
            "DO I = 1, 2\n"
            "A(I) = 0.0\n"
            "DO J = 1, 2\nA(J) = 1.0\nENDDO\n"
            "ENDDO\nEND\n"
        )
        t = tree_of(src)
        assert len(t.roots[0].direct_statements) == 1
