"""Unit tests for Θ (reference order) and X (distinct indexes)."""

from repro.analysis.looptree import LoopTree
from repro.analysis.reference_order import (
    ReferenceOrder,
    classify_references,
    expression_variables,
    normalize_expression,
)
from repro.frontend.parser import parse_source
from repro.frontend.symbols import SymbolTable


def groups_for(src, scope_var=None):
    program = parse_source(src)
    symbols = SymbolTable.from_program(program)
    tree = LoopTree(program)
    ranks = {name: info.rank for name, info in symbols.arrays.items()}
    scope = tree.roots[0]
    if scope_var is not None:
        scope = [n for n in tree.nodes() if n.var == scope_var][0]
    return {
        (g.array, g.driver.var if g.driver else None): g
        for g in classify_references(tree, scope, ranks)
    }


class TestNormalizeExpression:
    def expr(self, text):
        return parse_source(f"X = {text}\nEND\n").body[0].expr

    def test_commutative_addition(self):
        assert normalize_expression(self.expr("I + 1")) == normalize_expression(
            self.expr("1 + I")
        )

    def test_subtraction_not_commuted(self):
        assert normalize_expression(self.expr("I - 1")) != normalize_expression(
            self.expr("1 - I")
        )

    def test_distinct_offsets_distinct(self):
        assert normalize_expression(self.expr("I + 1")) != normalize_expression(
            self.expr("I + 2")
        )

    def test_plain_variable(self):
        assert normalize_expression(self.expr("I")) == "I"


class TestExpressionVariables:
    def expr(self, text, decls=""):
        return parse_source(f"{decls}X = {text}\nEND\n").body[0].expr

    def test_simple(self):
        assert expression_variables(self.expr("I + J * 2")) == {"I", "J"}

    def test_intrinsic_name_excluded(self):
        assert expression_variables(self.expr("MOD(I, 2)")) == {"I"}

    def test_nested_array_subscript_included(self):
        expr = self.expr("A(IDX(K))", decls="DIMENSION A(4), IDX(4)\n")
        assert expression_variables(expr) == {"K"}

    def test_constant(self):
        assert expression_variables(self.expr("3 + 1.5")) == set()


class TestDriverResolution:
    def test_vector_driven_by_its_loop(self):
        g = groups_for(
            "DIMENSION V(64)\nDO I = 1, 64\nX = V(I)\nENDDO\nEND\n"
        )
        assert ("V", "I") in g

    def test_driver_skips_non_indexing_loop(self):
        # V(I) referenced syntactically inside loop J, but J never indexes
        # it: the effective driver is loop I.
        src = (
            "DIMENSION V(64)\n"
            "DO I = 1, 8\nDO J = 1, 8\nX = V(I)\nENDDO\nENDDO\nEND\n"
        )
        g = groups_for(src)
        assert ("V", "I") in g

    def test_invariant_reference(self):
        src = "DIMENSION V(64)\nDO I = 1, 8\nX = V(3)\nENDDO\nEND\n"
        g = groups_for(src)
        group = g[("V", None)]
        assert group.order is ReferenceOrder.INVARIANT

    def test_groups_split_by_driver(self):
        src = (
            "DIMENSION V(64)\n"
            "DO I = 1, 8\nY = V(I)\nDO J = 1, 8\nX = V(J)\nENDDO\nENDDO\nEND\n"
        )
        g = groups_for(src)
        assert ("V", "I") in g and ("V", "J") in g


class TestOrderClassification:
    def test_column_wise(self):
        # G(K, I): the inner loop variable K is the row subscript, so the
        # reference walks down a column (contiguous in column-major).
        src = (
            "DIMENSION G(64, 8)\n"
            "DO I = 1, 8\nDO K = 1, 64\nG(K, I) = 0.0\nENDDO\nENDDO\nEND\n"
        )
        g = groups_for(src, scope_var="K")
        assert g[("G", "K")].order is ReferenceOrder.COLUMN_WISE

    def test_row_wise(self):
        # E(I, K): the inner loop variable K is the column subscript.
        src = (
            "DIMENSION E(64, 8)\n"
            "DO I = 1, 8\nDO K = 1, 8\nE(I, K) = 0.0\nENDDO\nENDDO\nEND\n"
        )
        g = groups_for(src, scope_var="K")
        assert g[("E", "K")].order is ReferenceOrder.ROW_WISE

    def test_diagonal(self):
        src = "DIMENSION A(8, 8)\nDO I = 1, 8\nA(I, I) = 0.0\nENDDO\nEND\n"
        g = groups_for(src)
        assert g[("A", "I")].order is ReferenceOrder.DIAGONAL

    def test_vector_sequential(self):
        src = "DIMENSION V(64)\nDO I = 1, 64\nV(I) = 0.0\nENDDO\nEND\n"
        g = groups_for(src)
        assert g[("V", "I")].order is ReferenceOrder.SEQUENTIAL


class TestDistinctIndexCounts:
    def test_paper_vector_example(self):
        # "W = V(I) + V(I+1) + V(J)": three distinct indexes.
        src = (
            "DIMENSION V(64)\n"
            "DO J = 1, 8\nDO I = 1, 8\nW = V(I) + V(I+1) + V(J)\nENDDO\nENDDO\nEND\n"
        )
        g = groups_for(src, scope_var="I")
        # V(I) and V(I+1) are driven by loop I; V(J) is invariant within
        # it and forms its own group.  Together they cover the paper's
        # "maximum of three pages" (asserted at the locality level in
        # tests/analysis/test_locality.py).
        assert g[("V", "I")].x_total == 2
        assert g[("V", None)].x_total == 1

    def test_paper_matrix_example(self):
        # "W = A(I,J) + A(I+1,J) + A(I,J+1) + A(I+1,J+1)":
        # Xr = 2 row indexes, Xc = 2 column indexes, four pages at most.
        src = (
            "DIMENSION A(64, 8)\n"
            "DO J = 1, 7\nDO I = 1, 63\n"
            "W = A(I,J) + A(I+1,J) + A(I,J+1) + A(I+1,J+1)\n"
            "ENDDO\nENDDO\nEND\n"
        )
        g = groups_for(src, scope_var="I")
        group = g[("A", "I")]
        assert group.x_row == 2
        assert group.x_col == 2
        assert group.x_total == 4

    def test_repeated_identical_refs_count_once(self):
        src = (
            "DIMENSION V(64)\n"
            "DO I = 1, 8\nW = V(I) + V(I) * 2.0\nENDDO\nEND\n"
        )
        g = groups_for(src)
        assert g[("V", "I")].x_total == 1

    def test_x_col_is_one_for_vectors(self):
        src = "DIMENSION V(64)\nDO I = 1, 8\nW = V(I)\nENDDO\nEND\n"
        g = groups_for(src)
        assert g[("V", "I")].x_col == 1
