"""Unit tests for page geometry (P) and the AVS/CVS size parameters."""

import pytest

from repro.analysis.parameters import PageConfig
from repro.frontend.symbols import ArrayInfo


class TestPageConfig:
    def test_paper_default_geometry(self):
        # "we assume a paged system with a 256 byte page size"; 4-byte REALs.
        cfg = PageConfig()
        assert cfg.page_bytes == 256
        assert cfg.word_bytes == 4
        assert cfg.elements_per_page == 64

    def test_custom_geometry(self):
        cfg = PageConfig(page_bytes=512, word_bytes=8)
        assert cfg.elements_per_page == 64

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageConfig(page_bytes=0)

    def test_page_not_multiple_of_word(self):
        with pytest.raises(ValueError):
            PageConfig(page_bytes=100, word_bytes=8)

    def test_pages_for_elements_rounds_up(self):
        cfg = PageConfig()
        assert cfg.pages_for_elements(0) == 0
        assert cfg.pages_for_elements(1) == 1
        assert cfg.pages_for_elements(64) == 1
        assert cfg.pages_for_elements(65) == 2

    def test_pages_for_elements_negative(self):
        with pytest.raises(ValueError):
            PageConfig().pages_for_elements(-1)

    def test_page_of_element(self):
        cfg = PageConfig()
        assert cfg.page_of_element(0) == 0
        assert cfg.page_of_element(63) == 0
        assert cfg.page_of_element(64) == 1

    def test_page_of_element_negative(self):
        with pytest.raises(ValueError):
            PageConfig().page_of_element(-1)


class TestAvsCvs:
    def test_avs_matrix(self):
        # AVS = (M x N) / P, rounded up.
        cfg = PageConfig()
        info = ArrayInfo(name="A", dims=(100, 100))
        assert cfg.array_virtual_size(info) == 157  # ceil(10000 / 64)

    def test_avs_exact_fit(self):
        cfg = PageConfig()
        info = ArrayInfo(name="A", dims=(64, 10))
        assert cfg.array_virtual_size(info) == 10

    def test_cvs_matrix(self):
        # CVS = M / P, rounded up.
        cfg = PageConfig()
        info = ArrayInfo(name="A", dims=(200, 10))
        assert cfg.column_virtual_size(info) == 4  # ceil(200 / 64)

    def test_cvs_vector_equals_avs(self):
        cfg = PageConfig()
        info = ArrayInfo(name="V", dims=(500,))
        assert cfg.column_virtual_size(info) == cfg.array_virtual_size(info) == 8

    def test_small_array_one_page(self):
        cfg = PageConfig()
        info = ArrayInfo(name="T", dims=(3, 3))
        assert cfg.array_virtual_size(info) == 1
        assert cfg.column_virtual_size(info) == 1
