"""Tests for the markdown analysis report."""

import pytest

from repro.analysis.explain import explain_program
from repro.frontend.parser import parse_source

SRC = (
    "PROGRAM DEMO\n"
    "DIMENSION A(64, 4), V(128)\n"
    "DO 10 I = 1, 4\n"
    "Y = V(I)\n"
    "DO 20 K = 1, 64\n"
    "A(K, I) = V(K)\n"
    "20 CONTINUE\n"
    "10 CONTINUE\n"
    "END\n"
)


@pytest.fixture(scope="module")
def report():
    return explain_program(parse_source(SRC))


class TestExplain:
    def test_title_names_program(self, report):
        assert report.startswith("# Locality analysis: DEMO")

    def test_arrays_table(self, report):
        assert "| A | 64×4 | 256 | 4 | 1 |" in report
        assert "| V | 128 | 128 | 2 | 2 |" in report

    def test_total_virtual_size(self, report):
        assert "V = **6 pages**" in report

    def test_loop_table_has_levels_and_pi(self, report):
        assert "| DO I | " in report
        assert "| · DO K | " in report

    def test_contribution_arithmetic_shown(self, report):
        assert "Locality arithmetic" in report
        assert "`A`" in report and "`V`" in report

    def test_directives_listed(self, report):
        assert "ALLOCATE ((2," in report
        assert "LOCK (2,V)" in report

    def test_no_loops_case(self):
        text = explain_program(parse_source("X = 1\nEND\n"))
        assert "nothing to instrument" in text

    def test_while_loop_rendered(self):
        src = (
            "DIMENSION V(64)\n"
            "X = 1.0\n"
            "DO WHILE (X > 0.0)\n"
            "X = X - V(1)\n"
            "ENDDO\nEND\n"
        )
        text = explain_program(parse_source(src))
        assert "DO WHILE" in text

    def test_cli_report(self, capsys):
        from repro.cli import main

        assert main(["analyze", "TQL", "--report"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Locality analysis: TQL")
        assert "## Inserted directives" in out
