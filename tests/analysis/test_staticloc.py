"""Unit tests for the closed-form static locality engine.

The crossing math is checked against brute force over a dense parameter
grid (both directions, steps larger than a page, degenerate inputs);
the closed-form run structure against the trace-backed detector on the
materialized pages; the parts-built surrogate against flat
construction; and the end-to-end static string against the exact
interpreter on synthetic programs and bundled workloads.
"""

import numpy as np
import pytest

from repro.analysis.staticloc import (
    ClosedFormPages,
    StaticString,
    ap_crossings,
    generate_static_string,
)
from repro.analysis.symbolic.collapse import Surrogate, detect_runs, kept_mask
from repro.directives import instrument_program
from repro.frontend.parser import parse_source
from repro.tracegen.interpreter import generate_trace
from repro.workloads import get_workload


def brute_crossings(lin0, dlin, trips, epp):
    t = np.arange(trips, dtype=np.int64)
    page = (lin0 + dlin * t) // epp
    return np.nonzero(page[:-1] != page[1:])[0]


class TestApCrossings:
    @pytest.mark.parametrize("dlin", [-130, -65, -64, -7, -1, 1, 3, 64, 100])
    @pytest.mark.parametrize("lin0", [0, 1, 63, 64, 65, 200, 1000])
    @pytest.mark.parametrize("trips", [2, 3, 17, 64, 257])
    def test_matches_brute_force(self, lin0, dlin, trips, epp=64):
        if lin0 + dlin * (trips - 1) < 0:
            lin0 -= dlin * (trips - 1)  # keep offsets non-negative
        got = ap_crossings(lin0, dlin, trips, epp)
        want = brute_crossings(lin0, dlin, trips, epp)
        assert got.tolist() == want.tolist()

    @pytest.mark.parametrize("epp", [1, 2, 7, 64, 256])
    def test_page_size_sweep(self, epp):
        for lin0 in (0, 3, epp - 1, epp, 5 * epp + 1):
            for dlin in (-2 * epp - 1, -3, -1, 1, 2, epp, 2 * epp + 1):
                base = lin0 if dlin > 0 else lin0 - dlin * 99
                got = ap_crossings(base, dlin, 100, epp)
                assert got.tolist() == brute_crossings(base, dlin, 100, epp).tolist()

    def test_degenerate_inputs(self):
        assert len(ap_crossings(5, 0, 100, 64)) == 0  # constant progression
        assert len(ap_crossings(5, 3, 1, 64)) == 0  # single trip
        assert len(ap_crossings(5, 3, 0, 64)) == 0  # empty
        assert len(ap_crossings(0, 1, 64, 64)) == 0  # never leaves page 0

    def test_big_step_crosses_once_per_iteration(self):
        # |dlin| > epp: several boundaries per step, one mismatch each
        got = ap_crossings(0, 200, 50, 64)
        assert got.tolist() == list(range(49))


class TestClosedFormStructure:
    def check(self, cf):
        pages = cf.materialize()
        n, b = len(pages), cf.n_sites
        runs, kept, kept_pages = cf.structure()
        want_runs = detect_runs(pages, [(0, n, [b])])
        assert runs == want_runs
        want_kept = np.flatnonzero(kept_mask(n, want_runs))
        assert kept.tolist() == want_kept.tolist()
        assert kept_pages.tolist() == pages[want_kept].tolist()

    def test_single_streaming_site(self):
        self.check(ClosedFormPages([10], [0], [1], epp=64, trips=300))

    def test_multi_site_mixed_directions(self):
        self.check(
            ClosedFormPages(
                first=[0, 40, 80],
                lin0=[0, 1023, 512],
                dlin=[1, -4, 0],
                epp=64,
                trips=256,
            )
        )

    def test_invariant_sites_collapse_whole_nest(self):
        cf = ClosedFormPages([0, 7], [3, 12], [0, 0], epp=64, trips=100)
        runs, kept, _ = cf.structure()
        (run,) = runs
        assert run.block == 2 and run.start == 0 and run.repeats == 100
        # the kept set is the run's representative block copies only
        assert len(kept) < len(cf)
        assert kept.tolist() == sorted(kept.tolist())

    def test_short_nest_stays_literal(self):
        cf = ClosedFormPages([0], [0], [1], epp=64, trips=2)
        runs, kept, kept_pages = cf.structure()
        assert runs == [] and len(kept) == 2
        assert kept_pages.tolist() == cf.materialize().tolist()

    def test_mismatches_equal_shifted_comparison(self):
        cf = ClosedFormPages(
            [0, 16], [100, 4000], [3, -5], epp=64, trips=257
        )
        pages = cf.materialize()
        b = cf.n_sites
        want = np.nonzero(pages[:-b] != pages[b:])[0]
        assert cf.mismatches().tolist() == want.tolist()


class TestStaticString:
    SRC = (
        "PROGRAM TINY\n"
        "DIMENSION A(300), B(300)\n"
        "DO I = 1, 300\n"
        "  A(I) = B(301 - I)\n"
        "ENDDO\n"
        "END\n"
    )

    def cross_check(self, program, plan=None, max_references=5_000_000):
        string = generate_static_string(
            program, plan=plan, max_references=max_references
        )
        trace = generate_trace(
            program, plan=plan, max_references=max_references
        )
        n = len(trace.pages)
        assert string.n_references == n == len(string.pages)
        assert string.truncated == trace.truncated
        assert string.array_pages == trace.array_pages
        assert [(d.position, d.kind) for d in string.directives] == [
            (d.position, d.kind) for d in trace.directives
        ]
        assert (string.kept_pages == trace.pages[string.kept_pos]).all()
        # runs reconstruct everything the kept set omits
        covered = np.zeros(n, dtype=bool)
        covered[string.kept_pos] = True
        for r in string.runs:
            end = r.start + r.block * r.repeats
            body, shifted = trace.pages[r.start : end - r.block], trace.pages[
                r.start + r.block : end
            ]
            assert (body == shifted).all()
            covered[r.start : end] = True
        assert covered.all()
        assert string.surrogate().verify_weights()
        return string, trace

    def test_plain_nest_collapses(self):
        string, _ = self.cross_check(parse_source(self.SRC))
        assert string.runs and not string.fully_literal

    def test_instrumented_variants(self):
        program = parse_source(self.SRC)
        for with_locks in (False, True):
            plan = instrument_program(program, with_locks=with_locks)
            self.cross_check(program, plan=plan)

    # parent touches A before the inner nest → Algorithm 2 emits a LOCK
    LOCK_SRC = (
        "PROGRAM TINY3\n"
        "DIMENSION A(300), B(300)\n"
        "DO K = 1, 3\n"
        "  A(K) = 0.0\n"
        "  DO I = 1, 300\n"
        "    B(I) = A(K) + B(301 - I)\n"
        "  ENDDO\n"
        "ENDDO\n"
        "END\n"
    )

    def test_lock_plan_is_fully_literal_and_materializes(self):
        program = parse_source(self.LOCK_SRC)
        plan = instrument_program(program, with_locks=True)
        assert plan.locks_before  # the shape really produced a LOCK
        string, trace = self.cross_check(program, plan=plan)
        assert string.fully_literal
        back = string.to_reference_trace()
        assert (back.pages == trace.pages).all()
        assert back.array_pages == trace.array_pages

    def test_collapsed_string_refuses_materialization(self):
        string, _ = self.cross_check(parse_source(self.SRC))
        with pytest.raises(ValueError):
            string.to_reference_trace()

    def test_truncation_matches_interpreter(self):
        program = parse_source(self.SRC)
        for cap in (7, 64, 257):
            string, trace = self.cross_check(program, max_references=cap)
            assert string.truncated and trace.truncated
            assert string.n_references == len(trace.pages)

    @pytest.mark.parametrize("name", ["INIT", "APPROX", "CONDUCT"])
    def test_workloads_cross_check(self, name):
        program = get_workload(name).program()
        plan = instrument_program(program, with_locks=False)
        string, _ = self.cross_check(program, plan=plan)
        assert string.n_references > 0

    def test_closed_form_skips_materialization_on_recipe_nests(self):
        # TQL's big nests are recipe-tier: most references must be
        # committed arithmetically, without flat pages
        from repro.analysis.staticloc.interp import StaticCompiler  # noqa: F401

        stats = {}
        program = get_workload("INIT").program()
        plan = instrument_program(program, with_locks=False)
        generate_static_string(program, plan=plan, stats=stats)
        assert stats.get("closed_form_references", 0) > 0


class TestSurrogateFromParts:
    def test_equals_flat_construction(self):
        program = parse_source(TestStaticString.SRC)
        string = generate_static_string(program)
        trace = generate_trace(program)
        parts = string.surrogate()
        flat = Surrogate(trace.pages, string.runs)
        assert parts.kept_pos.tolist() == flat.kept_pos.tolist()
        assert parts.kept_pages.tolist() == flat.kept_pages.tolist()
        assert parts.weights.tolist() == flat.weights.tolist()

    def test_empty_string(self):
        s = StaticString(program_name="E", n_references=0, total_pages=0)
        assert s.fully_literal
        assert s.surrogate().verify_weights()
