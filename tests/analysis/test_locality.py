"""Tests for the locality virtual-size calculus, anchored on the paper's
Figure-5 walkthrough and Figure-1 narrative."""

import pytest

from repro.analysis.locality import SizingStrategy, analyze_program
from repro.analysis.parameters import PageConfig
from repro.frontend.parser import parse_source

# Reconstruction of Figure 5a.  Sizes are chosen so the page arithmetic
# is transparent with the default geometry (64 elements/page):
#   vectors A..F: 640 elements -> AVS = 10 pages
#   CC, DD: 64 x 10            -> AVS = 10 pages, CVS = 1 page, N = 10
FIGURE5 = """
PROGRAM FIG5
PARAMETER (N = 10)
DIMENSION A(640), B(640), C(640), D(640), E(640), F(640)
DIMENSION CC(64, N), DD(64, N)
DO 40 I = 1, N
  A(I) = B(I) + 1.0
  DO 20 J = 1, N
    C(J) = D(J) + CC(I, J) + DD(J, I)
20 CONTINUE
  DO 30 J = 1, N
    E(J) = F(J)
    DO 10 K = 1, N
      E(K) = E(K) + F(J)
10  CONTINUE
30 CONTINUE
40 CONTINUE
END
"""


@pytest.fixture(scope="module")
def fig5():
    return analyze_program(parse_source(FIGURE5))


def contributions_by_array(report):
    best = {}
    for c in report.contributions:
        if c.array not in best or c.pages > best[c.array].pages:
            best[c.array] = c
    return best


class TestFigure5Walkthrough:
    """The paper computes X1 (locality of loop 4) array by array."""

    def outer_report(self, fig5):
        outer = fig5.tree.roots[0]
        return fig5.report_for(outer.loop_id)

    def test_vectors_at_own_level_contribute_x(self, fig5):
        # "Allocating one page for each vector will be sufficient during
        # the execution of loop 4."
        best = contributions_by_array(self.outer_report(fig5))
        assert best["A"].pages == 1
        assert best["B"].pages == 1

    def test_vectors_one_level_deeper_contribute_avs(self, fig5):
        # "The entire virtual sizes of C, D, E and F contribute to the
        # locality size at level 1."
        best = contributions_by_array(self.outer_report(fig5))
        for name in ("C", "D", "E", "F"):
            assert best[name].pages == 10

    def test_row_wise_cc_contributes_n_pages(self, fig5):
        # "Thus CC contributes to the value of X1 with N pages."
        best = contributions_by_array(self.outer_report(fig5))
        assert best["CC"].pages == 10

    def test_column_wise_dd_contributes_one_page(self, fig5):
        # "Array DD thus contributes to X1 with one page only."
        best = contributions_by_array(self.outer_report(fig5))
        assert best["DD"].pages == 1

    def test_total_x1(self, fig5):
        # 1+1 (A,B) + 4*10 (C,D,E,F) + 10 (CC) + 1 (DD) = 53
        assert self.outer_report(fig5).virtual_size == 53

    def test_priorities_match_figure5b(self, fig5):
        outer = fig5.tree.roots[0]
        loop2, loop3 = outer.children
        (loop1,) = loop3.children
        assert fig5.report_for(outer.loop_id).priority_index == 3
        assert fig5.report_for(loop2.loop_id).priority_index == 1
        assert fig5.report_for(loop3.loop_id).priority_index == 2
        assert fig5.report_for(loop1.loop_id).priority_index == 1

    def test_inner_loop2_locality_smaller_than_outer(self, fig5):
        outer = fig5.tree.roots[0]
        loop2 = outer.children[0]
        x1 = fig5.report_for(outer.loop_id).virtual_size
        x2 = fig5.report_for(loop2.loop_id).virtual_size
        assert x2 < x1

    def test_levels(self, fig5):
        outer = fig5.tree.roots[0]
        loop3 = outer.children[1]
        (loop1,) = loop3.children
        assert fig5.report_for(outer.loop_id).level == 1
        assert fig5.report_for(loop1.loop_id).level == 3
        assert fig5.report_for(loop1.loop_id).nest_depth == 3


# Reconstruction of Figure 1: E, F referenced row-wise in loop 20;
# G, H column-wise in loop 30; both nested in loop 10.
FIGURE1 = """
PROGRAM FIG1
DIMENSION E(64, 10), F(64, 10), G(200, 10), H(200, 10)
DO 10 I = 1, 10
  DO 20 K = 1, 10
    E(I, K) = F(I, K)
20 CONTINUE
  DO 30 K = 1, 200
    G(K, I) = H(K, I)
30 CONTINUE
10 CONTINUE
END
"""


class TestFigure1:
    @pytest.fixture(scope="class")
    def fig1(self):
        return analyze_program(parse_source(FIGURE1))

    def test_loop20_forms_no_real_locality(self, fig1):
        # "Loop 20 does not form a locality" — row-wise at its own level
        # needs only Xr*Xc active pages.
        loop20 = fig1.tree.roots[0].children[0]
        best = contributions_by_array(fig1.report_for(loop20.loop_id))
        assert best["E"].pages == 1
        assert best["F"].pages == 1

    def test_e_f_form_locality_at_loop10(self, fig1):
        # "arrays E and F form a locality at the higher level of loop 10;
        # the size of this locality is the sum of the virtual sizes":
        # row-wise d=1 gives Xr*N = 10 = AVS here (64x10 exactly fills
        # 10 pages).
        outer = fig1.tree.roots[0]
        best = contributions_by_array(fig1.report_for(outer.loop_id))
        assert best["E"].pages == 10  # == AVS(E)
        assert best["F"].pages == 10

    def test_g_h_column_wise_at_loop30(self, fig1):
        loop30 = fig1.tree.roots[0].children[1]
        best = contributions_by_array(fig1.report_for(loop30.loop_id))
        # ACTIVE_PAGE: one live page while walking the column.
        assert best["G"].pages == 1
        assert best["H"].pages == 1

    def test_g_h_conservative_strategy_uses_cvs(self):
        analysis = analyze_program(
            parse_source(FIGURE1), strategy=SizingStrategy.CONSERVATIVE
        )
        loop30 = analysis.tree.roots[0].children[1]
        best = contributions_by_array(analysis.report_for(loop30.loop_id))
        # CVS(G) = ceil(200/64) = 4: the locality is the walked column.
        assert best["G"].pages == 4
        assert best["H"].pages == 4

    def test_fresh_columns_do_not_build_locality_at_loop10(self, fig1):
        # G's columns are selected by loop 10's own variable: each
        # iteration touches a fresh column, so G contributes only its
        # active pages to the level-1 locality.
        outer = fig1.tree.roots[0]
        best = contributions_by_array(fig1.report_for(outer.loop_id))
        assert best["G"].pages == 1


class TestCalculusEdgeCases:
    def test_no_arrays_uses_min_pages(self):
        analysis = analyze_program(
            parse_source("DO I = 1, 4\nX = I\nENDDO\nEND\n"), min_pages=2
        )
        report = analysis.report_for(0)
        assert report.virtual_size == 2
        assert not report.forms_locality

    def test_min_pages_validation(self):
        with pytest.raises(ValueError):
            analyze_program(parse_source("X = 1\nEND\n"), min_pages=0)

    def test_paper_three_index_vector_example(self):
        # "W = V(I) + V(I+1) + V(J)": "a maximum of three pages of vector
        # V can be referenced during one iteration of the loop containing
        # V" — the inner loop's locality counts all three.
        src = (
            "DIMENSION V(640)\n"
            "DO J = 1, 8\nDO I = 1, 8\nW = V(I) + V(I+1) + V(J)\nENDDO\nENDDO\nEND\n"
        )
        analysis = analyze_program(parse_source(src))
        inner = analysis.tree.roots[0].children[0]
        assert analysis.report_for(inner.loop_id).virtual_size == 3

    def test_invariant_ref_contributes_tuple_count(self):
        src = "DIMENSION V(640)\nDO I = 1, 4\nX = V(3) + V(200)\nENDDO\nEND\n"
        analysis = analyze_program(parse_source(src))
        best = contributions_by_array(analysis.report_for(0))
        assert best["V"].pages == 2

    def test_contribution_capped_at_avs(self):
        # Tiny array: many distinct indexes cannot exceed its AVS.
        src = (
            "DIMENSION V(4)\n"
            "DO I = 1, 4\nX = V(1) + V(2) + V(3) + V(4)\nENDDO\nEND\n"
        )
        analysis = analyze_program(parse_source(src))
        best = contributions_by_array(analysis.report_for(0))
        assert best["V"].pages == 1  # AVS(V) = 1

    def test_column_wise_depth2_contributes_avs(self):
        src = (
            "DIMENSION G(64, 8)\n"
            "DO L = 1, 4\n"
            "DO I = 1, 8\n"
            "DO K = 1, 64\nG(K, I) = 0.0\nENDDO\n"
            "ENDDO\nENDDO\nEND\n"
        )
        analysis = analyze_program(parse_source(src))
        best = contributions_by_array(analysis.report_for(0))
        assert best["G"].pages == 8  # AVS

    def test_rewalked_column_at_depth1_uses_cvs(self):
        # The column subscript is fixed: the same column is re-walked by
        # every iteration of the outer loop, forming a column locality.
        src = (
            "DIMENSION G(200, 8)\n"
            "DO I = 1, 4\n"
            "DO K = 1, 200\nG(K, 3) = 0.0\nENDDO\n"
            "ENDDO\nEND\n"
        )
        analysis = analyze_program(parse_source(src))
        best = contributions_by_array(analysis.report_for(0))
        assert best["G"].pages == 4  # CVS = ceil(200/64)

    def test_diagonal_depth1_contributes_avs(self):
        src = (
            "DIMENSION A(64, 64)\n"
            "DO L = 1, 4\n"
            "DO I = 1, 64\nA(I, I) = 0.0\nENDDO\n"
            "ENDDO\nEND\n"
        )
        analysis = analyze_program(parse_source(src))
        best = contributions_by_array(analysis.report_for(0))
        assert best["A"].pages == 64  # AVS = 4096/64

    def test_program_virtual_size(self):
        src = "DIMENSION A(64, 10), V(100)\nX = A(1,1) + V(1)\nEND\n"
        analysis = analyze_program(parse_source(src))
        assert analysis.program_virtual_size == 10 + 2

    def test_custom_page_config(self):
        src = "DIMENSION V(640)\nDO I = 1, 4\nY = V(I)\nDO J = 1, 4\nZ = V(J)\nENDDO\nENDDO\nEND\n"
        small = analyze_program(
            parse_source(src), page_config=PageConfig(page_bytes=128)
        )
        # 32 elements/page -> AVS(V) = 20; vector at depth 1 contributes AVS.
        best = contributions_by_array(small.report_for(0))
        assert best["V"].pages == 20

    def test_reports_exist_for_every_loop(self):
        analysis = analyze_program(parse_source(FIGURE5))
        assert set(analysis.reports) == {n.loop_id for n in analysis.tree.nodes()}
