"""The loop-nest generator: deterministic, parseable, runnable, varied."""

import pytest

from repro.oracle.generator import generate_case, generate_source
from repro.tracegen.interpreter import generate_trace

SEEDS = range(40)


def test_generation_is_deterministic():
    for seed in (0, 7, 123, 99991):
        assert generate_source(seed) == generate_source(seed)


def test_distinct_seeds_differ():
    sources = {generate_source(seed) for seed in SEEDS}
    assert len(sources) > len(SEEDS) // 2


@pytest.mark.parametrize("seed", SEEDS)
def test_every_seed_parses_and_runs(seed):
    case = generate_case(seed)
    assert case.program.name.startswith("FZ")
    # never raises: subscripts are in bounds by construction
    slow = generate_trace(case.program, compile_nests=False)
    fast = generate_trace(case.program, compile_nests=True)
    assert len(slow.pages) == len(fast.pages)


def test_corpus_covers_the_paper_parameters():
    """Over a modest corpus the generator must hit Δ > 1, both Θ
    orders (2-D arrays), non-unit strides, MOD-folded subscripts (X),
    and data-dependent control flow."""
    sources = [generate_source(seed) for seed in range(80)]
    blob = "\n".join(sources)
    assert "DO WHILE" in blob  # interpreted-only control flow
    assert ", -1" in blob or ", -2" in blob  # downward strides
    assert ", 2" in blob or ", 3" in blob  # forward strides
    assert "MOD(" in blob  # folded subscripts
    assert "IF (" in blob  # guards / block IFs
    assert any(s.count("DO ") - s.count("DO WHILE") >= 3 for s in sources)
    two_d = [s for s in sources if "DIMENSION" in s and "," in s.splitlines()[1]]
    assert two_d  # 2-D declarations present


def test_nested_loops_reach_depth_three():
    deep = [
        s
        for s in (generate_source(seed) for seed in range(80))
        if "DO K" in s
    ]
    assert deep
