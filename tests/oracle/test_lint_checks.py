"""The lint-* oracle checks: fuzzed programs lint clean, and a
deliberately unbalanced LOCK insertion is caught and shrunk."""

from repro.directives import instrument
from repro.oracle import harness
from repro.oracle.generator import generate_case
from repro.oracle.runner import verify
from repro.staticcheck import Severity, lint_program


def test_200_generated_programs_lint_clean():
    """Algorithm-1/2 output on 200 fuzzed programs has zero errors."""
    dirty = []
    for seed in range(200):
        case = generate_case(seed)
        errors = [
            d
            for d in lint_program(case.program)
            if d.severity is Severity.ERROR
        ]
        if errors:
            dirty.append((seed, str(errors[0])))
    assert not dirty, dirty[:5]


def _drop_unlocks(monkeypatch):
    real = instrument.insert_lock_directives

    def unbalanced(analysis):
        locks, _unlocks = real(analysis)
        return locks, {}

    monkeypatch.setattr(instrument, "insert_lock_directives", unbalanced)


def test_unbalanced_lock_diverges_as_lint_clean(monkeypatch):
    _drop_unlocks(monkeypatch)
    divergences = harness.check_case(generate_case(0), deep=False)
    assert divergences
    assert divergences[0].check == "lint-clean"
    assert "CD103" in str(divergences[0])


def test_unbalanced_lock_is_caught_and_shrunk(tmp_path, monkeypatch):
    _drop_unlocks(monkeypatch)
    report = verify(seeds=1, out_dir=tmp_path, deep=False)
    assert not report.ok
    failure = report.failures[0]
    assert failure.check == "lint-clean"
    # the shrunk reproducer still carries the leaky nest
    assert len(failure.shrunk_source) <= len(failure.source)
    assert any(p.suffix == ".f" for p in tmp_path.iterdir())
