"""The oracle's engine self-checks and their ``verify(engine=True)`` wiring."""

from repro.oracle.engine_checks import (
    check_engine,
    check_engine_ledger,
    check_engine_resume,
    check_engine_retry,
)
from repro.oracle.runner import verify


class TestChecksPass:
    def test_retry_resume_ledger_clean(self):
        # engine-heal builds real artifacts; it runs in verify/CI, while
        # the unit suite covers the same path in test_artifact_cache.
        assert check_engine(heal=False) == []

    def test_individual_checks_return_lists(self):
        for check in (
            check_engine_retry,
            check_engine_resume,
            check_engine_ledger,
        ):
            assert check() == []


class TestVerifyWiring:
    def test_engine_divergences_become_failures(self, monkeypatch, tmp_path):
        from repro.oracle import engine_checks
        from repro.oracle.harness import Divergence

        monkeypatch.setattr(
            engine_checks,
            "check_engine",
            lambda: [Divergence("engine-retry", "synthetic divergence")],
        )
        report = verify(seeds=1, engine=True, out_dir=tmp_path, shrink=False)
        engine_failures = [f for f in report.failures if f.seed == -1]
        assert len(engine_failures) == 1
        assert engine_failures[0].check == "engine-retry"
        assert "synthetic" in engine_failures[0].detail
        # No reproducer files for engine checks — nothing to shrink.
        assert engine_failures[0].paths == []

    def test_engine_flag_off_skips_checks(self, monkeypatch, tmp_path):
        from repro.oracle import engine_checks

        def explode():
            raise AssertionError("engine checks must not run")

        monkeypatch.setattr(engine_checks, "check_engine", explode)
        report = verify(seeds=1, engine=False, out_dir=tmp_path, shrink=False)
        assert all(f.seed != -1 for f in report.failures)
