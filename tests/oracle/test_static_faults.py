"""Deliberately broken static kernels must be caught by the
``static-*`` battery — the end-to-end acceptance test for the
closed-form engine's oracle.

Two injection points, matching the tier's two structuring paths:

* the closed-form crossing formula (recipe bindings) — only bundled
  workloads reach it, so the fault is driven through
  :func:`check_static` on a recipe-tier workload;
* the per-batch run detector (binder bindings) — fuzzer cases reach it,
  so the fault goes through the full ``verify`` runner, which must
  catch it, attribute it to the static tier, shrink it, and write the
  reproducer pair.
"""

import json

import numpy as np

from repro.analysis.staticloc import affine
from repro.analysis.staticloc import string as staticloc_string
from repro.analysis.symbolic.runtrace import Run
from repro.directives import instrument_program
from repro.oracle.harness import check_static
from repro.oracle.runner import verify
from repro.tracegen.interpreter import generate_trace
from repro.workloads import get_workload


def test_shifted_crossing_formula_is_caught(monkeypatch):
    # Shift every page-crossing iteration by one: the closed-form
    # mismatch set no longer matches the materialized string, so the
    # claimed runs stop being b-periodic in the exact pages.
    real = affine.ap_crossings

    def shifted(lin0, dlin, trips, epp):
        t = real(lin0, dlin, trips, epp)
        return t + 1 if len(t) else t

    monkeypatch.setattr(affine, "ap_crossings", shifted)
    program = get_workload("TQL").program()
    plan = instrument_program(program, with_locks=False)
    trace = generate_trace(program, plan=plan)
    divs = check_static(program, plan, trace, "TQL/alloc")
    assert divs
    assert all(d.check.startswith("static-") for d in divs)
    assert any(d.check == "static-runs" for d in divs)


def test_dropped_crossing_is_caught(monkeypatch):
    # Losing one crossing merges two genuinely different segments into
    # one over-long run.
    real = affine.ap_crossings

    def dropped(lin0, dlin, trips, epp):
        t = real(lin0, dlin, trips, epp)
        return t[1:] if len(t) else t

    monkeypatch.setattr(affine, "ap_crossings", dropped)
    program = get_workload("HYBRJ").program()
    plan = instrument_program(program, with_locks=False)
    trace = generate_trace(program, plan=plan)
    divs = check_static(program, plan, trace, "HYBRJ/alloc")
    assert any(d.check == "static-runs" for d in divs)


def test_overclaimed_binder_batch_is_caught_and_shrunk(tmp_path, monkeypatch):
    # One extra trailing repeat per binder-batch run: the journal claims
    # an iteration that is not in the string.  Only the static tier
    # imports this binding of the detector, so the verify runner must
    # attribute the failure to ``static-*`` (not ``symbolic-*``),
    # shrink it, and write the reproducer pair.
    real = staticloc_string.detect_runs

    def overclaim(pages, segments, boundaries=(), **kwargs):
        return [
            Run(r.start, r.block, r.repeats + 1)
            for r in real(pages, segments, boundaries, **kwargs)
        ]

    monkeypatch.setattr(staticloc_string, "detect_runs", overclaim)
    report = verify(seeds=6, out_dir=tmp_path, deep=False)
    assert not report.ok
    assert all(f.check.startswith("static-") for f in report.failures)
    failure = report.failures[0]
    src = tmp_path / f"seed{failure.seed:06d}-{failure.check.split('-')[0]}.f"
    meta = src.with_suffix(".json")
    assert src.exists() and meta.exists()
    payload = json.loads(meta.read_text())
    assert payload["seed"] == failure.seed
    # shrinking can only remove text, never add it
    assert len(failure.shrunk_source) <= len(failure.source)
    assert src.read_text() == failure.shrunk_source


def test_clean_engine_passes_the_battery():
    # Control: with nothing injected the same drivers find nothing.
    program = get_workload("TQL").program()
    plan = instrument_program(program, with_locks=False)
    trace = generate_trace(program, plan=plan)
    assert check_static(program, plan, trace, "TQL/alloc") == []
