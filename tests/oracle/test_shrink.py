"""Greedy source minimization: keeps the failing line, drops the rest."""

from repro.oracle.shrink import shrink_source

SOURCE = (
    "PROGRAM BIG\n"
    "DIMENSION A(40), B(16, 16)\n"
    "S = 0.0\n"
    "DO I = 1, 12\n"
    "  A(I) = 1.0\n"
    "  DO J = 1, 8\n"
    "    B(I, J) = 0.5\n"
    "  ENDDO\n"
    "ENDDO\n"
    "DO K = 1, 6\n"
    "  S = S + A(K)\n"
    "ENDDO\n"
    "END\n"
)


def test_shrink_drops_unrelated_blocks():
    shrunk = shrink_source(SOURCE, lambda s: "S = S + A(K)" in s)
    assert "S = S + A(K)" in shrunk
    assert "B(I, J)" not in shrunk  # inner nest removed
    assert len(shrunk) < len(SOURCE)


def test_shrink_halves_literals():
    shrunk = shrink_source(SOURCE, lambda s: "A(I) = 1.0" in s)
    # the DO I bound 12 should have been halved repeatedly (12 -> 6 -> 3 -> 2)
    assert "DO I = 1, 2" in shrunk or "DO I = 1, 3" in shrunk


def test_shrink_never_returns_a_non_failing_source():
    shrunk = shrink_source(SOURCE, lambda s: "DIMENSION" in s)
    assert "DIMENSION" in shrunk


def test_shrink_respects_probe_budget():
    probes = []

    def predicate(candidate):
        probes.append(candidate)
        return False  # nothing ever shrinks

    result = shrink_source(SOURCE, predicate, max_probes=10)
    assert result == SOURCE
    assert len(probes) <= 10


def test_shrink_swallows_predicate_exceptions():
    def explosive(candidate):
        if "DO I" not in candidate:
            raise RuntimeError("boom")
        return "S = S + A(K)" in candidate

    shrunk = shrink_source(SOURCE, explosive)
    assert "S = S + A(K)" in shrunk
