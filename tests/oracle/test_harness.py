"""The differential battery itself: clean code must produce zero
divergences, and each check class must run on real generated cases."""

import pytest

from repro.frontend.parser import parse_source
from repro.oracle.generator import generate_case
from repro.oracle.harness import (
    check_case,
    check_program,
    check_source,
    check_trace_equivalence,
)

# a batch large enough to exercise all three variants and the
# every-ninth-seed truncation replay, small enough for the test budget
SEEDS = range(30)


@pytest.mark.parametrize("seed", SEEDS)
def test_no_divergence_on_generated_cases(seed):
    case = generate_case(seed)
    divergences = check_case(case)
    assert divergences == [], "\n".join(str(d) for d in divergences)


def test_truncation_replay_is_equivalent():
    # seed 0 goes through the max_references=257 replay inside
    # check_case; here we pin the behaviour directly on a case big
    # enough to overflow the cap mid-nest.
    for seed in range(20):
        case = generate_case(seed)
        divs, trace = check_trace_equivalence(
            case.program, None, "tiny-cap", max_references=13
        )
        assert divs == []
        if trace is not None and trace.truncated:
            assert len(trace.pages) <= 13
            return
    pytest.skip("no seed in range produced a truncating trace")


def test_handwritten_program_is_clean():
    source = (
        "PROGRAM STENCIL\n"
        "DIMENSION A(8, 8), B(8, 8)\n"
        "DO I = 2, 7\n"
        "  DO J = 2, 7\n"
        "    B(I, J) = 0.25 * (A(I - 1, J) + A(I + 1, J))\n"
        "  ENDDO\n"
        "ENDDO\n"
        "END\n"
    )
    program = parse_source(source)
    assert check_program(program) == []


def test_check_source_tolerates_garbage():
    assert check_source("THIS IS NOT FORTRAN\n") == []
    assert check_source("") == []


def test_shallow_mode_skips_invariants_but_checks_traces():
    case = generate_case(3)
    assert check_case(case, deep=False) == []


class TestPoolConservation:
    def _trace(self):
        import numpy as np

        from repro.tracegen.events import ReferenceTrace

        pages = np.asarray(list(range(6)) * 80, dtype=np.int32)
        return ReferenceTrace(
            program_name="CYC6",
            pages=pages,
            total_pages=6,
            directives=[],
        )

    def test_clean_pool_has_no_divergences(self):
        from repro.oracle.harness import check_pool_conservation

        assert check_pool_conservation(self._trace(), "unit") == []

    def test_detects_a_leaking_ledger(self, monkeypatch):
        # a pool that under-reports what departures release must trip
        # the replayed frame ledger
        import repro.vm.multiprog as mp
        from repro.oracle.harness import check_pool_conservation
        from repro.obs.events import Depart

        class LeakyPool(mp.LoadControlledPool):
            def _emit(self, event):
                if isinstance(event, Depart) and event.frames > 0:
                    event = Depart(
                        time=event.time,
                        proc=event.proc,
                        frames=event.frames - 1,
                        refs=event.refs,
                        faults=event.faults,
                    )
                super()._emit(event)

        monkeypatch.setattr(mp, "LoadControlledPool", LeakyPool)
        divergences = check_pool_conservation(self._trace(), "unit")
        assert any(d.check == "pool-frames" for d in divergences)

    def test_detects_wrong_fault_counts(self, monkeypatch):
        import repro.vm.multiprog as mp
        from repro.oracle.harness import check_pool_conservation

        class MiscountingPool(mp.LoadControlledPool):
            def run(self):
                result = super().run()
                for record in result.records:
                    record.faults += 1
                return result

        monkeypatch.setattr(mp, "LoadControlledPool", MiscountingPool)
        divergences = check_pool_conservation(self._trace(), "unit")
        assert any(d.check == "pool-faults" for d in divergences)
