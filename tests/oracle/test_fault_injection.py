"""Deliberately broken fast paths must be caught, shrunk, and written
out as reproducers — the end-to-end acceptance test for the oracle."""

import dataclasses
import json

from repro.oracle.runner import verify
from repro.tracegen.compile import TraceCompiler
from repro.vm import fastsim


def test_clean_run_writes_nothing(tmp_path):
    report = verify(seeds=3, out_dir=tmp_path, deep=False)
    assert report.ok
    assert report.seeds_run == 3
    assert list(tmp_path.iterdir()) == []


def test_broken_cd_fast_path_is_caught(tmp_path, monkeypatch):
    real = fastsim.simulate_cd_fast

    def off_by_one(trace, config, distances=None):
        result = real(trace, config, distances=distances)
        return dataclasses.replace(result, page_faults=result.page_faults + 1)

    monkeypatch.setattr(fastsim, "simulate_cd_fast", off_by_one)
    report = verify(seeds=2, out_dir=tmp_path, deep=False)
    assert not report.ok
    failure = report.failures[0]
    assert failure.check == "metric-cd"
    # the reproducer pair landed on disk and replays from the metadata
    src = tmp_path / f"seed{failure.seed:06d}-metric.f"
    meta = tmp_path / f"seed{failure.seed:06d}-metric.json"
    assert src.exists() and meta.exists()
    payload = json.loads(meta.read_text())
    assert payload["seed"] == failure.seed
    assert "verify --seeds 1 --start-seed" in payload["replay"]
    # shrinking can only remove text, never add it
    assert len(failure.shrunk_source) <= len(failure.source)
    assert src.read_text() == failure.shrunk_source


def test_broken_trace_compiler_is_caught(tmp_path, monkeypatch):
    real = TraceCompiler._commit

    def corrupting_commit(self, batch):
        if batch.pages:
            batch.pages[-1] += 1  # one wrong page per compiled nest
        return real(self, batch)

    monkeypatch.setattr(TraceCompiler, "_commit", corrupting_commit)
    report = verify(seeds=4, out_dir=tmp_path, deep=False, shrink=False)
    assert not report.ok
    assert any(f.check.startswith("trace") for f in report.failures)
    assert any(p.suffix == ".f" for p in tmp_path.iterdir())


def test_time_budget_stops_early_but_runs_at_least_one_seed(tmp_path):
    report = verify(seeds=500, time_budget=0.0, out_dir=tmp_path, deep=False)
    assert report.seeds_run >= 1
    assert report.seeds_run < 500
    assert report.budget_exhausted
    assert report.ok
    assert "time budget" in report.summary()
