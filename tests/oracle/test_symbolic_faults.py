"""Deliberately broken symbolic kernels must be caught by the
``symbolic-*`` battery, shrunk, and written out as reproducers — the
end-to-end acceptance test for the trace-free engine's oracle."""

import json

from repro.analysis.symbolic import interp
from repro.analysis.symbolic.locality import SymbolicLRU
from repro.analysis.symbolic.runtrace import Run
from repro.oracle.runner import verify


def test_off_by_one_reuse_bin_is_caught(tmp_path, monkeypatch):
    # Shift the reuse-distance bin boundary by one: a reference whose
    # stack distance is exactly frames+1 no longer counts as a fault.
    real = SymbolicLRU.faults

    def off_by_one(self, frames):
        return real(self, frames + 1)

    monkeypatch.setattr(SymbolicLRU, "faults", off_by_one)
    report = verify(seeds=4, out_dir=tmp_path, deep=False)
    assert not report.ok
    failure = report.failures[0]
    assert failure.check.startswith("symbolic-")
    # the reproducer pair landed on disk and replays from the metadata
    src = tmp_path / f"seed{failure.seed:06d}-symbolic.f"
    meta = tmp_path / f"seed{failure.seed:06d}-symbolic.json"
    assert src.exists() and meta.exists()
    payload = json.loads(meta.read_text())
    assert payload["seed"] == failure.seed
    assert "verify --seeds 1 --start-seed" in payload["replay"]
    # shrinking can only remove text, never add it
    assert len(failure.shrunk_source) <= len(failure.source)
    assert src.read_text() == failure.shrunk_source


def test_dropped_boundary_iteration_is_caught(tmp_path, monkeypatch):
    # A detector that claims one extra trailing repeat per run drops the
    # true boundary iteration from the kept string; the element-wise
    # journal re-verification must reject it.
    real = interp.detect_runs

    def overclaim(pages, segments, boundaries=(), **kwargs):
        return [
            Run(r.start, r.block, r.repeats + 1)
            for r in real(pages, segments, boundaries, **kwargs)
        ]

    monkeypatch.setattr(interp, "detect_runs", overclaim)
    report = verify(seeds=6, out_dir=tmp_path, deep=False, shrink=False)
    assert not report.ok
    assert any(f.check.startswith("symbolic-") for f in report.failures)
    assert any(p.suffix == ".f" for p in tmp_path.iterdir())
