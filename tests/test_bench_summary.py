"""``bench_simulator.write_summary`` merges into BENCH_simulator.json;
sections owned by other writers (``stream`` from bench_stream.py, or
anything future) must survive a regeneration, because the nightly
workflow commits the merged file as the benchmark trajectory."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def bench(monkeypatch):
    monkeypatch.syspath_prepend(str(REPO_ROOT))
    import benchmarks.bench_simulator as mod

    # stub the timing loops: this test is about the merge semantics,
    # not the measurements (the timed callables are never invoked)
    monkeypatch.setattr(mod, "_time", lambda fn, repeat=3: 0.001)
    monkeypatch.setattr(mod, "_cli_wall", lambda args, env: 0.001)
    return mod


def test_write_summary_preserves_prior_sections(tmp_path, bench):
    path = tmp_path / "BENCH_simulator.json"
    prior = {
        "stream": {"backend": "numpy", "refs_per_sec": 123},
        "future_section": [1, 2, 3],
    }
    path.write_text(json.dumps(prior))
    summary = bench.write_summary(str(path))
    data = json.loads(path.read_text())
    assert data["stream"] == prior["stream"]
    assert data["future_section"] == prior["future_section"]
    # ...while this writer's own sections were regenerated
    for key in ("replay_conduct", "tracegen", "tables", "symbolic", "static"):
        assert key in data, key
    assert data == summary


def test_write_summary_tolerates_missing_or_garbage_file(tmp_path, bench):
    path = tmp_path / "BENCH_simulator.json"
    summary = bench.write_summary(str(path))  # no prior file
    assert "replay_conduct" in summary
    path.write_text("{definitely not json")
    summary = bench.write_summary(str(path))  # corrupt prior file
    assert "symbolic" in summary
    assert "static" in summary
    assert json.loads(path.read_text())  # rewritten clean
