"""The queue journal and the tenant quotas, in isolation."""

import pytest

from repro.service.queue import JobQueue
from repro.service.quota import QuotaError, TenantQuotas


class TestJournalRoundTrip:
    def test_submit_and_settle_survive_resume(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        a = queue.submit("alice", 5, ["1"], ("warm:x", "table:1"))
        b = queue.submit("bob", 0, ["verify:2:1"], ("oracle:0-1",))
        queue.set_state(a, "running")
        queue.set_state(a, "done")
        queue.record_charge("alice", "cachekey", 1234)
        queue.close()

        resumed, charges = JobQueue.resume(path)
        assert resumed.jobs["j0001"].state == "done"
        assert resumed.jobs["j0001"].tenant == "alice"
        assert resumed.jobs["j0001"].specs == ("warm:x", "table:1")
        assert resumed.jobs["j0002"].state == "queued"
        assert [j.id for j in resumed.pending()] == ["j0002"]
        assert charges == [
            {"kind": "charge", "tenant": "alice", "key": "cachekey", "bytes": 1234}
        ]
        # Ids keep counting after the highest journaled submission.
        c = resumed.submit("carol", 0, ["2"], ("table:2",))
        assert c.id == "j0003"
        assert b.id == "j0002"

    def test_running_jobs_resume_as_pending(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        job = queue.submit("t", 0, ["1"], ("table:1",))
        queue.set_state(job, "running")
        queue.close()
        resumed, _charges = JobQueue.resume(path)
        assert [j.id for j in resumed.pending()] == [job.id]

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        queue.submit("t", 0, ["1"], ("table:1",))
        queue.close()
        with path.open("a") as fh:
            fh.write('{"kind":"submit","job":"j0002","ten')  # crash mid-write
        resumed, _charges = JobQueue.resume(path)
        assert set(resumed.jobs) == {"j0001"}

    def test_failed_state_records_error(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        job = queue.submit("t", 0, ["1"], ("table:1",))
        queue.set_state(job, "failed", "table:1: boom")
        queue.close()
        resumed, _charges = JobQueue.resume(path)
        assert resumed.jobs[job.id].state == "failed"
        assert resumed.jobs[job.id].error == "table:1: boom"

    def test_spec_refs_ignores_settled_jobs(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        a = queue.submit("t", 0, ["1"], ("shared", "only-a"))
        b = queue.submit("t", 0, ["1"], ("shared",))
        assert {j.id for j in queue.spec_refs("shared")} == {a.id, b.id}
        queue.set_state(a, "done")
        assert [j.id for j in queue.spec_refs("shared")] == [b.id]
        assert queue.spec_refs("only-a") == []


class TestQuotas:
    def test_charge_once_per_key(self):
        quotas = TenantQuotas()
        assert quotas.charge("alice", "k1", 100)
        assert not quotas.charge("bob", "k1", 100)  # alice already paid
        assert quotas.used_by("alice") == 100
        assert quotas.used_by("bob") == 0

    def test_admission_denied_at_limit(self):
        quotas = TenantQuotas({"alice": 150})
        quotas.charge("alice", "k1", 100)
        quotas.check_admission("alice")  # 100 < 150: still fine
        quotas.charge("alice", "k2", 60)
        with pytest.raises(QuotaError, match="over quota"):
            quotas.check_admission("alice")
        quotas.check_admission("bob")  # no limit for bob

    def test_default_limit_applies_to_unlisted_tenants(self):
        quotas = TenantQuotas({"vip": 10_000}, default_limit=50)
        quotas.charge("pleb", "k1", 50)
        with pytest.raises(QuotaError):
            quotas.check_admission("pleb")
        quotas.charge("vip", "k2", 5000)
        quotas.check_admission("vip")

    def test_preexisting_entries_are_free(self):
        quotas = TenantQuotas({"alice": 100})
        quotas.mark_free("old-entry")
        assert not quotas.charge("alice", "old-entry", 999)
        assert quotas.used_by("alice") == 0

    def test_snapshot_lists_usage_and_limits(self):
        quotas = TenantQuotas({"alice": 100})
        quotas.charge("bob", "k", 7)
        snap = quotas.snapshot()
        assert snap["alice"] == {"used_bytes": 0, "limit_bytes": 100}
        assert snap["bob"] == {"used_bytes": 7, "limit_bytes": None}
