"""The serve daemon end to end: sockets, tenants, warm hits, drain.

The daemon runs in a background thread with a ``selftest`` expansion
injected, so every service behavior — submission, dedupe, priorities,
quotas, cancel refcounts, drain, resume — is exercised over the real
UNIX socket without paying for trace generation.  Target syntax used
by the injected expansion: ``self:VALUE[:SLEEP]`` and ``fail:VALUE``.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.engine import EngineConfig, JobSpec
from repro.service import ServeDaemon, ServiceClient, ServiceError, TenantQuotas


def expand_selftest(targets):
    specs = []
    for target in targets:
        parts = target.split(":")
        kind, value = parts[0], int(parts[1])
        params = {"value": value}
        if len(parts) > 2:
            params["sleep"] = float(parts[2])
        if kind == "fail":
            params["fail"] = True
        specs.append(
            JobSpec(id=f"{kind}:{value}", kind="selftest", params=params)
        )
    return specs


class DaemonHarness:
    """One in-thread daemon on a throwaway service directory."""

    def __init__(self, tmp_path, **daemon_kwargs):
        daemon_kwargs.setdefault(
            "config", EngineConfig(max_workers=2, max_retries=0, backoff_base=0.01)
        )
        daemon_kwargs.setdefault("expand", expand_selftest)
        self.dir = tmp_path / "service"
        self.daemon = ServeDaemon(self.dir, **daemon_kwargs)
        self.exit_code = None
        self.thread = None

    def start(self, resume=False):
        def run():
            self.exit_code = self.daemon.serve(resume=resume)

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10
        while not self.daemon._serving.is_set():
            assert time.monotonic() < deadline, "daemon never started"
            time.sleep(0.01)
        return self

    def client(self):
        return ServiceClient(self.dir)

    def stop(self):
        if self.thread and self.thread.is_alive():
            try:
                with self.client() as c:
                    c.shutdown()
            except ServiceError:
                pass
            self.thread.join(timeout=15)
        assert not (self.thread and self.thread.is_alive()), "daemon hung"


@pytest.fixture
def harness(tmp_path):
    h = DaemonHarness(tmp_path).start()
    yield h
    h.stop()


class TestRoundTrip:
    def test_submit_wait_results(self, harness):
        with harness.client() as c:
            assert c.ping()["pending"] == 0
            reply = c.submit(["self:3", "self:4"], tenant="alice", priority=5)
            assert reply["job"] == "j0001"
            assert reply["specs"] == ["self:3", "self:4"]
            assert c.wait("j0001") == "done"
            record = c.status("j0001")["job"]
            assert record["state"] == "done"
            assert record["tenant"] == "alice"
            assert record["priority"] == 5
            payloads = c.results("j0001")["payloads"]
            assert payloads["self:3"] == {"value": 3, "square": 9}
            assert payloads["self:4"] == {"value": 4, "square": 16}

    def test_failed_spec_fails_the_job(self, harness):
        with harness.client() as c:
            job = c.submit(["fail:1", "self:2"])["job"]
            assert c.wait(job) == "failed"
            record = c.status(job)["job"]
            assert "fail:1" in record["error"]
            with pytest.raises(ServiceError, match="failed"):
                c.results(job)

    def test_unknown_job_and_op_errors(self, harness):
        with harness.client() as c:
            with pytest.raises(ServiceError, match="unknown job"):
                c.status("j9999")
            with pytest.raises(ServiceError, match="unknown job"):
                c.results("nope")

    def test_watch_streams_lifecycle_then_done(self, harness):
        with harness.client() as c:
            job = c.submit(["self:6:0.3"])["job"]
            frames = list(c.watch(job))
        assert frames[-1] == {"done": True, "state": "done"}
        kinds = [f["event"]["kind"] for f in frames if "event" in f]
        assert "job_done" in kinds
        assert all(f["event"]["job"] == "self:6" for f in frames if "event" in f)


class TestSharedSpecs:
    def test_second_tenant_gets_warm_hit(self, harness):
        with harness.client() as c:
            first = c.submit(["self:9"], tenant="alice")["job"]
            assert c.wait(first) == "done"
            reply = c.submit(["self:9"], tenant="bob")
            assert reply["warm"] == ["self:9"]
            assert c.wait(reply["job"]) == "done"
            record = c.status(reply["job"])["job"]
            # attempts 0: replayed from the scheduler, no worker ran
            assert record["spec_states"]["self:9"]["attempts"] == 0
            # byte-identical payload, same underlying result object
            assert (
                c.results(reply["job"])["payloads"]["self:9"]
                == c.results(first)["payloads"]["self:9"]
            )

    def test_cancel_keeps_specs_other_jobs_need(self, harness):
        with harness.client() as c:
            a = c.submit(["self:7:0.5", "self:8:0.5"])["job"]
            b = c.submit(["self:7:0.5"])["job"]
            reply = c.cancel(a)
            assert reply["state"] == "cancelled"
            # self:7 is shared with b: only self:8 may be stopped
            assert "self:7" not in reply["cancelled"]
            assert c.wait(b) == "done"
            assert c.status(a)["job"]["state"] == "cancelled"

    def test_cancel_settled_job_is_a_noop(self, harness):
        with harness.client() as c:
            job = c.submit(["self:5"])["job"]
            assert c.wait(job) == "done"
            reply = c.cancel(job)
            assert reply["state"] == "done"
            assert reply["cancelled"] == []


class TestQuotas:
    def test_warm_spec_submission_survives_cache_lookup(self, tmp_path):
        """Regression: warm-kind specs hit the artifact-cache metering
        path at submit time; the lookup must not blow up the handler
        even when the cache is cold or disabled.  The engine is not
        started — admission alone is what broke."""

        def expand_warm(targets):
            return [
                JobSpec(
                    id=f"warm:{t.lower()}",
                    kind="warm",
                    params={"workload": t, "with_locks": False},
                )
                for t in targets
            ]

        daemon = ServeDaemon(tmp_path / "service", expand=expand_warm)
        daemon.start()
        try:
            reply = daemon.submit("alice", 0, ["FIELD"])
            assert reply["specs"] == ["warm:field"]
            assert len(daemon._intake) == 1
        finally:
            daemon.queue.close()

    def test_admission_denied_over_quota(self, tmp_path):
        quotas = TenantQuotas({"broke": 0})
        h = DaemonHarness(tmp_path, quotas=quotas).start()
        try:
            with h.client() as c:
                with pytest.raises(ServiceError, match="over quota"):
                    c.submit(["self:1"], tenant="broke")
                rich = c.submit(["self:1"], tenant="rich")["job"]
                assert c.wait(rich) == "done"
                tenants = c.status()["tenants"]
                assert tenants["broke"]["limit_bytes"] == 0
        finally:
            h.stop()


class TestDrainAndResume:
    def test_drain_keeps_queued_jobs_for_resume(self, tmp_path):
        h = DaemonHarness(
            tmp_path,
            config=EngineConfig(max_workers=1, max_retries=0, backoff_base=0.01),
        ).start()
        with h.client() as c:
            # One worker: the sleeper is in flight, the rest queue up.
            job = c.submit(["self:1:0.4", "self:2"])["job"]
            time.sleep(0.15)
            c.shutdown()
        h.thread.join(timeout=15)
        assert h.exit_code == 0  # clean shutdown op, not a signal

        journal = (h.dir / "queue.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in journal]
        assert any(r["kind"] == "submit" for r in records)
        # The job never settled: no terminal state in the journal.
        terminal = [
            r
            for r in records
            if r["kind"] == "job-state"
            and r["state"] in ("done", "failed", "cancelled")
        ]
        assert terminal == []

        # Restart the daemon on the same directory and resume.
        h2 = DaemonHarness(tmp_path).start(resume=True)
        try:
            with h2.client() as c:
                assert c.wait(job) == "done"
                record = c.status(job)["job"]
                # the spec that finished before the drain replays from
                # the engine ledger without re-running
                assert record["spec_states"]["self:1"]["attempts"] == 0
                payloads = c.results(job)["payloads"]
                assert payloads["self:2"] == {"value": 2, "square": 4}
        finally:
            h2.stop()

    def test_restart_without_resume_refuses(self, tmp_path):
        h = DaemonHarness(tmp_path).start()
        with h.client() as c:
            c.submit(["self:1"])
            c.shutdown()
        h.thread.join(timeout=15)
        h2 = DaemonHarness(tmp_path)
        with pytest.raises(RuntimeError, match="--resume"):
            h2.daemon.serve()

    def test_second_daemon_on_live_socket_refuses(self, tmp_path, harness):
        other = ServeDaemon(harness.dir, expand=expand_selftest)
        with pytest.raises(RuntimeError, match="already serving|--resume"):
            other.serve(resume=True)

    def test_submissions_refused_while_draining(self, harness):
        with harness.client() as c:
            c.submit(["self:1:1.0"])
            c.shutdown()
            with pytest.raises(ServiceError, match="draining"):
                c.submit(["self:2"])


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_143(self, tmp_path):
        """SIGTERM to a real daemon process: in-flight attempts drain,
        the queue journal survives, the process exits 128+15."""
        script = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, sys.argv[1])
            sys.path.insert(0, sys.argv[2])
            from repro.engine import EngineConfig
            from repro.service import ServeDaemon
            from tests.service.test_service import expand_selftest

            daemon = ServeDaemon(
                sys.argv[3],
                config=EngineConfig(max_workers=1, max_retries=0),
                expand=expand_selftest,
            )
            code = daemon.serve(announce=lambda m: print(m, flush=True))
            sys.exit(code)
            """
        )
        here = os.path.dirname(__file__)
        src = os.path.join(here, "..", "..", "src")
        root = os.path.join(here, "..", "..")
        service_dir = tmp_path / "service"
        proc = subprocess.Popen(
            [sys.executable, "-c", script, src, root, str(service_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            assert "serving on" in proc.stdout.readline()
            with ServiceClient(service_dir) as c:
                job = c.submit(["self:1:0.5", "self:2:0.5"])["job"]
                time.sleep(0.2)  # first spec in flight
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=20)
            assert proc.returncode == 143
            # the journal survived with the job still pending
            records = [
                json.loads(line)
                for line in (service_dir / "queue.jsonl").read_text().splitlines()
            ]
            assert any(
                r["kind"] == "submit" and r["job"] == job for r in records
            )
            assert not any(
                r["kind"] == "job-state" and r["state"] == "done"
                for r in records
            )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
