"""NDJSON framing over a socketpair: round trips and malformed frames."""

import socket

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    recv_message,
    send_message,
    socket_path,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    reader = b.makefile("rb")
    yield a, reader
    reader.close()
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        sock, reader = pair
        send_message(sock, {"op": "submit", "targets": ["1"], "priority": 3})
        message = recv_message(reader)
        assert message == {"op": "submit", "targets": ["1"], "priority": 3}

    def test_multiple_frames_in_order(self, pair):
        sock, reader = pair
        for i in range(5):
            send_message(sock, {"seq": i})
        assert [recv_message(reader)["seq"] for _ in range(5)] == list(range(5))

    def test_eof_returns_none(self, pair):
        sock, reader = pair
        sock.close()
        assert recv_message(reader) is None

    def test_bad_json_raises(self, pair):
        sock, reader = pair
        sock.sendall(b"this is not json\n")
        with pytest.raises(ProtocolError, match="bad frame"):
            recv_message(reader)

    def test_non_object_frame_raises(self, pair):
        sock, reader = pair
        sock.sendall(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError, match="not a JSON object"):
            recv_message(reader)

    def test_truncated_frame_raises(self, pair):
        sock, reader = pair
        sock.sendall(b'{"op": "ping"')  # no newline, then the peer dies
        sock.close()
        with pytest.raises(ProtocolError, match="truncated"):
            recv_message(reader)

    def test_unicode_survives(self, pair):
        sock, reader = pair
        send_message(sock, {"error": "tenant über quota — denied"})
        assert "über" in recv_message(reader)["error"]


class TestLayout:
    def test_socket_path_inside_service_dir(self, tmp_path):
        assert socket_path(tmp_path) == tmp_path / "serve.sock"

    def test_line_cap_is_generous(self):
        assert MAX_LINE_BYTES >= 1024 * 1024
