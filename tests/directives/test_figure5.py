"""Integration test: the full Figure-5 example of the paper.

Figure 5c shows the directives inserted into the Figure-5a code:

    ALLOCATE (3,x1)
    Loop 4;
        LOCK (3,A,B)
        ALLOCATE (3,x1) else (1,x2)
        Loop 2;
        ALLOCATE (3,x1) else (2,x3)
        Loop 3;
            LOCK (2,E,F)
            ALLOCATE (3,x1) else (2,x3) else (1,x4)
            Loop 1;
    UNLOCK (A,B,E,F)
"""

import pytest

from repro.analysis.locality import analyze_program
from repro.directives import instrument_program, render_instrumented
from repro.frontend.parser import parse_source

FIGURE5 = """
PROGRAM FIG5
PARAMETER (N = 10)
DIMENSION A(640), B(640), C(640), D(640), E(640), F(640)
DIMENSION CC(64, N), DD(64, N)
DO 40 I = 1, N
  A(I) = B(I) + 1.0
  DO 20 J = 1, N
    C(J) = D(J) + CC(I, J) + DD(J, I)
20 CONTINUE
  DO 30 J = 1, N
    E(J) = F(J)
    DO 10 K = 1, N
      E(K) = E(K) + F(J)
10  CONTINUE
30 CONTINUE
40 CONTINUE
END
"""


@pytest.fixture(scope="module")
def setup():
    program = parse_source(FIGURE5)
    analysis = analyze_program(program)
    plan = instrument_program(program, analysis=analysis)
    tree = analysis.tree
    loop4 = tree.roots[0]
    loop2, loop3 = loop4.children
    (loop1,) = loop3.children
    return program, analysis, plan, (loop4, loop2, loop3, loop1)


class TestAllocatePlacement:
    def test_every_loop_gets_an_allocate(self, setup):
        _, analysis, plan, _ = setup
        assert set(plan.allocates) == {n.loop_id for n in analysis.tree.nodes()}

    def test_outermost_directive_single_request(self, setup):
        # "ALLOCATE (3,x1)" before Loop 4.
        _, _, plan, (loop4, *_rest) = setup
        d = plan.allocates[loop4.loop_id]
        assert [r.priority_index for r in d.requests] == [3]

    def test_loop2_directive(self, setup):
        # "ALLOCATE (3,x1) else (1,x2)" before Loop 2.
        _, _, plan, (_l4, loop2, _l3, _l1) = setup
        d = plan.allocates[loop2.loop_id]
        assert [r.priority_index for r in d.requests] == [3, 1]

    def test_loop3_directive(self, setup):
        # "ALLOCATE (3,x1) else (2,x3)" before Loop 3.
        _, _, plan, (_l4, _l2, loop3, _l1) = setup
        d = plan.allocates[loop3.loop_id]
        assert [r.priority_index for r in d.requests] == [3, 2]

    def test_loop1_directive(self, setup):
        # "ALLOCATE (3,x1) else (2,x3) else (1,x4)" before Loop 1.
        _, _, plan, (_l4, _l2, _l3, loop1) = setup
        d = plan.allocates[loop1.loop_id]
        assert [r.priority_index for r in d.requests] == [3, 2, 1]

    def test_x1_shared_across_all_levels(self, setup):
        # "Note that the argument (3,x1) is the first argument in all
        # ALLOCATE directives at all levels."
        _, _, plan, loops = setup
        x1 = plan.allocates[loops[0].loop_id].requests[0].pages
        for node in loops:
            first = plan.allocates[node.loop_id].requests[0]
            assert (first.priority_index, first.pages) == (3, x1)

    def test_sizes_non_increasing(self, setup):
        _, _, plan, _ = setup
        for directive in plan.allocates.values():
            sizes = [r.pages for r in directive.requests]
            assert sizes == sorted(sizes, reverse=True)

    def test_x1_is_locality_size(self, setup):
        _, analysis, plan, (loop4, *_rest) = setup
        assert (
            plan.allocates[loop4.loop_id].requests[0].pages
            == analysis.report_for(loop4.loop_id).virtual_size
            == 53
        )


class TestLockPlacement:
    def test_lock_before_loop2(self, setup):
        # "LOCK (3,A,B)" before Loop 2: A and B are referenced in loop 4
        # before loop 2 begins.
        _, _, plan, (_l4, loop2, _l3, _l1) = setup
        lock = plan.locks_before[loop2.loop_id]
        assert lock.priority_index == 3
        assert lock.arrays == ("A", "B")

    def test_lock_before_loop1(self, setup):
        # "LOCK (2,E,F)" before Loop 1: E and F are referenced in loop 3
        # before loop 1 begins.
        _, _, plan, (_l4, _l2, _l3, loop1) = setup
        lock = plan.locks_before[loop1.loop_id]
        assert lock.priority_index == 2
        assert lock.arrays == ("E", "F")

    def test_no_lock_before_loop3(self, setup):
        # Nothing is referenced between loop 2's end and loop 3's start.
        _, _, plan, (_l4, _l2, loop3, _l1) = setup
        assert loop3.loop_id not in plan.locks_before

    def test_unlock_after_outermost(self, setup):
        # "UNLOCK (A,B,E,F)" after Loop 4.
        _, _, plan, (loop4, *_rest) = setup
        unlock = plan.unlocks_after[loop4.loop_id]
        assert unlock.arrays == ("A", "B", "E", "F")

    def test_without_locks_mode(self, setup):
        program, analysis, _, _ = setup
        plan = instrument_program(program, analysis=analysis, with_locks=False)
        assert not plan.locks_before
        assert not plan.unlocks_after
        assert plan.allocates


class TestRendering:
    def test_render_contains_all_directives(self, setup):
        program, _, plan, _ = setup
        text = render_instrumented(program, plan)
        assert "LOCK (3,A,B)" in text
        assert "LOCK (2,E,F)" in text
        assert "UNLOCK (A,B,E,F)" in text
        assert text.count("ALLOCATE") == 4

    def test_directive_order_matches_figure5c(self, setup):
        program, _, plan, _ = setup
        text = render_instrumented(program, plan)
        lock_ab = text.index("LOCK (3,A,B)")
        alloc_loop2 = text.index("else (1,")
        lock_ef = text.index("LOCK (2,E,F)")
        unlock = text.index("UNLOCK")
        assert lock_ab < alloc_loop2 < lock_ef < unlock

    def test_render_is_reparseable_without_directives(self, setup):
        # The plain unparser output round-trips through the parser.
        from repro.frontend.unparse import unparse_program

        program, _, _, _ = setup
        text = unparse_program(program)
        reparsed = parse_source(text)
        assert len(list(reparsed.loops())) == 4
