"""Instrumented sources round-trip through the parser.

``render_instrumented`` splices the plan's directives into the AST and
unparses it with the ordinary unparser, so the output is itself a valid
program: ``parse_instrumented`` recovers the same program and the same
plan, and re-rendering is a fixed point.
"""

import pytest

from repro.directives import (
    check_instrumented_roundtrip,
    extract_plan,
    instrument_program,
    parse_instrumented,
    render_instrumented,
    splice_plan,
)
from repro.frontend import ast
from repro.frontend.errors import SemanticError
from repro.frontend.parser import parse_source

FANCY = (
    "PROGRAM RT\n"
    "DIMENSION A(8), B(8)\n"
    "DATA A /8*0.0/\n"
    "DO 10 I = 1, 8\n"
    "A(I) = B(I)\n"
    "10 CONTINUE\n"
    "END\n"
)


def _instrumented(source):
    program = parse_source(source)
    return program, instrument_program(program)


class TestRoundTrip:
    def test_fixed_point_and_plan_equality(self):
        program, plan = _instrumented(FANCY)
        rendered = render_instrumented(program, plan)
        reparsed, recovered = parse_instrumented(rendered)
        assert recovered == plan
        assert render_instrumented(reparsed, recovered) == rendered

    def test_labels_and_data_groups_survive(self):
        # the old directive renderer dropped both; the spliced unparse
        # must keep them
        program, plan = _instrumented(FANCY)
        rendered = render_instrumented(program, plan)
        assert "DATA A /" in rendered
        assert "10 CONTINUE" in rendered

    def test_checker_reports_nothing_on_bundled_workloads(self):
        from repro.workloads import all_workloads

        for workload in all_workloads():
            program = workload.program()
            plan = instrument_program(program)
            assert check_instrumented_roundtrip(program, plan) == []

    def test_splice_does_not_mutate_the_input(self):
        program, plan = _instrumented(FANCY)
        before = len(program.body)
        spliced = splice_plan(program, plan)
        assert len(program.body) == before
        assert len(spliced.body) > before

    def test_extract_leaves_no_directive_statements(self):
        program, plan = _instrumented(FANCY)
        spliced = splice_plan(program, plan)
        recovered = extract_plan(spliced)
        assert recovered == plan
        kinds = (ast.AllocateStmt, ast.LockStmt, ast.UnlockStmt)
        assert not [
            s for s in spliced.walk_statements() if isinstance(s, kinds)
        ]


class TestRejections:
    def test_plain_parser_refuses_directives(self):
        with pytest.raises(SemanticError, match="parse_instrumented"):
            parse_source(
                "DIMENSION A(8)\n"
                "ALLOCATE ((1,1))\n"
                "DO I = 1, 8\n"
                "A(I) = 0.0\n"
                "ENDDO\n"
                "END\n"
            )

    def test_dangling_allocate(self):
        with pytest.raises(SemanticError, match="immediately precede"):
            parse_instrumented(
                "DIMENSION A(8)\nALLOCATE ((1,1))\nX = 1.0\nEND\n"
            )

    def test_two_allocates_before_one_loop(self):
        with pytest.raises(SemanticError, match="two ALLOCATE"):
            parse_instrumented(
                "DIMENSION A(8)\n"
                "ALLOCATE ((1,1))\n"
                "ALLOCATE ((1,2))\n"
                "DO I = 1, 8\n"
                "A(I) = 0.0\n"
                "ENDDO\n"
                "END\n"
            )

    def test_lock_must_come_first(self):
        with pytest.raises(SemanticError, match="LOCK must be the first"):
            parse_instrumented(
                "DIMENSION A(8)\n"
                "DO I = 1, 8\n"
                "ALLOCATE ((1,1))\n"
                "LOCK (2,A)\n"
                "DO J = 1, 8\n"
                "A(J) = 0.0\n"
                "ENDDO\n"
                "ENDDO\n"
                "END\n"
            )

    def test_dangling_unlock(self):
        with pytest.raises(SemanticError, match="UNLOCK does not"):
            parse_instrumented("DIMENSION A(8)\nUNLOCK (A)\nEND\n")

    def test_malformed_directive_payload(self):
        # LOCK with PJ=1 violates the model's PJ >= 2 invariant
        with pytest.raises(SemanticError, match="malformed directive"):
            parse_instrumented(
                "DIMENSION A(8)\n"
                "DO I = 1, 8\n"
                "LOCK (1,A)\n"
                "DO J = 1, 8\n"
                "A(J) = 0.0\n"
                "ENDDO\n"
                "ENDDO\n"
                "UNLOCK (A)\n"
                "END\n"
            )
