"""Unit tests for the directive data model and its invariants."""

import pytest

from repro.directives.model import (
    AllocateDirective,
    AllocateRequest,
    InstrumentationPlan,
    LockDirective,
    UnlockDirective,
)


class TestAllocateRequest:
    def test_valid(self):
        r = AllocateRequest(priority_index=3, pages=10)
        assert r.priority_index == 3

    def test_pi_must_be_positive(self):
        with pytest.raises(ValueError):
            AllocateRequest(priority_index=0, pages=1)

    def test_pages_must_be_positive(self):
        with pytest.raises(ValueError):
            AllocateRequest(priority_index=1, pages=0)


class TestAllocateDirective:
    def make(self, *pairs):
        return AllocateDirective(
            loop_id=0,
            requests=tuple(AllocateRequest(pi, x) for pi, x in pairs),
        )

    def test_valid_chain(self):
        d = self.make((3, 10), (2, 5), (1, 2))
        assert d.innermost.pages == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AllocateDirective(loop_id=0, requests=())

    def test_pi_must_strictly_decrease(self):
        # "PI1 > PI2 > PI3 > …"
        with pytest.raises(ValueError):
            self.make((3, 10), (3, 5))

    def test_sizes_must_be_non_increasing(self):
        # "X1 >= X2 >= X3 …"
        with pytest.raises(ValueError):
            self.make((3, 5), (2, 10))

    def test_equal_sizes_allowed(self):
        d = self.make((2, 5), (1, 5))
        assert len(d.requests) == 2

    def test_render_matches_paper_syntax(self):
        d = self.make((3, 10), (1, 2))
        assert d.render() == "ALLOCATE ((3,10) else (1,2))"


class TestLockDirective:
    def test_valid(self):
        d = LockDirective(loop_id=1, priority_index=3, arrays=("A", "B"))
        assert d.render() == "LOCK (3,A,B)"

    def test_pj_one_rejected(self):
        # "the highest priority of locked pages is PJ = 2"
        with pytest.raises(ValueError):
            LockDirective(loop_id=1, priority_index=1, arrays=("A",))

    def test_needs_arrays(self):
        with pytest.raises(ValueError):
            LockDirective(loop_id=1, priority_index=2, arrays=())


class TestUnlockDirective:
    def test_render(self):
        d = UnlockDirective(loop_id=0, arrays=("A", "B", "E", "F"))
        assert d.render() == "UNLOCK (A,B,E,F)"


class TestInstrumentationPlan:
    def test_directive_count(self):
        plan = InstrumentationPlan()
        plan.allocates[0] = AllocateDirective(
            loop_id=0, requests=(AllocateRequest(1, 1),)
        )
        plan.locks_before[1] = LockDirective(
            loop_id=1, priority_index=2, arrays=("A",)
        )
        plan.unlocks_after[0] = UnlockDirective(loop_id=0, arrays=("A",))
        assert plan.directive_count == 3
