"""Unit tests for Algorithms 1 and 2 on targeted shapes."""

from repro.analysis.locality import analyze_program
from repro.directives.allocate_insertion import insert_allocate_directives
from repro.directives.lock_insertion import insert_lock_directives
from repro.frontend.parser import parse_source


def analyzed(src, **kwargs):
    return analyze_program(parse_source(src), **kwargs)


class TestAlgorithm1:
    def test_single_loop(self):
        analysis = analyzed("DIMENSION V(64)\nDO I = 1, 8\nX = V(I)\nENDDO\nEND\n")
        directives = insert_allocate_directives(analysis)
        (d,) = directives.values()
        assert len(d.requests) == 1
        assert d.requests[0].priority_index == 1

    def test_stack_pops_between_sibling_nests(self):
        # After exiting the first nest, its arguments must not appear in
        # the second nest's directives ("we avoid backtracking").
        src = (
            "DIMENSION V(640), W(640)\n"
            "DO I = 1, 8\nDO J = 1, 8\nX = V(J)\nENDDO\nENDDO\n"
            "DO K = 1, 8\nY = W(K)\nENDDO\n"
            "END\n"
        )
        analysis = analyzed(src)
        directives = insert_allocate_directives(analysis)
        second_root = analysis.tree.roots[1]
        d = directives[second_root.loop_id]
        assert len(d.requests) == 1

    def test_sibling_loops_inside_same_parent(self):
        src = (
            "DIMENSION V(640)\n"
            "DO I = 1, 8\n"
            "DO J = 1, 8\nX = V(J)\nENDDO\n"
            "DO K = 1, 8\nX = V(K)\nENDDO\n"
            "ENDDO\nEND\n"
        )
        analysis = analyzed(src)
        directives = insert_allocate_directives(analysis)
        root = analysis.tree.roots[0]
        for child in root.children:
            d = directives[child.loop_id]
            assert len(d.requests) == 2
            assert d.requests[0].priority_index == 2

    def test_inner_larger_than_outer_is_raised(self):
        # CONSERVATIVE sizing can make an inner column-walk locality
        # larger than the outer estimate; the outer request must be
        # raised to cover it (X1 >= X2 invariant).
        from repro.analysis.locality import SizingStrategy

        src = (
            "DIMENSION G(6400, 2)\n"
            "DO I = 1, 2\n"
            "DO K = 1, 6400\nG(K, I) = 0.0\nENDDO\n"
            "ENDDO\nEND\n"
        )
        analysis = analyzed(src, strategy=SizingStrategy.CONSERVATIVE)
        directives = insert_allocate_directives(analysis)
        inner = analysis.tree.roots[0].children[0]
        d = directives[inner.loop_id]
        assert d.requests[0].pages >= d.requests[1].pages

    def test_depth_of_request_list_equals_nest_level(self):
        src = (
            "DIMENSION V(64)\n"
            "DO A1 = 1, 2\nDO B1 = 1, 2\nDO C1 = 1, 2\nDO D1 = 1, 2\n"
            "X = V(D1)\n"
            "ENDDO\nENDDO\nENDDO\nENDDO\nEND\n"
        )
        analysis = analyzed(src)
        directives = insert_allocate_directives(analysis)
        for node in analysis.tree.nodes():
            assert len(directives[node.loop_id].requests) == node.level


class TestAlgorithm2:
    def test_no_locks_in_single_loop(self):
        analysis = analyzed("DIMENSION V(64)\nDO I = 1, 8\nX = V(I)\nENDDO\nEND\n")
        locks, unlocks = insert_lock_directives(analysis)
        assert locks == {} and unlocks == {}

    def test_no_locks_when_nothing_referenced_before_inner(self):
        src = (
            "DIMENSION V(64)\n"
            "DO I = 1, 8\nDO J = 1, 8\nX = V(J)\nENDDO\nENDDO\nEND\n"
        )
        locks, unlocks = insert_lock_directives(analyzed(src))
        assert locks == {} and unlocks == {}

    def test_refs_after_last_inner_loop_not_locked(self):
        # "IF Loop Exit Is Found THEN SKIP Next INSERT"
        src = (
            "DIMENSION V(64), W(64)\n"
            "DO I = 1, 8\n"
            "DO J = 1, 8\nX = V(J)\nENDDO\n"
            "Y = W(I)\n"
            "ENDDO\nEND\n"
        )
        locks, unlocks = insert_lock_directives(analyzed(src))
        assert locks == {} and unlocks == {}

    def test_lock_collects_refs_since_loop_start(self):
        src = (
            "DIMENSION U(64), V(64), W(64)\n"
            "DO I = 1, 8\n"
            "X = U(I) + V(I)\n"
            "DO J = 1, 8\nY = W(J)\nENDDO\n"
            "ENDDO\nEND\n"
        )
        analysis = analyzed(src)
        locks, unlocks = insert_lock_directives(analysis)
        inner = analysis.tree.roots[0].children[0]
        assert locks[inner.loop_id].arrays == ("U", "V")
        root = analysis.tree.roots[0]
        assert unlocks[root.loop_id].arrays == ("U", "V")

    def test_refs_between_inner_loops(self):
        src = (
            "DIMENSION U(64), V(64), W(64)\n"
            "DO I = 1, 8\n"
            "DO J = 1, 8\nY = W(J)\nENDDO\n"
            "X = U(I)\n"
            "DO K = 1, 8\nY = V(K)\nENDDO\n"
            "ENDDO\nEND\n"
        )
        analysis = analyzed(src)
        locks, _ = insert_lock_directives(analysis)
        second = analysis.tree.roots[0].children[1]
        assert locks[second.loop_id].arrays == ("U",)

    def test_pj_is_containing_loop_priority(self):
        src = (
            "DIMENSION U(64), V(64)\n"
            "DO I = 1, 8\n"  # PI = 3
            "X = U(I)\n"
            "DO J = 1, 8\n"  # PI = 2
            "Y = U(J)\n"
            "DO K = 1, 8\nZ = V(K)\nENDDO\n"  # PI = 1
            "ENDDO\nENDDO\nEND\n"
        )
        analysis = analyzed(src)
        locks, _ = insert_lock_directives(analysis)
        mid = analysis.tree.roots[0].children[0]
        innermost = mid.children[0]
        assert locks[mid.loop_id].priority_index == 3
        assert locks[innermost.loop_id].priority_index == 2

    def test_duplicate_arrays_deduplicated(self):
        src = (
            "DIMENSION U(64)\n"
            "DO I = 1, 8\n"
            "X = U(I) + U(I+1)\n"
            "DO J = 1, 8\nY = U(J)\nENDDO\n"
            "ENDDO\nEND\n"
        )
        analysis = analyzed(src)
        locks, _ = insert_lock_directives(analysis)
        inner = analysis.tree.roots[0].children[0]
        assert locks[inner.loop_id].arrays == ("U",)

    def test_refs_inside_if_are_collected(self):
        src = (
            "DIMENSION U(64), W(64)\n"
            "DO I = 1, 8\n"
            "IF (I > 2) THEN\nX = U(I)\nENDIF\n"
            "DO J = 1, 8\nY = W(J)\nENDDO\n"
            "ENDDO\nEND\n"
        )
        analysis = analyzed(src)
        locks, _ = insert_lock_directives(analysis)
        inner = analysis.tree.roots[0].children[0]
        assert locks[inner.loop_id].arrays == ("U",)

    def test_unlock_lists_every_locked_array_once(self):
        src = (
            "DIMENSION U(64), V(64), W(64)\n"
            "DO I = 1, 8\n"
            "A1 = U(I)\n"
            "DO J = 1, 8\n"
            "A2 = U(J) + V(J)\n"
            "DO K = 1, 8\nA3 = W(K)\nENDDO\n"
            "ENDDO\nENDDO\nEND\n"
        )
        analysis = analyzed(src)
        _, unlocks = insert_lock_directives(analysis)
        root = analysis.tree.roots[0]
        assert unlocks[root.loop_id].arrays == ("U", "V")
