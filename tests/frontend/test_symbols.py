"""Unit tests for symbol resolution (array shapes, parameters, layout)."""

import pytest

from repro.frontend.errors import SemanticError
from repro.frontend.parser import parse_source
from repro.frontend.symbols import ArrayInfo, SymbolTable


def table(src):
    return SymbolTable.from_program(parse_source(src))


class TestParameters:
    def test_simple_parameter(self):
        st = table("PARAMETER (N = 10)\nEND\n")
        assert st.params["N"] == 10

    def test_parameter_arithmetic(self):
        st = table("PARAMETER (N = 10, M = N * 2 + 1)\nEND\n")
        assert st.params["M"] == 21

    def test_parameter_integer_division(self):
        st = table("PARAMETER (N = 7 / 2)\nEND\n")
        assert st.params["N"] == 3

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(SemanticError):
            table("PARAMETER (N = 1, N = 2)\nEND\n")

    def test_non_constant_parameter_rejected(self):
        with pytest.raises(SemanticError):
            table("PARAMETER (N = X + 1)\nEND\n")


class TestArrayShapes:
    def test_vector_shape(self):
        st = table("DIMENSION V(100)\nEND\n")
        info = st.arrays["V"]
        assert info.dims == (100,)
        assert info.rows == 100
        assert info.columns == 1
        assert info.element_count == 100

    def test_matrix_shape(self):
        st = table("DIMENSION A(10, 20)\nEND\n")
        info = st.arrays["A"]
        assert info.dims == (10, 20)
        assert info.element_count == 200

    def test_parameterized_bounds(self):
        st = table("PARAMETER (N = 8)\nDIMENSION A(N, N + 2)\nEND\n")
        assert st.arrays["A"].dims == (8, 10)

    def test_non_positive_bound_rejected(self):
        with pytest.raises(SemanticError):
            table("DIMENSION A(0)\nEND\n")

    def test_real_bound_rejected(self):
        with pytest.raises(SemanticError):
            table("DIMENSION A(2.5)\nEND\n")

    def test_total_virtual_elements(self):
        st = table("DIMENSION A(10, 10), V(50)\nEND\n")
        assert st.total_virtual_elements == 150

    def test_array_order_is_declaration_order(self):
        st = table("DIMENSION B(2), A(3), C(4)\nEND\n")
        assert st.array_order() == ["B", "A", "C"]


class TestLinearIndex:
    def test_vector_indexing_is_zero_based(self):
        info = ArrayInfo(name="V", dims=(10,))
        assert info.linear_index((1,)) == 0
        assert info.linear_index((10,)) == 9

    def test_matrix_column_major(self):
        # Column-major: (i, j) -> (j-1)*M + (i-1).  The paper's arrays are
        # "stored in a column major order scheme".
        info = ArrayInfo(name="A", dims=(3, 4))
        assert info.linear_index((1, 1)) == 0
        assert info.linear_index((3, 1)) == 2
        assert info.linear_index((1, 2)) == 3
        assert info.linear_index((3, 4)) == 11

    def test_consecutive_column_elements_adjacent(self):
        info = ArrayInfo(name="A", dims=(5, 5))
        a = info.linear_index((2, 3))
        b = info.linear_index((3, 3))
        assert b == a + 1

    def test_consecutive_row_elements_stride_m(self):
        info = ArrayInfo(name="A", dims=(5, 5))
        a = info.linear_index((2, 3))
        b = info.linear_index((2, 4))
        assert b == a + 5

    def test_out_of_bounds_row(self):
        info = ArrayInfo(name="A", dims=(3, 3))
        with pytest.raises(SemanticError):
            info.linear_index((4, 1))

    def test_out_of_bounds_column(self):
        info = ArrayInfo(name="A", dims=(3, 3))
        with pytest.raises(SemanticError):
            info.linear_index((1, 4))

    def test_zero_index_rejected(self):
        info = ArrayInfo(name="V", dims=(3,))
        with pytest.raises(SemanticError):
            info.linear_index((0,))

    def test_rank_mismatch_rejected(self):
        info = ArrayInfo(name="A", dims=(3, 3))
        with pytest.raises(SemanticError):
            info.linear_index((1,))


class TestReferenceValidation:
    def test_rank_mismatch_in_program_rejected(self):
        with pytest.raises(SemanticError):
            table("DIMENSION A(3, 3)\nX = A(1)\nEND\n")

    def test_valid_program_accepted(self):
        st = table("DIMENSION A(3, 3)\nX = A(1, 2)\nEND\n")
        assert "A" in st.arrays
