"""Unit tests for the mini-FORTRAN lexer."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import Lexer, TokenKind, tokenize_line


def kinds(tokens):
    return [t.kind for t in tokens]


def texts(tokens):
    return [t.text for t in tokens]


class TestTokenizeLine:
    def test_simple_assignment(self):
        label, toks = tokenize_line("X = Y + 1", 1)
        assert label is None
        assert texts(toks) == ["X", "=", "Y", "+", "1"]

    def test_statement_label(self):
        label, toks = tokenize_line("10 CONTINUE", 3)
        assert label == 10
        assert texts(toks) == ["CONTINUE"]

    def test_label_zero_padded(self):
        label, toks = tokenize_line("  020 CONTINUE", 1)
        assert label == 20

    def test_comment_line_c(self):
        assert tokenize_line("C anything goes here", 1) == (None, [])

    def test_comment_line_star(self):
        assert tokenize_line("* star comment", 1) == (None, [])

    def test_call_is_not_a_comment(self):
        # The fixed-form 'C in column 1' rule must not swallow keywords.
        _, toks = tokenize_line("CALL SAXPY(2.0, X, Y)", 1)
        assert texts(toks)[0] == "CALL"

    def test_continue_is_not_a_comment(self):
        _, toks = tokenize_line("CONTINUE", 1)
        assert texts(toks) == ["CONTINUE"]

    def test_bare_c_line_is_comment(self):
        assert tokenize_line("C", 1) == (None, [])

    def test_c_followed_by_space_is_comment(self):
        assert tokenize_line("C = looks like assignment but is comment", 1) == (
            None,
            [],
        )

    def test_indented_c_assignment_is_statement(self):
        _, toks = tokenize_line("  C = 1.0", 1)
        assert texts(toks) == ["C", "=", "1.0"]

    def test_trailing_bang_comment(self):
        _, toks = tokenize_line("X = 1 ! trailing", 1)
        assert texts(toks) == ["X", "=", "1"]

    def test_case_insensitive_names(self):
        _, toks = tokenize_line("foo = Bar", 1)
        assert texts(toks) == ["FOO", "=", "BAR"]

    def test_integer_literal(self):
        _, toks = tokenize_line("I = 42", 1)
        assert toks[2].kind is TokenKind.INT
        assert toks[2].text == "42"

    def test_real_literals(self):
        _, toks = tokenize_line("X = 1.5 + .25 + 2E3 + 1.0D-2", 1)
        reals = [t for t in toks if t.kind is TokenKind.REAL]
        assert texts(reals) == ["1.5", ".25", "2E3", "1.0E-2"]

    def test_dotted_operators_normalized(self):
        _, toks = tokenize_line("IF (I .LT. J .AND. K .GE. 2)", 1)
        ops = [t.text for t in toks if t.kind is TokenKind.OP]
        assert "<" in ops and ".AND." in ops and ">=" in ops

    def test_modern_relational_operators(self):
        _, toks = tokenize_line("IF (I <= J)", 1)
        assert "<=" in texts(toks)

    def test_power_operator(self):
        _, toks = tokenize_line("X = Y ** 2", 1)
        assert "**" in texts(toks)

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize_line("X = Y @ Z", 7)

    def test_unknown_dotted_word_raises(self):
        with pytest.raises(LexError):
            tokenize_line("X = .FOO. 1", 1)

    def test_columns_are_one_based(self):
        _, toks = tokenize_line("X = 1", 1)
        assert toks[0].column == 1

    def test_real_not_mistaken_for_label(self):
        # A line can't start a statement with a number unless it's a label;
        # make sure "10.5" style text is not chopped into a label.
        label, toks = tokenize_line("X = 10.5", 1)
        assert label is None
        assert toks[2].kind is TokenKind.REAL


class TestLexer:
    def test_newline_tokens_separate_statements(self):
        lx = Lexer("X = 1\nY = 2\n")
        assert kinds(lx.tokens).count(TokenKind.NEWLINE) == 2
        assert lx.tokens[-1].kind is TokenKind.EOF

    def test_labels_map_to_first_token_index(self):
        lx = Lexer("X = 1\n10 CONTINUE\n")
        # label 10 attaches to the CONTINUE token (index 4: X = 1 NL -> 4)
        (idx, label), = lx.labels.items()
        assert label == 10
        assert lx.tokens[idx].text == "CONTINUE"

    def test_continuation_lines_joined(self):
        lx = Lexer("X = 1 + &\n    2\n")
        stmt = [t.text for t in lx.tokens if t.kind is not TokenKind.NEWLINE][:-1]
        assert stmt == ["X", "=", "1", "+", "2"]

    def test_blank_lines_skipped(self):
        lx = Lexer("\n\nX = 1\n\n")
        assert kinds(lx.tokens).count(TokenKind.NEWLINE) == 1

    def test_bare_label_line_is_labeled_continue(self):
        lx = Lexer("DO 10 I = 1, 2\nX = 1\n10\n")
        names = [t.text for t in lx.tokens if t.kind is TokenKind.NAME]
        assert names.count("CONTINUE") == 1

    def test_line_numbers_preserved(self):
        lx = Lexer("X = 1\nY = 2\n")
        y_tok = [t for t in lx.tokens if t.text == "Y"][0]
        assert y_tok.line == 2

    def test_empty_source(self):
        lx = Lexer("")
        assert kinds(lx.tokens) == [TokenKind.EOF]
