"""Tests for the PRINT/WRITE statements and DATA declarations."""

import pytest

from repro.frontend import ast
from repro.frontend.errors import ParseError, SemanticError
from repro.frontend.parser import parse_source
from repro.frontend.symbols import SymbolTable
from repro.frontend.unparse import unparse_program
from repro.tracegen.interpreter import Interpreter, generate_trace


class TestPrintParsing:
    def test_print_star_with_items(self):
        p = parse_source("PRINT *, X, Y + 1\nEND\n")
        stmt = p.body[0]
        assert isinstance(stmt, ast.Print)
        assert len(stmt.items) == 2

    def test_print_star_bare(self):
        p = parse_source("PRINT *\nEND\n")
        assert parse_source("PRINT *\nEND\n").body[0].items == []
        assert isinstance(p.body[0], ast.Print)

    def test_write_star_star(self):
        p = parse_source("WRITE(*, *) X, Y\nEND\n")
        stmt = p.body[0]
        assert isinstance(stmt, ast.Print)
        assert len(stmt.items) == 2

    def test_write_no_items(self):
        p = parse_source("WRITE(*, *)\nEND\n")
        assert p.body[0].items == []

    def test_print_array_item_resolved(self):
        p = parse_source("DIMENSION V(8)\nPRINT *, V(3)\nEND\n")
        assert isinstance(p.body[0].items[0], ast.ArrayRef)

    def test_print_items_emit_references(self):
        trace = generate_trace(
            parse_source("DIMENSION V(8)\nPRINT *, V(3), V(4)\nEND\n")
        )
        assert trace.length == 2

    def test_print_inside_loop(self):
        src = (
            "DIMENSION V(8)\n"
            "DO I = 1, 4\nPRINT *, V(I)\nENDDO\nEND\n"
        )
        trace = generate_trace(parse_source(src))
        assert trace.length == 4

    def test_unparse_print(self):
        p = parse_source("DIMENSION V(8)\nPRINT *, V(1), 2.5\nEND\n")
        text = unparse_program(p)
        assert "PRINT *, V(1), 2.5" in text
        reparsed = parse_source(text)
        assert isinstance(reparsed.body[0], ast.Print)

    def test_print_refs_seen_by_analysis(self):
        from repro.analysis.looptree import LoopTree

        src = "DIMENSION V(8)\nDO I = 1, 4\nPRINT *, V(I)\nENDDO\nEND\n"
        tree = LoopTree(parse_source(src))
        assert [r.name for r in tree.roots[0].direct_refs] == ["V"]


class TestDataParsing:
    def test_whole_array_fill(self):
        p = parse_source("DIMENSION V(4)\nDATA V /1.0, 2.0, 3.0, 4.0/\nEND\n")
        assert len(p.data) == 1
        assert p.data[0].values == [1.0, 2.0, 3.0, 4.0]

    def test_repeat_factor(self):
        p = parse_source("DIMENSION V(6)\nDATA V /6*0.5/\nEND\n")
        assert p.data[0].values == [0.5] * 6

    def test_mixed_repeat_and_plain(self):
        p = parse_source("DIMENSION V(4)\nDATA V /2*1.0, 3.5, -2/\nEND\n")
        assert p.data[0].values == [1.0, 1.0, 3.5, -2]

    def test_element_target(self):
        p = parse_source("DIMENSION A(3, 3)\nDATA A(2, 2) /9.0/\nEND\n")
        target = p.data[0].target
        assert isinstance(target, ast.ArrayRef)
        assert target.name == "A"

    def test_multiple_groups(self):
        p = parse_source(
            "DIMENSION V(2), W(2)\nDATA V /2*1.0/, W /0.5, 0.25/\nEND\n"
        )
        assert len(p.data) == 2

    def test_negative_repeat_rejected(self):
        with pytest.raises(ParseError):
            parse_source("DIMENSION V(2)\nDATA V /0*1.0, 1.0, 1.0/\nEND\n")

    def test_non_constant_rejected(self):
        with pytest.raises(ParseError):
            parse_source("DIMENSION V(1)\nDATA V /X/\nEND\n")


class TestDataSemantics:
    def test_count_mismatch_rejected(self):
        with pytest.raises(SemanticError, match="values"):
            SymbolTable.from_program(
                parse_source("DIMENSION V(4)\nDATA V /1.0, 2.0/\nEND\n")
            )

    def test_undeclared_array_rejected(self):
        with pytest.raises(SemanticError, match="undeclared"):
            SymbolTable.from_program(parse_source("DATA Q /1.0/\nEND\n"))

    def test_element_out_of_bounds_rejected(self):
        with pytest.raises(SemanticError):
            SymbolTable.from_program(
                parse_source("DIMENSION V(2)\nDATA V(5) /1.0/\nEND\n")
            )

    def test_element_needs_single_value(self):
        with pytest.raises(SemanticError, match="one value"):
            SymbolTable.from_program(
                parse_source("DIMENSION V(4)\nDATA V(1) /1.0, 2.0/\nEND\n")
            )

    def test_initialization_applied(self):
        src = (
            "DIMENSION V(3)\n"
            "DATA V /1.0, 2.0, 3.0/\n"
            "X = V(1) + V(2) + V(3)\n"
            "END\n"
        )
        program = parse_source(src)
        it = Interpreter(program)
        it.run()
        assert it.scalars["X"] == 6.0

    def test_element_initialization_applied(self):
        src = (
            "DIMENSION A(2, 2)\n"
            "DATA A(2, 1) /7.5/\n"
            "X = A(2, 1)\n"
            "END\n"
        )
        it = Interpreter(parse_source(src))
        it.run()
        assert it.scalars["X"] == 7.5

    def test_data_emits_no_references(self):
        src = "DIMENSION V(4)\nDATA V /4*1.0/\nX = 2\nEND\n"
        trace = generate_trace(parse_source(src))
        assert trace.length == 0

    def test_column_major_whole_fill_order(self):
        # Values fill in storage (column-major) order.
        src = (
            "DIMENSION A(2, 2)\n"
            "DATA A /1.0, 2.0, 3.0, 4.0/\n"
            "X = A(2, 1)\n"
            "Y = A(1, 2)\n"
            "END\n"
        )
        it = Interpreter(parse_source(src))
        it.run()
        assert it.scalars["X"] == 2.0
        assert it.scalars["Y"] == 3.0

    def test_unparse_data_roundtrip(self):
        src = "DIMENSION V(3)\nDATA V /1.0, 2.0, 3.0/\nX = V(1)\nEND\n"
        text = unparse_program(parse_source(src))
        assert "DATA V /1.0, 2.0, 3.0/" in text
        reparsed = parse_source(text)
        assert reparsed.data[0].values == [1.0, 2.0, 3.0]
