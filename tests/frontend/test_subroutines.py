"""Tests for SUBROUTINE/CALL inline expansion."""

import pytest

from repro.frontend import ast
from repro.frontend.errors import ParseError
from repro.frontend.inline import InlineError
from repro.frontend.parser import Parser, parse_source
from repro.tracegen.interpreter import Interpreter, generate_trace

SAXPY_STYLE = """
PROGRAM DRIVER
DIMENSION X(64), Y(64)
DO 10 I = 1, 64
  X(I) = FLOAT(I)
  Y(I) = 1.0
10 CONTINUE
CALL SAXPY(2.0, X, Y)
TOTAL = Y(1) + Y(64)
END

SUBROUTINE SAXPY(A, U, V)
DIMENSION U(64), V(64)
DO 20 I = 1, 64
  V(I) = V(I) + A * U(I)
20 CONTINUE
RETURN
END
"""


class TestParsing:
    def test_units_parsed(self):
        program, subs = Parser(SAXPY_STYLE).parse_units()
        assert program.name == "DRIVER"
        assert set(subs) == {"SAXPY"}
        assert subs["SAXPY"].formals == ["A", "U", "V"]

    def test_formal_arrays_recognized(self):
        _, subs = Parser(SAXPY_STYLE).parse_units()
        assert subs["SAXPY"].formal_array_names() == ["U", "V"]

    def test_call_statement(self):
        program, _ = Parser(SAXPY_STYLE).parse_units()
        call = [s for s in program.body if isinstance(s, ast.CallStmt)][0]
        assert call.name == "SAXPY"
        assert len(call.args) == 3

    def test_duplicate_subroutine_rejected(self):
        src = SAXPY_STYLE + "\nSUBROUTINE SAXPY(A, U, V)\nDIMENSION U(64), V(64)\nEND\n"
        with pytest.raises(ParseError, match="twice"):
            parse_source(src)

    def test_duplicate_formal_rejected(self):
        src = "X = 1\nEND\nSUBROUTINE S(A, A)\nEND\n"
        with pytest.raises(ParseError, match="duplicate formal"):
            parse_source(src)

    def test_parse_program_rejects_units(self):
        with pytest.raises(ParseError, match="SUBROUTINE"):
            Parser(SAXPY_STYLE).parse_program()


class TestInlining:
    def test_call_replaced(self):
        program = parse_source(SAXPY_STYLE)
        assert not any(
            isinstance(s, ast.CallStmt) for s in program.walk_statements()
        )

    def test_numerics_correct(self):
        it = Interpreter(parse_source(SAXPY_STYLE))
        it.run()
        # Y(i) = 1 + 2*i  ->  Y(1) + Y(64) = 3 + 129.
        assert it.scalars["TOTAL"] == 132.0

    def test_array_passed_by_reference(self):
        it = Interpreter(parse_source(SAXPY_STYLE))
        it.run()
        assert float(it.arrays["Y"][0]) == 3.0

    def test_references_traced_through_call(self):
        trace = generate_trace(parse_source(SAXPY_STYLE))
        # setup writes 128 + saxpy (read V, read U, write V) * 64 + 2 reads.
        assert trace.length == 128 + 3 * 64 + 2

    def test_loop_ids_unique_after_inlining(self):
        src = SAXPY_STYLE.replace(
            "CALL SAXPY(2.0, X, Y)",
            "CALL SAXPY(2.0, X, Y)\nCALL SAXPY(3.0, X, Y)",
        )
        program = parse_source(src)
        ids = [l.loop_id for l in program.loops()]
        assert len(ids) == len(set(ids)) == 3

    def test_labels_unique_after_double_inline(self):
        src = SAXPY_STYLE.replace(
            "CALL SAXPY(2.0, X, Y)",
            "CALL SAXPY(2.0, X, Y)\nCALL SAXPY(3.0, X, Y)",
        )
        program = parse_source(src)
        labels = [
            s.end_label
            for s in program.walk_statements()
            if isinstance(s, ast.DoLoop) and s.end_label is not None
        ]
        assert len(labels) == len(set(labels))

    def test_scalar_by_reference(self):
        src = (
            "N = 5\n"
            "CALL BUMP(N)\n"
            "END\n"
            "SUBROUTINE BUMP(K)\n"
            "K = K + 1\n"
            "END\n"
        )
        it = Interpreter(parse_source(src))
        it.run()
        assert it.scalars["N"] == 6

    def test_expression_argument_by_value(self):
        src = (
            "N = 5\n"
            "CALL BUMP(N + 10)\n"
            "M = N\n"
            "END\n"
            "SUBROUTINE BUMP(K)\n"
            "K = K + 1\n"
            "END\n"
        )
        it = Interpreter(parse_source(src))
        it.run()
        assert it.scalars["N"] == 5  # the write went to a temp

    def test_locals_do_not_leak(self):
        src = (
            "T = 7\n"
            "CALL WORK\n"
            "END\n"
            "SUBROUTINE WORK\n"
            "T = 99\n"
            "END\n"
        )
        it = Interpreter(parse_source(src))
        it.run()
        assert it.scalars["T"] == 7  # the subroutine's T is its own

    def test_local_array_hoisted(self):
        src = (
            "DIMENSION V(64)\n"
            "V(1) = 2.0\n"
            "CALL SQUARE(V)\n"
            "X = V(1)\n"
            "END\n"
            "SUBROUTINE SQUARE(A)\n"
            "DIMENSION A(64), TMP(64)\n"
            "DO I = 1, 64\n"
            "TMP(I) = A(I) * A(I)\n"
            "ENDDO\n"
            "DO I = 1, 64\n"
            "A(I) = TMP(I)\n"
            "ENDDO\n"
            "END\n"
        )
        program = parse_source(src)
        assert len(program.arrays) == 2  # V plus the hoisted TMP
        it = Interpreter(program)
        it.run()
        assert it.scalars["X"] == 4.0

    def test_nested_calls(self):
        src = (
            "N = 1\n"
            "CALL OUTER(N)\n"
            "END\n"
            "SUBROUTINE OUTER(K)\n"
            "CALL INNER(K)\n"
            "K = K * 2\n"
            "END\n"
            "SUBROUTINE INNER(J)\n"
            "J = J + 10\n"
            "END\n"
        )
        it = Interpreter(parse_source(src))
        it.run()
        assert it.scalars["N"] == 22

    def test_subroutine_params_hoisted(self):
        src = (
            "DIMENSION V(8)\n"
            "CALL FILL(V)\n"
            "X = V(8)\n"
            "END\n"
            "SUBROUTINE FILL(A)\n"
            "PARAMETER (C = 3)\n"
            "DIMENSION A(8)\n"
            "DO I = 1, 8\n"
            "A(I) = FLOAT(C)\n"
            "ENDDO\n"
            "END\n"
        )
        it = Interpreter(parse_source(src))
        it.run()
        assert it.scalars["X"] == 3.0


class TestInlineErrors:
    def test_unknown_subroutine(self):
        with pytest.raises(InlineError, match="unknown subroutine"):
            parse_source("CALL NOPE(1)\nEND\n")

    def test_arity_mismatch(self):
        src = "CALL S(1, 2)\nEND\nSUBROUTINE S(A)\nX = A\nEND\n"
        with pytest.raises(InlineError, match="arguments"):
            parse_source(src)

    def test_recursion_rejected(self):
        src = (
            "CALL S(1)\nEND\n"
            "SUBROUTINE S(A)\nCALL S(A)\nEND\n"
        )
        with pytest.raises(InlineError, match="recursive"):
            parse_source(src)

    def test_mutual_recursion_rejected(self):
        src = (
            "CALL A(1)\nEND\n"
            "SUBROUTINE A(X)\nCALL B(X)\nEND\n"
            "SUBROUTINE B(X)\nCALL A(X)\nEND\n"
        )
        with pytest.raises(InlineError, match="recursive"):
            parse_source(src)

    def test_array_shape_mismatch(self):
        src = (
            "DIMENSION V(32)\n"
            "CALL S(V)\nEND\n"
            "SUBROUTINE S(A)\nDIMENSION A(64)\nA(1) = 0.0\nEND\n"
        )
        with pytest.raises(InlineError, match="does not match"):
            parse_source(src)

    def test_array_argument_must_be_name(self):
        src = (
            "DIMENSION V(8)\n"
            "CALL S(V(1))\nEND\n"
            "SUBROUTINE S(A)\nDIMENSION A(8)\nA(1) = 0.0\nEND\n"
        )
        with pytest.raises(InlineError, match="bare array name"):
            parse_source(src)

    def test_early_return_rejected(self):
        src = (
            "CALL S(1)\nEND\n"
            "SUBROUTINE S(A)\n"
            "IF (A > 0) THEN\nRETURN\nENDIF\n"
            "X = A\nEND\n"
        )
        with pytest.raises(InlineError, match="RETURN"):
            parse_source(src)

    def test_return_in_main_rejected(self):
        with pytest.raises(InlineError, match="outside"):
            parse_source("CALL S\nRETURN\nEND\nSUBROUTINE S\nX = 1\nEND\n")

    def test_logical_if_call_rejected(self):
        src = (
            "IF (1 < 2) CALL S\nEND\n"
            "SUBROUTINE S\nX = 1\nEND\n"
        )
        with pytest.raises(InlineError, match="logical IF"):
            parse_source(src)


class TestInlineEquivalence:
    """A program written with CALLs and its hand-inlined equivalent must
    produce identical traces (the inliner is semantics-preserving)."""

    CALLED = (
        "DIMENSION V(128)\n"
        "DO 10 I = 1, 128\n"
        "V(I) = FLOAT(I)\n"
        "10 CONTINUE\n"
        "CALL SCALE(V)\n"
        "CALL SCALE(V)\n"
        "END\n"
        "SUBROUTINE SCALE(A)\n"
        "DIMENSION A(128)\n"
        "DO 20 I = 1, 128\n"
        "A(I) = A(I) * 0.5\n"
        "20 CONTINUE\n"
        "END\n"
    )
    FLAT = (
        "DIMENSION V(128)\n"
        "DO 10 I = 1, 128\n"
        "V(I) = FLOAT(I)\n"
        "10 CONTINUE\n"
        "DO 20 I = 1, 128\n"
        "V(I) = V(I) * 0.5\n"
        "20 CONTINUE\n"
        "DO 30 I = 1, 128\n"
        "V(I) = V(I) * 0.5\n"
        "30 CONTINUE\n"
        "END\n"
    )

    def test_identical_traces(self):
        a = generate_trace(parse_source(self.CALLED))
        b = generate_trace(parse_source(self.FLAT))
        assert a.length == b.length
        assert (a.pages == b.pages).all()

    def test_identical_values(self):
        ia = Interpreter(parse_source(self.CALLED))
        ia.run()
        ib = Interpreter(parse_source(self.FLAT))
        ib.run()
        assert (ia.arrays["V"] == ib.arrays["V"]).all()

    def test_identical_directive_structure(self):
        from repro.directives import instrument_program

        pa = parse_source(self.CALLED)
        pb = parse_source(self.FLAT)
        plan_a = instrument_program(pa)
        plan_b = instrument_program(pb)
        assert len(plan_a.allocates) == len(plan_b.allocates) == 3
        sizes_a = sorted(
            d.requests[-1].pages for d in plan_a.allocates.values()
        )
        sizes_b = sorted(
            d.requests[-1].pages for d in plan_b.allocates.values()
        )
        assert sizes_a == sizes_b


class TestAnalysisThroughCalls:
    def test_locality_analysis_sees_inlined_loops(self):
        from repro.analysis.locality import analyze_program

        program = parse_source(SAXPY_STYLE)
        analysis = analyze_program(program)
        # Setup loop + inlined SAXPY loop.
        assert len(list(analysis.tree.nodes())) == 2

    def test_directives_inserted_in_inlined_code(self):
        from repro.directives import instrument_program

        program = parse_source(SAXPY_STYLE)
        plan = instrument_program(program)
        assert len(plan.allocates) == 2
