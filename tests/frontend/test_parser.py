"""Unit tests for the mini-FORTRAN parser."""

import pytest

from repro.frontend import ast
from repro.frontend.errors import ParseError, SemanticError
from repro.frontend.parser import parse_source


class TestDeclarations:
    def test_program_name(self):
        p = parse_source("PROGRAM FOO\nEND\n")
        assert p.name == "FOO"

    def test_program_name_defaults_to_main(self):
        p = parse_source("X = 1\nEND\n")
        assert p.name == "MAIN"

    def test_dimension_vector(self):
        p = parse_source("DIMENSION V(100)\nEND\n")
        assert p.arrays[0].name == "V"
        assert len(p.arrays[0].dims) == 1

    def test_dimension_matrix(self):
        p = parse_source("DIMENSION A(10, 20)\nEND\n")
        assert len(p.arrays[0].dims) == 2

    def test_dimension_multiple_declarators(self):
        p = parse_source("DIMENSION A(10), B(5, 5), C(7)\nEND\n")
        assert [d.name for d in p.arrays] == ["A", "B", "C"]

    def test_real_declaration_with_dims(self):
        p = parse_source("REAL A(10, 10)\nEND\n")
        assert p.arrays[0].name == "A"

    def test_integer_scalar_declaration_ignored(self):
        p = parse_source("INTEGER I, J\nX = 1\nEND\n")
        assert p.arrays == []

    def test_parameter(self):
        p = parse_source("PARAMETER (N = 50)\nDIMENSION A(N)\nEND\n")
        assert p.params[0].name == "N"

    def test_parameter_multiple(self):
        p = parse_source("PARAMETER (N = 50, M = N * 2)\nEND\n")
        assert [d.name for d in p.params] == ["N", "M"]

    def test_three_dimensional_array_rejected(self):
        with pytest.raises(SemanticError, match="dimensions"):
            parse_source("DIMENSION A(2, 2, 2)\nEND\n")

    def test_duplicate_array_rejected(self):
        with pytest.raises(SemanticError, match="twice"):
            parse_source("DIMENSION A(2), A(3)\nEND\n")

    def test_dimension_requires_bounds(self):
        with pytest.raises(ParseError):
            parse_source("DIMENSION A\nEND\n")


class TestDoLoops:
    def test_labeled_do(self):
        p = parse_source("DO 10 I = 1, 100\nX = I\n10 CONTINUE\nEND\n")
        loop = p.body[0]
        assert isinstance(loop, ast.DoLoop)
        assert loop.var == "I"
        assert loop.end_label == 10
        assert isinstance(loop.body[-1], ast.Continue)

    def test_block_do_enddo(self):
        p = parse_source("DO I = 1, 100\nX = I\nENDDO\nEND\n")
        loop = p.body[0]
        assert isinstance(loop, ast.DoLoop)
        assert loop.end_label is None
        assert len(loop.body) == 1

    def test_do_with_step(self):
        p = parse_source("DO I = 1, 100, 2\nX = I\nENDDO\nEND\n")
        assert isinstance(p.body[0].step, ast.Num)
        assert p.body[0].step.value == 2

    def test_nested_labeled_loops(self):
        src = (
            "DO 10 I = 1, 4\n"
            "DO 20 J = 1, 4\n"
            "X = I + J\n"
            "20 CONTINUE\n"
            "10 CONTINUE\n"
            "END\n"
        )
        outer = parse_source(src).body[0]
        inner = outer.body[0]
        assert isinstance(inner, ast.DoLoop)
        assert inner.end_label == 20

    def test_shared_do_terminator(self):
        src = (
            "DO 10 I = 1, 4\n"
            "DO 10 J = 1, 4\n"
            "X = I + J\n"
            "10 CONTINUE\n"
            "END\n"
        )
        outer = parse_source(src).body[0]
        assert isinstance(outer, ast.DoLoop)
        inner = outer.body[0]
        assert isinstance(inner, ast.DoLoop)
        assert outer.end_label == inner.end_label == 10

    def test_loop_ids_are_preorder_unique(self):
        src = (
            "DO I = 1, 2\n"
            "DO J = 1, 2\nX = 1\nENDDO\n"
            "ENDDO\n"
            "DO K = 1, 2\nX = 2\nENDDO\n"
            "END\n"
        )
        ids = [l.loop_id for l in parse_source(src).loops()]
        assert ids == [0, 1, 2]

    def test_missing_terminator_raises(self):
        with pytest.raises(ParseError):
            parse_source("DO 10 I = 1, 4\nX = 1\nEND\n")

    def test_missing_enddo_raises(self):
        with pytest.raises(ParseError):
            parse_source("DO I = 1, 4\nX = 1\nEND\n")


class TestIf:
    def test_logical_if(self):
        p = parse_source("IF (X < 1) Y = 2\nEND\n")
        stmt = p.body[0]
        assert isinstance(stmt, ast.LogicalIf)
        assert isinstance(stmt.stmt, ast.Assign)

    def test_block_if(self):
        p = parse_source("IF (X < 1) THEN\nY = 2\nENDIF\nEND\n")
        stmt = p.body[0]
        assert isinstance(stmt, ast.IfBlock)
        assert len(stmt.branches) == 1

    def test_if_else(self):
        p = parse_source("IF (X < 1) THEN\nY = 2\nELSE\nY = 3\nENDIF\nEND\n")
        assert len(p.body[0].branches) == 2
        assert p.body[0].branches[1][0] is None

    def test_if_elseif_else(self):
        src = (
            "IF (X < 1) THEN\nY = 1\n"
            "ELSEIF (X < 2) THEN\nY = 2\n"
            "ELSE\nY = 3\nENDIF\nEND\n"
        )
        branches = parse_source(src).body[0].branches
        assert len(branches) == 3
        assert branches[1][0] is not None

    def test_logical_if_cannot_guard_do(self):
        with pytest.raises(ParseError):
            parse_source("IF (X < 1) DO I = 1, 2\nENDDO\nEND\n")

    def test_dotted_condition(self):
        p = parse_source("IF (I .EQ. J .OR. I .GT. 5) X = 1\nEND\n")
        cond = p.body[0].cond
        assert isinstance(cond, ast.LogicalOp)
        assert cond.op == ".OR."


class TestExpressions:
    def parse_expr(self, text):
        p = parse_source(f"X = {text}\nEND\n")
        return p.body[0].expr

    def test_precedence_mul_over_add(self):
        e = self.parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "*"

    def test_power_right_associative(self):
        e = self.parse_expr("2 ** 3 ** 2")
        assert e.op == "**"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "**"

    def test_unary_minus(self):
        e = self.parse_expr("-X + 1")
        assert isinstance(e.left, ast.UnaryOp)

    def test_unary_plus_is_noop(self):
        e = self.parse_expr("+X")
        assert isinstance(e, ast.Var)

    def test_parenthesized(self):
        e = self.parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert isinstance(e.left, ast.BinOp)

    def test_intrinsic_call(self):
        e = self.parse_expr("SQRT(Y)")
        assert isinstance(e, ast.Call)
        assert e.name == "SQRT"

    def test_call_with_two_args(self):
        e = self.parse_expr("MOD(I, 2)")
        assert len(e.args) == 2

    def test_unexpected_token_raises(self):
        with pytest.raises(ParseError):
            self.parse_expr("1 +")


class TestArrayResolution:
    def test_declared_array_call_becomes_ref(self):
        p = parse_source("DIMENSION A(10)\nX = A(3)\nEND\n")
        expr = p.body[0].expr
        assert isinstance(expr, ast.ArrayRef)
        assert expr.name == "A"

    def test_undeclared_name_stays_call(self):
        p = parse_source("X = FOO(3)\nEND\n")
        assert isinstance(p.body[0].expr, ast.Call)

    def test_nested_array_refs_resolved(self):
        p = parse_source("DIMENSION A(10), B(10)\nX = A(1) + SQRT(B(2))\nEND\n")
        call = p.body[0].expr.right
        assert isinstance(call.args[0], ast.ArrayRef)

    def test_array_ref_in_target(self):
        p = parse_source("DIMENSION A(10, 10)\nA(I, J) = 0.0\nEND\n")
        assert isinstance(p.body[0].target, ast.ArrayRef)

    def test_array_ref_inside_index(self):
        p = parse_source("DIMENSION A(10), IDX(10)\nX = A(IDX(1))\nEND\n")
        outer = p.body[0].expr
        assert isinstance(outer, ast.ArrayRef)
        assert isinstance(outer.indices[0], ast.ArrayRef)


class TestWalkers:
    SRC = (
        "DIMENSION A(4, 4), V(16)\n"
        "DO 10 I = 1, 4\n"
        "DO 20 J = 1, 4\n"
        "A(I, J) = V(I) + V(J)\n"
        "20 CONTINUE\n"
        "10 CONTINUE\n"
        "END\n"
    )

    def test_walk_statements_preorder(self):
        p = parse_source(self.SRC)
        kinds = [type(s).__name__ for s in p.walk_statements()]
        assert kinds[0] == "DoLoop"
        assert "Assign" in kinds

    def test_statement_array_refs(self):
        p = parse_source(self.SRC)
        assign = [s for s in p.walk_statements() if isinstance(s, ast.Assign)][0]
        names = [r.name for r in ast.statement_array_refs(assign)]
        assert sorted(names) == ["A", "V", "V"]

    def test_loops_iterator(self):
        p = parse_source(self.SRC)
        assert [l.var for l in p.loops()] == ["I", "J"]


class TestErrors:
    def test_garbage_after_end(self):
        with pytest.raises(ParseError):
            parse_source("END\nX = 1\n")

    def test_trailing_tokens_on_statement(self):
        with pytest.raises(ParseError):
            parse_source("X = 1 2\nEND\n")

    def test_error_carries_line_number(self):
        try:
            parse_source("X = 1\nY = *\nEND\n")
        except ParseError as err:
            assert err.line == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
