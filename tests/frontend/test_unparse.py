"""Round-trip tests for the unparser."""

from repro.frontend.parser import parse_source
from repro.frontend.unparse import unparse_expr, unparse_program


def roundtrip(src):
    first = parse_source(src)
    text = unparse_program(first)
    second = parse_source(text)
    assert unparse_program(second) == text  # idempotent after one pass
    return first, second, text


class TestRoundTrip:
    def test_simple_program(self):
        _, second, _ = roundtrip("X = 1 + 2 * 3\nEND\n")
        assert len(second.body) == 1

    def test_declarations(self):
        _, _, text = roundtrip(
            "PARAMETER (N = 4)\nDIMENSION A(N, N), V(16)\nX = A(1, 1)\nEND\n"
        )
        assert "PARAMETER (N = 4)" in text
        assert "DIMENSION A(N, N), V(16)" in text

    def test_labeled_loop(self):
        _, second, text = roundtrip(
            "DO 10 I = 1, 4\nX = I\n10 CONTINUE\nEND\n"
        )
        assert "DO 10 I = 1, 4" in text
        assert second.body[0].end_label == 10

    def test_block_loop_with_step(self):
        _, _, text = roundtrip("DO I = 1, 9, 2\nX = I\nENDDO\nEND\n")
        assert "DO I = 1, 9, 2" in text
        assert "ENDDO" in text

    def test_if_block(self):
        src = (
            "IF (X < 1) THEN\nY = 1\nELSEIF (X < 2) THEN\nY = 2\n"
            "ELSE\nY = 3\nENDIF\nEND\n"
        )
        _, second, _ = roundtrip(src)
        assert len(second.body[0].branches) == 3

    def test_logical_if(self):
        _, _, text = roundtrip("IF (I == 3) X = 1\nEND\n")
        assert "IF (I == 3) X = 1" in text

    def test_nested_structure_preserved(self):
        src = (
            "DIMENSION A(4, 4)\n"
            "DO I = 1, 4\nDO J = 1, 4\nA(I, J) = I + J\nENDDO\nENDDO\nEND\n"
        )
        first, second, _ = roundtrip(src)
        assert len(list(first.loops())) == len(list(second.loops())) == 2


class TestExpressionPrinting:
    def expr_text(self, text):
        program = parse_source(f"X = {text}\nEND\n")
        return unparse_expr(program.body[0].expr)

    def test_precedence_no_spurious_parens(self):
        assert self.expr_text("1 + 2 * 3") == "1 + 2 * 3"

    def test_parens_preserved_semantically(self):
        assert self.expr_text("(1 + 2) * 3") == "(1 + 2) * 3"

    def test_unary_minus(self):
        assert self.expr_text("-X") == "-X"

    def test_power_right_assoc(self):
        assert self.expr_text("2 ** 3 ** 2") == "2**3**2"

    def test_left_nested_power_parenthesized(self):
        # (2**3)**2 must not print as 2**3**2 (which would re-parse
        # right-associatively).
        text = self.expr_text("(2 ** 3) ** 2")
        reparsed = parse_source(f"X = {text}\nEND\n").body[0].expr
        assert reparsed.left.op == "**"

    def test_subtraction_grouping(self):
        # 1 - (2 - 3) must keep its parens.
        text = self.expr_text("1 - (2 - 3)")
        assert text == "1 - (2 - 3)"

    def test_call(self):
        assert self.expr_text("SQRT(ABS(X))") == "SQRT(ABS(X))"

    def test_real_literal(self):
        assert self.expr_text("1.5") == "1.5"

    def test_logical(self):
        assert self.expr_text("I < 2 .AND. J > 3") == "I < 2 .AND. J > 3"
