"""Tests for DO WHILE loops across the whole pipeline."""

import pytest

from repro.analysis.locality import analyze_program
from repro.analysis.looptree import LoopTree
from repro.directives import instrument_program, render_instrumented
from repro.frontend import ast
from repro.frontend.errors import ParseError
from repro.frontend.parser import parse_source
from repro.frontend.unparse import unparse_program
from repro.tracegen.interpreter import (
    ExecutionLimitError,
    Interpreter,
    generate_trace,
)


class TestParsing:
    def test_basic(self):
        p = parse_source("X = 0\nDO WHILE (X < 3)\nX = X + 1\nENDDO\nEND\n")
        loop = p.body[1]
        assert isinstance(loop, ast.WhileLoop)
        assert len(loop.body) == 1

    def test_loop_ids_shared_with_do(self):
        src = (
            "X = 0\n"
            "DO I = 1, 2\nY = I\nENDDO\n"
            "DO WHILE (X < 1)\nX = X + 1\nENDDO\n"
            "END\n"
        )
        p = parse_source(src)
        do_loop = p.body[1]
        while_loop = p.body[2]
        assert do_loop.loop_id == 0
        assert while_loop.loop_id == 1

    def test_needs_enddo(self):
        with pytest.raises(ParseError):
            parse_source("DO WHILE (X < 3)\nX = X + 1\nEND\n")

    def test_logical_if_cannot_guard_while(self):
        with pytest.raises(ParseError):
            parse_source("IF (X < 1) DO WHILE (X < 3)\nENDDO\nEND\n")

    def test_nested_in_do(self):
        src = (
            "DO I = 1, 3\n"
            "X = 0.0\n"
            "DO WHILE (X < 1.0)\nX = X + 0.5\nENDDO\n"
            "ENDDO\nEND\n"
        )
        p = parse_source(src)
        outer = p.body[0]
        assert isinstance(outer.body[1], ast.WhileLoop)

    def test_unparse_roundtrip(self):
        src = "X = 0\nDO WHILE (X < 3)\nX = X + 1\nENDDO\nEND\n"
        text = unparse_program(parse_source(src))
        assert "DO WHILE (X < 3)" in text
        reparsed = parse_source(text)
        assert isinstance(reparsed.body[1], ast.WhileLoop)


class TestInterpretation:
    def test_counts_correctly(self):
        it = Interpreter(
            parse_source("X = 0\nDO WHILE (X < 5)\nX = X + 1\nENDDO\nEND\n")
        )
        it.run()
        assert it.scalars["X"] == 5

    def test_never_entered(self):
        it = Interpreter(
            parse_source("X = 9\nN = 0\nDO WHILE (X < 5)\nN = 1\nENDDO\nEND\n")
        )
        it.run()
        assert it.scalars["N"] == 0

    def test_exit_leaves_while(self):
        src = (
            "X = 0\n"
            "DO WHILE (X < 100)\n"
            "X = X + 1\n"
            "IF (X == 7) EXIT\n"
            "ENDDO\nEND\n"
        )
        it = Interpreter(parse_source(src))
        it.run()
        assert it.scalars["X"] == 7

    def test_infinite_loop_guarded(self):
        src = "X = 0\nDO WHILE (X < 1)\nY = 2\nENDDO\nEND\n"
        with pytest.raises(ExecutionLimitError):
            generate_trace(parse_source(src), max_operations=5000)

    def test_array_refs_in_condition_traced(self):
        src = (
            "DIMENSION V(8)\n"
            "V(1) = 3.0\n"
            "DO WHILE (V(1) > 0.0)\n"
            "V(1) = V(1) - 1.0\n"
            "ENDDO\nEND\n"
        )
        trace = generate_trace(parse_source(src))
        # write + 4 condition reads + 3 iterations x (read + write).
        assert trace.length == 1 + 4 + 6

    def test_convergence_kernel(self):
        # Jacobi iteration run by a true convergence test.
        src = (
            "DIMENSION V(16)\n"
            "DO 10 I = 1, 16\n"
            "V(I) = FLOAT(I * I)\n"  # non-harmonic: takes many sweeps
            "10 CONTINUE\n"
            "ERR = 1.0\n"
            "DO WHILE (ERR > 0.01)\n"
            "ERR = 0.0\n"
            "DO 20 I = 2, 15\n"
            "T = 0.5 * (V(I-1) + V(I+1))\n"
            "ERR = ERR + ABS(T - V(I))\n"
            "V(I) = T\n"
            "20 CONTINUE\n"
            "ENDDO\nEND\n"
        )
        trace = generate_trace(parse_source(src))
        assert trace.length > 100
        assert not trace.truncated


class TestAnalysisIntegration:
    SRC = (
        "DIMENSION V(640)\n"
        "X = 1.0\n"
        "DO WHILE (X > 0.5)\n"
        "S = 0.0\n"
        "DO 10 I = 1, 640\n"
        "S = S + V(I)\n"
        "10 CONTINUE\n"
        "X = X - 0.2\n"
        "ENDDO\nEND\n"
    )

    def test_looptree_includes_while(self):
        tree = LoopTree(parse_source(self.SRC))
        root = tree.roots[0]
        assert root.is_while
        assert root.var == ""
        assert len(root.children) == 1

    def test_while_gets_priority_and_locality(self):
        analysis = analyze_program(parse_source(self.SRC))
        root = analysis.tree.roots[0]
        report = analysis.report_for(root.loop_id)
        assert report.priority_index == 2
        # V is re-scanned every iteration of the WHILE: full AVS.
        assert report.virtual_size == 10

    def test_while_cond_refs_at_own_level(self):
        src = (
            "DIMENSION W(64)\n"
            "W(1) = 5.0\n"
            "DO WHILE (W(1) > 0.0)\n"
            "W(1) = W(1) - 1.0\n"
            "ENDDO\nEND\n"
        )
        tree = LoopTree(parse_source(src))
        assert [r.name for r in tree.roots[0].direct_refs].count("W") >= 2

    def test_directives_inserted_before_while(self):
        program = parse_source(self.SRC)
        plan = instrument_program(program)
        tree = LoopTree(program)
        assert tree.roots[0].loop_id in plan.allocates
        text = render_instrumented(program, plan)
        assert "DO WHILE" in text
        assert text.index("ALLOCATE") < text.index("DO WHILE")

    def test_while_trace_with_directives(self):
        program = parse_source(self.SRC)
        plan = instrument_program(program)
        trace = generate_trace(program, plan=plan)
        sites = {d.site for d in trace.directives}
        tree = LoopTree(program)
        assert tree.roots[0].loop_id in sites
