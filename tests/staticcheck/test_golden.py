"""Golden-file tests for ``repro lint`` output.

``fixtures/dirty.f`` is a deliberately dirty instrumented program that
triggers every rule in the catalog at least once; the text and JSON
renderings are pinned byte-for-byte in ``golden/``.

After an intentional change to a rule message or renderer, regenerate
with::

    pytest tests/staticcheck/test_golden.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.staticcheck import all_rules, lint_source, render_json, render_text

HERE = Path(__file__).parent
FIXTURE = HERE / "fixtures" / "dirty.f"
GOLDEN_DIR = HERE / "golden"


@pytest.fixture(scope="module")
def diagnostics():
    return lint_source(FIXTURE.read_text())


def _compare(name, text, request):
    path = GOLDEN_DIR / name
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"updated {path}")
    assert path.exists(), (
        f"missing snapshot {path} — generate it with "
        "pytest tests/staticcheck/test_golden.py --update-golden"
    )
    assert text == path.read_text(), (
        f"{name} drifted from its golden snapshot; if the change is "
        "intentional, rerun with --update-golden and commit the diff"
    )


def test_fixture_triggers_every_rule(diagnostics):
    """The dirty fixture is a living catalog: one finding per rule."""
    assert {d.rule for d in diagnostics} == {r.rule_id for r in all_rules()}


def test_text_report_matches_golden(diagnostics, request):
    _compare("dirty.txt", render_text(diagnostics, "dirty.f"), request)


def test_json_report_matches_golden(diagnostics, request):
    _compare("dirty.json", render_json(diagnostics, "dirty.f"), request)


def test_json_golden_is_a_valid_document(diagnostics):
    document = json.loads(render_json(diagnostics, "dirty.f"))
    assert document["format_version"] == 1
    assert document["source"] == "dirty.f"
    assert len(document["diagnostics"]) == len(diagnostics)
    counts = document["summary"]
    assert set(counts) == {"error", "warning", "info"}
    assert sum(counts.values()) == len(diagnostics)
