"""Unit tests for the lint rule suite.

Each rule gets a minimal dirty program that triggers it and a matching
clean program that does not; the workload sweep at the bottom pins the
headline guarantee — every bundled workload, self-instrumented by
Algorithms 1 and 2, lints clean at error level.
"""

import pytest

from repro.staticcheck import (
    Severity,
    all_rules,
    error_count,
    get_rule,
    has_errors,
    lint_program,
    lint_source,
    summarize,
    worst_severity,
)
from repro.workloads import all_workloads


def rules_of(diagnostics):
    return {d.rule for d in diagnostics}


def errors_of(diagnostics):
    return {d.rule for d in diagnostics if d.severity is Severity.ERROR}


class TestCatalog:
    def test_twelve_rules_registered(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == sorted(ids)
        assert ids == [
            "CD101", "CD102", "CD103", "CD104", "CD201",
            "CD202", "CD301", "CD302", "CD303", "CD304",
            "CD305", "CD306",
        ]

    def test_severities(self):
        severity = {r.rule_id: r.severity for r in all_rules()}
        assert severity["CD101"] == "error"
        assert severity["CD201"] == "warning"
        assert severity["CD301"] == "info"
        assert severity["CD302"] == "error"

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_rule("CD999")


class TestPriorityRules:
    def test_cd101_wrong_pi(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "ALLOCATE ((3,1))\n"
            "DO I = 1, 8\n"
            "B(I) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        assert "CD101" in errors_of(diags)
        assert "CD102" not in rules_of(diags)

    def test_cd101_clean(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "ALLOCATE ((1,1))\n"
            "DO I = 1, 8\n"
            "B(I) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        assert "CD101" not in rules_of(diags)

    def test_cd102_wrong_pages(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "ALLOCATE ((1,7))\n"
            "DO I = 1, 8\n"
            "B(I) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        assert "CD102" in errors_of(diags)

    def test_cd102_short_chain(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "DO I = 1, 8\n"
            "ALLOCATE ((1,1))\n"
            "DO J = 1, 8\n"
            "B(J) = 0.0\n"
            "ENDDO\n"
            "ENDDO\n"
            "END\n"
        )
        assert "CD102" in errors_of(diags)


class TestLockRules:
    LEAKY = (
        "DIMENSION A(8), B(8)\n"
        "DO I = 1, 8\n"
        "A(I) = B(I)\n"
        "LOCK (2,A)\n"
        "DO J = 1, 8\n"
        "B(J) = A(J)\n"
        "ENDDO\n"
        "ENDDO\n"
        "END\n"
    )

    def test_cd103_missing_unlock(self):
        diags = lint_source(self.LEAKY)
        (leak,) = [d for d in diags if d.rule == "CD103"]
        assert "no UNLOCK" in leak.message

    def test_cd103_clean_when_balanced(self):
        src = self.LEAKY.replace("ENDDO\nEND\n", "ENDDO\nUNLOCK (A)\nEND\n")
        assert "CD103" not in rules_of(lint_source(src))

    def test_cd103_unlock_of_unlocked_array(self):
        src = self.LEAKY.replace("ENDDO\nEND\n", "ENDDO\nUNLOCK (A,B)\nEND\n")
        diags = lint_source(src)
        assert "CD103" in errors_of(diags)

    def test_cd103_lock_before_outermost_loop(self):
        diags = lint_source(
            "DIMENSION A(8)\n"
            "LOCK (2,A)\n"
            "DO I = 1, 8\n"
            "A(I) = 0.0\n"
            "ENDDO\n"
            "UNLOCK (A)\n"
            "END\n"
        )
        assert "CD103" in errors_of(diags)

    def test_cd104_pj_exceeds_parent_pi(self):
        src = self.LEAKY.replace("LOCK (2,A)", "LOCK (3,A)").replace(
            "ENDDO\nEND\n", "ENDDO\nUNLOCK (A)\nEND\n"
        )
        diags = lint_source(src)
        assert "CD104" in errors_of(diags)
        assert "CD103" not in rules_of(diags)

    def test_cd201_lock_on_array_parent_never_touches(self):
        diags = lint_source(
            "DIMENSION A(8), B(8)\n"
            "DO I = 1, 8\n"
            "A(I) = 1.0\n"
            "LOCK (2,B)\n"
            "DO J = 1, 8\n"
            "B(J) = 0.0\n"
            "ENDDO\n"
            "ENDDO\n"
            "UNLOCK (B)\n"
            "END\n"
        )
        cd201 = [d for d in diags if d.rule == "CD201"]
        assert cd201 and cd201[0].severity is Severity.WARNING


class TestAllocateArmRules:
    def test_cd202_dominated_middle_arm(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "DO I = 1, 4\n"
            "DO J = 1, 4\n"
            "ALLOCATE ((3,1) else (2,1) else (1,1))\n"
            "DO K = 1, 8\n"
            "B(K) = B(K) + 1.0\n"
            "ENDDO\n"
            "ENDDO\n"
            "ENDDO\n"
            "END\n"
        )
        cd202 = [d for d in diags if d.rule == "CD202"]
        assert cd202
        assert "(2,1)" in cd202[0].message

    def test_cd202_exempts_the_pi1_fallback(self):
        # Equal pages on the PI=1 arm stay useful: a denied request at
        # PI 1 is what triggers the policy's swap fallback.
        program_src = (
            "DIMENSION A(8, 8), B(8)\n"
            "DO I = 1, 8\n"
            "DO J = 1, 8\n"
            "A(I, J) = B(J)\n"
            "ENDDO\n"
            "ENDDO\n"
            "END\n"
        )
        from repro.frontend.parser import parse_source

        diags = lint_program(parse_source(program_src))
        assert "CD202" not in rules_of(diags)


class TestSubscriptRules:
    def test_cd301_nonaffine_is_info_only(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "DO I = 1, 8\n"
            "B(MOD(I, 4) + 1) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        cd301 = [d for d in diags if d.rule == "CD301"]
        assert cd301 and cd301[0].severity is Severity.INFO
        assert "CD302" not in rules_of(diags)

    def test_cd302_out_of_bounds(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "DO I = 1, 12\n"
            "B(I) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        (oob,) = [d for d in diags if d.rule == "CD302"]
        assert "1..12" in oob.message and "1..8" in oob.message

    def test_cd302_silent_under_a_guard(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "DO I = 1, 12\n"
            "IF (I <= 8) THEN\n"
            "B(I) = 0.0\n"
            "ENDIF\n"
            "ENDDO\n"
            "END\n"
        )
        assert "CD302" not in rules_of(diags)

    def test_cd302_silent_after_a_conditional_exit(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "DO I = 1, 12\n"
            "IF (I == 9) EXIT\n"
            "B(I) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        assert "CD302" not in rules_of(diags)

    def test_cd303_zero_trip(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "DO I = 8, 1\n"
            "B(I) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        assert "CD303" in rules_of(diags)

    def test_cd303_negative_step_is_fine(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "DO I = 8, 1, -1\n"
            "B(I) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        assert "CD303" not in rules_of(diags)


class TestTraversalRule:
    ROW_WISE = (
        "DIMENSION A(8, 8)\n"
        "DO I = 1, 8\n"
        "DO J = 1, 8\n"
        "A(I, J) = 1.0\n"
        "ENDDO\n"
        "ENDDO\n"
        "END\n"
    )

    def test_cd304_flags_row_wise_inner_loop(self):
        diags = lint_source(self.ROW_WISE)
        (d,) = [x for x in diags if x.rule == "CD304"]
        assert d.severity is Severity.WARNING
        (fix,) = d.fixits
        assert "interchange" in fix.description
        # concrete replacement: the two loop headers, swapped
        assert fix.replacement.splitlines() == ["DO J = 1, 8", "DO I = 1, 8"]

    def test_cd304_clean_for_column_wise(self):
        src = self.ROW_WISE.replace("A(I, J)", "A(J, I)")
        assert "CD304" not in rules_of(lint_source(src))


class TestApi:
    def test_rule_filtering(self):
        src = (
            "DIMENSION B(8)\n"
            "DO I = 8, 1\n"
            "B(MOD(I, 4) + 1) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        assert rules_of(lint_source(src, rule_ids=["CD303"])) == {"CD303"}

    def test_severity_helpers(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "DO I = 1, 12\n"
            "B(I) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        assert has_errors(diags)
        assert error_count(diags) == 1
        assert worst_severity(diags) is Severity.ERROR
        assert summarize(diags)["error"] == 1

    def test_diagnostics_sorted_by_line(self):
        diags = lint_source(
            "DIMENSION B(8)\n"
            "DO I = 8, 1\n"
            "B(I) = 0.0\n"
            "ENDDO\n"
            "DO J = 1, 12\n"
            "B(J) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        lines = [d.span.line for d in diags]
        assert lines == sorted(lines)


@pytest.mark.parametrize("workload", [w.name for w in all_workloads()])
def test_every_workload_lints_clean_at_error_level(workload):
    """The paper's own algorithms must satisfy the paper's invariants."""
    from repro.workloads import get_workload

    diags = lint_program(get_workload(workload).program())
    assert not has_errors(diags), [str(d) for d in diags]
