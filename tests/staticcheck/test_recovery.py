"""Unit tests for the affine-recovery pass (FORAY-GEN style).

Each recoverable pattern is exercised on a minimal program, with
trace-equivalence as the soundness bar: the rewritten program must
compile to the identical reference trace.  Clean programs must pass
through unchanged, and the recovered sites must surface through the
CD301 diagnostics as downgraded, fix-it-carrying info messages.
"""

import numpy as np

from repro.frontend.parser import parse_source
from repro.frontend.unparse import unparse_program
from repro.staticcheck import lint_program
from repro.staticcheck.recovery import recover_program
from repro.tracegen.interpreter import generate_trace


def trace_equivalent(program, recovered):
    a = generate_trace(program)
    b = generate_trace(recovered)
    return len(a.pages) == len(b.pages) and (a.pages == b.pages).all()


class TestConstantFold:
    def test_linearized_2d_index(self):
        # (J-1)*N + I with N a PARAMETER is affine after substitution
        program = parse_source(
            "PARAMETER (N = 8)\n"
            "DIMENSION A(64)\n"
            "DO J = 1, 8\n"
            "DO I = 1, 8\n"
            "A((J - 1) * N + I) = 0.0\n"
            "ENDDO\n"
            "ENDDO\n"
            "END\n"
        )
        result = recover_program(program)
        (site,) = result.sites
        assert site.pattern == "constant-fold"
        assert site.array == "A"
        assert trace_equivalent(program, result.program)

    def test_once_assigned_scalar_counts_as_constant(self):
        program = parse_source(
            "DIMENSION A(64)\n"
            "M = 4\n"
            "DO I = 1, 8\n"
            "A(I * M) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        result = recover_program(program)
        (site,) = result.sites
        assert "4" in site.replacement or "*" in site.replacement
        assert trace_equivalent(program, result.program)

    def test_already_affine_is_untouched(self):
        program = parse_source(
            "DIMENSION A(64)\n"
            "DO I = 1, 8\n"
            "A(2 * I + 1) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        result = recover_program(program)
        assert not result.changed
        assert unparse_program(result.program) == unparse_program(program)

    def test_truly_nonaffine_is_left_alone(self):
        program = parse_source(
            "DIMENSION A(64)\n"
            "DO I = 1, 8\n"
            "A(MOD(I, 4) + 1) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        assert not recover_program(program).changed

    def test_reassigned_scalar_is_not_a_constant(self):
        # M changes inside the loop — substituting its first value
        # would be unsound, so the site must stay unrecovered
        program = parse_source(
            "DIMENSION A(64)\n"
            "M = 4\n"
            "DO I = 1, 8\n"
            "A(I * M) = 0.0\n"
            "M = M + 1\n"
            "ENDDO\n"
            "END\n"
        )
        assert not recover_program(program).changed


class TestInductionPointer:
    SRC = (
        "DIMENSION A(64)\n"
        "K = 0\n"
        "DO I = 1, 30\n"
        "K = K + 2\n"
        "A(K) = 0.0\n"
        "ENDDO\n"
        "END\n"
    )

    def test_strength_reduced_pointer(self):
        program = parse_source(self.SRC)
        result = recover_program(program)
        (site,) = result.sites
        assert site.pattern == "induction-pointer"
        assert site.replacement == "2 * I"
        assert trace_equivalent(program, result.program)

    def test_read_before_bump_uses_pre_increment_form(self):
        src = self.SRC.replace(
            "K = K + 2\nA(K) = 0.0\n", "A(K + 1) = 0.0\nK = K + 2\n"
        )
        program = parse_source(src)
        result = recover_program(program)
        (site,) = result.sites
        assert trace_equivalent(program, result.program)

    def test_pointer_with_conditional_exit_is_unsafe(self):
        src = self.SRC.replace(
            "A(K) = 0.0\n", "IF (I == 9) EXIT\nA(K) = 0.0\n"
        )
        assert not recover_program(parse_source(src)).changed

    def test_pointer_bumped_twice_is_unsafe(self):
        src = self.SRC.replace("ENDDO\n", "K = K + 1\nENDDO\n")
        assert not recover_program(parse_source(src)).changed

    def test_nonconstant_start_is_unsafe(self):
        program = parse_source(
            "DIMENSION A(64), B(8)\n"
            "K = B(1)\n"
            "DO I = 1, 30\n"
            "K = K + 2\n"
            "A(K) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        assert not recover_program(program).changed


class TestDiagnosticsIntegration:
    def test_recovered_site_downgrades_cd301_with_fixit(self):
        program = parse_source(
            "DIMENSION A(64)\n"
            "M = 4\n"
            "DO I = 1, 8\n"
            "A(I * M) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        (d,) = [x for x in lint_program(program) if x.rule == "CD301"]
        assert "recoverable" in d.message
        payload = dict(d.payload)
        assert payload.get("recovered") is True
        (fix,) = d.fixits
        assert fix.replacement == payload["replacement"]

    def test_unrecoverable_site_has_no_fixit(self):
        program = parse_source(
            "DIMENSION A(64)\n"
            "DO I = 1, 8\n"
            "A(MOD(I, 4) + 1) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        (d,) = [x for x in lint_program(program) if x.rule == "CD301"]
        assert "recoverable" not in d.message
        assert not d.fixits


class TestEndToEnd:
    def test_mixed_patterns_one_program(self):
        program = parse_source(
            "PARAMETER (N = 8)\n"
            "DIMENSION A(64), B(64)\n"
            "KP = 0\n"
            "DO I = 1, 30\n"
            "KP = KP + 2\n"
            "B(KP) = 0.0\n"
            "ENDDO\n"
            "DO J = 1, 8\n"
            "DO I = 1, 8\n"
            "A((J - 1) * N + I) = 0.0\n"
            "ENDDO\n"
            "ENDDO\n"
            "END\n"
        )
        result = recover_program(program)
        patterns = {s.pattern for s in result.sites}
        assert "constant-fold" in patterns
        assert "induction-pointer" in patterns
        assert trace_equivalent(program, result.program)

    def test_pointer_carried_across_outer_iterations_is_unsafe(self):
        # KP is not reset per outer iteration, so the inner loop's
        # closed form would only be right on the first outer pass
        program = parse_source(
            "DIMENSION B(64)\n"
            "KP = 0\n"
            "DO J = 1, 8\n"
            "DO I = 1, 8\n"
            "KP = KP + 1\n"
            "B(KP) = 0.0\n"
            "ENDDO\n"
            "ENDDO\n"
            "END\n"
        )
        assert not recover_program(program).changed

    def test_original_program_is_never_mutated(self):
        src = (
            "DIMENSION A(64)\n"
            "M = 4\n"
            "DO I = 1, 8\n"
            "A(I * M) = 0.0\n"
            "ENDDO\n"
            "END\n"
        )
        program = parse_source(src)
        before = unparse_program(program)
        result = recover_program(program)
        assert result.changed
        assert unparse_program(program) == before

    def test_field_workload_sites_recover_and_stay_equivalent(self):
        from repro.workloads import get_workload

        program = get_workload("FIELD").program()
        result = recover_program(program)
        assert len(result.sites) >= 1
        a = generate_trace(program)
        b = generate_trace(result.program)
        assert (a.pages == b.pages).all()
        assert np.array_equal(
            [d.position for d in a.directives],
            [d.position for d in b.directives],
        )
