PROGRAM DIRTY
PARAMETER (N = 6)
DIMENSION A(6, 6), B(6), C(6), D(4), E(256), G(257), T(256)
ALLOCATE ((3,3))
DO I = 1, N
  B(I) = C(I + 1)
  LOCK (3,B,D)
  ALLOCATE ((2,3) else (1,1))
  DO J = 1, N
    D(MOD(J, 4) + 1) = 0.0
  ENDDO
ENDDO
DO K = 5, 1
  C(K) = 0.0
ENDDO
ALLOCATE ((2,5))
DO I = 1, N
  DO J = 1, N
    A(I, J) = B(J)
  ENDDO
ENDDO
DO I = 1, N
  DO J = 1, N
    ALLOCATE ((3,1) else (2,1) else (1,1))
    DO K = 1, N
      B(K) = B(K) + 1.0
    ENDDO
  ENDDO
ENDDO
ALLOCATE ((2,2))
DO M = 1, 10
  DO L = 1, 256
    T(L) = E(L) + E(257 - L) + G(N / 6 + L)
  ENDDO
ENDDO
END
