"""Tests for directive events emitted into the trace."""

import pytest

from repro.directives import instrument_program
from repro.directives.model import AllocateRequest
from repro.frontend.parser import parse_source
from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.tracegen.interpreter import generate_trace


def traced(src, with_locks=True):
    program = parse_source(src)
    plan = instrument_program(program, with_locks=with_locks)
    return generate_trace(program, plan=plan), plan


NESTED = (
    "DIMENSION U(64), W(640)\n"
    "DO I = 1, 4\n"
    "Y = U(I)\n"
    "DO J = 1, 8\n"
    "Z = W(J)\n"
    "ENDDO\n"
    "ENDDO\n"
    "END\n"
)


class TestAllocateEvents:
    def test_outer_allocate_once_inner_per_iteration(self):
        trace, _ = traced(NESTED)
        allocs = [d for d in trace.directives if d.kind is DirectiveKind.ALLOCATE]
        outer = [d for d in allocs if d.site == 0]
        inner = [d for d in allocs if d.site == 1]
        assert len(outer) == 1
        assert len(inner) == 4  # re-executed every outer iteration

    def test_positions_are_monotone(self):
        trace, _ = traced(NESTED)
        positions = [d.position for d in trace.directives]
        assert positions == sorted(positions)

    def test_allocate_carries_plan_requests(self):
        trace, plan = traced(NESTED)
        inner_alloc = [
            d
            for d in trace.directives
            if d.kind is DirectiveKind.ALLOCATE and d.site == 1
        ][0]
        assert inner_alloc.requests == plan.allocates[1].requests

    def test_first_allocate_before_first_reference(self):
        trace, _ = traced(NESTED)
        first = trace.directives[0]
        assert first.position == 0


class TestLockEvents:
    def test_lock_emitted_each_outer_iteration(self):
        trace, _ = traced(NESTED)
        locks = [d for d in trace.directives if d.kind is DirectiveKind.LOCK]
        assert len(locks) == 4
        assert all(lk.priority_index == 2 for lk in locks)

    def test_lock_resolves_to_last_touched_page(self):
        # U is 64 elements = 1 page: all locks pin page 0.
        trace, _ = traced(NESTED)
        locks = [d for d in trace.directives if d.kind is DirectiveKind.LOCK]
        assert all(lk.lock_pages == (0,) for lk in locks)

    def test_lock_follows_moving_page(self):
        # V spans 2 pages; the lock pins whichever page V(I) last touched.
        src = (
            "DIMENSION V(128), W(640)\n"
            "DO I = 63, 66\n"
            "Y = V(I)\n"
            "DO J = 1, 4\nZ = W(J)\nENDDO\n"
            "ENDDO\nEND\n"
        )
        trace, _ = traced(src)
        locks = [d for d in trace.directives if d.kind is DirectiveKind.LOCK]
        assert [lk.lock_pages for lk in locks] == [(0,), (0,), (1,), (1,)]

    def test_unlock_after_nest_lists_locked_pages(self):
        trace, _ = traced(NESTED)
        unlocks = [d for d in trace.directives if d.kind is DirectiveKind.UNLOCK]
        assert len(unlocks) == 1
        assert unlocks[0].lock_pages == (0,)
        assert unlocks[0].position == trace.length  # after the last ref

    def test_without_locks_only_allocates(self):
        trace, _ = traced(NESTED, with_locks=False)
        kinds = {d.kind for d in trace.directives}
        assert kinds == {DirectiveKind.ALLOCATE}

    def test_untouched_array_locks_first_page(self):
        # W referenced before any U access, so U resolves to its first page.
        src = (
            "DIMENSION U(64), W(640)\n"
            "DO I = 1, 2\n"
            "U(I) = 1.0\n"
            "DO J = 1, 4\nZ = W(J)\nENDDO\n"
            "ENDDO\nEND\n"
        )
        program = parse_source(src)
        plan = instrument_program(program)
        # Force the lock to name W (never referenced at level 1): build a
        # synthetic check instead — the first LOCK of the real plan pins U
        # after U(1) was written.
        trace = generate_trace(program, plan=plan)
        locks = [d for d in trace.directives if d.kind is DirectiveKind.LOCK]
        assert locks[0].lock_pages == (0,)


class TestEventValidation:
    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            DirectiveEvent(position=-1, kind=DirectiveKind.UNLOCK, site=0)

    def test_allocate_needs_requests(self):
        with pytest.raises(ValueError):
            DirectiveEvent(position=0, kind=DirectiveKind.ALLOCATE, site=0)

    def test_lock_needs_pj(self):
        with pytest.raises(ValueError):
            DirectiveEvent(
                position=0, kind=DirectiveKind.LOCK, site=0, lock_pages=(1,)
            )

    def test_trace_rejects_unordered_directives(self):
        import numpy as np

        events = [
            DirectiveEvent(
                position=5,
                kind=DirectiveKind.ALLOCATE,
                site=0,
                requests=(AllocateRequest(1, 1),),
            ),
            DirectiveEvent(
                position=2,
                kind=DirectiveKind.ALLOCATE,
                site=0,
                requests=(AllocateRequest(1, 1),),
            ),
        ]
        with pytest.raises(ValueError):
            ReferenceTrace(
                program_name="X",
                pages=np.zeros(10, dtype=np.int32),
                total_pages=1,
                directives=events,
            )

    def test_without_directives_copy(self):
        trace, _ = traced(NESTED)
        bare = trace.without_directives()
        assert bare.directives == []
        assert bare.length == trace.length
