"""The affine trace compiler must be invisible in the output.

Every workload is traced twice — once with the compiled fast path,
once forced through the pure interpreter — and the results must match
element for element: page arrays, directive events (kind, position,
requests, lock pages), array layouts, and the truncation flag.  The
compiler is allowed to decline a nest (fallback), never to change the
trace.
"""

import numpy as np
import pytest

from repro.directives import instrument_program
from repro.frontend.parser import parse_source
from repro.tracegen.interpreter import generate_trace
from repro.workloads import all_workloads, get_workload, workload_names

WORKLOADS = workload_names()


def _pair(program, plan=None, symbols=None, **kwargs):
    slow = generate_trace(
        program, plan=plan, symbols=symbols, compile_nests=False, **kwargs
    )
    fast = generate_trace(
        program, plan=plan, symbols=symbols, compile_nests=True, **kwargs
    )
    return slow, fast


def _assert_identical(slow, fast):
    assert fast.truncated == slow.truncated
    np.testing.assert_array_equal(fast.pages, slow.pages)
    assert fast.array_pages == slow.array_pages
    assert len(fast.directives) == len(slow.directives)
    for a, b in zip(slow.directives, fast.directives):
        assert a.position == b.position
        assert a.kind is b.kind
        assert a.site == b.site
        assert tuple(a.requests) == tuple(b.requests)
        assert a.lock_pages == b.lock_pages


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_uninstrumented(self, name):
        w = get_workload(name)
        _assert_identical(*_pair(w.program(), symbols=w.symbols()))

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_instrumented(self, name):
        w = get_workload(name)
        program = w.program()
        plan = instrument_program(program)
        _assert_identical(*_pair(program, plan=plan, symbols=w.symbols()))

    def test_compiler_engages_somewhere(self):
        """Guard against the fast path silently turning itself off."""
        from repro.tracegen.compile import TraceCompiler
        from repro.tracegen.interpreter import Interpreter

        total = 0
        for w in all_workloads():
            it = Interpreter(w.program(), symbols=w.symbols(), compile_nests=True)
            it.run()
            assert isinstance(it._compiler, TraceCompiler)
            total += it._compiler.compiled_refs
        assert total > 100_000


class TestTruncation:
    def test_truncated_prefix_identical(self):
        w = get_workload("TQL")
        slow, fast = _pair(
            w.program(), symbols=w.symbols(), max_references=5_000
        )
        assert slow.truncated and fast.truncated
        assert len(fast.pages) == len(slow.pages) == 5_000
        np.testing.assert_array_equal(fast.pages, slow.pages)

    def test_truncation_inside_compiled_nest(self):
        src = (
            "PROGRAM TRUNC\n"
            "DIMENSION A(4096)\n"
            "DO I = 1, 4096\n"
            "A(I) = I\n"
            "ENDDO\n"
            "END\n"
        )
        program = parse_source(src)
        _assert_identical(*_pair(program, max_references=100))


class TestAdversarialNests:
    """Small programs aimed at the compiler's trickiest legality calls."""

    CASES = {
        "zero_trip": (
            "PROGRAM ZT\n"
            "DIMENSION A(8)\n"
            "N = 0\n"
            "DO I = 1, N\n"
            "A(I) = 1.0\n"
            "ENDDO\n"
            "X = A(1)\n"
            "END\n"
        ),
        "negative_step": (
            "PROGRAM NS\n"
            "DIMENSION A(64)\n"
            "DO I = 64, 1, -3\n"
            "A(I) = I\n"
            "ENDDO\n"
            "END\n"
        ),
        "triangular": (
            "PROGRAM TRI\n"
            "DIMENSION A(32, 32)\n"
            "DO I = 1, 32\n"
            "DO J = I, 32\n"
            "A(J, I) = A(I, J) + 1.0\n"
            "ENDDO\n"
            "ENDDO\n"
            "END\n"
        ),
        "carried_scalar": (
            "PROGRAM CARRY\n"
            "DIMENSION A(64)\n"
            "S = 0.0\n"
            "DO I = 1, 64\n"
            "S = S + A(I)\n"
            "A(I) = S\n"
            "ENDDO\n"
            "END\n"
        ),
        "if_guard": (
            "PROGRAM GUARD\n"
            "DIMENSION A(64), B(64)\n"
            "DO I = 1, 64\n"
            "IF (I .GT. 32) A(I) = B(I)\n"
            "ENDDO\n"
            "END\n"
        ),
        "in_place_stencil": (
            "PROGRAM STEN\n"
            "DIMENSION A(66)\n"
            "DO I = 2, 65\n"
            "A(I) = A(I - 1) + A(I + 1)\n"
            "ENDDO\n"
            "END\n"
        ),
        "data_dependent_subscript": (
            "PROGRAM DDEP\n"
            "DIMENSION P(16), A(64)\n"
            "DO I = 1, 16\n"
            "P(I) = 17 - I\n"
            "ENDDO\n"
            "DO I = 1, 16\n"
            "K = P(I)\n"
            "A(K) = 1.0\n"
            "ENDDO\n"
            "END\n"
        ),
        "loop_var_after_exit": (
            "PROGRAM LVAR\n"
            "DIMENSION A(8)\n"
            "DO I = 1, 5\n"
            "A(I) = 0.0\n"
            "ENDDO\n"
            "A(I) = 9.0\n"
            "END\n"
        ),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_equivalent(self, case):
        program = parse_source(self.CASES[case])
        _assert_identical(*_pair(program))

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_equivalent_instrumented(self, case):
        program = parse_source(self.CASES[case])
        plan = instrument_program(program, with_locks=True)
        _assert_identical(*_pair(program, plan=plan))
