"""Round-trip tests for trace persistence."""

import numpy as np
import pytest

from repro.directives import instrument_program
from repro.frontend.parser import parse_source
from repro.tracegen.interpreter import generate_trace
from repro.tracegen.io import FORMAT_VERSION, load_trace, save_trace

SRC = (
    "PROGRAM IOT\n"
    "DIMENSION U(64), W(640)\n"
    "DO I = 1, 4\n"
    "Y = U(I)\n"
    "DO J = 1, 8\n"
    "Z = W(J)\n"
    "ENDDO\n"
    "ENDDO\n"
    "END\n"
)


@pytest.fixture
def trace():
    program = parse_source(SRC)
    plan = instrument_program(program)
    return generate_trace(program, plan=plan)


class TestRoundTrip:
    def test_pages_identical(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t")
        loaded = load_trace(path)
        assert (loaded.pages == trace.pages).all()
        assert loaded.pages.dtype == np.int32

    def test_metadata_preserved(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t"))
        assert loaded.program_name == trace.program_name
        assert loaded.total_pages == trace.total_pages
        assert loaded.truncated == trace.truncated
        assert loaded.array_pages == trace.array_pages

    def test_directives_preserved(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t"))
        assert len(loaded.directives) == len(trace.directives)
        for a, b in zip(loaded.directives, trace.directives):
            assert a == b

    def test_npz_suffix_appended(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "mytrace")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_replay_equivalence(self, trace, tmp_path):
        from repro.vm.policies import CDPolicy
        from repro.vm.simulator import simulate

        loaded = load_trace(save_trace(trace, tmp_path / "t"))
        a = simulate(trace, CDPolicy())
        b = simulate(loaded, CDPolicy())
        assert a.page_faults == b.page_faults
        assert a.space_time == b.space_time


class TestErrors:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ValueError, match="not a saved trace"):
            load_trace(path)

    def test_version_mismatch(self, trace, tmp_path):
        import json

        path = save_trace(trace, tmp_path / "t")
        with np.load(path) as archive:
            pages = archive["pages"]
            header = json.loads(archive["header"].tobytes().decode())
        header["format_version"] = FORMAT_VERSION + 10
        np.savez(
            path,
            pages=pages,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="format"):
            load_trace(path)
