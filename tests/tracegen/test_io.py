"""Round-trip tests for trace persistence."""

import numpy as np
import pytest

from repro.directives import instrument_program
from repro.frontend.parser import parse_source
from repro.tracegen.events import DirectiveKind
from repro.tracegen.interpreter import generate_trace
from repro.tracegen.io import (
    FORMAT_VERSION,
    load_sweeps,
    load_trace,
    save_sweeps,
    save_trace,
)

SRC = (
    "PROGRAM IOT\n"
    "DIMENSION U(64), W(640)\n"
    "DO I = 1, 4\n"
    "Y = U(I)\n"
    "DO J = 1, 8\n"
    "Z = W(J)\n"
    "ENDDO\n"
    "ENDDO\n"
    "END\n"
)


@pytest.fixture
def trace():
    program = parse_source(SRC)
    plan = instrument_program(program)
    return generate_trace(program, plan=plan)


class TestRoundTrip:
    def test_pages_identical(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t")
        loaded = load_trace(path)
        assert (loaded.pages == trace.pages).all()
        assert loaded.pages.dtype == np.int32

    def test_metadata_preserved(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t"))
        assert loaded.program_name == trace.program_name
        assert loaded.total_pages == trace.total_pages
        assert loaded.truncated == trace.truncated
        assert loaded.array_pages == trace.array_pages

    def test_directives_preserved(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t"))
        assert len(loaded.directives) == len(trace.directives)
        for a, b in zip(loaded.directives, trace.directives):
            assert a == b

    def test_npz_suffix_appended(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "mytrace")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_replay_equivalence(self, trace, tmp_path):
        from repro.vm.policies import CDPolicy
        from repro.vm.simulator import simulate

        loaded = load_trace(save_trace(trace, tmp_path / "t"))
        a = simulate(trace, CDPolicy())
        b = simulate(loaded, CDPolicy())
        assert a.page_faults == b.page_faults
        assert a.space_time == b.space_time


class TestFullEventRoundTrip:
    """A trace carrying every directive kind plus the truncation flag."""

    @pytest.fixture
    def locked_trace(self):
        program = parse_source(SRC)
        plan = instrument_program(program, with_locks=True)
        # Truncate mid-run so the flag exercises the header too.
        return generate_trace(program, plan=plan, max_references=20)

    def test_event_kinds_present(self, locked_trace):
        kinds = {d.kind for d in locked_trace.directives}
        assert DirectiveKind.ALLOCATE in kinds
        assert DirectiveKind.LOCK in kinds

    def test_round_trip(self, locked_trace, tmp_path):
        assert locked_trace.truncated
        loaded = load_trace(save_trace(locked_trace, tmp_path / "t"))
        assert loaded.truncated
        assert (loaded.pages == locked_trace.pages).all()
        assert list(loaded.directives) == list(locked_trace.directives)
        for a, b in zip(loaded.directives, locked_trace.directives):
            assert a.kind is b.kind
            assert a.position == b.position
            assert a.lock_pages == b.lock_pages
            assert tuple(a.requests) == tuple(b.requests)

    def test_unlock_round_trip(self, tmp_path):
        program = parse_source(SRC)
        plan = instrument_program(program, with_locks=True)
        trace = generate_trace(program, plan=plan)  # runs to completion
        kinds = {d.kind for d in trace.directives}
        assert DirectiveKind.UNLOCK in kinds
        loaded = load_trace(save_trace(trace, tmp_path / "t"))
        assert list(loaded.directives) == list(trace.directives)
        assert not loaded.truncated


class TestSweepRoundTrip:
    def test_arrays_identical(self, tmp_path):
        arrays = {
            "distances": np.array([9, 1, 4], dtype=np.int64),
            "distinct": np.array([1, 2, 2], dtype=np.int64),
        }
        path = save_sweeps(arrays, tmp_path / "s")
        loaded = load_sweeps(path)
        assert set(loaded) == {"distances", "distinct"}
        for key in arrays:
            np.testing.assert_array_equal(loaded[key], arrays[key])

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "s.npz"
        np.savez(
            path,
            distances=np.zeros(3),
            format_version=np.array(FORMAT_VERSION + 10),
        )
        with pytest.raises(ValueError, match="format"):
            load_sweeps(path)

    def test_unstamped_archive_rejected(self, tmp_path):
        path = tmp_path / "s.npz"
        np.savez(path, distances=np.zeros(3))
        with pytest.raises(ValueError, match="format"):
            load_sweeps(path)


class TestErrors:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ValueError, match="not a saved trace"):
            load_trace(path)

    def test_version_mismatch(self, trace, tmp_path):
        import json

        path = save_trace(trace, tmp_path / "t")
        with np.load(path) as archive:
            pages = archive["pages"]
            header = json.loads(archive["header"].tobytes().decode())
        header["format_version"] = FORMAT_VERSION + 10
        np.savez(
            path,
            pages=pages,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="format"):
            load_trace(path)
