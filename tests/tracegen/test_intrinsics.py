"""Table-driven tests: every supported intrinsic, checked numerically."""

import math

import pytest

from repro.frontend.parser import parse_source
from repro.tracegen.interpreter import Interpreter

CASES = [
    ("SQRT(9.0)", 3.0),
    ("ABS(-4.5)", 4.5),
    ("IABS(-4)", 4),
    ("EXP(0.0)", 1.0),
    ("SIN(0.0)", 0.0),
    ("COS(0.0)", 1.0),
    ("TAN(0.0)", 0.0),
    ("ATAN(1.0)", math.atan(1.0)),
    ("LOG(1.0)", 0.0),
    ("ALOG(EXP(2.0))", 2.0),
    ("LOG10(100.0)", 2.0),
    ("MOD(17, 5)", 2),
    ("MOD(-17, 5)", -2),
    ("AMOD(5.5, 2.0)", 1.5),
    ("MIN(3, 1, 2)", 1),
    ("MAX(3, 1, 2)", 3),
    ("MIN0(7, 4)", 4),
    ("MAX0(7, 4)", 7),
    ("AMIN1(1.5, 2.5)", 1.5),
    ("AMAX1(1.5, 2.5)", 2.5),
    ("SIGN(2.0, -1.0)", -2.0),
    ("SIGN(-2.0, 1.0)", 2.0),
    ("ISIGN(3, -7)", -3),
    ("FLOAT(4)", 4.0),
    ("REAL(4)", 4.0),
    ("DBLE(4)", 4.0),
    ("INT(3.99)", 3),
    ("INT(-3.99)", -3),
    ("IFIX(2.5)", 2),
    ("NINT(2.5)", 2),  # Python banker's rounding at .5
    ("NINT(2.6)", 3),
]


@pytest.mark.parametrize("expr,expected", CASES)
def test_intrinsic(expr, expected):
    interpreter = Interpreter(parse_source(f"X = {expr}\nEND\n"))
    interpreter.run()
    value = interpreter.scalars["X"]
    assert value == pytest.approx(expected)
    # Integer-valued intrinsics must return ints (they feed subscripts).
    if isinstance(expected, int):
        assert isinstance(value, int)


class TestRuntimeLoopBounds:
    def test_array_valued_do_bound(self):
        src = (
            "DIMENSION LIM(3), V(16)\n"
            "LIM(1) = 2\n"
            "LIM(2) = 5\n"
            "LIM(3) = 1\n"
            "N = 0\n"
            "DO 10 I = 1, 3\n"
            "DO 20 J = 1, INT(LIM(I))\n"
            "V(J) = V(J) + 1.0\n"
            "N = N + 1\n"
            "20 CONTINUE\n"
            "10 CONTINUE\n"
            "END\n"
        )
        it = Interpreter(parse_source(src))
        it.run()
        assert it.scalars["N"] == 2 + 5 + 1

    def test_bound_refs_traced_once_per_entry(self):
        src = (
            "DIMENSION LIM(4)\n"
            "LIM(1) = 2\n"
            "DO 10 K = 1, INT(LIM(1))\n"
            "X = K\n"
            "10 CONTINUE\n"
            "END\n"
        )
        from repro.tracegen.interpreter import generate_trace

        trace = generate_trace(parse_source(src))
        # one write + one read at loop entry (bounds evaluate once).
        assert trace.length == 2

    def test_non_integer_bound_rejected(self):
        from repro.tracegen.interpreter import InterpreterError

        src = "DO I = 1, 2.5\nX = I\nENDDO\nEND\n"
        with pytest.raises(InterpreterError, match="integer"):
            Interpreter(parse_source(src)).run()
