"""Unit tests for the page-aligned column-major memory layout."""

import pytest

from repro.analysis.parameters import PageConfig
from repro.frontend.parser import parse_source
from repro.frontend.symbols import SymbolTable
from repro.tracegen.paging import MemoryLayout


def layout_for(src, **cfg):
    symbols = SymbolTable.from_program(parse_source(src))
    return MemoryLayout(symbols, PageConfig(**cfg) if cfg else None)


class TestPlacement:
    def test_arrays_page_aligned_in_declaration_order(self):
        lo = layout_for("DIMENSION A(100), B(64), C(10)\nEND\n")
        assert lo.placements["A"].first_page == 0
        assert lo.placements["A"].page_count == 2  # ceil(100/64)
        assert lo.placements["B"].first_page == 2
        assert lo.placements["B"].page_count == 1
        assert lo.placements["C"].first_page == 3
        assert lo.total_pages == 4

    def test_total_pages_is_sum_of_avs(self):
        lo = layout_for("DIMENSION A(64, 10), V(100)\nEND\n")
        assert lo.total_pages == 10 + 2

    def test_no_arrays(self):
        lo = layout_for("X = 1\nEND\n")
        assert lo.total_pages == 0


class TestPageOf:
    def test_vector_pages(self):
        lo = layout_for("DIMENSION V(130)\nEND\n")
        assert lo.page_of("V", (1,)) == 0
        assert lo.page_of("V", (64,)) == 0
        assert lo.page_of("V", (65,)) == 1
        assert lo.page_of("V", (130,)) == 2

    def test_matrix_column_major_pages(self):
        # 64 x 4: each column fills exactly one page.
        lo = layout_for("DIMENSION A(64, 4)\nEND\n")
        assert lo.page_of("A", (1, 1)) == 0
        assert lo.page_of("A", (64, 1)) == 0
        assert lo.page_of("A", (1, 2)) == 1
        assert lo.page_of("A", (64, 4)) == 3

    def test_row_walk_touches_every_column_page(self):
        lo = layout_for("DIMENSION A(64, 4)\nEND\n")
        pages = {lo.page_of("A", (5, j)) for j in range(1, 5)}
        assert pages == {0, 1, 2, 3}

    def test_second_array_offset(self):
        lo = layout_for("DIMENSION A(64), B(64)\nEND\n")
        assert lo.page_of("B", (1,)) == 1

    def test_page_of_linear(self):
        lo = layout_for("DIMENSION A(64), B(64)\nEND\n")
        assert lo.page_of_linear("B", 0) == 1
        with pytest.raises(ValueError):
            lo.page_of_linear("B", 64)

    def test_custom_page_size(self):
        lo = layout_for("DIMENSION V(64)\nEND\n", page_bytes=128)
        # 32 elements/page.
        assert lo.page_of("V", (33,)) == 1
        assert lo.total_pages == 2


class TestReverseLookup:
    def test_pages_of_array(self):
        lo = layout_for("DIMENSION A(100), B(64)\nEND\n")
        assert list(lo.pages_of_array("B")) == [2]

    def test_array_of_page(self):
        lo = layout_for("DIMENSION A(100), B(64)\nEND\n")
        assert lo.array_of_page(0) == "A"
        assert lo.array_of_page(1) == "A"
        assert lo.array_of_page(2) == "B"

    def test_array_of_page_out_of_range(self):
        lo = layout_for("DIMENSION A(64)\nEND\n")
        with pytest.raises(ValueError):
            lo.array_of_page(5)
