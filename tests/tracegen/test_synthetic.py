"""Tests for the synthetic reference-string generators."""

import numpy as np
import pytest

from repro.tracegen.synthetic import (
    independent_references,
    nested_loop_walk,
    phased_localities,
    sequential_sweep,
    with_allocate_events,
)
from repro.vm.policies import CDPolicy, LRUPolicy, WorkingSetPolicy
from repro.vm.simulator import simulate


class TestSequentialSweep:
    def test_shape(self):
        trace = sequential_sweep(10, sweeps=3)
        assert trace.length == 30
        assert trace.total_pages == 10

    def test_lru_worst_case(self):
        # Cyclic sweep at any allocation below the set size: every
        # reference faults under LRU.
        trace = sequential_sweep(10, sweeps=5)
        result = simulate(trace, LRUPolicy(frames=9))
        assert result.page_faults == trace.length

    def test_validation(self):
        with pytest.raises(ValueError):
            sequential_sweep(0)
        with pytest.raises(ValueError):
            sequential_sweep(5, sweeps=0)


class TestNestedLoopWalk:
    def test_length(self):
        trace = nested_loop_walk(
            outer_iterations=3, inner_pages=4, inner_repeats=2, shared_pages=2
        )
        assert trace.length == 3 * (2 + 2 * 4)

    def test_shared_pages_precede_inner(self):
        trace = nested_loop_walk(
            outer_iterations=1, inner_pages=3, inner_repeats=1, shared_pages=2
        )
        assert list(trace.pages[:2]) == [0, 1]
        assert list(trace.pages[2:]) == [2, 3, 4]

    def test_inner_locality_fits_small_allocation(self):
        trace = nested_loop_walk(
            outer_iterations=10, inner_pages=3, inner_repeats=5
        )
        result = simulate(trace, LRUPolicy(frames=3))
        assert result.page_faults == 3  # cold only: the locality fits

    def test_validation(self):
        with pytest.raises(ValueError):
            nested_loop_walk(0, 1, 1)
        with pytest.raises(ValueError):
            nested_loop_walk(1, 1, 1, shared_pages=-1)


class TestPhasedLocalities:
    def test_disjoint_phases(self):
        trace = phased_localities([(2, 10), (3, 9)])
        assert trace.length == 19
        assert set(trace.pages[:10]) == {0, 1}
        assert set(trace.pages[10:]) == {2, 3, 4}

    def test_overlapping_phases(self):
        trace = phased_localities([(2, 10), (3, 9)], disjoint=False)
        assert set(trace.pages[10:]) == {0, 1, 2}

    def test_ws_transition_behavior(self):
        trace = phased_localities([(3, 300), (3, 300)])
        result = simulate(trace, WorkingSetPolicy(tau=50))
        assert result.page_faults == 6  # cold faults of both phases

    def test_validation(self):
        with pytest.raises(ValueError):
            phased_localities([])
        with pytest.raises(ValueError):
            phased_localities([(0, 5)])


class TestIndependentReferences:
    def test_reproducible(self):
        a = independent_references(10, 100, seed=42)
        b = independent_references(10, 100, seed=42)
        assert (a.pages == b.pages).all()

    def test_uniform_covers_universe(self):
        trace = independent_references(8, 4000, seed=1)
        assert set(np.unique(trace.pages)) == set(range(8))

    def test_skew_concentrates_low_pages(self):
        trace = independent_references(16, 4000, seed=1, skew=0.5)
        counts = np.bincount(trace.pages, minlength=16)
        assert counts[0] > counts[4] > counts[10]

    def test_validation(self):
        with pytest.raises(ValueError):
            independent_references(0, 10)
        with pytest.raises(ValueError):
            independent_references(4, 10, skew=1.0)


class TestOracleAllocate:
    def test_events_align_with_phases(self):
        phases = [(2, 100), (5, 100)]
        trace = with_allocate_events(phased_localities(phases), phases)
        assert [d.position for d in trace.directives] == [0, 100]
        assert [d.requests[0].pages for d in trace.directives] == [2, 5]

    def test_oracle_cd_only_cold_faults(self):
        # With perfectly-sized per-phase allocations CD faults only on
        # cold pages.
        phases = [(2, 200), (5, 200), (3, 200)]
        trace = with_allocate_events(phased_localities(phases), phases)
        result = simulate(trace, CDPolicy())
        assert result.page_faults == 2 + 5 + 3

    def test_oracle_cd_releases_memory_between_phases(self):
        phases = [(8, 200), (2, 200)]
        trace = with_allocate_events(phased_localities(phases), phases)
        policy = CDPolicy()
        simulate(trace, policy)
        assert policy.resident_size <= 2

    def test_oracle_cd_beats_matched_lru(self):
        # A big phase followed by small ones: LRU at CD's average memory
        # thrashes the big phase.
        phases = [(20, 400), (2, 400), (20, 400), (2, 400)]
        trace = with_allocate_events(phased_localities(phases), phases)
        cd = simulate(trace, CDPolicy())
        lru = simulate(
            trace.without_directives(),
            LRUPolicy(frames=max(1, round(cd.mem_average))),
        )
        assert cd.page_faults < lru.page_faults
