"""Unit tests for the trace-generating interpreter."""

import numpy as np
import pytest

from repro.frontend.parser import parse_source
from repro.tracegen.interpreter import (
    ExecutionLimitError,
    Interpreter,
    InterpreterError,
    generate_trace,
)


def run(src, **kwargs):
    return generate_trace(parse_source(src), **kwargs)


def interp(src, **kwargs):
    program = parse_source(src)
    it = Interpreter(program, **kwargs)
    trace = it.run()
    return it, trace


class TestNumerics:
    def test_scalar_arithmetic(self):
        it, _ = interp("X = 1 + 2 * 3\nEND\n")
        assert it.scalars["X"] == 7

    def test_fortran_integer_division(self):
        it, _ = interp("I = 7 / 2\nJ = -7 / 2\nEND\n")
        assert it.scalars["I"] == 3
        assert it.scalars["J"] == -3  # truncation toward zero

    def test_real_division(self):
        it, _ = interp("X = 7.0 / 2\nEND\n")
        assert it.scalars["X"] == 3.5

    def test_power(self):
        it, _ = interp("X = 2 ** 10\nEND\n")
        assert it.scalars["X"] == 1024

    def test_mod_intrinsic(self):
        it, _ = interp("I = MOD(8, 3)\nJ = MOD(-8, 3)\nEND\n")
        assert it.scalars["I"] == 2
        assert it.scalars["J"] == -2

    def test_sqrt_abs(self):
        it, _ = interp("X = SQRT(ABS(-16.0))\nEND\n")
        assert it.scalars["X"] == 4.0

    def test_min_max_variadic(self):
        it, _ = interp("X = MAX(1, 5, 3)\nY = MIN(2.0, -1.0)\nEND\n")
        assert it.scalars["X"] == 5
        assert it.scalars["Y"] == -1.0

    def test_sign_intrinsic(self):
        it, _ = interp("X = SIGN(3.0, -2.0)\nY = SIGN(3.0, 2.0)\nEND\n")
        assert it.scalars["X"] == -3.0
        assert it.scalars["Y"] == 3.0

    def test_float_int_conversion(self):
        it, _ = interp("X = FLOAT(3)\nI = INT(3.9)\nEND\n")
        assert it.scalars["X"] == 3.0
        assert it.scalars["I"] == 3

    def test_array_values_persist(self):
        it, _ = interp(
            "DIMENSION V(4)\nV(2) = 5.0\nX = V(2) * 2\nEND\n"
        )
        assert it.scalars["X"] == 10.0

    def test_division_by_zero(self):
        with pytest.raises(InterpreterError, match="division by zero"):
            interp("X = 1.0 / 0.0\nEND\n")

    def test_sqrt_domain_error(self):
        with pytest.raises(InterpreterError, match="domain"):
            interp("X = SQRT(-1.0)\nEND\n")

    def test_unknown_function(self):
        with pytest.raises(InterpreterError, match="unknown function"):
            interp("X = FROB(1)\nEND\n")

    def test_unset_scalar(self):
        with pytest.raises(InterpreterError, match="before assignment"):
            interp("X = Y + 1\nEND\n")


class TestControlFlow:
    def test_do_loop_trip_count(self):
        it, _ = interp("N = 0\nDO I = 1, 10\nN = N + 1\nENDDO\nEND\n")
        assert it.scalars["N"] == 10

    def test_do_loop_with_step(self):
        it, _ = interp("N = 0\nDO I = 1, 10, 3\nN = N + I\nENDDO\nEND\n")
        assert it.scalars["N"] == 1 + 4 + 7 + 10

    def test_zero_trip_loop(self):
        it, _ = interp("N = 0\nDO I = 5, 1\nN = N + 1\nENDDO\nEND\n")
        assert it.scalars["N"] == 0

    def test_negative_step(self):
        it, _ = interp("N = 0\nDO I = 5, 1, -1\nN = N + I\nENDDO\nEND\n")
        assert it.scalars["N"] == 15

    def test_loop_var_after_normal_exit(self):
        it, _ = interp("DO I = 1, 3\nX = I\nENDDO\nEND\n")
        assert it.scalars["I"] == 4

    def test_zero_step_rejected(self):
        with pytest.raises(InterpreterError, match="step of zero"):
            interp("DO I = 1, 3, 0\nX = I\nENDDO\nEND\n")

    def test_if_block_branch_selection(self):
        src = (
            "X = 5\n"
            "IF (X < 3) THEN\nY = 1\nELSEIF (X < 10) THEN\nY = 2\n"
            "ELSE\nY = 3\nENDIF\nEND\n"
        )
        it, _ = interp(src)
        assert it.scalars["Y"] == 2

    def test_logical_if(self):
        it, _ = interp("X = 1\nIF (X == 1) X = 2\nEND\n")
        assert it.scalars["X"] == 2

    def test_logical_operators(self):
        it, _ = interp(
            "X = 0\nIF (1 < 2 .AND. .NOT. (3 < 2)) X = 1\nEND\n"
        )
        assert it.scalars["X"] == 1

    def test_stop_terminates(self):
        it, _ = interp("X = 1\nSTOP\nX = 2\nEND\n")
        assert it.scalars["X"] == 1

    def test_exit_leaves_innermost_loop(self):
        src = (
            "N = 0\n"
            "DO I = 1, 5\n"
            "IF (I == 3) EXIT\n"
            "N = N + 1\n"
            "ENDDO\nEND\n"
        )
        it, _ = interp(src)
        assert it.scalars["N"] == 2

    def test_convergence_loop(self):
        # Data-dependent termination: Newton iteration for sqrt(2).
        src = (
            "X = 1.0\n"
            "DO I = 1, 100\n"
            "X = 0.5 * (X + 2.0 / X)\n"
            "IF (ABS(X * X - 2.0) < 1.0E-12) EXIT\n"
            "ENDDO\nEND\n"
        )
        it, _ = interp(src)
        assert abs(it.scalars["X"] - 2.0**0.5) < 1e-9
        assert it.scalars["I"] < 10


class TestTraceEmission:
    def test_one_ref_per_access(self):
        # B read + A write per iteration = 2 refs x 4 iterations.
        src = (
            "DIMENSION A(4), B(4)\n"
            "DO I = 1, 4\nA(I) = B(I)\nENDDO\nEND\n"
        )
        trace = run(src)
        assert trace.length == 8

    def test_read_before_write_order(self):
        src = "DIMENSION A(64), B(64)\nA(1) = B(1)\nEND\n"
        trace = run(src)
        # B is laid out after A: read B page (1) then write A page (0).
        assert list(trace.pages) == [1, 0]

    def test_index_expression_refs_counted(self):
        src = "DIMENSION A(64), IDX(64)\nIDX(1) = 2\nX = A(IDX(1))\nEND\n"
        trace = run(src)
        # write IDX, read IDX, read A.
        assert trace.length == 3

    def test_sequential_walk_pages(self):
        src = "DIMENSION V(128)\nDO I = 1, 128\nV(I) = 1.0\nENDDO\nEND\n"
        trace = run(src)
        assert trace.length == 128
        assert list(np.unique(trace.pages)) == [0, 1]
        # First 64 refs hit page 0, next 64 hit page 1.
        assert set(trace.pages[:64]) == {0}
        assert set(trace.pages[64:]) == {1}

    def test_column_major_row_walk_strides(self):
        src = (
            "DIMENSION A(64, 4)\n"
            "DO J = 1, 4\nA(1, J) = 1.0\nENDDO\nEND\n"
        )
        trace = run(src)
        assert list(trace.pages) == [0, 1, 2, 3]

    def test_out_of_bounds_is_runtime_error(self):
        src = "DIMENSION V(4)\nDO I = 1, 5\nV(I) = 1.0\nENDDO\nEND\n"
        with pytest.raises(InterpreterError, match="out of bounds"):
            run(src)

    def test_scalar_only_program_empty_trace(self):
        trace = run("X = 1\nY = X + 2\nEND\n")
        assert trace.length == 0
        assert trace.total_pages == 1  # clamped to 1 for simulators

    def test_footprint_by_array(self):
        src = (
            "DIMENSION A(128), B(128)\n"
            "DO I = 1, 64\nA(I) = 1.0\nENDDO\n"
            "B(1) = 1.0\nEND\n"
        )
        trace = run(src)
        fp = trace.footprint_by_array()
        assert fp == {"A": 1, "B": 1}

    def test_summary_mentions_program(self):
        trace = run("PROGRAM T\nDIMENSION V(4)\nV(1) = 1.0\nEND\n")
        assert "T" in trace.summary()


class TestLimits:
    def test_reference_cap_truncates(self):
        src = (
            "DIMENSION V(64)\n"
            "DO I = 1, 1000\nV(1) = V(1) + 1.0\nENDDO\nEND\n"
        )
        trace = run(src, max_references=100)
        assert trace.truncated
        assert trace.length == 100

    def test_operation_budget(self):
        src = "DO I = 1, 100000\nX = 1\nENDDO\nEND\n"
        with pytest.raises(ExecutionLimitError):
            run(src, max_operations=1000)
