"""Sharded on-disk trace format: round-trips and failure modes."""

import json

import numpy as np
import pytest

from repro.directives.model import AllocateRequest
from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.tracegen.io import (
    ShardedTraceWriter,
    open_sharded_trace,
    save_trace_sharded,
)


def make_trace(pages, directives=None, name="SHARD"):
    pages = np.asarray(pages, dtype=np.int32)
    total = int(pages.max()) + 1 if len(pages) else 1
    return ReferenceTrace(
        program_name=name,
        pages=pages,
        total_pages=total,
        directives=list(directives or []),
    )


def alloc(position):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.ALLOCATE,
        site=0,
        requests=(AllocateRequest(priority_index=2, pages=4),),
    )


class TestRoundTrip:
    def test_pages_identical_across_shards(self, tmp_path):
        trace = make_trace(np.arange(1000) % 37)
        save_trace_sharded(trace, tmp_path / "t", shard_size=64)
        loaded = open_sharded_trace(tmp_path / "t")
        assert loaded.length == 1000
        np.testing.assert_array_equal(
            loaded.to_reference_trace().pages, trace.pages
        )

    def test_metadata_and_directives_preserved(self, tmp_path):
        directives = [alloc(0), alloc(64), alloc(100)]
        trace = make_trace([1, 2, 3] * 50, directives=directives)
        save_trace_sharded(trace, tmp_path / "t", shard_size=64)
        loaded = open_sharded_trace(tmp_path / "t")
        assert loaded.program_name == "SHARD"
        assert loaded.total_pages == trace.total_pages
        assert list(loaded.directives) == directives

    def test_empty_trace(self, tmp_path):
        trace = make_trace([])
        save_trace_sharded(trace, tmp_path / "t", shard_size=8)
        loaded = open_sharded_trace(tmp_path / "t")
        assert loaded.length == 0
        assert list(loaded.as_chunks(16).chunks()) == []
        assert loaded.to_reference_trace().pages.shape == (0,)

    def test_read_straddles_shard_boundary(self, tmp_path):
        trace = make_trace(np.arange(200) % 11)
        save_trace_sharded(trace, tmp_path / "t", shard_size=50)
        loaded = open_sharded_trace(tmp_path / "t")
        np.testing.assert_array_equal(
            loaded.read(40, 160), trace.pages[40:160]
        )

    def test_chunks_reassemble_regardless_of_chunk_size(self, tmp_path):
        trace = make_trace(np.arange(333) % 7)
        save_trace_sharded(trace, tmp_path / "t", shard_size=100)
        loaded = open_sharded_trace(tmp_path / "t")
        for chunk_size in (1, 33, 100, 150, 999):
            chunks = list(loaded.as_chunks(chunk_size).chunks())
            pages = np.concatenate([c.pages for c in chunks])
            np.testing.assert_array_equal(pages, trace.pages)


class TestWriter:
    def test_incremental_appends_shard_evenly(self, tmp_path):
        writer = ShardedTraceWriter(
            tmp_path / "t", "INC", total_pages=10, shard_size=32
        )
        rng = np.random.default_rng(0)
        written = []
        for size in (1, 31, 7, 40, 0, 21):
            piece = rng.integers(0, 10, size=size).astype(np.int32)
            writer.append(piece)
            written.append(piece)
        writer.close()
        manifest = json.loads((tmp_path / "t" / "manifest.json").read_text())
        # every shard is exactly shard_size except possibly the last
        lengths = [int(s["length"]) for s in manifest["shards"]]
        assert lengths[:-1] == [32] * (len(lengths) - 1)
        assert sum(lengths) == 100
        loaded = open_sharded_trace(tmp_path / "t")
        np.testing.assert_array_equal(
            loaded.to_reference_trace().pages, np.concatenate(written)
        )

    def test_out_of_range_page_rejected(self, tmp_path):
        writer = ShardedTraceWriter(
            tmp_path / "t", "BAD", total_pages=4, shard_size=8
        )
        with pytest.raises(ValueError):
            writer.append(np.array([5], dtype=np.int32))

    def test_close_is_idempotent(self, tmp_path):
        writer = ShardedTraceWriter(
            tmp_path / "t", "TWICE", total_pages=2, shard_size=8
        )
        writer.append(np.zeros(3, dtype=np.int32))
        writer.close()
        writer.close()
        assert open_sharded_trace(tmp_path / "t").length == 3


class TestCorruption:
    def test_missing_manifest(self, tmp_path):
        (tmp_path / "t").mkdir()
        with pytest.raises(ValueError, match="manifest"):
            open_sharded_trace(tmp_path / "t")

    def test_truncated_shard_rejected_with_clear_error(self, tmp_path):
        trace = make_trace(np.arange(400) % 13)
        save_trace_sharded(trace, tmp_path / "t", shard_size=128)
        shard = tmp_path / "t" / "shard-00001.npy"
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) // 2])
        loaded = open_sharded_trace(tmp_path / "t")
        with pytest.raises(ValueError, match="truncated or corrupted"):
            loaded.read(0, 400)

    def test_missing_shard_rejected(self, tmp_path):
        trace = make_trace(np.arange(300) % 5)
        save_trace_sharded(trace, tmp_path / "t", shard_size=100)
        (tmp_path / "t" / "shard-00002.npy").unlink()
        loaded = open_sharded_trace(tmp_path / "t")
        with pytest.raises(ValueError, match="truncated or corrupted"):
            loaded.read(250, 300)
