"""Catalog-level tests: every benchmark parses, runs, and has the
documented shape."""

import math

import pytest

from repro.analysis.locality import analyze_program
from repro.directives import instrument_program
from repro.tracegen.interpreter import Interpreter, generate_trace
from repro.workloads import all_workloads, get_workload, workload_names

NAMES = [
    "MAIN",
    "FDJAC",
    "TQL",
    "FIELD",
    "INIT",
    "APPROX",
    "HYBRJ",
    "CONDUCT",
    "HWSCRT",
]


class TestCatalog:
    def test_all_nine_present(self):
        assert workload_names() == NAMES

    def test_lookup_case_insensitive(self):
        assert get_workload("tql").name == "TQL"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("NOPE")

    def test_programs_cached(self):
        w = get_workload("MAIN")
        assert w.program() is w.program()
        assert w.symbols() is w.symbols()

    def test_descriptions_and_origins(self):
        for w in all_workloads():
            assert w.description
            assert w.origin


@pytest.mark.parametrize("name", NAMES)
class TestEveryWorkload:
    def test_parses_and_runs(self, name):
        w = get_workload(name)
        trace = generate_trace(w.program(), symbols=w.symbols())
        assert trace.length > 1000
        assert not trace.truncated

    def test_instrumentable(self, name):
        w = get_workload(name)
        plan = instrument_program(w.program(), symbols=w.symbols())
        assert plan.allocates  # every loop got an ALLOCATE

    def test_directive_trace(self, name):
        w = get_workload(name)
        plan = instrument_program(w.program(), symbols=w.symbols())
        trace = generate_trace(w.program(), plan=plan, symbols=w.symbols())
        assert trace.directives
        assert trace.directives[0].position == 0

    def test_touches_most_of_its_space(self, name):
        w = get_workload(name)
        trace = generate_trace(w.program(), symbols=w.symbols())
        assert trace.distinct_pages >= 0.9 * trace.total_pages


class TestDocumentedShapes:
    def test_conduct_virtual_size_matches_paper(self):
        # "program CONDUCT has a total of 270 pages in its virtual space"
        w = get_workload("CONDUCT")
        trace = generate_trace(w.program(), symbols=w.symbols())
        assert trace.total_pages == 270

    def test_hwscrt_virtual_size_matches_paper(self):
        # "program HWSCRT has 69 pages in its virtual space"
        w = get_workload("HWSCRT")
        trace = generate_trace(w.program(), symbols=w.symbols())
        assert trace.total_pages == 69

    def test_main_has_three_directive_levels(self):
        # Table 1 needs MAIN1/MAIN2/MAIN3: the nest must be 3 deep.
        w = get_workload("MAIN")
        analysis = analyze_program(w.program(), symbols=w.symbols())
        assert analysis.tree.max_depth >= 3

    def test_fdjac_fills_jacobian_column_wise(self):
        w = get_workload("FDJAC")
        analysis = analyze_program(w.program(), symbols=w.symbols())
        from repro.analysis.reference_order import (
            ReferenceOrder,
            classify_references,
        )

        ranks = {n: i.rank for n, i in w.symbols().arrays.items()}
        orders = set()
        for root in analysis.tree.roots:
            for g in classify_references(analysis.tree, root, ranks):
                if g.array == "FJAC":
                    orders.add(g.order)
        assert ReferenceOrder.COLUMN_WISE in orders
        assert ReferenceOrder.ROW_WISE in orders  # the final J*x product


class TestNumericalCorrectness:
    """The interpreter runs real numerics: validate the algorithms."""

    def run_interp(self, name):
        w = get_workload(name)
        it = Interpreter(w.program(), symbols=w.symbols())
        it.run()
        return it

    def test_tql_eigenvalues(self):
        # Eigenvalues of the N x N (-1, 2, -1) Toeplitz matrix are
        # 2 - 2 cos(k pi / (N+1)).
        it = self.run_interp("TQL")
        n = it.symbols.params["N"]
        computed = sorted(float(it.arrays["D"][i]) for i in range(n))
        expected = sorted(
            2.0 - 2.0 * math.cos(k * math.pi / (n + 1)) for k in range(1, n + 1)
        )
        for got, want in zip(computed, expected):
            assert got == pytest.approx(want, abs=1e-6)

    def test_approx_fits_the_data(self):
        # The Chebyshev fit of sin(3x) + x/2 on [-1, 1] with 10 basis
        # functions reproduces the samples to high accuracy.
        it = self.run_interp("APPROX")
        coef = it.arrays["COEF"]
        x = it.arrays["X"]
        y = it.arrays["Y"]
        n_basis = it.symbols.params["NBASIS"]
        for idx in (0, 100, 300, 511):
            t = [1.0, float(x[idx])]
            for k in range(2, n_basis):
                t.append(2.0 * float(x[idx]) * t[k - 1] - t[k - 2])
            fit = sum(float(coef[k]) * t[k] for k in range(n_basis))
            # 10 Chebyshev terms truncate sin(3x) + x/2 at ~1e-5.
            assert fit == pytest.approx(float(y[idx]), abs=1e-4)

    def test_conduct_temperatures_bounded(self):
        # Explicit diffusion with a 100-degree strip: the field stays in
        # [0, 100] (the scheme is stable at r = 0.2).
        it = self.run_interp("CONDUCT")
        t_field = it.arrays["T"]
        assert t_field.min() >= 0.0
        assert t_field.max() <= 100.0 + 1e-9
        # Heat flowed into the row adjacent to the strip.
        nx = it.symbols.params["NX"]
        assert float(t_field[nx + 1]) > 0.0  # element (2, 2), column-major

    def test_hybrj_converges_toward_root(self):
        # The damped Newton iterations shrink the residual norm.
        it = self.run_interp("HYBRJ")
        f = it.arrays["F"]
        residual = sum(float(v) ** 2 for v in f) ** 0.5
        assert residual < 1.0  # started at ~several

    def test_field_solution_sign_structure(self):
        # Positive charge raises the potential near it.
        it = self.run_interp("FIELD")
        phi = it.arrays["PHI"]
        assert phi.max() > 0.0
        assert phi.min() < 0.0

    def test_init_normalized_columns(self):
        it = self.run_interp("INIT")
        c = it.arrays["C"]
        nx = it.symbols.params["NX"]
        column0 = c[:nx]
        assert abs(sum(abs(v) for v in column0) - 1.0) < 1e-9
