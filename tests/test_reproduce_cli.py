"""Tests for the one-shot ``reproduce`` command."""

import pytest

from repro.cli import main

EXPECTED_FILES = [
    "table1.txt",
    "table2.txt",
    "table3.txt",
    "table4.txt",
    "ablation_zoo.txt",
    "ablation_sizing.txt",
    "ablation_locks.txt",
    "ablation_ws_family.txt",
    "ablation_adaptive.txt",
    "controllability.txt",
    "geometry.txt",
    "multiprogramming.txt",
]


@pytest.fixture(scope="module")
def results_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("results")
    assert main(["reproduce", "-o", str(out)]) == 0
    return out


class TestReproduce:
    def test_all_artifacts_written(self, results_dir):
        names = {p.name for p in results_dir.iterdir()}
        assert names == set(EXPECTED_FILES)

    def test_tables_nonempty_and_titled(self, results_dir):
        for name in EXPECTED_FILES:
            text = (results_dir / name).read_text()
            assert len(text.splitlines()) >= 4, name

    def test_table3_has_all_fourteen_rows(self, results_dir):
        text = (results_dir / "table3.txt").read_text()
        for label in ("MAIN3", "FDJAC1", "HWSCRT", "CONDUCT"):
            assert label in text

    def test_show_flag_prints(self, tmp_path, capsys):
        # Re-running is cheap: artifacts are cached in-process.
        assert main(["reproduce", "-o", str(tmp_path), "--show"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
