"""Smoke tests: every bundled example runs to completion.

Examples are deliverables; these tests keep them green as the library
evolves.  Each runs in a subprocess (as a user would invoke it) with a
generous timeout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamplesExistence:
    def test_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3

    def test_quickstart_present(self):
        assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
class TestEveryExample:
    def test_runs_clean(self, name):
        result = run_example(name)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip(), f"{name} printed nothing"


class TestExampleContent:
    def test_quickstart_shows_comparison(self):
        out = run_example("quickstart.py").stdout
        assert "CD" in out and "LRU" in out and "WS" in out
        assert "ALLOCATE" in out  # the instrumented listing

    def test_locality_analysis_shows_figure5_total(self):
        out = run_example("locality_analysis.py").stdout
        assert "53" in out

    def test_policy_comparison_takes_argument(self):
        out = run_example("policy_comparison.py", "TQL").stdout
        assert "TQL" in out

    def test_multiprogramming_compares_modes(self):
        out = run_example("multiprogramming.py").stdout
        assert "CD" in out and "WS" in out
