"""Tests for the policy-curve series generator."""

import pytest

from repro.experiments.curves import policy_curves


@pytest.fixture(scope="module")
def curves():
    return policy_curves("TQL", lru_points=8, ws_points=8)


class TestPolicyCurves:
    def test_all_three_policies_present(self, curves):
        assert curves.series("CD")
        assert curves.series("LRU")
        assert curves.series("WS")

    def test_cd_points_one_per_cap(self, curves):
        assert len(curves.series("CD")) == 4

    def test_lru_series_ends_at_v(self, curves):
        frames = [p.parameter for p in curves.series("LRU")]
        assert max(frames) == curves.virtual_pages == 11

    def test_lru_faults_monotone(self, curves):
        series = sorted(curves.series("LRU"), key=lambda p: p.parameter)
        faults = [p.page_faults for p in series]
        assert faults == sorted(faults, reverse=True)

    def test_ws_mem_monotone_in_tau(self, curves):
        series = sorted(curves.series("WS"), key=lambda p: p.parameter)
        mems = [p.mem for p in series]
        assert all(a <= b + 1e-9 for a, b in zip(mems, mems[1:]))

    def test_csv_export(self, curves):
        text = curves.to_csv()
        lines = text.strip().splitlines()
        assert lines[0].startswith("program,policy,parameter")
        assert len(lines) == len(curves.points) + 1

    def test_render(self, curves):
        text = curves.render()
        assert "TQL" in text
        assert "LRU" in text
