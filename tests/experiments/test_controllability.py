"""Tests for the controllability study."""

import pytest

from repro.experiments.controllability import (
    controllability_study,
    render_controllability,
)


@pytest.fixture(scope="module")
def rows():
    return controllability_study(names=("MAIN", "TQL", "CONDUCT"))


class TestControllability:
    def test_cd_never_overshoots(self, rows):
        # The memory limit is a hard bound under CD.
        assert all(r.cd_overshoots == 0 for r in rows)

    def test_ws_overshoots_somewhere(self, rows):
        # WS's memory is emergent: some targets are exceeded.
        assert any(r.ws_overshoots > 0 for r in rows)

    def test_ws_ten_percent_claim_fails_on_numerical_programs(self, rows):
        # [ALMY82]: the '10% de-tuned' controllability claim does not
        # hold for (some) numerical programs.
        assert any(not r.ws_within_10pct for r in rows)

    def test_ws_mean_error_small(self, rows):
        # WS is still accurate on average — the failures are worst-case.
        assert all(r.ws_mean_error < 0.25 for r in rows)

    def test_errors_are_fractions(self, rows):
        for r in rows:
            assert 0.0 <= r.ws_mean_error <= r.ws_worst_error
            assert 0.0 <= r.cd_mean_error <= r.cd_worst_error

    def test_render(self, rows):
        text = render_controllability(rows)
        assert "10%" in text
        assert "MAIN" in text
