"""Tests for the page-geometry ablation."""

import pytest

from repro.experiments.geometry import geometry_sweep, render_geometry


@pytest.fixture(scope="module")
def rows():
    return geometry_sweep(names=("APPROX",), page_sizes=(256, 512))


class TestGeometrySweep:
    def test_virtual_pages_shrink_with_page_size(self, rows):
        by_size = {r.page_bytes: r for r in rows}
        assert by_size[512].virtual_pages < by_size[256].virtual_pages

    def test_virtual_pages_roughly_halve(self, rows):
        by_size = {r.page_bytes: r for r in rows}
        ratio = by_size[256].virtual_pages / by_size[512].virtual_pages
        assert 1.8 <= ratio <= 2.2

    def test_cd_advantage_persists_across_geometries(self, rows):
        for row in rows:
            assert row.delta_pf > 0

    def test_faults_decrease_with_bigger_pages(self, rows):
        by_size = {r.page_bytes: r for r in rows}
        assert by_size[512].cd_pf < by_size[256].cd_pf

    def test_render(self, rows):
        text = render_geometry(rows)
        assert "page B" in text
        assert "APPROX" in text
