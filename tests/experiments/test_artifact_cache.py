"""The persistent artifact cache: correctness across processes.

These tests simulate a cold process by dropping the in-memory memo
while leaving the disk entries in place (``clear_cache(disk=False)``).
A warm load must reproduce the built artifacts exactly — same pages,
same directives, same policy results — and stale or corrupt entries
must be rebuilt, never trusted.
"""

import numpy as np
import pytest

from repro.experiments.runner import (
    STATS,
    WarmupError,
    artifacts_for,
    cache_dir,
    cache_info,
    clear_cache,
    warm_artifacts,
)
from repro.tracegen import io as trace_io
from repro.vm.policies import CDConfig


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()
    STATS.reset()
    yield tmp_path / "cache"
    clear_cache()
    STATS.reset()


class TestDiskCache:
    def test_build_writes_entries(self, fresh_cache):
        artifacts_for("FIELD")
        info = cache_info()
        assert info["disk_entries"] == 2  # trace + sweeps
        assert info["disk_bytes"] > 0
        assert STATS.cache_misses == 1

    def test_warm_load_is_identical(self, fresh_cache):
        built = artifacts_for("FIELD")
        built_cd = built.best_cd_result()
        built_ws = built.ws.min_space_time()
        clear_cache(disk=False)  # cold process, warm disk
        loaded = artifacts_for("FIELD")
        assert loaded is not built
        assert STATS.cache_hits == 1
        np.testing.assert_array_equal(loaded.trace.pages, built.trace.pages)
        assert list(loaded.trace.directives) == list(built.trace.directives)
        loaded_cd = loaded.best_cd_result()
        assert loaded_cd.page_faults == built_cd.page_faults
        assert loaded_cd.space_time == built_cd.space_time
        loaded_ws = loaded.ws.min_space_time()
        assert loaded_ws.parameter == built_ws.parameter
        assert loaded_ws.space_time == built_ws.space_time

    def test_key_separates_lock_modes(self, fresh_cache):
        artifacts_for("FIELD", with_locks=False)
        artifacts_for("FIELD", with_locks=True)
        assert cache_info()["disk_entries"] == 4

    def test_clear_cache_removes_disk(self, fresh_cache):
        artifacts_for("FIELD")
        clear_cache()
        assert cache_info()["disk_entries"] == 0
        # And the next build is a miss, not a stale hit.
        STATS.reset()
        artifacts_for("FIELD")
        assert STATS.cache_misses == 1

    def test_stale_format_version_rebuilt(self, fresh_cache, monkeypatch):
        artifacts_for("FIELD")
        clear_cache(disk=False)
        monkeypatch.setattr(trace_io, "FORMAT_VERSION", trace_io.FORMAT_VERSION + 1)
        STATS.reset()
        artifacts = artifacts_for("FIELD")
        # A version bump changes the content hash: old entries are
        # simply never looked at, and a fresh pair is written.
        assert STATS.cache_misses == 1
        assert artifacts.trace.pages.size > 0

    def test_corrupt_entry_rebuilt(self, fresh_cache):
        artifacts_for("FIELD")
        clear_cache(disk=False)
        for path in fresh_cache.glob("*.npz"):
            path.write_bytes(b"not an npz archive")
        STATS.reset()
        with pytest.warns(RuntimeWarning, match="recomputing"):
            artifacts = artifacts_for("FIELD")
        assert STATS.cache_misses == 1
        assert artifacts.trace.pages.size > 0

    def test_disabled_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        clear_cache()
        assert cache_dir() is None
        artifacts_for("FIELD")
        assert cache_info()["disk_entries"] == 0
        clear_cache()


class TestCacheSelfHealing:
    """A corrupt persisted entry is quarantined and rebuilt, never
    trusted and never fatal (the regression: a bit-flipped archive used
    to raise ``BadZipFile`` straight through ``artifacts_for``)."""

    def _flip_one_byte(self, path):
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_bitflip_is_quarantined_and_rebuilt(self, fresh_cache):
        built = artifacts_for("FIELD")
        built_cd = built.best_cd_result()
        clear_cache(disk=False)  # cold process, poisoned disk
        self._flip_one_byte(sorted(fresh_cache.glob("trace-*.npz"))[0])
        STATS.reset()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            healed = artifacts_for("FIELD")
        assert STATS.cache_misses == 1  # rebuilt, not crashed
        corrupt = sorted(fresh_cache.glob("*.corrupt"))
        assert corrupt, "bad bytes must be kept aside for inspection"
        assert cache_info()["quarantined"] == len(corrupt)
        healed_cd = healed.best_cd_result()
        assert healed_cd.page_faults == built_cd.page_faults
        assert healed_cd.space_time == built_cd.space_time

    def test_rebuilt_entry_is_loadable_again(self, fresh_cache):
        artifacts_for("FIELD")
        clear_cache(disk=False)
        self._flip_one_byte(sorted(fresh_cache.glob("sweeps-*.npz"))[0])
        with pytest.warns(RuntimeWarning):
            artifacts_for("FIELD")
        clear_cache(disk=False)
        STATS.reset()
        artifacts_for("FIELD")  # the healed entry, warm from disk
        assert STATS.cache_hits == 1
        assert STATS.cache_misses == 0

    def test_clear_cache_removes_quarantined_files(self, fresh_cache):
        artifacts_for("FIELD")
        clear_cache(disk=False)
        self._flip_one_byte(sorted(fresh_cache.glob("trace-*.npz"))[0])
        with pytest.warns(RuntimeWarning):
            artifacts_for("FIELD")
        assert cache_info()["quarantined"] > 0
        clear_cache()
        assert cache_info()["quarantined"] == 0


class TestQuarantineRace:
    """Concurrent quarantine must neither clobber a rebuilt entry nor
    overwrite another process's evidence (the regression: a fixed
    ``.npz.corrupt`` name did both)."""

    def _atomic_rewrite(self, path, data):
        import os

        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)  # new inode, like a real rebuild

    def test_two_quarantines_keep_distinct_evidence(self, tmp_path):
        from repro.experiments.runner import quarantine_paths

        bad = tmp_path / "trace-abc.npz"
        bad.write_bytes(b"garbage one")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            first = quarantine_paths((bad,), "artifact", "abc", "bad magic")
        bad.write_bytes(b"garbage two")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            second = quarantine_paths((bad,), "artifact", "abc", "bad magic")
        assert first and second and first != second
        corpses = sorted(tmp_path.glob("*.corrupt"))
        assert len(corpses) == 2  # both generations kept for inspection
        contents = {p.read_bytes() for p in corpses}
        assert contents == {b"garbage one", b"garbage two"}

    def test_rebuilt_entry_is_never_clobbered(self, tmp_path):
        from repro.experiments.runner import quarantine_paths, stat_fingerprint

        path = tmp_path / "trace-abc.npz"
        path.write_bytes(b"corrupt bytes some reader choked on")
        observed = {path: stat_fingerprint(path)}
        # Another process rebuilds the entry before our quarantine runs.
        self._atomic_rewrite(path, b"freshly rebuilt good entry")
        with pytest.warns(RuntimeWarning, match="quarantined nothing"):
            renamed = quarantine_paths(
                (path,), "artifact", "abc", "bad magic", observed=observed
            )
        assert renamed == []
        assert path.read_bytes() == b"freshly rebuilt good entry"
        assert not list(tmp_path.glob("*.corrupt"))

    def test_unchanged_entry_still_quarantined(self, tmp_path):
        from repro.experiments.runner import quarantine_paths, stat_fingerprint

        path = tmp_path / "sweeps-abc.npz"
        path.write_bytes(b"still the same corrupt bytes")
        observed = {path: stat_fingerprint(path)}
        with pytest.warns(RuntimeWarning, match="quarantined"):
            renamed = quarantine_paths(
                (path,), "artifact", "abc", "bad magic", observed=observed
            )
        assert len(renamed) == 1
        assert not path.exists()


class TestWarmArtifacts:
    def test_sequential_warm(self, fresh_cache):
        warm_artifacts([("FIELD", False), ("INIT", False)])
        assert cache_info()["disk_entries"] == 4
        STATS.reset()
        artifacts_for("FIELD")
        artifacts_for("INIT")
        assert STATS.cache_misses == 0  # both memoized already

    def test_warm_is_idempotent(self, fresh_cache):
        warm_artifacts([("FIELD", False)])
        STATS.reset()
        warm_artifacts([("FIELD", False)])
        assert STATS.cache_misses == 0


class TestWarmFailureIsolation:
    """One poisoned workload must cost its own cells, nothing else
    (the regression: the first failing build aborted the whole warm)."""

    @pytest.fixture
    def poisoned_init(self, monkeypatch):
        from repro.workloads.catalog import get_workload

        workload = get_workload("INIT")
        monkeypatch.setattr(workload, "_program", None)

        def boom():
            raise RuntimeError("poisoned workload")

        monkeypatch.setattr(workload, "program", boom)

    def test_sequential_warm_finishes_the_rest(self, fresh_cache, poisoned_init):
        with pytest.raises(WarmupError) as exc_info:
            warm_artifacts([("FIELD", False), ("INIT", False)])
        assert list(exc_info.value.failures) == [("INIT", False)]
        assert "poisoned workload" in exc_info.value.failures[("INIT", False)]
        assert "INIT" in str(exc_info.value)
        # FIELD was still built, cached, and memoized.
        assert cache_info()["disk_entries"] == 2
        STATS.reset()
        artifacts_for("FIELD")
        assert STATS.cache_misses == 0

    def test_parallel_warm_finishes_the_rest(self, fresh_cache, poisoned_init):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("poisoning workers requires the fork start method")
        with pytest.raises(WarmupError) as exc_info:
            warm_artifacts([("FIELD", False), ("INIT", False)], jobs=2)
        assert set(exc_info.value.failures) == {("INIT", False)}
        assert "poisoned workload" in exc_info.value.failures[("INIT", False)]
        assert cache_info()["disk_entries"] == 2  # FIELD made it to disk
        STATS.reset()
        artifacts_for("FIELD")
        assert STATS.cache_misses == 0  # pulled into the memo by warm


class TestFastSimIntegration:
    def test_cd_results_match_event_driven(self, fresh_cache):
        from repro.vm.policies import CDPolicy
        from repro.vm.simulator import simulate

        artifacts = artifacts_for("FIELD")
        for cap in (None, 2, 1):
            fast = artifacts.cd_result(CDConfig(pi_cap=cap))
            slow = simulate(artifacts.trace, CDPolicy(CDConfig(pi_cap=cap)))
            assert fast.page_faults == slow.page_faults
            assert fast.space_time == slow.space_time
            assert fast.mem_average == slow.mem_average

    def test_memory_limit_uses_event_driven(self, fresh_cache):
        artifacts = artifacts_for("FIELD")
        result = artifacts.cd_result(CDConfig(pi_cap=2, memory_limit=4))
        assert result.page_faults > 0  # exercised the general simulator
