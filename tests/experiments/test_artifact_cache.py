"""The persistent artifact cache: correctness across processes.

These tests simulate a cold process by dropping the in-memory memo
while leaving the disk entries in place (``clear_cache(disk=False)``).
A warm load must reproduce the built artifacts exactly — same pages,
same directives, same policy results — and stale or corrupt entries
must be rebuilt, never trusted.
"""

import numpy as np
import pytest

from repro.experiments.runner import (
    STATS,
    artifacts_for,
    cache_dir,
    cache_info,
    clear_cache,
    warm_artifacts,
)
from repro.tracegen import io as trace_io
from repro.vm.policies import CDConfig


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()
    STATS.reset()
    yield tmp_path / "cache"
    clear_cache()
    STATS.reset()


class TestDiskCache:
    def test_build_writes_entries(self, fresh_cache):
        artifacts_for("FIELD")
        info = cache_info()
        assert info["disk_entries"] == 2  # trace + sweeps
        assert info["disk_bytes"] > 0
        assert STATS.cache_misses == 1

    def test_warm_load_is_identical(self, fresh_cache):
        built = artifacts_for("FIELD")
        built_cd = built.best_cd_result()
        built_ws = built.ws.min_space_time()
        clear_cache(disk=False)  # cold process, warm disk
        loaded = artifacts_for("FIELD")
        assert loaded is not built
        assert STATS.cache_hits == 1
        np.testing.assert_array_equal(loaded.trace.pages, built.trace.pages)
        assert list(loaded.trace.directives) == list(built.trace.directives)
        loaded_cd = loaded.best_cd_result()
        assert loaded_cd.page_faults == built_cd.page_faults
        assert loaded_cd.space_time == built_cd.space_time
        loaded_ws = loaded.ws.min_space_time()
        assert loaded_ws.parameter == built_ws.parameter
        assert loaded_ws.space_time == built_ws.space_time

    def test_key_separates_lock_modes(self, fresh_cache):
        artifacts_for("FIELD", with_locks=False)
        artifacts_for("FIELD", with_locks=True)
        assert cache_info()["disk_entries"] == 4

    def test_clear_cache_removes_disk(self, fresh_cache):
        artifacts_for("FIELD")
        clear_cache()
        assert cache_info()["disk_entries"] == 0
        # And the next build is a miss, not a stale hit.
        STATS.reset()
        artifacts_for("FIELD")
        assert STATS.cache_misses == 1

    def test_stale_format_version_rebuilt(self, fresh_cache, monkeypatch):
        artifacts_for("FIELD")
        clear_cache(disk=False)
        monkeypatch.setattr(trace_io, "FORMAT_VERSION", trace_io.FORMAT_VERSION + 1)
        STATS.reset()
        artifacts = artifacts_for("FIELD")
        # A version bump changes the content hash: old entries are
        # simply never looked at, and a fresh pair is written.
        assert STATS.cache_misses == 1
        assert artifacts.trace.pages.size > 0

    def test_corrupt_entry_rebuilt(self, fresh_cache):
        artifacts_for("FIELD")
        clear_cache(disk=False)
        for path in fresh_cache.glob("*.npz"):
            path.write_bytes(b"not an npz archive")
        STATS.reset()
        artifacts = artifacts_for("FIELD")
        assert STATS.cache_misses == 1
        assert artifacts.trace.pages.size > 0

    def test_disabled_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        clear_cache()
        assert cache_dir() is None
        artifacts_for("FIELD")
        assert cache_info()["disk_entries"] == 0
        clear_cache()


class TestWarmArtifacts:
    def test_sequential_warm(self, fresh_cache):
        warm_artifacts([("FIELD", False), ("INIT", False)])
        assert cache_info()["disk_entries"] == 4
        STATS.reset()
        artifacts_for("FIELD")
        artifacts_for("INIT")
        assert STATS.cache_misses == 0  # both memoized already

    def test_warm_is_idempotent(self, fresh_cache):
        warm_artifacts([("FIELD", False)])
        STATS.reset()
        warm_artifacts([("FIELD", False)])
        assert STATS.cache_misses == 0


class TestFastSimIntegration:
    def test_cd_results_match_event_driven(self, fresh_cache):
        from repro.vm.policies import CDPolicy
        from repro.vm.simulator import simulate

        artifacts = artifacts_for("FIELD")
        for cap in (None, 2, 1):
            fast = artifacts.cd_result(CDConfig(pi_cap=cap))
            slow = simulate(artifacts.trace, CDPolicy(CDConfig(pi_cap=cap)))
            assert fast.page_faults == slow.page_faults
            assert fast.space_time == slow.space_time
            assert fast.mem_average == slow.mem_average

    def test_memory_limit_uses_event_driven(self, fresh_cache):
        artifacts = artifacts_for("FIELD")
        result = artifacts.cd_result(CDConfig(pi_cap=2, memory_limit=4))
        assert result.page_faults > 0  # exercised the general simulator
