"""Golden-file regression tests for the four paper tables.

The behavioral tests in ``test_tables.py`` pin qualitative claims
(winners, trend directions); these pin the *exact rendered output*, so
any change to the numbers — an edit to the simulator, the policies, the
sizing rules, or the renderers — shows up as a diff against the
snapshots in ``tests/experiments/golden/``.

After an intentional change, regenerate with::

    pytest tests/experiments/test_golden_tables.py --update-golden
"""

from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"


def _renderers():
    from repro.experiments.table1 import render_table1
    from repro.experiments.table2 import render_table2
    from repro.experiments.table3 import render_table3
    from repro.experiments.table4 import render_table4

    return {
        "table1.txt": render_table1,
        "table2.txt": render_table2,
        "table3.txt": render_table3,
        "table4.txt": render_table4,
    }


@pytest.mark.parametrize(
    "name", ["table1.txt", "table2.txt", "table3.txt", "table4.txt"]
)
def test_table_matches_golden(name, request):
    render = _renderers()[name]
    text = render().rstrip("\n") + "\n"
    path = GOLDEN_DIR / name
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"updated {path}")
    assert path.exists(), (
        f"missing snapshot {path} — generate it with "
        "pytest tests/experiments/test_golden_tables.py --update-golden"
    )
    expected = path.read_text()
    assert text == expected, (
        f"{name} drifted from its golden snapshot; if the change is "
        "intentional, rerun with --update-golden and commit the diff"
    )
