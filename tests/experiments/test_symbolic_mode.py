"""``--mode symbolic``: routing, CLI surface, and the symbolic disk
cache (warm loads must be identical, corrupt entries quarantined)."""

import numpy as np
import pytest

from repro.analysis.symbolic.artifacts import (
    clear_symbolic_cache,
    symbolic_artifacts_for,
    _SYM_CACHE,
)
from repro.cli import main
from repro.experiments.runner import STATS, clear_cache
from repro.experiments.table2 import generate_table2, render_table2


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()
    clear_symbolic_cache()
    STATS.reset()
    yield tmp_path / "cache"
    clear_cache()
    clear_symbolic_cache()
    STATS.reset()


class TestModeRouting:
    def test_symbolic_rows_equal_trace_rows(self, fresh_cache):
        assert generate_table2(mode="symbolic") == generate_table2()

    def test_symbolic_render_equals_trace_render(self, fresh_cache):
        assert render_table2(mode="symbolic") == render_table2()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            generate_table2(mode="psychic")

    def test_cli_table2_symbolic(self, fresh_cache, capsys):
        assert main(["table", "2", "--mode", "symbolic"]) == 0
        out = capsys.readouterr().out
        assert "HYBRJ" in out and "CONDUCT" in out

    def test_cli_other_tables_reject_symbolic(self, fresh_cache):
        with pytest.raises(SystemExit, match="table 2"):
            main(["table", "1", "--mode", "symbolic"])


class TestSymbolicDiskCache:
    def test_build_writes_trace_and_runs(self, fresh_cache):
        symbolic_artifacts_for("INIT")
        assert len(list(fresh_cache.glob("trace-*.npz"))) == 1
        assert len(list(fresh_cache.glob("runs-*.npz"))) == 1
        assert STATS.cache_misses == 1

    def test_warm_load_is_identical(self, fresh_cache):
        built = symbolic_artifacts_for("INIT")
        built_lru = built.lru.min_space_time()
        built_ws = built.ws.min_space_time()
        built_cd = built.best_cd_result()
        _SYM_CACHE.clear()  # cold process, warm disk
        loaded = symbolic_artifacts_for("INIT")
        assert loaded is not built
        assert STATS.cache_hits == 1
        np.testing.assert_array_equal(loaded.trace.pages, built.trace.pages)
        assert loaded.runtrace.runs == built.runtrace.runs
        for got, want in (
            (loaded.lru.min_space_time(), built_lru),
            (loaded.ws.min_space_time(), built_ws),
            (loaded.best_cd_result(), built_cd),
        ):
            assert got.parameter == want.parameter
            assert got.page_faults == want.page_faults
            assert got.space_time == want.space_time
        # the LRU arrays and ws_best were rehydrated, not recomputed
        np.testing.assert_array_equal(
            loaded.lru._distances, built.lru._distances
        )
        assert loaded.ws._min_st_cache is not None

    def test_warm_lru_curve_matches_rebuilt(self, fresh_cache):
        built = symbolic_artifacts_for("INIT")
        _SYM_CACHE.clear()
        loaded = symbolic_artifacts_for("INIT")
        for frames in (1, 2, 7, built.lru.max_useful_frames):
            assert loaded.lru.result(frames) == built.lru.result(frames)

    def test_corrupt_runs_entry_quarantined_and_rebuilt(self, fresh_cache):
        built = symbolic_artifacts_for("INIT")
        _SYM_CACHE.clear()
        victim = sorted(fresh_cache.glob("runs-*.npz"))[0]
        victim.write_bytes(b"not an npz archive")
        STATS.reset()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            healed = symbolic_artifacts_for("INIT")
        assert STATS.cache_misses == 1
        assert sorted(fresh_cache.glob("*.corrupt"))
        assert healed.ws.min_space_time() == built.ws.min_space_time()

    def test_format_bump_invalidates(self, fresh_cache, monkeypatch):
        from repro.analysis.symbolic import artifacts as mod

        symbolic_artifacts_for("INIT")
        _SYM_CACHE.clear()
        monkeypatch.setattr(mod, "SYMBOLIC_FORMAT", mod.SYMBOLIC_FORMAT + 1)
        STATS.reset()
        symbolic_artifacts_for("INIT")
        assert STATS.cache_misses == 1  # old entry never consulted

    def test_stale_ws_best_fault_service_ignored(self, fresh_cache):
        symbolic_artifacts_for("INIT")
        _SYM_CACHE.clear()
        victim = sorted(fresh_cache.glob("runs-*.npz"))[0]
        with np.load(victim) as arrays:
            payload = dict(arrays)
        payload["ws_best"] = payload["ws_best"].copy()
        payload["ws_best"][4] += 1  # recorded under a different service time
        np.savez(victim, **payload)
        loaded = symbolic_artifacts_for("INIT")
        assert loaded.ws._min_st_cache is None  # guard refused the seed
        # ...and the search still returns the right answer from scratch.
        assert loaded.ws.min_space_time().space_time > 0

    def test_clear_symbolic_cache_leaves_trace_mode_entries(self, fresh_cache):
        from repro.experiments.runner import artifacts_for

        artifacts_for("INIT")
        symbolic_artifacts_for("INIT")
        trace_entries = set(fresh_cache.glob("sweeps-*.npz"))
        clear_symbolic_cache()
        assert not list(fresh_cache.glob("runs-*.npz"))
        assert set(fresh_cache.glob("sweeps-*.npz")) == trace_entries
