"""Unit tests for table rendering and the runner cache."""

from repro.experiments.report import format_table, format_value
from repro.experiments.runner import artifacts_for, clear_cache


class TestFormatValue:
    def test_none(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_int(self):
        assert format_value(42) == "42"

    def test_small_float(self):
        assert format_value(3.14159) == "3.14"

    def test_mid_float(self):
        assert format_value(123.456) == "123.5"

    def test_large_float_scientific(self):
        assert format_value(1.23e7) == "1.230e+07"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_string_passthrough(self):
        assert format_value("ABC") == "ABC"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["Name", "N"], [("a", 1), ("bb", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        assert lines[-1].endswith("22")

    def test_title(self):
        text = format_table(["A"], [(1,)], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_separator_row(self):
        text = format_table(["A", "B"], [(1, 2)])
        assert "-" in text.splitlines()[1]

    def test_first_column_left_justified(self):
        text = format_table(["Name", "N"], [("a", 1), ("long", 2)])
        rows = text.splitlines()[2:]
        assert rows[0].startswith("a   ")


class TestRunnerCache:
    def test_artifacts_cached(self):
        a = artifacts_for("TQL")
        b = artifacts_for("TQL")
        assert a is b

    def test_distinct_keys_distinct_artifacts(self):
        a = artifacts_for("TQL", with_locks=False)
        b = artifacts_for("TQL", with_locks=True)
        assert a is not b
        assert len(b.trace.directives) > len(a.trace.directives)

    def test_clear_cache(self):
        a = artifacts_for("TQL")
        clear_cache()
        b = artifacts_for("TQL")
        assert a is not b

    def test_best_cd_result_minimizes(self):
        from repro.vm.policies import CDConfig

        art = artifacts_for("APPROX")
        best = art.best_cd_result()
        for cap in (None, 2, 1):
            assert (
                best.space_time
                <= art.cd_result(CDConfig(pi_cap=cap)).space_time
            )
