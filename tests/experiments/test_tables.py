"""Integration tests: the four tables reproduce the paper's qualitative
claims (winners and trend directions, not absolute numbers)."""

import pytest

from repro.experiments.config import table1_rows, table2_rows, table34_rows, variant
from repro.experiments.table1 import generate_table1, render_table1
from repro.experiments.table2 import generate_table2, render_table2
from repro.experiments.table3 import generate_table3, render_table3
from repro.experiments.table4 import generate_table4, render_table4


@pytest.fixture(scope="module")
def table1():
    return {r.label: r for r in generate_table1()}


@pytest.fixture(scope="module")
def table2():
    return {r.label: r for r in generate_table2()}


@pytest.fixture(scope="module")
def table3():
    return {r.label: r for r in generate_table3()}


@pytest.fixture(scope="module")
def table4():
    return {r.label: r for r in generate_table4()}


class TestConfig:
    def test_table1_has_eight_rows(self):
        assert [v.label for v in table1_rows()] == [
            "MAIN",
            "MAIN1",
            "MAIN2",
            "MAIN3",
            "FDJAC",
            "FDJAC1",
            "TQL1",
            "TQL2",
        ]

    def test_table34_has_fourteen_rows(self):
        assert len(table34_rows()) == 14

    def test_table2_rows_subset_of_table34(self):
        t34 = {v.label for v in table34_rows()}
        assert {v.label for v in table2_rows()} <= t34

    def test_variant_lookup(self):
        assert variant("main3").config.pi_cap == 1
        with pytest.raises(KeyError):
            variant("NOPE")

    def test_variant_describe(self):
        assert "innermost" not in variant("MAIN1").describe()
        assert "PI<=1" in variant("MAIN3").describe()


class TestTable1Claims:
    """"Less memory allocation results from executing the directives
    associated with the inner loops.  Directives at outer levels consume
    more memory and generate fewer page faults."""

    def test_main_memory_ordering(self, table1):
        assert table1["MAIN1"].mem > table1["MAIN2"].mem > table1["MAIN3"].mem

    def test_main_fault_ordering(self, table1):
        assert table1["MAIN1"].page_faults < table1["MAIN2"].page_faults
        assert table1["MAIN2"].page_faults < table1["MAIN3"].page_faults

    def test_fdjac_variants(self, table1):
        assert table1["FDJAC1"].mem > table1["FDJAC"].mem
        assert table1["FDJAC1"].page_faults < table1["FDJAC"].page_faults

    def test_tql_variants(self, table1):
        assert table1["TQL1"].mem > table1["TQL2"].mem
        assert table1["TQL1"].page_faults < table1["TQL2"].page_faults

    def test_render_contains_all_rows(self, table1):
        text = render_table1(list(table1.values()))
        for label in table1:
            assert label in text


class TestTable2Claims:
    """CD's best directive set is competitive with (and on phase-varying
    programs beats) the best-tuned LRU and WS."""

    def test_lru_never_beats_cd_by_much(self, table2):
        # Every row: the best LRU is at most ~10% below the best CD
        # (paper: LRU is 7-288% WORSE; our single-nest kernels tie).
        for row in table2.values():
            assert row.pct_st_lru > -12.0

    def test_phase_programs_beat_lru_strongly(self, table2):
        assert table2["APPROX"].pct_st_lru > 30
        assert table2["CONDUCT"].pct_st_lru > 50

    def test_average_excess_positive(self, table2):
        lru_avg = sum(r.pct_st_lru for r in table2.values()) / len(table2)
        assert lru_avg > 10

    def test_render(self, table2):
        text = render_table2(list(table2.values()))
        assert "%ST LRU vs CD" in text


class TestTable3Claims:
    """"Using the same amount of memory, LRU and WS produce on the
    average [many] more page faults than does CD."""

    def test_average_lru_excess_large(self, table3):
        avg = sum(r.delta_pf_lru for r in table3.values()) / len(table3)
        assert avg > 1000

    def test_average_ws_excess_positive(self, table3):
        avg = sum(r.delta_pf_ws for r in table3.values()) / len(table3)
        assert avg > 0

    def test_lru_excess_bigger_than_ws(self, table3):
        # The paper's averages: 2863 (LRU) vs 2340 (WS).
        lru = sum(r.delta_pf_lru for r in table3.values())
        ws = sum(r.delta_pf_ws for r in table3.values())
        assert lru > ws

    def test_conduct_row_dramatic(self, table3):
        # Paper: CONDUCT ΔPF(LRU) = 3477, %ST = 988.3.
        assert table3["CONDUCT"].delta_pf_lru > 3000
        assert table3["CONDUCT"].pct_st_lru > 300

    def test_init_row_dramatic(self, table3):
        # Paper: INIT ΔPF(LRU) = 2287.
        assert table3["INIT"].delta_pf_lru > 2000

    def test_lru_frames_match_cd_memory(self, table3):
        for row in table3.values():
            assert abs(row.lru_frames - row.mem_cd) <= 1.0

    def test_ws_memory_matched(self, table3):
        for row in table3.values():
            # τ was chosen to match CD's MEM; allow 15% slack (WS MEM
            # moves in discrete jumps with τ).
            assert row.mem_ws == pytest.approx(row.mem_cd, rel=0.15, abs=1.0)

    def test_render(self, table3):
        text = render_table3(list(table3.values()))
        assert "dPF LRU" in text


class TestTable4Claims:
    """"LRU and WS need on the average [much] more memory than the CD
    needs to generate the same number of page faults."""

    def test_average_lru_memory_excess(self, table4):
        avg = sum(r.pct_mem_lru for r in table4.values()) / len(table4)
        assert avg > 50  # paper: 247%

    def test_lru_excess_exceeds_ws_excess(self, table4):
        lru = sum(r.pct_mem_lru for r in table4.values())
        ws = sum(r.pct_mem_ws for r in table4.values())
        assert lru > ws  # paper: 247% vs 175%

    def test_conduct_needs_far_more_lru_memory(self, table4):
        # Paper: 283.7%; ours is driven by the 134-page row phase.
        assert table4["CONDUCT"].pct_mem_lru > 200

    def test_matched_faults_not_exceeded(self, table4):
        from repro.experiments.runner import artifacts_for

        for label, row in table4.items():
            if not row.lru_reached:
                continue
            art = artifacts_for(variant(label).workload)
            assert art.lru.faults(row.lru_frames) <= row.pf_cd

    def test_render(self, table4):
        text = render_table4(list(table4.values()))
        assert "%MEM LRU" in text
