"""Tests for the multiprogramming study harness."""

import pytest

from repro.experiments.multiprog_study import multiprog_study, render_multiprog


@pytest.fixture(scope="module")
def rows():
    return multiprog_study(mix=("TQL", "HYBRJ"), frame_counts=(48, 24))


class TestMultiprogStudy:
    def test_row_grid_complete(self, rows):
        assert len(rows) == 4  # 2 frame counts x 2 modes
        assert {r.mode for r in rows} == {"CD", "WS"}

    def test_all_work_completes(self, rows):
        # Both processes finish under every configuration: the faults
        # and makespan are for the whole mix.
        for row in rows:
            assert row.makespan > 0
            assert row.throughput > 0

    def test_pressure_increases_faults(self, rows):
        by_key = {(r.frames, r.mode): r for r in rows}
        assert by_key[(24, "CD")].faults >= by_key[(48, "CD")].faults

    def test_cd_swaps_not_more_than_ws(self, rows):
        by_key = {(r.frames, r.mode): r for r in rows}
        for frames in (48, 24):
            assert by_key[(frames, "CD")].swaps <= by_key[(frames, "WS")].swaps

    def test_utilization_bounded(self, rows):
        for row in rows:
            assert 0.0 <= row.utilization <= 1.0

    def test_render(self, rows):
        text = render_multiprog(rows)
        assert "CD" in text and "WS" in text and "makespan" in text
