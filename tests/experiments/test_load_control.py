"""The load-control sweep: table, cliff detection, pairing."""

import pytest

from repro.experiments.load_control import (
    LoadPoint,
    cliff_report,
    detect_cliff,
    load_control_sweep,
    nest_profiles,
    render_load_control,
)
from repro.vm.multiprog import JobProfile

from ..vm.conftest import make_trace


def profiles():
    return [
        JobProfile.from_trace(make_trace(list(range(8)) * 150, name="A")),
        JobProfile.from_trace(make_trace([0, 1, 2, 3] * 200, name="B")),
    ]


SWEEP_KW = dict(
    loads=(0.5, 4.0),
    total_frames=24,
    arrival_horizon=60_000,
    run_horizon=180_000,
)


class TestSweep:
    def test_every_policy_and_load_present(self):
        points = load_control_sweep(profiles(), **SWEEP_KW)
        cells = {(p.policy, p.load) for p in points}
        assert cells == {
            (pol, load)
            for pol in ("uncontrolled", "knee", "ws", "cd")
            for load in (0.5, 4.0)
        }

    def test_arrival_streams_are_paired(self):
        points = load_control_sweep(profiles(), **SWEEP_KW)
        by_load = {}
        for p in points:
            by_load.setdefault(p.load, set()).add(p.arrivals)
        # identical arrival count across policies at each load
        assert all(len(counts) == 1 for counts in by_load.values())

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            load_control_sweep([], **SWEEP_KW)

    def test_uncontrolled_cliffs_and_knee_does_not(self):
        points = load_control_sweep(
            profiles(),
            loads=(0.5, 1.0, 4.0),
            total_frames=24,
            arrival_horizon=100_000,
            run_horizon=300_000,
        )
        verdicts = cliff_report(points)
        assert verdicts["uncontrolled"] is True
        assert verdicts["knee"] is False
        assert verdicts["ws"] is False
        assert verdicts["cd"] is False


def point(policy, load, thru):
    return LoadPoint(
        policy=policy,
        load=load,
        arrivals=10,
        completed=10,
        throughput=thru,
        mean_response=1.0,
        p95_response=2.0,
        faults=0,
        deferrals=0,
        suspensions=0,
        utilization=0.5,
    )


class TestCliffDetection:
    def test_flat_curve_is_not_a_cliff(self):
        pts = [point("knee", load, 0.9) for load in (1, 2, 4)]
        assert not detect_cliff(pts, "knee")

    def test_collapse_is_a_cliff(self):
        pts = [point("unc", 1, 0.9), point("unc", 2, 0.5), point("unc", 4, 0.1)]
        assert detect_cliff(pts, "unc")

    def test_judged_against_sweep_peak(self):
        # a baseline so congested it never peaks still counts as a
        # cliff when another policy shows what was achievable
        pts = [
            point("unc", 1, 0.2),
            point("unc", 4, 0.15),
            point("knee", 1, 0.2),
            point("knee", 4, 0.9),
        ]
        assert detect_cliff(pts, "unc")
        assert not detect_cliff(pts, "knee")

    def test_single_point_is_never_a_cliff(self):
        assert not detect_cliff([point("x", 1, 0.0)], "x")


class TestRendering:
    def test_render_contains_policies_and_verdicts(self):
        points = load_control_sweep(profiles(), **SWEEP_KW)
        text = render_load_control(points)
        for policy in ("uncontrolled", "knee", "ws", "cd"):
            assert policy in text
        assert "cliff" in text
        assert "throughput" in text.lower()


class TestNestProfiles:
    def test_nests_have_directive_demand(self):
        profs = nest_profiles((11, 47))
        assert profs
        for p in profs:
            assert p.length > 0
            assert p.cd_min_frames >= 1
            assert p.cd_pref_frames >= p.cd_min_frames

    def test_nests_deterministic(self):
        a = nest_profiles((11,))
        b = nest_profiles((11,))
        assert a[0].length == b[0].length
        assert a[0].knee_frames == b[0].knee_frames
