"""``--mode static``: routing, CLI surface, and the static disk cache
(warm loads must be identical, corrupt entries quarantined) — the
third-mode twin of ``test_symbolic_mode.py``."""

import numpy as np
import pytest

from repro.analysis.staticloc.artifacts import (
    _STATIC_CACHE,
    clear_static_cache,
    static_artifacts_for,
)
from repro.cli import main
from repro.experiments.runner import STATS, clear_cache
from repro.experiments.table2 import generate_table2, render_table2


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()
    clear_static_cache()
    STATS.reset()
    yield tmp_path / "cache"
    clear_cache()
    clear_static_cache()
    STATS.reset()


class TestModeRouting:
    def test_static_rows_equal_trace_rows(self, fresh_cache):
        assert generate_table2(mode="static") == generate_table2()

    def test_static_rows_equal_symbolic_rows(self, fresh_cache):
        assert generate_table2(mode="static") == generate_table2(
            mode="symbolic"
        )

    def test_static_render_equals_trace_render(self, fresh_cache):
        assert render_table2(mode="static") == render_table2()

    def test_cli_table2_static(self, fresh_cache, capsys):
        assert main(["table", "2", "--mode", "static"]) == 0
        out = capsys.readouterr().out
        assert "HYBRJ" in out and "CONDUCT" in out

    def test_cli_other_tables_reject_static(self, fresh_cache):
        with pytest.raises(SystemExit, match="table 2"):
            main(["table", "1", "--mode", "static"])


class TestStaticArtifacts:
    def test_no_flat_pages_on_collapsed_workload(self, fresh_cache):
        art = static_artifacts_for("INIT")
        assert not art.string.fully_literal
        assert art.gen_stats.get("closed_form_references", 0) > 0
        # the virtual string only knows its length
        with pytest.raises(AttributeError):
            art.string.pages.tolist()

    def test_recovery_runs_during_generation(self, fresh_cache):
        art = static_artifacts_for("FIELD")
        assert art.gen_stats.get("recovered_sites", 0) >= 1

    def test_coverage_reports_nonaffine_sites(self, fresh_cache):
        report = static_artifacts_for("FIELD").coverage()
        assert "nonaffine_sites" in report
        assert report["references"] == static_artifacts_for(
            "FIELD"
        ).string.n_references


class TestStaticDiskCache:
    def test_build_writes_one_entry(self, fresh_cache):
        static_artifacts_for("INIT")
        assert len(list(fresh_cache.glob("static-*.npz"))) == 1
        assert STATS.cache_misses == 1

    def test_warm_load_is_identical(self, fresh_cache):
        built = static_artifacts_for("INIT")
        built_lru = built.lru.min_space_time()
        built_ws = built.ws.min_space_time()
        built_cd = built.best_cd_result()
        _STATIC_CACHE.clear()  # cold process, warm disk
        loaded = static_artifacts_for("INIT")
        assert loaded is not built
        assert STATS.cache_hits == 1
        assert loaded.string.n_references == built.string.n_references
        np.testing.assert_array_equal(
            loaded.string.kept_pages, built.string.kept_pages
        )
        assert loaded.string.runs == built.string.runs
        for got, want in (
            (loaded.lru.min_space_time(), built_lru),
            (loaded.ws.min_space_time(), built_ws),
            (loaded.best_cd_result(), built_cd),
        ):
            assert got.parameter == want.parameter
            assert got.page_faults == want.page_faults
            assert got.space_time == want.space_time
        # the LRU arrays and ws_best were rehydrated, not recomputed
        np.testing.assert_array_equal(
            loaded.lru._distances, built.lru._distances
        )
        assert loaded.ws._min_st_cache is not None

    def test_corrupt_entry_quarantined_and_rebuilt(self, fresh_cache):
        built = static_artifacts_for("INIT")
        _STATIC_CACHE.clear()
        victim = sorted(fresh_cache.glob("static-*.npz"))[0]
        victim.write_bytes(b"not an npz archive")
        STATS.reset()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            healed = static_artifacts_for("INIT")
        assert STATS.cache_misses == 1
        assert sorted(fresh_cache.glob("static-*.corrupt"))
        assert healed.ws.min_space_time() == built.ws.min_space_time()

    def test_format_bump_invalidates(self, fresh_cache, monkeypatch):
        from repro.analysis.staticloc import artifacts as mod

        static_artifacts_for("INIT")
        _STATIC_CACHE.clear()
        monkeypatch.setattr(mod, "STATIC_FORMAT", mod.STATIC_FORMAT + 1)
        STATS.reset()
        static_artifacts_for("INIT")
        assert STATS.cache_misses == 1  # old entry never consulted

    def test_stale_ws_best_fault_service_ignored(self, fresh_cache):
        static_artifacts_for("INIT")
        _STATIC_CACHE.clear()
        victim = sorted(fresh_cache.glob("static-*.npz"))[0]
        with np.load(victim) as arrays:
            payload = dict(arrays)
        payload["ws_best"] = payload["ws_best"].copy()
        payload["ws_best"][4] += 1  # recorded under a different service time
        np.savez(victim, **payload)
        loaded = static_artifacts_for("INIT")
        assert loaded.ws._min_st_cache is None  # guard refused the seed
        # ...and the search still returns the right answer from scratch.
        assert loaded.ws.min_space_time().space_time > 0

    def test_clear_static_cache_leaves_other_modes(self, fresh_cache):
        from repro.analysis.symbolic.artifacts import symbolic_artifacts_for

        symbolic_artifacts_for("INIT")
        static_artifacts_for("INIT")
        other_entries = set(fresh_cache.glob("runs-*.npz"))
        clear_static_cache()
        assert not list(fresh_cache.glob("static-*.npz"))
        assert set(fresh_cache.glob("runs-*.npz")) == other_entries
