"""Acceptance: a chaos-killed sweep resumes to byte-identical output.

The sweep renders Table 1 under supervision while chaos SIGKILLs the
table job's worker past its retry budget — the "power cut mid-run"
scenario.  The warm jobs' checkpoints survive in the run ledger, the
resumed run replays them and re-renders only the table, and the final
``table1.txt`` must equal an uninterrupted run byte for byte.
"""

from repro.engine import ChaosPlan, EngineConfig, run_sweep
from repro.obs import load_events
from repro.obs.events import JobFail, JobRetry


def _config(**kwargs):
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("backoff_base", 0.01)
    return EngineConfig(**kwargs)


class TestChaosResume:
    def test_killed_sweep_resumes_byte_identical(self, tmp_path):
        runs = tmp_path / "runs"

        # An uninterrupted run provides the golden bytes.
        clean = run_sweep(["1"], run_id="clean", runs_root=runs, config=_config())
        assert clean.ok, clean.report.failed
        golden = (clean.run_dir / "table1.txt").read_bytes()

        # Kill the table job's worker on both allowed attempts: the job
        # fails permanently, i.e. the sweep is interrupted mid-run.
        chaos = ChaosPlan("kill-worker", hits=2, match="table:1")
        crashed = run_sweep(
            ["1"],
            run_id="crashy",
            runs_root=runs,
            config=_config(max_retries=1, chaos=chaos),
        )
        assert not crashed.ok
        assert "worker died" in crashed.report.failed["table:1"]
        assert not (crashed.run_dir / "table1.txt").exists()
        # The warm jobs completed and checkpointed before the crash.
        warm_done = [j for j in crashed.report.results if j.startswith("warm:")]
        assert warm_done

        # Every injected fault surfaces as exactly one lifecycle event.
        events = load_events(crashed.run_dir / "events.jsonl")
        retries = [
            e for e in events if isinstance(e, JobRetry) and e.job == "table:1"
        ]
        fails = [
            e for e in events if isinstance(e, JobFail) and e.job == "table:1"
        ]
        assert len(retries) + len(fails) == chaos.injected["table:1"] == 2
        assert all("killed by signal" in e.error for e in retries + fails)

        # Resume the same run id without chaos: completed jobs replay
        # from the ledger, only the table job actually runs.
        resumed = run_sweep(
            ["1"],
            run_id="crashy",
            runs_root=runs,
            resume=True,
            config=_config(),
        )
        assert resumed.ok, resumed.report.failed
        assert resumed.report.resumed == len(warm_done)
        assert resumed.report.attempts["table:1"] >= 1  # really re-ran
        assert (resumed.run_dir / "table1.txt").read_bytes() == golden

    def test_resumed_run_extends_the_event_log(self, tmp_path):
        runs = tmp_path / "runs"
        chaos = ChaosPlan("kill-worker", hits=2, match="table:1")
        crashed = run_sweep(
            ["1"],
            run_id="r",
            runs_root=runs,
            config=_config(max_retries=1, chaos=chaos),
        )
        before = len(load_events(crashed.run_dir / "events.jsonl"))
        resumed = run_sweep(
            ["1"], run_id="r", runs_root=runs, resume=True, config=_config()
        )
        after = len(load_events(resumed.run_dir / "events.jsonl"))
        assert resumed.run_dir == crashed.run_dir
        assert after > before  # appended, not truncated
