"""The engine's serving mode: intake, priorities, cancel, idle cost,
SIGTERM.

These drive :meth:`Engine.run` with the ``intake``/``cancels``/
``stop``/``wakeup`` hooks the daemon uses, without any sockets — the
service package's own tests cover the wire.
"""

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from collections import deque

from repro.engine import Engine, EngineConfig, JobSpec, LedgerState, Wakeup
from repro.obs import RingBufferSink, Tracer
from repro.obs.events import JobDone, JobFail, JobStart


def selftest(job_id, value, **kwargs):
    return JobSpec(job_id, "selftest", {"value": value}, **kwargs)


class _Feeder:
    """A daemon-shaped harness: thread-safe intake/cancel queues plus a
    wakeup pipe, driven from the test thread while run() serves."""

    def __init__(self):
        self.intake = deque()
        self.cancels = deque()
        self.wakeup = Wakeup()
        self._stop = False

    def submit(self, *specs):
        self.intake.extend(specs)
        self.wakeup.set()

    def cancel(self, job_id):
        self.cancels.append(job_id)
        self.wakeup.set()

    def stop(self):
        self._stop = True
        self.wakeup.set()

    def hooks(self):
        def drain(queue):
            items = []
            while True:
                try:
                    items.append(queue.popleft())
                except IndexError:
                    return items

        return {
            "intake": lambda: drain(self.intake),
            "cancels": lambda: drain(self.cancels),
            "stop": lambda: self._stop,
            "wakeup": self.wakeup,
        }


def serve_engine(feeder, config=None, resume=None, ledger=None):
    ring = RingBufferSink()
    engine = Engine(
        config or EngineConfig(max_workers=2, backoff_base=0.01),
        tracer=Tracer(ring),
        ledger=ledger,
    )
    report = engine.run([], resume=resume, **feeder.hooks())
    return engine, report, ring.events


class TestServing:
    def test_submissions_arrive_while_running(self):
        feeder = _Feeder()
        done = {}

        def drive():
            feeder.submit(selftest("a", 2))
            time.sleep(0.05)
            feeder.submit(selftest("b", 3))
            time.sleep(0.2)
            feeder.stop()

        thread = threading.Thread(target=drive)
        thread.start()
        _engine, report, _events = serve_engine(feeder)
        thread.join()
        done.update(report.results)
        assert done["a"] == {"value": 2, "square": 4}
        assert done["b"] == {"value": 3, "square": 9}

    def test_resubmitted_job_replays_as_warm_hit(self):
        feeder = _Feeder()

        def drive():
            feeder.submit(selftest("a", 4))
            time.sleep(0.3)
            feeder.submit(selftest("a", 4))  # identical: warm hit
            time.sleep(0.2)
            feeder.stop()

        thread = threading.Thread(target=drive)
        thread.start()
        _engine, report, events = serve_engine(feeder)
        thread.join()
        assert report.results["a"] == {"value": 4, "square": 16}
        assert report.resumed == 1  # the replay
        dones = [e for e in events if isinstance(e, JobDone) and e.job == "a"]
        assert len(dones) == 2
        assert dones[1].attempts == 0  # replayed without a worker
        starts = [e for e in events if isinstance(e, JobStart)]
        assert len(starts) == 1  # ran exactly once

    def test_conflicting_resubmission_is_rejected(self):
        feeder = _Feeder()

        def drive():
            feeder.submit(selftest("a", 4))
            time.sleep(0.3)
            feeder.submit(selftest("a", 5))  # same id, different params
            time.sleep(0.2)
            feeder.stop()

        thread = threading.Thread(target=drive)
        thread.start()
        _engine, report, _events = serve_engine(feeder)
        thread.join()
        assert report.results["a"] == {"value": 4, "square": 16}
        assert "job id conflict" in report.failed["a"]

    def test_priority_orders_ready_launches(self):
        feeder = _Feeder()
        # One worker; submit everything before serving starts so the
        # queue is contended from the first launch decision.
        feeder.submit(
            selftest("low", 1, priority=0),
            selftest("high", 2, priority=10),
            selftest("mid", 3, priority=5),
        )
        threading.Timer(0.6, feeder.stop).start()
        _engine, report, events = serve_engine(
            feeder, config=EngineConfig(max_workers=1, backoff_base=0.01)
        )
        assert report.ok
        order = [e.job for e in events if isinstance(e, JobStart)]
        assert order == ["high", "mid", "low"]

    def test_cancel_pending_job(self):
        feeder = _Feeder()

        def drive():
            feeder.submit(
                JobSpec("hog", "selftest", {"value": 1, "sleep": 0.4}),
                selftest("victim", 2),
            )
            time.sleep(0.1)  # hog occupies the only worker
            feeder.cancel("victim")
            time.sleep(0.6)
            feeder.stop()

        thread = threading.Thread(target=drive)
        thread.start()
        _engine, report, events = serve_engine(
            feeder, config=EngineConfig(max_workers=1, backoff_base=0.01)
        )
        thread.join()
        assert report.failed["victim"] == "cancelled"
        assert "hog" in report.results
        fails = [e for e in events if isinstance(e, JobFail)]
        assert [e.job for e in fails] == ["victim"]

    def test_cancel_live_job_kills_worker(self):
        feeder = _Feeder()

        def drive():
            feeder.submit(JobSpec("hung", "selftest", {"value": 1, "sleep": 30}))
            time.sleep(0.2)
            feeder.cancel("hung")
            feeder.stop()

        thread = threading.Thread(target=drive)
        thread.start()
        t0 = time.monotonic()
        _engine, report, _events = serve_engine(feeder)
        thread.join()
        assert report.failed["hung"] == "cancelled"
        assert time.monotonic() - t0 < 10  # killed, not waited out

    def test_drain_finishes_live_and_keeps_queue(self):
        feeder = _Feeder()

        def drive():
            feeder.submit(
                JobSpec("inflight", "selftest", {"value": 1, "sleep": 0.3}),
                selftest("queued", 2),
            )
            time.sleep(0.1)
            feeder.stop()  # drain: inflight finishes, queued never starts

        thread = threading.Thread(target=drive)
        thread.start()
        _engine, report, events = serve_engine(
            feeder, config=EngineConfig(max_workers=1, backoff_base=0.01)
        )
        thread.join()
        assert "inflight" in report.results
        assert "queued" not in report.results
        assert "queued" not in report.failed  # still pending, not lost
        assert all(
            e.job == "inflight" for e in events if isinstance(e, JobStart)
        )


class TestIdleCost:
    def test_idle_serving_engine_barely_wakes(self):
        """The busy-wait regression: an idle engine used to spin its
        20 ms poll ~50 times per second.  Blocking in wait() with a
        0.5 s cap must keep an idle second to a handful of wakeups."""
        feeder = _Feeder()
        threading.Timer(1.0, feeder.stop).start()
        engine, report, _events = serve_engine(feeder)
        assert report.ok
        # 1 s idle at a 0.5 s cap is ~2-3 iterations; the stop poke and
        # scheduling slop allow a couple more.  50+/s must fail.
        assert engine.wakeups <= 8

    def test_busy_engine_still_makes_progress(self):
        feeder = _Feeder()

        def drive():
            for i in range(6):
                feeder.submit(selftest(f"s{i}", i))
                time.sleep(0.02)
            time.sleep(0.4)
            feeder.stop()

        thread = threading.Thread(target=drive)
        thread.start()
        _engine, report, _events = serve_engine(feeder)
        thread.join()
        assert len(report.results) == 6


class TestSigterm:
    def test_sigterm_exits_143_and_records_interrupt(self, tmp_path):
        """SIGTERM goes through the same kill/record/flush path as
        Ctrl-C: exit 128+15, an ``interrupt`` ledger record naming the
        signal, and a resumable ledger."""
        script = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, sys.argv[1])
            from repro.engine import (
                Engine, EngineConfig, GracefulExit, JobSpec, RunLedger,
            )

            ledger = RunLedger(sys.argv[2])
            ledger.append({"kind": "run-start", "run_id": "sigterm-test"})
            engine = Engine(EngineConfig(max_workers=1), ledger=ledger)
            print("READY", flush=True)
            try:
                engine.run(
                    [JobSpec("hang", "selftest", {"value": 1, "sleep": 60})]
                )
            except GracefulExit as err:
                # what the CLI's main() does with it
                raise SystemExit(err.exit_code)
            """
        )
        ledger_path = tmp_path / "ledger.jsonl"
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, src, str(ledger_path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        assert proc.stdout.readline().strip() == "READY"
        time.sleep(0.5)  # let the worker launch
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=15)
        assert proc.returncode == 143
        records = [
            __import__("json").loads(line)
            for line in ledger_path.read_text().splitlines()
        ]
        interrupts = [r for r in records if r.get("kind") == "interrupt"]
        assert interrupts and interrupts[-1]["signal"] == "SIGTERM"
        state = LedgerState.load(ledger_path)  # and the ledger still loads
        assert state.run_info["run_id"] == "sigterm-test"
