"""The run ledger: durable checkpoints, torn tails, resume semantics."""

import json
import threading

from repro.engine import Engine, EngineConfig, JobSpec, LedgerState, RunLedger


def selftest(job_id, value, **kwargs):
    return JobSpec(job_id, "selftest", {"value": value}, **kwargs)


class TestRoundTrip:
    def test_done_and_fail_records(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.append({"kind": "run-start", "run_id": "r1"})
            ledger.job_done("a", "fp", 2, {"x": 1})
            ledger.job_fail("b", 3, "boom")
        state = LedgerState.load(path)
        assert state.run_info["run_id"] == "r1"
        assert state.payload_for("a", "fp") == {"x": 1}
        assert state.failed == {"b": "boom"}
        assert state.skipped_lines == 0

    def test_fingerprint_mismatch_is_not_reused(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_done("a", "old-fingerprint", 1, {"x": 1})
        state = LedgerState.load(path)
        assert state.payload_for("a", "new-fingerprint") is None

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_done("a", "fp", 1, {"x": 1})
        with path.open("a") as fh:
            fh.write('{"kind":"job-done","job":"b","payl')  # crash mid-write
        state = LedgerState.load(path)
        assert state.skipped_lines == 1
        assert state.payload_for("a", "fp") == {"x": 1}
        assert "b" not in state.completed

    def test_later_success_clears_earlier_failure(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.job_fail("a", 3, "first run died")
            ledger.job_done("a", "fp", 1, {"x": 2})  # the resumed run
        state = LedgerState.load(path)
        assert state.payload_for("a", "fp") == {"x": 2}
        assert "a" not in state.failed

    def test_missing_file_is_empty_state(self, tmp_path):
        state = LedgerState.load(tmp_path / "nothing.jsonl")
        assert not state.completed and not state.failed

    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.append({"kind": "run-start", "run_id": "r"})
            ledger.job_done("a", "fp", 1, {"deep": {"nested": [1, 2]}})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)


class TestConcurrentReader:
    """The serve daemon reads ledgers other processes are appending to
    (``--resume`` races the dying daemon's last fsync; status tools
    tail live runs).  A reader must only ever see whole records — a
    half-appended line is skipped, never half-parsed."""

    def test_reader_never_sees_a_torn_record(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        writes = 300
        stop = threading.Event()
        seen = []
        errors = []

        def read_loop():
            while not stop.is_set():
                try:
                    state = LedgerState.load(path)
                except Exception as err:  # pragma: no cover - the failure mode
                    errors.append(err)
                    return
                # Every payload a reader observes must be internally
                # consistent: a torn line that parsed would break this.
                for job, (fingerprint, payload) in state.completed.items():
                    if (
                        fingerprint != f"fp-{job}"
                        or payload.get("echo") != job
                        or payload.get("filler") != "x" * 64
                    ):
                        errors.append(
                            AssertionError(f"mangled record for {job}")
                        )
                        return
                seen.append(len(state.completed))

        reader = threading.Thread(target=read_loop)
        reader.start()
        with RunLedger(path) as ledger:
            for i in range(writes):
                job = f"job-{i:04d}"
                ledger.job_done(
                    job, f"fp-{job}", 1, {"echo": job, "filler": "x" * 64}
                )
        stop.set()
        reader.join()
        assert not errors
        assert seen and max(seen) > 0  # the reader actually raced the writer
        assert all(a <= b for a, b in zip(seen, seen[1:]))  # append-only

        # A crash mid-append leaves a torn tail; a concurrent-style
        # reload skips exactly that line and keeps every whole record.
        with path.open("a") as fh:
            fh.write('{"kind":"job-done","job":"torn","fingerprint":"fp-t')
        state = LedgerState.load(path)
        assert state.skipped_lines == 1
        assert len(state.completed) == writes
        assert "torn" not in state.completed


class TestEngineCheckpointResume:
    def test_completed_jobs_replay_without_rerunning(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        specs = [selftest("a", 2), selftest("b", 3)]
        with RunLedger(path) as ledger:
            first = Engine(
                EngineConfig(max_workers=2, backoff_base=0.01), ledger=ledger
            ).run(specs)
        assert first.ok
        state = LedgerState.load(path)
        assert set(state.completed) == {"a", "b"}
        with RunLedger(path) as ledger:
            second = Engine(
                EngineConfig(max_workers=2, backoff_base=0.01), ledger=ledger
            ).run(specs, resume=state)
        assert second.ok
        assert second.resumed == 2
        assert second.attempts == {"a": 0, "b": 0}  # replayed, not re-run
        assert second.results == first.results

    def test_changed_params_invalidate_the_checkpoint(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            Engine(EngineConfig(backoff_base=0.01), ledger=ledger).run(
                [selftest("a", 2)]
            )
        state = LedgerState.load(path)
        report = Engine(EngineConfig(backoff_base=0.01)).run(
            [selftest("a", 99)], resume=state  # same id, different params
        )
        assert report.resumed == 0
        assert report.attempts["a"] == 1  # actually re-ran
        assert report.results["a"] == {"value": 99, "square": 9801}

    def test_failed_jobs_rerun_on_resume(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            first = Engine(
                EngineConfig(max_retries=0, backoff_base=0.01), ledger=ledger
            ).run(
                [
                    JobSpec("bad", "selftest", {"fail": True}),
                    selftest("good", 4),
                ]
            )
        assert "bad" in first.failed
        state = LedgerState.load(path)
        # Resume with a fixed job definition: same id, healthy params.
        report = Engine(EngineConfig(backoff_base=0.01)).run(
            [JobSpec("bad", "selftest", {"value": 5}), selftest("good", 4)],
            resume=state,
        )
        assert report.ok
        assert report.resumed == 1  # only "good" replayed
        assert report.results["bad"] == {"value": 5, "square": 25}
