"""The supervised engine: DAG scheduling, retries, crash isolation.

All tests run ``selftest`` jobs (pure arithmetic in the worker) so the
engine's own machinery — per-attempt processes, backoff, timeouts,
chaos — is what dominates the clock, not trace generation.
"""

import pytest

from repro.engine import ChaosPlan, Engine, EngineConfig, JobSpec
from repro.obs import RingBufferSink, Tracer
from repro.obs.events import (
    JobDone,
    JobFail,
    JobRetry,
    JobStart,
    WorkerHeartbeat,
)


def selftest(job_id, value, **kwargs):
    return JobSpec(job_id, "selftest", {"value": value}, **kwargs)


def run_engine(specs, config=None, resume=None, ledger=None):
    ring = RingBufferSink()
    engine = Engine(
        config or EngineConfig(max_workers=2, backoff_base=0.01),
        tracer=Tracer(ring),
        ledger=ledger,
    )
    report = engine.run(specs, resume=resume)
    return report, ring.events


class TestScheduling:
    def test_payloads_and_attempts(self):
        report, events = run_engine([selftest("a", 3), selftest("b", 5)])
        assert report.ok
        assert report.results["a"] == {"value": 3, "square": 9}
        assert report.results["b"] == {"value": 5, "square": 25}
        assert report.attempts == {"a": 1, "b": 1}
        assert sum(isinstance(e, JobDone) for e in events) == 2

    def test_dependency_runs_after_dependency_done(self):
        report, events = run_engine(
            [
                selftest("a", 1),
                JobSpec("b", "selftest", {"value": 2}, deps=("a",)),
            ]
        )
        assert report.ok
        a_done = next(
            e.time for e in events if isinstance(e, JobDone) and e.job == "a"
        )
        b_start = next(
            e.time for e in events if isinstance(e, JobStart) and e.job == "b"
        )
        assert b_start > a_done

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate job ids"):
            run_engine([selftest("a", 1), selftest("a", 2)])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            run_engine([JobSpec("a", "selftest", {}, deps=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            run_engine(
                [
                    JobSpec("a", "selftest", {}, deps=("b",)),
                    JobSpec("b", "selftest", {}, deps=("a",)),
                ]
            )


class TestFailureHandling:
    def test_permanent_failure_and_cascade(self):
        report, events = run_engine(
            [
                JobSpec("bad", "selftest", {"fail": True}, max_retries=1),
                JobSpec("child", "selftest", {"value": 1}, deps=("bad",)),
                selftest("unrelated", 7),
            ]
        )
        assert not report.ok
        assert "asked to fail" in report.failed["bad"]
        assert report.failed["child"] == "dependency 'bad' failed"
        assert report.attempts["bad"] == 2  # first try + one retry
        assert report.results["unrelated"]["square"] == 49
        fails = [e for e in events if isinstance(e, JobFail)]
        assert sorted(e.job for e in fails) == ["bad", "child"]

    def test_unknown_job_kind_fails_cleanly(self):
        report, _events = run_engine(
            [JobSpec("x", "no-such-kind", {}, max_retries=0)]
        )
        assert "unknown job kind" in report.failed["x"]

    def test_timeout_kills_hung_worker(self):
        config = EngineConfig(max_workers=1, max_retries=0, backoff_base=0.01)
        report, _events = run_engine(
            [
                JobSpec(
                    "hang", "selftest", {"value": 1, "sleep": 30.0}, timeout=0.2
                )
            ],
            config=config,
        )
        assert "timeout after 0.2s" in report.failed["hang"]
        assert report.elapsed < 10.0  # killed, not waited out


class TestChaos:
    def test_injected_exception_is_retried_to_success(self):
        chaos = ChaosPlan("inject-exception", hits=1, match="flaky")
        report, events = run_engine(
            [selftest("flaky", 4), selftest("calm", 2)],
            config=EngineConfig(
                max_workers=2, max_retries=2, backoff_base=0.01, chaos=chaos
            ),
        )
        assert report.ok
        assert report.attempts == {"flaky": 2, "calm": 1}
        retries = [e for e in events if isinstance(e, JobRetry)]
        assert len(retries) == chaos.total_injected == 1
        assert retries[0].job == "flaky"
        assert "ChaosError" in retries[0].error

    def test_sigkilled_worker_fails_only_its_own_attempt(self):
        chaos = ChaosPlan("kill-worker", hits=1, match="victim")
        report, events = run_engine(
            [selftest("victim", 6), selftest("bystander", 8)],
            config=EngineConfig(
                max_workers=2, max_retries=1, backoff_base=0.01, chaos=chaos
            ),
        )
        assert report.ok  # the victim retried; the bystander never noticed
        assert report.attempts == {"victim": 2, "bystander": 1}
        retry = next(e for e in events if isinstance(e, JobRetry))
        assert "killed by signal 9" in retry.error

    def test_kill_past_budget_is_permanent(self):
        chaos = ChaosPlan("kill-worker", hits=3, match="victim")
        report, events = run_engine(
            [selftest("victim", 6)],
            config=EngineConfig(
                max_workers=1, max_retries=1, backoff_base=0.01, chaos=chaos
            ),
        )
        assert report.failed["victim"].startswith("worker died")
        retries = sum(isinstance(e, JobRetry) for e in events)
        fails = sum(isinstance(e, JobFail) for e in events)
        # every injected kill surfaces as exactly one lifecycle event
        assert retries + fails == chaos.injected["victim"] == 2

    def test_slow_job_trips_timeout_then_recovers(self):
        chaos = ChaosPlan("slow-job", hits=1, delay=5.0)
        report, _events = run_engine(
            [selftest("s", 3)],
            config=EngineConfig(
                max_workers=1,
                max_retries=1,
                timeout=0.2,
                backoff_base=0.01,
                chaos=chaos,
            ),
        )
        assert report.ok
        assert report.attempts["s"] == 2


class TestHeartbeats:
    def test_long_job_emits_heartbeats(self):
        config = EngineConfig(
            max_workers=1, backoff_base=0.01, heartbeat_interval=0.05
        )
        _report, events = run_engine(
            [JobSpec("slow", "selftest", {"value": 1, "sleep": 0.3})],
            config=config,
        )
        beats = [e for e in events if isinstance(e, WorkerHeartbeat)]
        assert beats
        assert all(b.job == "slow" for b in beats)
