"""CLI smoke tests (exercising the same paths a user would)."""

from pathlib import Path

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_nine(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("MAIN", "TQL", "HWSCRT"):
            assert name in out


class TestAnalyze:
    def test_workload(self, capsys):
        assert main(["analyze", "TQL"]) == 0
        out = capsys.readouterr().out
        assert "PI=" in out and "Λ=" in out

    def test_verbose_shows_contributions(self, capsys):
        assert main(["analyze", "FDJAC", "-v"]) == 0
        out = capsys.readouterr().out
        assert "FJAC" in out

    def test_source_file(self, tmp_path, capsys):
        f = tmp_path / "prog.f"
        f.write_text("DIMENSION V(64)\nDO I = 1, 8\nX = V(I)\nENDDO\nEND\n")
        assert main(["analyze", str(f)]) == 0
        assert "Δ = 1" in capsys.readouterr().out

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            main(["analyze", "NO_SUCH_THING"])

    def test_bad_source_reports_error(self, tmp_path, capsys):
        f = tmp_path / "bad.f"
        f.write_text("DO I = 1\nEND\n")
        assert main(["analyze", str(f)]) == 1
        assert "error" in capsys.readouterr().err


class TestInstrument:
    def test_directives_shown(self, capsys):
        assert main(["instrument", "HWSCRT"]) == 0
        out = capsys.readouterr().out
        assert "ALLOCATE" in out

    def test_no_locks(self, capsys):
        assert main(["instrument", "TQL", "--no-locks"]) == 0
        out = capsys.readouterr().out
        assert "LOCK" not in out


class TestTrace:
    def test_summary(self, capsys):
        assert main(["trace", "INIT"]) == 0
        out = capsys.readouterr().out
        assert "references" in out
        assert "pages" in out


class TestSimulate:
    def test_cd_default(self, capsys):
        assert main(["simulate", "TQL", "--pi-cap", "2"]) == 0
        out = capsys.readouterr().out
        assert "CD" in out and "PF=" in out

    def test_lru(self, capsys):
        assert main(["simulate", "TQL", "--policy", "LRU", "--frames", "4"]) == 0
        assert "LRU" in capsys.readouterr().out

    def test_ws(self, capsys):
        assert main(["simulate", "TQL", "--policy", "WS", "--tau", "500"]) == 0
        assert "WS" in capsys.readouterr().out

    def test_fifo_opt_pff(self, capsys):
        for policy in ("FIFO", "OPT", "PFF"):
            assert main(["simulate", "TQL", "--policy", policy]) == 0

    def test_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "TQL", "--policy", "MAGIC"])

    def test_stream_matches_event_driven(self, capsys):
        assert main(["simulate", "TQL", "--policy", "LRU", "--frames", "4"]) == 0
        plain = capsys.readouterr().out
        args = ["simulate", "TQL", "--policy", "LRU", "--frames", "4"]
        assert main([*args, "--stream"]) == 0
        assert capsys.readouterr().out == plain
        assert main([*args, "--stream", "--chunk-size", "97"]) == 0
        assert capsys.readouterr().out == plain

    def test_stream_rejects_clock(self):
        with pytest.raises(SystemExit):
            main(["simulate", "TQL", "--policy", "CLOCK", "--stream"])

    def test_stream_explicit_numpy_backend(self, capsys):
        args = ["simulate", "TQL", "--policy", "WS", "--tau", "100"]
        assert main([*args, "--stream", "--backend", "numpy"]) == 0
        assert "WS" in capsys.readouterr().out

    def test_missing_numba_is_a_clean_error(self, capsys):
        from repro.vm.stream import numba_available

        if numba_available():
            pytest.skip("numba installed; nothing to refuse")
        args = ["simulate", "TQL", "--policy", "LRU", "--stream"]
        assert main([*args, "--backend", "numba"]) == 1
        assert "numba" in capsys.readouterr().err

    def test_replays_hit_artifact_cache(self):
        # workload replays must reuse the content-hash artifact cache
        # rather than regenerating the trace per invocation
        from repro.cli import _replay_trace
        from repro.experiments.runner import artifacts_for

        assert _replay_trace("TQL", False) is artifacts_for("TQL").trace


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "MAIN3" in capsys.readouterr().out

    def test_unknown_table(self):
        with pytest.raises(SystemExit):
            main(["table", "9"])

    def test_stats_to_stderr(self, capsys):
        assert main(["table", "1", "--stats"]) == 0
        captured = capsys.readouterr()
        assert "[stats]" in captured.err
        assert "cache" in captured.err

    def test_timelines_written(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TIMELINES_DIR", raising=False)
        tdir = tmp_path / "timelines"
        assert main(["table", "1", "--timelines", str(tdir)]) == 0
        capsys.readouterr()
        files = sorted(tdir.glob("*.jsonl"))
        assert files, "table --timelines must persist per-cell event logs"
        from repro.obs import Fault, load_events

        events = load_events(files[0])
        assert any(isinstance(e, Fault) for e in events)
        monkeypatch.delenv("REPRO_TIMELINES_DIR", raising=False)


class TestTracePolicy:
    def test_report_and_events(self, tmp_path, capsys):
        events_path = tmp_path / "tql.jsonl"
        assert (
            main(
                [
                    "trace",
                    "TQL",
                    "--policy",
                    "CD",
                    "--locks",
                    "--events",
                    str(events_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "paging profile" in out
        assert "fault inter-arrival" in out
        assert "lock hold times" in out
        assert events_path.exists()

    def test_event_faults_match_simulator(self, tmp_path, capsys):
        """The acceptance criterion: for every bundled workload, the
        PF total derived from the JSONL event log equals the simulator's
        count (the closed-form replay provides the independent count)."""
        from repro.directives import instrument_program
        from repro.obs import Fault, load_events
        from repro.tracegen.interpreter import generate_trace
        from repro.vm.fastsim import simulate_cd_fast
        from repro.workloads import all_workloads

        for workload in all_workloads():
            events_path = tmp_path / f"{workload.name}.jsonl"
            assert (
                main(
                    [
                        "trace",
                        workload.name,
                        "--policy",
                        "CD",
                        "--events",
                        str(events_path),
                        "--report",
                        str(tmp_path / "report.txt"),
                    ]
                )
                == 0
            ), workload.name
            capsys.readouterr()
            event_faults = sum(
                isinstance(e, Fault) for e in load_events(events_path)
            )
            program = workload.program()
            trace = generate_trace(
                program, plan=instrument_program(program, with_locks=False)
            )
            reference = simulate_cd_fast(trace)
            assert event_faults == reference.page_faults, workload.name

    def test_report_file_and_markdown(self, tmp_path, capsys):
        report = tmp_path / "profile.md"
        assert (
            main(
                [
                    "trace",
                    "INIT",
                    "--policy",
                    "LRU",
                    "--frames",
                    "4",
                    "--report",
                    str(report),
                    "--format",
                    "markdown",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote report" in out
        assert "|" in report.read_text()

    def test_sample_every(self, tmp_path, capsys):
        events_path = tmp_path / "e.jsonl"
        assert (
            main(
                [
                    "trace",
                    "INIT",
                    "--policy",
                    "WS",
                    "--tau",
                    "100",
                    "--sample-every",
                    "50",
                    "--events",
                    str(events_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        from repro.obs import load_events
        from repro.obs.events import ResidentSample

        samples = [
            e for e in load_events(events_path) if isinstance(e, ResidentSample)
        ]
        assert samples
        assert all(s.time % 50 == 0 for s in samples)

    def test_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["trace", "TQL", "--policy", "MAGIC"])


class TestCache:
    def test_path_info_clear(self, capsys):
        assert main(["cache", "path"]) == 0
        path_out = capsys.readouterr().out.strip()
        assert path_out  # session cache dir (tests isolate it)
        assert main(["cache", "info"]) == 0
        info_out = capsys.readouterr().out
        assert "disk entries:" in info_out
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "info"]) == 0
        assert "disk entries: 0" in capsys.readouterr().out


class TestVerify:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        assert (
            main(
                [
                    "verify",
                    "--seeds",
                    "3",
                    "--no-shrink",
                    "-o",
                    str(tmp_path / "failures"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "OK" in out
        assert not (tmp_path / "failures").exists()


class TestRun:
    def test_oracle_sweep_writes_run_artifacts(self, tmp_path, capsys):
        assert (
            main(["run", "verify:4:2", "--jobs", "2", "-o", str(tmp_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "engine:" in out and "OK" in out
        (run_dir,) = tmp_path.iterdir()
        assert (run_dir / "ledger.jsonl").exists()
        assert (run_dir / "events.jsonl").exists()

    def test_table_sweep_survives_chaos(self, tmp_path, capsys):
        assert (
            main(
                [
                    "run",
                    "1",
                    "--jobs",
                    "2",
                    "--chaos",
                    "inject-exception",
                    "-o",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "retried" in out  # every first attempt was sabotaged
        (run_dir,) = tmp_path.iterdir()
        assert "MAIN3" in (run_dir / "table1.txt").read_text()

    def test_failed_sweep_exits_one_and_hints_resume(self, tmp_path, capsys):
        assert (
            main(
                [
                    "run",
                    "1",
                    "--chaos",
                    "kill-worker",
                    "--chaos-hits",
                    "9",
                    "--chaos-match",
                    "table:1",
                    "--max-retries",
                    "0",
                    "-o",
                    str(tmp_path),
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "--resume" in out

    def test_unknown_target(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "bogus-table", "-o", str(tmp_path)])

    def test_keyboard_interrupt_exits_130(self, tmp_path, monkeypatch, capsys):
        import repro.engine

        def interrupted(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro.engine, "run_sweep", interrupted)
        assert main(["run", "1", "-o", str(tmp_path)]) == 130
        assert "interrupted" in capsys.readouterr().err


class TestLint:
    DIRTY = str(Path(__file__).parent / "staticcheck" / "fixtures" / "dirty.f")

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "CD101" in out and "CD304" in out

    def test_all_workloads_exit_zero(self, capsys):
        assert main(["lint", "all"]) == 0
        out = capsys.readouterr().out
        assert "error(s)" in out

    def test_dirty_fixture_exits_one(self, capsys):
        assert main(["lint", self.DIRTY]) == 1
        out = capsys.readouterr().out
        assert "CD103" in out and "fix:" in out

    def test_json_output(self, capsys):
        import json

        assert main(["lint", "TQL", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format_version"] == 1
        assert "summary" in document

    def test_rule_filter(self, capsys):
        assert main(["lint", self.DIRTY, "--rules", "CD303"]) == 0
        out = capsys.readouterr().out
        assert "CD303" in out and "CD103" not in out
