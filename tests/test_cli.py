"""CLI smoke tests (exercising the same paths a user would)."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_nine(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("MAIN", "TQL", "HWSCRT"):
            assert name in out


class TestAnalyze:
    def test_workload(self, capsys):
        assert main(["analyze", "TQL"]) == 0
        out = capsys.readouterr().out
        assert "PI=" in out and "Λ=" in out

    def test_verbose_shows_contributions(self, capsys):
        assert main(["analyze", "FDJAC", "-v"]) == 0
        out = capsys.readouterr().out
        assert "FJAC" in out

    def test_source_file(self, tmp_path, capsys):
        f = tmp_path / "prog.f"
        f.write_text("DIMENSION V(64)\nDO I = 1, 8\nX = V(I)\nENDDO\nEND\n")
        assert main(["analyze", str(f)]) == 0
        assert "Δ = 1" in capsys.readouterr().out

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            main(["analyze", "NO_SUCH_THING"])

    def test_bad_source_reports_error(self, tmp_path, capsys):
        f = tmp_path / "bad.f"
        f.write_text("DO I = 1\nEND\n")
        assert main(["analyze", str(f)]) == 1
        assert "error" in capsys.readouterr().err


class TestInstrument:
    def test_directives_shown(self, capsys):
        assert main(["instrument", "HWSCRT"]) == 0
        out = capsys.readouterr().out
        assert "ALLOCATE" in out

    def test_no_locks(self, capsys):
        assert main(["instrument", "TQL", "--no-locks"]) == 0
        out = capsys.readouterr().out
        assert "LOCK" not in out


class TestTrace:
    def test_summary(self, capsys):
        assert main(["trace", "INIT"]) == 0
        out = capsys.readouterr().out
        assert "references" in out
        assert "pages" in out


class TestSimulate:
    def test_cd_default(self, capsys):
        assert main(["simulate", "TQL", "--pi-cap", "2"]) == 0
        out = capsys.readouterr().out
        assert "CD" in out and "PF=" in out

    def test_lru(self, capsys):
        assert main(["simulate", "TQL", "--policy", "LRU", "--frames", "4"]) == 0
        assert "LRU" in capsys.readouterr().out

    def test_ws(self, capsys):
        assert main(["simulate", "TQL", "--policy", "WS", "--tau", "500"]) == 0
        assert "WS" in capsys.readouterr().out

    def test_fifo_opt_pff(self, capsys):
        for policy in ("FIFO", "OPT", "PFF"):
            assert main(["simulate", "TQL", "--policy", policy]) == 0

    def test_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "TQL", "--policy", "MAGIC"])


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "MAIN3" in capsys.readouterr().out

    def test_unknown_table(self):
        with pytest.raises(SystemExit):
            main(["table", "9"])
