"""Shared fixtures for VM-simulator tests."""

import numpy as np
import pytest

from repro.tracegen.events import ReferenceTrace


def make_trace(pages, directives=None, name="TEST"):
    pages = np.asarray(pages, dtype=np.int32)
    total = int(pages.max()) + 1 if len(pages) else 1
    return ReferenceTrace(
        program_name=name,
        pages=pages,
        total_pages=total,
        directives=list(directives or []),
    )


@pytest.fixture
def cyclic_trace():
    """Three pages referenced cyclically: the classic LRU worst case."""
    return make_trace([0, 1, 2] * 20)


@pytest.fixture
def locality_trace():
    """Two phase-localities with a transition."""
    phase1 = [0, 1, 0, 1, 0, 1] * 10
    phase2 = [5, 6, 7, 5, 6, 7] * 10
    return make_trace(phase1 + phase2)
