"""The closed-form CD replay must *decline* the cases it cannot model —
LOCK pinning and finite memory ceilings — and the experiment layer must
route those to the event-driven simulator."""

import pytest

from repro.experiments import runner as runner_mod
from repro.experiments.runner import artifacts_for, clear_cache
from repro.tracegen.events import DirectiveEvent, DirectiveKind
from repro.vm.fastsim import cd_fast_applicable, simulate_cd_fast
from repro.vm.policies import CDConfig

from .conftest import make_trace


def _lock_trace():
    lock = DirectiveEvent(
        position=0,
        kind=DirectiveKind.LOCK,
        site=1,
        lock_pages=(0, 1),
        priority_index=2,
    )
    unlock = DirectiveEvent(
        position=6, kind=DirectiveKind.UNLOCK, site=1, lock_pages=(0, 1)
    )
    return make_trace([0, 1, 2, 0, 1, 2], directives=[lock, unlock])


def test_memory_limit_disqualifies_fast_path():
    trace = make_trace([0, 1, 2] * 4)
    assert cd_fast_applicable(trace, CDConfig())
    assert not cd_fast_applicable(trace, CDConfig(memory_limit=8))
    assert not cd_fast_applicable(trace, CDConfig(memory_limit=1))


def test_lock_events_disqualify_fast_path_only_when_honored():
    trace = _lock_trace()
    assert not cd_fast_applicable(trace, CDConfig(honor_locks=True))
    assert cd_fast_applicable(trace, CDConfig(honor_locks=False))


def test_unlock_without_lock_is_inert():
    unlock = DirectiveEvent(
        position=2, kind=DirectiveKind.UNLOCK, site=1, lock_pages=(0,)
    )
    trace = make_trace([0, 1, 2, 0], directives=[unlock])
    assert cd_fast_applicable(trace, CDConfig(honor_locks=True))


def test_simulate_cd_fast_refuses_inapplicable_configs():
    with pytest.raises(ValueError):
        simulate_cd_fast(make_trace([0, 1, 2]), CDConfig(memory_limit=4))
    with pytest.raises(ValueError):
        simulate_cd_fast(_lock_trace(), CDConfig(honor_locks=True))


@pytest.fixture
def artifacts(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_cache(disk=False)
    yield artifacts_for("TQL", with_locks=True)
    clear_cache(disk=False)


def test_cd_result_dispatches_to_event_driven_under_locks(
    artifacts, monkeypatch
):
    def forbidden(*_args, **_kwargs):  # pragma: no cover - failure path
        raise AssertionError("fast path used where it is not exact")

    monkeypatch.setattr(runner_mod, "simulate_cd_fast", forbidden)
    # the instrumented TQL trace carries LOCK events: must go slow
    result = artifacts.cd_result(CDConfig(honor_locks=True))
    assert result.page_faults > 0
    # ... and a finite ceiling must go slow as well
    limited = artifacts.cd_result(CDConfig(memory_limit=16))
    assert limited.mem_average <= 16


def test_cd_result_uses_fast_path_when_exact(artifacts, monkeypatch):
    calls = []
    real = runner_mod.simulate_cd_fast

    def spying(trace, config, distances=None, tracer=None):
        calls.append(config)
        return real(trace, config, distances=distances, tracer=tracer)

    monkeypatch.setattr(runner_mod, "simulate_cd_fast", spying)
    result = artifacts.cd_result(CDConfig(honor_locks=False))
    assert calls and result.references == len(artifacts.trace.pages)


def test_fast_and_slow_agree_when_both_apply(artifacts):
    config = CDConfig(honor_locks=False)
    fast = simulate_cd_fast(
        artifacts.trace, config, distances=artifacts.lru._distances
    )
    slow = runner_mod.simulate(
        artifacts.trace, runner_mod.CDPolicy(config)
    )
    assert (fast.page_faults, fast.mem_average, fast.space_time) == (
        slow.page_faults,
        slow.mem_average,
        slow.space_time,
    )
