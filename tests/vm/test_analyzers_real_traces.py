"""Cross-validation of the sweep analyzers against the event simulator
on the *real* benchmark traces (not just synthetic strings).

The analyzers power every table; a divergence on a real trace would
silently skew the reproduction, so this is the load-bearing check.
"""

import pytest

from repro.experiments.runner import artifacts_for
from repro.vm.policies import LRUPolicy, WorkingSetPolicy
from repro.vm.simulator import simulate

# Small/medium programs keep the exact replays fast; CONDUCT covers the
# largest virtual space.
PROGRAMS = ["TQL", "FDJAC", "HWSCRT", "CONDUCT"]


@pytest.mark.parametrize("name", PROGRAMS)
class TestLRUOnRealTraces:
    @pytest.mark.parametrize("fraction", [0.1, 0.5])
    def test_matches_simulator(self, name, fraction):
        artifacts = artifacts_for(name)
        frames = max(1, int(artifacts.lru.max_useful_frames * fraction))
        exact = simulate(artifacts.trace, LRUPolicy(frames=frames))
        assert artifacts.lru.faults(frames) == exact.page_faults
        assert artifacts.lru.mem(frames) == pytest.approx(exact.mem_average)
        assert artifacts.lru.space_time(frames) == pytest.approx(
            exact.space_time
        )


@pytest.mark.parametrize("name", PROGRAMS)
class TestWSOnRealTraces:
    @pytest.mark.parametrize("tau", [100, 2500])
    def test_matches_simulator(self, name, tau):
        artifacts = artifacts_for(name)
        exact = simulate(artifacts.trace, WorkingSetPolicy(tau=tau))
        assert artifacts.ws.faults(tau) == exact.page_faults
        assert artifacts.ws.mem(tau) == pytest.approx(exact.mem_average)
        assert artifacts.ws.space_time(tau) == pytest.approx(exact.space_time)
