"""Failure-injection tests: malformed and adversarial inputs.

The simulator substrate must fail loudly on invalid data and shrug off
adversarial-but-legal directive streams (locks on absent pages, unlocks
without locks, churned allocations) without corrupting its accounting.
"""

import numpy as np
import pytest

from repro.directives.model import AllocateRequest
from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.vm.policies import CDConfig, CDPolicy
from repro.vm.simulator import simulate

from .conftest import make_trace


def alloc(position, *pairs, site=0):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.ALLOCATE,
        site=site,
        requests=tuple(AllocateRequest(pi, x) for pi, x in pairs),
    )


def lock(position, pages, pj=2, site=9):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.LOCK,
        site=site,
        lock_pages=tuple(pages),
        priority_index=pj,
    )


def unlock(position, pages, site=9):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.UNLOCK,
        site=site,
        lock_pages=tuple(pages),
    )


class TestMalformedTraces:
    def test_negative_page_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ReferenceTrace(
                program_name="BAD",
                pages=np.asarray([0, -3], dtype=np.int32),
                total_pages=4,
            )

    def test_total_pages_too_small_rejected(self):
        with pytest.raises(ValueError, match="total_pages"):
            ReferenceTrace(
                program_name="BAD",
                pages=np.asarray([0, 9], dtype=np.int32),
                total_pages=5,
            )

    def test_unsorted_directives_rejected(self):
        with pytest.raises(ValueError, match="position-ordered"):
            make_trace([0, 1, 2], directives=[alloc(2, (1, 1)), alloc(0, (1, 1))])


class TestAdversarialDirectives:
    def test_lock_on_never_referenced_page(self):
        # Pinning a page that is never resident must not break MEM/PF
        # accounting.
        trace = make_trace(
            [0, 1, 0, 1],
            directives=[alloc(0, (2, 2)), lock(1, [99], site=3)],
        )
        trace.pages = np.asarray([0, 1, 0, 1], dtype=np.int32)
        policy = CDPolicy()
        result = simulate(trace, policy)
        assert result.page_faults == 2
        assert policy.resident_size == 2

    def test_unlock_without_lock_is_noop(self):
        trace = make_trace(
            [0, 1, 0],
            directives=[alloc(0, (2, 2)), unlock(2, [0, 5])],
        )
        policy = CDPolicy()
        result = simulate(trace, policy)
        assert result.page_faults == 2
        assert policy.locked_page_count == 0

    def test_double_lock_same_page_different_sites(self):
        # The second site must not steal the pin; unlocking the first
        # site releases it.
        trace = make_trace(
            [7, 0, 1, 7],
            directives=[
                alloc(0, (2, 1)),
                lock(1, [7], site=1),
                lock(2, [7], site=2),
                unlock(3, [7], site=1),
            ],
        )
        policy = CDPolicy()
        simulate(trace, policy)
        assert policy.locked_page_count == 0

    def test_allocation_churn(self):
        # Rapidly alternating grants must keep residency consistent.
        directives = []
        for i in range(0, 40, 2):
            directives.append(alloc(i, (2, 8), site=1))
            directives.append(alloc(i + 1, (2, 8), (1, 1), site=2))
        trace = make_trace(list(range(8)) * 5, directives=directives)
        policy = CDPolicy(CDConfig(pi_cap=1))
        result = simulate(trace, policy)
        assert policy.resident_size <= 1
        assert result.page_faults <= trace.length

    def test_directive_after_last_reference(self):
        trace = make_trace(
            [0, 1],
            directives=[alloc(0, (1, 2)), unlock(2, [0])],
        )
        result = simulate(trace, CDPolicy())
        assert result.references == 2

    def test_relock_unlock_interleaving_preserves_counter(self):
        # locked_resident must track residency exactly through lock /
        # supersede / unlock cycles.
        trace = make_trace(
            [3, 4, 3, 4, 3],
            directives=[
                alloc(0, (2, 2)),
                lock(1, [3], site=1),
                lock(2, [4], site=1),  # supersedes the pin on 3
                unlock(4, [4], site=1),
            ],
        )
        policy = CDPolicy()
        simulate(trace, policy)
        assert policy.locked_page_count == 0
        assert policy._locked_resident == 0

    def test_empty_trace_with_directives(self):
        trace = make_trace([], directives=[alloc(0, (1, 4))])
        result = simulate(trace, CDPolicy())
        assert result.references == 0
        assert result.page_faults == 0

    def test_deliver_directives_false_starves_cd(self):
        trace = make_trace(
            [0, 1, 0, 1],
            directives=[alloc(0, (1, 2))],
        )
        fed = simulate(trace, CDPolicy())
        starved = simulate(trace, CDPolicy(), deliver_directives=False)
        assert fed.page_faults == 2
        assert starved.page_faults == 4  # stuck at min_allocation=1
