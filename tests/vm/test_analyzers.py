"""Tests for the one-pass LRU/WS sweep analyzers, including exact
cross-validation against the event-driven simulator."""

import numpy as np
import pytest

from repro.vm.analyzers import LRUSweep, WSSweep
from repro.vm.policies import LRUPolicy, WorkingSetPolicy
from repro.vm.simulator import simulate

from .conftest import make_trace


def random_trace(seed, length=400, universe=12):
    rng = np.random.default_rng(seed)
    # Mix locality phases with uniform noise for realistic shape.
    pages = []
    base = 0
    for _ in range(length // 20):
        base = int(rng.integers(0, universe - 3))
        for _ in range(20):
            if rng.random() < 0.8:
                pages.append(base + int(rng.integers(0, 3)))
            else:
                pages.append(int(rng.integers(0, universe)))
    return make_trace(pages)


class TestLRUSweepBasics:
    def test_faults_match_known_string(self):
        sweep = LRUSweep(make_trace([0, 1, 0, 2, 1]))
        assert sweep.faults(2) == 4
        assert sweep.faults(3) == 3

    def test_faults_monotone_in_frames(self):
        sweep = LRUSweep(random_trace(1))
        faults = [sweep.faults(m) for m in range(1, sweep.max_useful_frames + 1)]
        assert faults == sorted(faults, reverse=True)

    def test_cold_faults_at_max_frames(self):
        trace = random_trace(2)
        sweep = LRUSweep(trace)
        assert sweep.faults(sweep.max_useful_frames) == trace.distinct_pages

    def test_invalid_frames(self):
        sweep = LRUSweep(make_trace([0]))
        with pytest.raises(ValueError):
            sweep.faults(0)

    def test_empty_trace(self):
        sweep = LRUSweep(make_trace([]))
        assert sweep.faults(1) == 0
        assert sweep.mem(1) == 0.0

    def test_curve_default_range(self):
        sweep = LRUSweep(make_trace([0, 1, 2, 0, 1, 2]))
        curve = sweep.curve()
        assert [r.parameter for r in curve] == [1, 2, 3]

    def test_min_space_time_is_global(self):
        sweep = LRUSweep(random_trace(3))
        best = sweep.min_space_time()
        for m in range(1, sweep.max_useful_frames + 1):
            assert best.space_time <= sweep.space_time(m)

    def test_min_frames_with_faults_at_most(self):
        sweep = LRUSweep(random_trace(4))
        target = sweep.faults(5)
        m = sweep.min_frames_with_faults_at_most(target)
        assert m is not None and m <= 5
        assert sweep.faults(m) <= target
        if m > 1:
            assert sweep.faults(m - 1) > target

    def test_min_frames_unreachable(self):
        sweep = LRUSweep(make_trace([0, 1, 2]))
        assert sweep.min_frames_with_faults_at_most(2) is None

    def test_frames_for_mem(self):
        sweep = LRUSweep(random_trace(5))
        target = sweep.mem(4)
        assert sweep.frames_for_mem(target) == 4


class TestLRUSweepAgreesWithSimulator:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("frames", [1, 2, 3, 5, 9])
    def test_exact_agreement(self, seed, frames):
        trace = random_trace(seed)
        sweep = LRUSweep(trace)
        exact = simulate(trace, LRUPolicy(frames=frames))
        assert sweep.faults(frames) == exact.page_faults
        assert sweep.mem(frames) == pytest.approx(exact.mem_average)
        assert sweep.space_time(frames) == pytest.approx(exact.space_time)


class TestWSSweepBasics:
    def test_faults_match_known_string(self):
        sweep = WSSweep(make_trace([0, 1, 0]))
        assert sweep.faults(2) == 2
        assert sweep.faults(1) == 3

    def test_faults_monotone_in_tau(self):
        sweep = WSSweep(random_trace(6))
        faults = [sweep.faults(t) for t in range(1, 100, 7)]
        assert faults == sorted(faults, reverse=True)

    def test_mem_monotone_in_tau(self):
        sweep = WSSweep(random_trace(7))
        mems = [sweep.mem(t) for t in range(1, 100, 7)]
        assert all(a <= b + 1e-12 for a, b in zip(mems, mems[1:]))

    def test_tau_one_mem_is_one(self):
        sweep = WSSweep(make_trace([0, 1, 2, 3]))
        assert sweep.mem(1) == 1.0

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            WSSweep(make_trace([0])).faults(0)

    def test_empty_trace(self):
        sweep = WSSweep(make_trace([]))
        assert sweep.faults(5) == 0

    def test_default_taus_cover_range(self):
        trace = random_trace(8)
        sweep = WSSweep(trace)
        taus = sweep.default_taus()
        assert taus[0] == 1
        assert taus[-1] == trace.length

    def test_tau_for_mem_bisection(self):
        sweep = WSSweep(random_trace(9))
        target = sweep.mem(40)
        tau = sweep.tau_for_mem(target)
        assert sweep.mem(tau) == pytest.approx(target, rel=0.05)

    def test_min_tau_with_faults_at_most(self):
        sweep = WSSweep(random_trace(10))
        target = sweep.faults(50)
        tau = sweep.min_tau_with_faults_at_most(target)
        assert tau is not None
        assert sweep.faults(tau) <= target
        if tau > 1:
            assert sweep.faults(tau - 1) > target

    def test_min_space_time_not_worse_than_grid(self):
        sweep = WSSweep(random_trace(11))
        best = sweep.min_space_time()
        for t in sweep.default_taus():
            assert best.space_time <= sweep.space_time(t) + 1e-9

    def test_results_cached(self):
        sweep = WSSweep(random_trace(12))
        assert sweep.result(17) is sweep.result(17)


class TestWSSweepAgreesWithSimulator:
    @pytest.mark.parametrize("seed", [0, 3, 7])
    @pytest.mark.parametrize("tau", [1, 2, 5, 19, 100])
    def test_exact_agreement(self, seed, tau):
        trace = random_trace(seed)
        sweep = WSSweep(trace)
        exact = simulate(trace, WorkingSetPolicy(tau=tau))
        assert sweep.faults(tau) == exact.page_faults
        assert sweep.mem(tau) == pytest.approx(exact.mem_average)
        assert sweep.space_time(tau) == pytest.approx(exact.space_time)


class TestMetrics:
    def test_percent_excess(self):
        from repro.vm.metrics import percent_excess

        assert percent_excess(150, 100) == pytest.approx(50.0)
        assert percent_excess(80, 100) == pytest.approx(-20.0)

    def test_result_virtual_time(self):
        from repro.vm.metrics import SimulationResult

        r = SimulationResult(
            policy="LRU",
            program="X",
            page_faults=10,
            references=1000,
            mem_average=2.0,
            space_time=1.0,
            fault_service=2000,
        )
        assert r.virtual_time == 21000
        assert r.fault_rate == pytest.approx(0.01)

    def test_describe_mentions_parameter(self):
        from repro.vm.metrics import SimulationResult

        r = SimulationResult(
            policy="WS",
            program="X",
            page_faults=1,
            references=10,
            mem_average=1.0,
            space_time=1.0,
            parameter=42,
        )
        assert "42" in r.describe()
