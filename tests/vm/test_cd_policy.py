"""Unit tests for the Compiler Directed policy (Figure 6 semantics)."""

import pytest

from repro.directives.model import AllocateRequest
from repro.tracegen.events import DirectiveEvent, DirectiveKind
from repro.vm.policies import CDConfig, CDPolicy
from repro.vm.simulator import simulate

from .conftest import make_trace


def allocate_event(position, *pairs, site=0):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.ALLOCATE,
        site=site,
        requests=tuple(AllocateRequest(pi, x) for pi, x in pairs),
    )


def lock_event(position, pages, pj=2, site=1):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.LOCK,
        site=site,
        lock_pages=tuple(pages),
        priority_index=pj,
    )


def unlock_event(position, pages, site=0):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.UNLOCK,
        site=site,
        lock_pages=tuple(pages),
    )


class TestAllocationTarget:
    def test_grants_largest_request_unlimited(self):
        policy = CDPolicy()
        policy.on_directive(allocate_event(0, (3, 10), (1, 2)))
        assert policy.allocation_target == 10

    def test_pi_cap_selects_inner_request(self):
        policy = CDPolicy(CDConfig(pi_cap=1))
        policy.on_directive(allocate_event(0, (3, 10), (2, 5), (1, 2)))
        assert policy.allocation_target == 2

    def test_pi_cap_middle(self):
        policy = CDPolicy(CDConfig(pi_cap=2))
        policy.on_directive(allocate_event(0, (3, 10), (2, 5), (1, 2)))
        assert policy.allocation_target == 5

    def test_cap_with_no_eligible_falls_back_to_innermost(self):
        policy = CDPolicy(CDConfig(pi_cap=1))
        policy.on_directive(allocate_event(0, (3, 10), (2, 5)))
        assert policy.allocation_target == 5

    def test_memory_limit_denies_large_request(self):
        policy = CDPolicy(CDConfig(memory_limit=6))
        policy.on_directive(allocate_event(0, (3, 10), (1, 2)))
        assert policy.allocation_target == 2
        assert policy.denied_requests == 1

    def test_unsatisfiable_outer_keeps_current_allocation(self):
        # PI > 1 cannot be granted: "continue the execution of the
        # program with the current allocation".
        policy = CDPolicy(CDConfig(memory_limit=4))
        policy.on_directive(allocate_event(0, (1, 3)))
        assert policy.allocation_target == 3
        policy.on_directive(allocate_event(1, (3, 10), (2, 8)))
        assert policy.allocation_target == 3
        assert policy.swaps == 0

    def test_unsatisfiable_pi1_swaps(self):
        # PI = 1 cannot be granted: the swapper is invoked.
        policy = CDPolicy(CDConfig(memory_limit=4))
        policy.on_directive(allocate_event(0, (2, 9), (1, 6)))
        assert policy.swaps == 1
        assert policy.allocation_target == 4  # runs with what exists

    def test_shrinking_grant_evicts_immediately(self):
        trace = make_trace(
            [0, 1, 2, 3, 4, 4],
            directives=[
                allocate_event(0, (2, 5)),
                allocate_event(5, (2, 5), (1, 2)),
            ],
        )
        policy = CDPolicy(CDConfig(pi_cap=1))
        simulate(trace, policy)
        assert policy.resident_size == 2

    def test_replacement_is_lru_within_allocation(self):
        trace = make_trace(
            [0, 1, 2, 0],
            directives=[allocate_event(0, (1, 2))],
        )
        result = simulate(trace, CDPolicy())
        # 2 frames: 0,1 cold; 2 evicts LRU(0); 0 refaults = 4 faults.
        assert result.page_faults == 4

    def test_default_min_allocation_without_directives(self):
        result = simulate(make_trace([0, 1, 0, 1]), CDPolicy())
        # Target stays at min_allocation=1: every reference faults.
        assert result.page_faults == 4

    def test_parameter_reported(self):
        policy = CDPolicy(CDConfig(pi_cap=2))
        assert policy.describe_parameter() == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CDConfig(pi_cap=0)
        with pytest.raises(ValueError):
            CDConfig(memory_limit=0)
        with pytest.raises(ValueError):
            CDConfig(min_allocation=0)

    def test_config_label(self):
        assert CDConfig().label() == "CD"
        assert "pi<=1" in CDConfig(pi_cap=1).label()


class TestLocking:
    def test_locked_page_survives_replacement(self):
        # Allocation of 1; page 9 locked; stream of other pages churns,
        # then 9 is re-referenced without a fault.
        trace = make_trace(
            [9, 0, 1, 2, 9],
            directives=[
                allocate_event(0, (2, 1)),
                lock_event(1, [9]),
            ],
        )
        result = simulate(trace, CDPolicy())
        # Faults: 9, 0, 1, 2 — the final 9 hits because it is pinned.
        assert result.page_faults == 4

    def test_unlocked_page_would_have_faulted(self):
        trace = make_trace([9, 0, 1, 2, 9], directives=[allocate_event(0, (2, 1))])
        result = simulate(trace, CDPolicy())
        assert result.page_faults == 5

    def test_relock_at_same_site_moves_pin(self):
        trace = make_trace(
            [9, 0, 8, 0, 9],
            directives=[
                allocate_event(0, (2, 1)),
                lock_event(1, [9]),
                lock_event(3, [8]),  # same site: supersedes the pin on 9
            ],
        )
        result = simulate(trace, CDPolicy())
        # 9 is no longer pinned when re-referenced: it faulted out.
        assert result.page_faults == 5

    def test_unlock_releases_pin(self):
        trace = make_trace(
            [9, 0, 1, 9],
            directives=[
                allocate_event(0, (2, 1)),
                lock_event(1, [9]),
                unlock_event(2, [9]),
            ],
        )
        policy = CDPolicy()
        result = simulate(trace, policy)
        # After UNLOCK the target (1) evicts 9; final 9 refaults.
        assert result.page_faults == 4
        assert policy.locked_page_count == 0

    def test_honor_locks_false_ignores_pins(self):
        trace = make_trace(
            [9, 0, 1, 2, 9],
            directives=[allocate_event(0, (2, 1)), lock_event(1, [9])],
        )
        result = simulate(trace, CDPolicy(CDConfig(honor_locks=False)))
        assert result.page_faults == 5

    def test_pressure_releases_highest_pj_first(self):
        # memory_limit 2; two pins with PJ 2 and 3; pressure releases PJ 3.
        trace = make_trace(
            [5, 6, 0, 1, 5, 6],
            directives=[
                allocate_event(0, (2, 2)),
                lock_event(0, [5], pj=2, site=10),
                lock_event(1, [6], pj=3, site=11),
            ],
        )
        policy = CDPolicy(CDConfig(memory_limit=2))
        simulate(trace, policy)
        # The PJ=3 pin (page 6) was sacrificed at some point.
        assert policy.lock_releases >= 1

    def test_locked_pages_ride_above_target(self):
        # Target 1 plus one pinned page: resident can be 2.
        trace = make_trace(
            [9, 0, 0],
            directives=[allocate_event(0, (2, 1)), lock_event(1, [9])],
        )
        policy = CDPolicy()
        simulate(trace, policy)
        assert policy.resident_size == 2

    def test_swap_counters_surface_in_result(self):
        trace = make_trace(
            [0, 1],
            directives=[allocate_event(0, (2, 9), (1, 6))],
        )
        result = simulate(trace, CDPolicy(CDConfig(memory_limit=4)))
        assert result.swaps == 1
