"""Unit tests for the fixed-partition policies: LRU, FIFO, OPT."""

import pytest

from repro.vm.policies import FIFOPolicy, LRUPolicy, OPTPolicy
from repro.vm.simulator import simulate

from .conftest import make_trace


class TestLRU:
    def test_cold_faults_counted(self):
        result = simulate(make_trace([0, 1, 2]), LRUPolicy(frames=4))
        assert result.page_faults == 3

    def test_hits_do_not_fault(self):
        result = simulate(make_trace([0, 1, 0, 1]), LRUPolicy(frames=2))
        assert result.page_faults == 2

    def test_evicts_least_recently_used(self):
        # [0 1 2] with 2 frames: after 0,1 -> touch 0 -> evict 1 on 2.
        policy = LRUPolicy(frames=2)
        trace = make_trace([0, 1, 0, 2, 1])
        result = simulate(trace, policy)
        # faults: 0, 1, 2, then 1 again (evicted) = 4
        assert result.page_faults == 4

    def test_cyclic_thrash_with_too_few_frames(self, cyclic_trace):
        result = simulate(cyclic_trace, LRUPolicy(frames=2))
        assert result.page_faults == cyclic_trace.length  # every ref faults

    def test_cyclic_no_faults_with_enough_frames(self, cyclic_trace):
        result = simulate(cyclic_trace, LRUPolicy(frames=3))
        assert result.page_faults == 3  # only cold faults

    def test_resident_never_exceeds_frames(self):
        policy = LRUPolicy(frames=3)
        simulate(make_trace(list(range(10))), policy)
        assert policy.resident_size == 3

    def test_invalid_frames(self):
        with pytest.raises(ValueError):
            LRUPolicy(frames=0)

    def test_mem_average_accounts_warmup(self):
        # Pages 0..3 each once with 10 frames: resident grows 1,2,3,4.
        result = simulate(make_trace([0, 1, 2, 3]), LRUPolicy(frames=10))
        assert result.mem_average == pytest.approx((1 + 2 + 3 + 4) / 4)

    def test_space_time_includes_fault_service(self):
        result = simulate(
            make_trace([0, 1]), LRUPolicy(frames=4), fault_service=100
        )
        # refs contribute 1 + 2; faults contribute 100*1 + 100*2.
        assert result.space_time == 3 + 300

    def test_reset_between_runs(self):
        policy = LRUPolicy(frames=2)
        first = simulate(make_trace([0, 1, 2]), policy)
        second = simulate(make_trace([0, 1, 2]), policy)
        assert first.page_faults == second.page_faults


class TestFIFO:
    def test_evicts_oldest(self):
        # 2 frames, refs 0 1 0 2 0: FIFO evicts 0 on page 2 despite recency.
        result = simulate(make_trace([0, 1, 0, 2, 0]), FIFOPolicy(frames=2))
        assert result.page_faults == 4  # 0, 1, 2, 0-again

    def test_lru_differs_on_same_string(self):
        trace = make_trace([0, 1, 0, 2, 0])
        fifo = simulate(trace, FIFOPolicy(frames=2))
        lru = simulate(trace, LRUPolicy(frames=2))
        assert lru.page_faults == 3 < fifo.page_faults

    def test_belady_anomaly_exists(self):
        # The textbook string exhibiting Belady's anomaly under FIFO.
        string = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        three = simulate(make_trace(string), FIFOPolicy(frames=3))
        four = simulate(make_trace(string), FIFOPolicy(frames=4))
        assert four.page_faults > three.page_faults

    def test_invalid_frames(self):
        with pytest.raises(ValueError):
            FIFOPolicy(frames=0)


class TestOPT:
    def test_textbook_example(self):
        # Classic Belady example: OPT gets 9 faults with 3 frames.
        string = [7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1]
        result = simulate(make_trace(string), OPTPolicy(frames=3))
        assert result.page_faults == 9

    def test_opt_never_worse_than_lru(self, locality_trace):
        for frames in (1, 2, 3, 5, 8):
            opt = simulate(locality_trace, OPTPolicy(frames=frames))
            lru = simulate(locality_trace, LRUPolicy(frames=frames))
            assert opt.page_faults <= lru.page_faults

    def test_requires_prepare(self):
        policy = OPTPolicy(frames=2)
        with pytest.raises(RuntimeError):
            policy.access(0, 0)

    def test_simulator_calls_prepare(self):
        result = simulate(make_trace([0, 1, 0]), OPTPolicy(frames=2))
        assert result.page_faults == 2

    def test_invalid_frames(self):
        with pytest.raises(ValueError):
            OPTPolicy(frames=0)

    def test_reset_requires_new_prepare(self):
        policy = OPTPolicy(frames=2)
        simulate(make_trace([0, 1]), policy)
        policy.reset()
        with pytest.raises(RuntimeError):
            policy.access(0, 0)
