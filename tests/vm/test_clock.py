"""Unit tests for the CLOCK (second chance) policy."""

import pytest

from repro.vm.policies import ClockPolicy, FIFOPolicy, LRUPolicy, OPTPolicy
from repro.vm.simulator import simulate

from .conftest import make_trace


class TestClock:
    def test_cold_faults(self):
        result = simulate(make_trace([0, 1, 2]), ClockPolicy(frames=4))
        assert result.page_faults == 3

    def test_second_chance_saves_retouched_page(self):
        # 3 frames.  Loading 3 sweeps all bits clear and evicts 0; the
        # hit on 1 re-sets its bit; loading 4 then skips 1 (second
        # chance) and evicts 2, so the final 1 hits.
        trace = make_trace([0, 1, 2, 3, 1, 4, 1])
        result = simulate(trace, ClockPolicy(frames=3))
        assert result.page_faults == 5

    def test_fifo_would_evict_retouched_page(self):
        trace = make_trace([0, 1, 2, 3, 1, 4, 1])
        clock = simulate(trace, ClockPolicy(frames=3))
        fifo = simulate(trace, FIFOPolicy(frames=3))
        assert clock.page_faults < fifo.page_faults == 6

    def test_degenerates_to_fifo_without_rereference(self):
        # No re-references: use bits never matter; fault counts match FIFO.
        trace = make_trace(list(range(10)) * 2)
        clock = simulate(trace, ClockPolicy(frames=4))
        fifo = simulate(trace, FIFOPolicy(frames=4))
        assert clock.page_faults == fifo.page_faults

    def test_between_lru_and_fifo_on_mixed_string(self):
        pages = [0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1] * 3
        trace = make_trace(pages)
        lru = simulate(trace, LRUPolicy(frames=3))
        clock = simulate(trace, ClockPolicy(frames=3))
        opt = simulate(trace, OPTPolicy(frames=3))
        assert opt.page_faults <= min(lru.page_faults, clock.page_faults)
        # CLOCK approximates LRU: within a reasonable factor.
        assert clock.page_faults <= lru.page_faults * 1.5 + 3

    def test_resident_bounded(self):
        policy = ClockPolicy(frames=3)
        simulate(make_trace(list(range(20))), policy)
        assert policy.resident_size == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockPolicy(frames=0)

    def test_reset(self):
        policy = ClockPolicy(frames=2)
        a = simulate(make_trace([0, 1, 2]), policy)
        b = simulate(make_trace([0, 1, 2]), policy)
        assert a.page_faults == b.page_faults

    def test_hand_wraps(self):
        # Enough churn to wrap the hand several times.
        policy = ClockPolicy(frames=3)
        result = simulate(make_trace(list(range(5)) * 6), policy)
        assert result.page_faults == 30  # cyclic over 5 > 3 frames: thrash
