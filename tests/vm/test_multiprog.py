"""Tests for the multiprogramming extension (paper future work)."""

import pytest

from repro.directives.model import AllocateRequest
from repro.tracegen.events import DirectiveEvent, DirectiveKind
from repro.vm.multiprog import MultiprogSimulator, ProcessState

from .conftest import make_trace


def alloc(position, *pairs):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.ALLOCATE,
        site=0,
        requests=tuple(AllocateRequest(pi, x) for pi, x in pairs),
    )


def cd_trace(pages, directives=None, name="P"):
    return make_trace(pages, directives=directives, name=name)


class TestBasics:
    def test_single_process_completes(self):
        trace = cd_trace([0, 1, 0, 1] * 50, [alloc(0, (1, 2))])
        sim = MultiprogSimulator([("A", trace)], total_frames=8, mode="cd")
        result = sim.run()
        assert result.processes[0].references == 200
        assert result.processes[0].finish_time is not None

    def test_all_processes_complete(self):
        traces = [
            ("A", cd_trace([0, 1] * 100, [alloc(0, (1, 2))])),
            ("B", cd_trace([5, 6, 7] * 60, [alloc(0, (1, 3))])),
        ]
        result = MultiprogSimulator(traces, total_frames=10, mode="cd").run()
        assert all(p.finish_time is not None for p in result.processes)
        assert result.processes[0].references == 200
        assert result.processes[1].references == 180

    def test_fault_service_blocks(self):
        # One process, every ref a fault with target 1 over 3 pages.
        trace = cd_trace([0, 1, 2] * 10, [alloc(0, (1, 1))])
        result = MultiprogSimulator(
            [("A", trace)], total_frames=4, mode="cd", fault_service=100
        ).run()
        stats = result.processes[0]
        assert stats.faults == 30
        # Makespan includes the serialized fault services.
        assert result.makespan >= 30 * 100

    def test_overlap_hides_fault_latency(self):
        # Two processes: while one waits on a fault, the other runs —
        # the makespan is far below the sum of serialized times.
        thrash = cd_trace(list(range(50)) * 4, [alloc(0, (1, 1))], name="T")
        cozy = cd_trace([90, 91] * 2000, [alloc(0, (1, 2))], name="C")
        both = MultiprogSimulator(
            [("T", thrash), ("C", cozy)],
            total_frames=8,
            mode="cd",
            fault_service=500,
        ).run()
        solo = MultiprogSimulator(
            [("T", thrash)], total_frames=8, mode="cd", fault_service=500
        ).run()
        # The cozy process's 4000 references fit inside T's fault stalls.
        assert both.makespan < solo.makespan + 4000

    def test_validation(self):
        trace = cd_trace([0])
        with pytest.raises(ValueError):
            MultiprogSimulator([("A", trace), ("B", trace)], total_frames=1)
        with pytest.raises(ValueError):
            MultiprogSimulator([("A", trace)], total_frames=4, quantum=0)
        with pytest.raises(ValueError):
            MultiprogSimulator([("A", trace)], total_frames=4, mode="xx")


class TestCDAllocation:
    def test_grant_respects_available_memory(self):
        # Request 10 with only 4 frames: falls through to the PI=1
        # request of 2.
        trace = cd_trace([0, 1] * 20, [alloc(0, (2, 10), (1, 2))])
        sim = MultiprogSimulator([("A", trace)], total_frames=4, mode="cd")
        sim.run()
        assert sim.processes[0].target == 2

    def test_pi1_denial_invokes_swapper(self):
        # HOG fills 18 of 20 frames; NEEDY's late PI=1 request for 4
        # pages cannot be granted, so the swapper evicts HOG.  Fast
        # fault service lets HOG build up residency before the request.
        hog_pages = list(range(18)) * 6000  # long-running: outlives NEEDY
        hog = cd_trace(hog_pages, [alloc(0, (1, 18))], name="HOG")
        needy = cd_trace(
            [50, 51, 52, 53] * 200,
            [alloc(40, (1, 4))],  # fires once HOG is fully resident
            name="NEEDY",
        )
        result = MultiprogSimulator(
            [("HOG", hog), ("NEEDY", needy)],
            total_frames=20,
            mode="cd",
        ).run()
        assert result.swaps >= 1

    def test_outer_denial_does_not_swap(self):
        # A PI=2 request that cannot be granted keeps the current
        # allocation without invoking the swapper.
        hog = cd_trace(list(range(18)) * 20, [alloc(0, (1, 18))], name="HOG")
        modest = cd_trace(
            [40, 41] * 100,
            [alloc(0, (2, 19))],  # innermost PI is 2: never swaps
            name="MODEST",
        )
        result = MultiprogSimulator(
            [("HOG", hog), ("MODEST", modest)], total_frames=20, mode="cd"
        ).run()
        assert result.swaps == 0

    def test_shrinking_target_releases_frames(self):
        trace = cd_trace(
            [0, 1, 2, 3, 4, 5, 0, 0, 0, 0],
            [alloc(0, (2, 6)), alloc(6, (2, 6), (1, 1))],
        )
        sim = MultiprogSimulator([("A", trace)], total_frames=10, mode="cd")
        sim.run()
        assert sim.processes[0].resident_size <= 1 or sim.processes[
            0
        ].state is ProcessState.DONE


class TestWSMode:
    def test_ws_processes_complete(self):
        traces = [
            ("A", make_trace([0, 1, 2] * 100)),
            ("B", make_trace([7, 8] * 120)),
        ]
        result = MultiprogSimulator(
            traces, total_frames=12, mode="ws", ws_tau=50
        ).run()
        assert all(p.finish_time is not None for p in result.processes)

    def test_ws_load_control_swaps_under_pressure(self):
        # Two processes whose combined working sets exceed memory.
        a = make_trace(list(range(10)) * 50, name="A")
        b = make_trace(list(range(10)) * 50, name="B")
        result = MultiprogSimulator(
            [("A", a), ("B", b)], total_frames=12, mode="ws", ws_tau=100
        ).run()
        assert result.swaps >= 1

    def test_ws_mem_tracks_window(self):
        trace = make_trace([0, 1, 2, 3] * 100)
        result = MultiprogSimulator(
            [("A", trace)], total_frames=16, mode="ws", ws_tau=4
        ).run()
        assert result.processes[0].mem_average <= 4.5


class TestResultAccounting:
    def test_throughput(self):
        trace = cd_trace([0, 1] * 100, [alloc(0, (1, 2))])
        result = MultiprogSimulator([("A", trace)], total_frames=4).run()
        assert 0 < result.throughput <= 1.0

    def test_utilization_bounded(self):
        trace = cd_trace([0, 1] * 100, [alloc(0, (1, 2))])
        result = MultiprogSimulator([("A", trace)], total_frames=4).run()
        assert 0 <= result.mem_utilization <= 1.0

    def test_describe_lists_processes(self):
        trace = cd_trace([0, 1] * 10, [alloc(0, (1, 2))])
        result = MultiprogSimulator([("A", trace)], total_frames=4).run()
        assert "A" in result.describe()
