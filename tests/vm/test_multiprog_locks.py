"""Tests for LOCK/UNLOCK handling in the multiprogramming simulator."""

from repro.directives.model import AllocateRequest
from repro.tracegen.events import DirectiveEvent, DirectiveKind
from repro.vm.multiprog import MultiprogSimulator

from .conftest import make_trace


def alloc(position, *pairs, site=0):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.ALLOCATE,
        site=site,
        requests=tuple(AllocateRequest(pi, x) for pi, x in pairs),
    )


def lock(position, pages, pj=2, site=5):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.LOCK,
        site=site,
        lock_pages=tuple(pages),
        priority_index=pj,
    )


def unlock(position, pages, site=5):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.UNLOCK,
        site=site,
        lock_pages=tuple(pages),
    )


class TestLocksInMultiprogramming:
    def test_pinned_page_survives_target_shedding(self):
        # Target 1 with page 9 pinned: churning other pages never evicts
        # 9, so its re-reference hits.
        trace = make_trace(
            [9, 0, 1, 2, 9],
            directives=[alloc(0, (2, 1)), lock(1, [9])],
        )
        sim = MultiprogSimulator([("A", trace)], total_frames=8, mode="cd")
        result = sim.run()
        assert result.processes[0].faults == 4  # 9, 0, 1, 2 cold only

    def test_without_lock_the_page_refaults(self):
        trace = make_trace(
            [9, 0, 1, 2, 9],
            directives=[alloc(0, (2, 1))],
        )
        sim = MultiprogSimulator([("A", trace)], total_frames=8, mode="cd")
        result = sim.run()
        assert result.processes[0].faults == 5

    def test_unlock_releases_pin(self):
        trace = make_trace(
            [9, 0, 1, 9],
            directives=[alloc(0, (2, 1)), lock(1, [9]), unlock(2, [9])],
        )
        sim = MultiprogSimulator([("A", trace)], total_frames=8, mode="cd")
        result = sim.run()
        # After UNLOCK the target (1) sheds 9: the final 9 refaults.
        assert result.processes[0].faults == 4

    def test_relock_moves_pin(self):
        trace = make_trace(
            [9, 0, 8, 0, 9],
            directives=[
                alloc(0, (2, 1)),
                lock(1, [9], site=5),
                lock(3, [8], site=5),  # supersedes the pin on 9
            ],
        )
        sim = MultiprogSimulator([("A", trace)], total_frames=8, mode="cd")
        result = sim.run()
        assert result.processes[0].faults == 5  # 9 lost its pin, refaults

    def test_demand_includes_pinned_pages(self):
        trace = make_trace(
            [9, 0, 0, 0],
            directives=[alloc(0, (2, 1)), lock(1, [9])],
        )
        sim = MultiprogSimulator([("A", trace)], total_frames=8, mode="cd")
        process = sim.processes[0]
        # Mid-run state: target 1 with page 9 resident and pinned.
        process.target = 1
        process.resident[9] = None
        process.locked_site_of[9] = 5
        assert process.demand() == 2  # target + the pinned resident page

    def test_steal_skips_pinned_pages(self):
        # HOG pins its whole resident set; the needy process's claims
        # must not steal pinned frames (load control handles it instead).
        hog = make_trace(
            [0, 1, 2] * 50,
            directives=[alloc(0, (2, 3)), lock(1, [0, 1, 2], pj=2)],
            name="HOG",
        )
        needy = make_trace([10, 11] * 50, directives=[alloc(0, (2, 2))], name="N")
        sim = MultiprogSimulator(
            [("HOG", hog), ("N", needy)], total_frames=5, mode="cd"
        )
        result = sim.run()
        assert all(p.finish_time is not None for p in result.processes)

    def test_swap_out_drops_pins(self):
        trace = make_trace(
            [9, 0],
            directives=[alloc(0, (2, 1)), lock(1, [9])],
        )
        sim = MultiprogSimulator([("A", trace)], total_frames=8, mode="cd")
        sim.run()
        process = sim.processes[0]
        sim._swap_out(process)
        assert process.locked_site_of == {}
        assert process.resident_size == 0
