"""Tests for lifetime curves (Denning's g(m)) on the sweep analyzers."""

import pytest

from repro.vm.analyzers import LRUSweep, WSSweep

from .conftest import make_trace


class TestLRULifetime:
    def test_lifetime_is_mean_interfault_time(self):
        trace = make_trace([0, 1, 2] * 20)  # 60 refs
        sweep = LRUSweep(trace)
        # 2 frames: every reference faults -> lifetime 1.
        assert sweep.lifetime(2) == pytest.approx(1.0)
        # 3 frames: only 3 cold faults -> lifetime 20.
        assert sweep.lifetime(3) == pytest.approx(20.0)

    def test_lifetime_infinite_when_no_faults(self):
        sweep = LRUSweep(make_trace([]))
        assert sweep.lifetime(1) == float("inf")

    def test_lifetime_monotone(self):
        pages = ([0, 1, 2, 3] * 10 + [7, 8] * 10) * 3
        sweep = LRUSweep(make_trace(pages))
        values = [sweep.lifetime(m) for m in range(1, 8)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_knee_finds_locality_size(self):
        # A strong 3-page locality: the knee sits at 3 frames, where the
        # lifetime jumps from ~1 to ~R/3.
        sweep = LRUSweep(make_trace([0, 1, 2] * 40))
        assert sweep.knee_frames() == 3

    def test_knee_on_two_phase_trace(self):
        phase1 = [0, 1] * 40
        phase2 = [5, 6, 7, 8] * 40
        sweep = LRUSweep(make_trace(phase1 + phase2))
        # The knee lands at one of the two locality sizes (never between
        # or beyond).
        assert sweep.knee_frames() in (2, 4)


class TestWSLifetime:
    def test_lifetime_values(self):
        trace = make_trace([0, 1, 0, 1, 0, 1])
        sweep = WSSweep(trace)
        # tau = 1: everything faults except nothing (each re-ref gap 2).
        assert sweep.lifetime(1) == pytest.approx(1.0)
        # tau = 2: only the two cold faults.
        assert sweep.lifetime(2) == pytest.approx(3.0)

    def test_lifetime_monotone_in_tau(self):
        pages = ([0, 1, 2] * 20 + [8, 9] * 15) * 2
        sweep = WSSweep(make_trace(pages))
        values = [sweep.lifetime(t) for t in (1, 2, 4, 8, 16, 32)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_infinite_on_empty(self):
        assert WSSweep(make_trace([])).lifetime(4) == float("inf")
