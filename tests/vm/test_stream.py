"""One-pass streaming engine: equivalence with the event-driven
simulator, chunking edge cases, backend resolution, and fallbacks."""

import numpy as np
import pytest

from repro.directives.model import AllocateRequest
from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.tracegen.io import open_sharded_trace, save_trace_sharded
from repro.vm.policies import (
    CDConfig,
    CDPolicy,
    FIFOPolicy,
    LRUPolicy,
    WorkingSetPolicy,
)
from repro.vm.simulator import simulate
from repro.vm.stream import (
    BackendUnavailable,
    StreamFallback,
    StreamRequest,
    numba_available,
    resolve_backend,
    stream_simulate,
)


def make_trace(pages, directives=None, name="STREAM"):
    pages = np.asarray(pages, dtype=np.int32)
    total = int(pages.max()) + 1 if len(pages) else 1
    return ReferenceTrace(
        program_name=name,
        pages=pages,
        total_pages=total,
        directives=list(directives or []),
    )


def alloc(position, pages=4, pi=2):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.ALLOCATE,
        site=0,
        requests=(AllocateRequest(priority_index=pi, pages=pages),),
    )


def fields(result):
    return (
        result.page_faults,
        result.references,
        result.mem_average,
        result.space_time,
    )


REQUESTS = [
    StreamRequest.lru(3),
    StreamRequest.lru(8),
    StreamRequest.fifo(4),
    StreamRequest.ws(5),
    StreamRequest.ws(64),
    StreamRequest.cd(),
]


def reference_results(trace, requests):
    out = []
    for request in requests:
        if request.kind == "LRU":
            policy = LRUPolicy(frames=request.frames)
        elif request.kind == "FIFO":
            policy = FIFOPolicy(frames=request.frames)
        elif request.kind == "WS":
            policy = WorkingSetPolicy(tau=request.tau)
        else:
            policy = CDPolicy(request.config)
        out.append(simulate(trace, policy))
    return out


class TestEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 100_000])
    def test_fuzz_matches_event_driven(self, chunk_size):
        rng = np.random.default_rng(11)
        for _ in range(10):
            n = int(rng.integers(0, 500))
            pages = rng.integers(0, 23, size=n)
            trace = make_trace(pages)
            streamed = stream_simulate(
                trace, REQUESTS, chunk_size=chunk_size
            )
            for got, want in zip(streamed, reference_results(trace, REQUESTS)):
                assert fields(got) == fields(want)

    def test_directives_at_chunk_boundaries(self):
        # positions 0, chunk_size, chunk_size*2, and end-of-trace: the
        # merge must fire each directive before the same reference the
        # event-driven loop does, whichever chunk it lands in.
        n, chunk = 96, 32
        pages = np.arange(n) % 9
        directives = [
            alloc(0, pages=2, pi=3),
            alloc(chunk, pages=4, pi=2),
            alloc(2 * chunk, pages=6, pi=2),
            alloc(n, pages=8, pi=2),
        ]
        trace = make_trace(pages, directives=directives)
        requests = [StreamRequest.cd(), StreamRequest.cd(CDConfig(pi_cap=1))]
        streamed = stream_simulate(trace, requests, chunk_size=chunk)
        for got, want in zip(streamed, reference_results(trace, requests)):
            assert fields(got) == fields(want)

    def test_empty_trace(self):
        trace = make_trace([])
        for result in stream_simulate(trace, REQUESTS):
            assert result.page_faults == 0
            assert result.references == 0

    def test_one_pass_matches_individual_passes(self):
        trace = make_trace(np.arange(300) % 17)
        together = stream_simulate(trace, REQUESTS)
        for request, joint in zip(REQUESTS, together):
            alone = stream_simulate(trace, [request])[0]
            assert fields(joint) == fields(alone)

    def test_all_nine_workloads(self):
        from repro.experiments.runner import artifacts_for
        from repro.workloads import workload_names

        requests = [
            StreamRequest.lru(16),
            StreamRequest.fifo(8),
            StreamRequest.ws(64),
            StreamRequest.cd(),
        ]
        for name in workload_names():
            trace = artifacts_for(name).trace
            streamed = stream_simulate(trace, requests)
            for got, want in zip(
                streamed, reference_results(trace, requests)
            ):
                assert fields(got) == fields(want), name


class TestSharded:
    def test_sharded_source_matches_in_ram(self, tmp_path):
        trace = make_trace(np.arange(500) % 19, directives=[alloc(123)])
        save_trace_sharded(trace, tmp_path / "t", shard_size=97)
        sharded = open_sharded_trace(tmp_path / "t")
        streamed = stream_simulate(sharded, REQUESTS, chunk_size=61)
        for got, want in zip(streamed, reference_results(trace, REQUESTS)):
            assert fields(got) == fields(want)

    def test_non_streamable_cd_raises_for_sharded(self, tmp_path):
        trace = make_trace(np.arange(50) % 5)
        save_trace_sharded(trace, tmp_path / "t", shard_size=16)
        sharded = open_sharded_trace(tmp_path / "t")
        capped = StreamRequest.cd(CDConfig(memory_limit=3))
        with pytest.raises(StreamFallback):
            stream_simulate(sharded, [capped])

    def test_non_streamable_cd_falls_back_in_ram(self):
        trace = make_trace(np.arange(50) % 5, directives=[alloc(10)])
        capped = StreamRequest.cd(CDConfig(memory_limit=3))
        got = stream_simulate(trace, [capped])[0]
        want = simulate(trace, CDPolicy(CDConfig(memory_limit=3)))
        assert fields(got) == fields(want)


class TestBackend:
    def test_numpy_always_resolves(self):
        assert resolve_backend("numpy") == "numpy"

    def test_env_variable_consulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend(None) == "numpy"

    def test_auto_never_fails(self):
        assert resolve_backend("auto") in ("numpy", "numba")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    @pytest.mark.skipif(
        numba_available(), reason="numba installed; nothing to refuse"
    )
    def test_explicit_numba_without_install_raises(self):
        with pytest.raises(BackendUnavailable):
            resolve_backend("numba")

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_matches_numpy(self):
        rng = np.random.default_rng(3)
        trace = make_trace(rng.integers(0, 31, size=700))
        via_numpy = stream_simulate(trace, REQUESTS, backend="numpy")
        via_numba = stream_simulate(trace, REQUESTS, backend="numba")
        for a, b in zip(via_numpy, via_numba):
            assert fields(a) == fields(b)


class TestEvents:
    def test_fault_stream_matches_event_driven(self):
        from repro.obs import Fault, RingBufferSink, Tracer

        trace = make_trace(np.arange(200) % 13)
        request = StreamRequest.lru(4)

        ring_stream = RingBufferSink()
        stream_simulate(
            trace, [request], chunk_size=37, tracer=Tracer(ring_stream)
        )
        ring_event = RingBufferSink()
        simulate(trace, LRUPolicy(frames=4), tracer=Tracer(ring_event))

        def faults(ring):
            return [
                (e.time, e.page, e.resident)
                for e in ring.events
                if isinstance(e, Fault)
            ]

        assert faults(ring_stream) == faults(ring_event)
