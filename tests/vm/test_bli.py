"""Tests for the BLI (bounded locality interval) detector."""

import pytest

from repro.vm.bli import BLIAnalyzer, LocalityInterval, compare_with_predictions

from .conftest import make_trace


def phased_pages(phases, span=300):
    """Concatenate phases; each phase cycles over its own page set."""
    pages = []
    for page_set in phases:
        for i in range(span):
            pages.append(page_set[i % len(page_set)])
    return pages


class TestDetection:
    def test_single_phase_single_interval(self):
        pages = phased_pages([[0, 1, 2]], span=600)
        analyzer = BLIAnalyzer(pages, windows=(64,))
        ivs = analyzer.intervals(0)
        assert len(ivs) == 1
        assert ivs[0].pages == frozenset({0, 1, 2})
        assert ivs[0].start == 0
        assert ivs[0].end == 600

    def test_two_phases_detected(self):
        pages = phased_pages([[0, 1, 2], [7, 8, 9]], span=600)
        analyzer = BLIAnalyzer(pages, windows=(64,))
        ivs = analyzer.intervals(0)
        assert len(ivs) == 2
        assert ivs[0].pages == frozenset({0, 1, 2})
        assert ivs[1].pages == frozenset({7, 8, 9})

    def test_boundary_near_transition(self):
        pages = phased_pages([[0, 1], [5, 6]], span=400)
        analyzer = BLIAnalyzer(pages, windows=(32,))
        ivs = analyzer.intervals(0)
        assert len(ivs) == 2
        assert abs(ivs[0].end - 400) <= 32

    def test_interval_properties(self):
        iv = LocalityInterval(start=10, end=50, pages=frozenset({1, 2}), level=0)
        assert iv.length == 40
        assert iv.size == 2

    def test_intervals_cover_trace(self):
        pages = phased_pages([[0, 1], [4, 5], [8, 9]], span=300)
        analyzer = BLIAnalyzer(pages, windows=(32,))
        ivs = analyzer.intervals(0)
        assert ivs[0].start == 0
        assert ivs[-1].end == len(pages)
        for a, b in zip(ivs, ivs[1:]):
            assert a.end == b.start

    def test_empty_trace(self):
        analyzer = BLIAnalyzer([], windows=(32,))
        assert analyzer.intervals(0) == []
        assert analyzer.mean_size(0) == 0.0

    def test_coarse_scale_merges_phases(self):
        # At a window longer than each phase the two phases fuse.
        pages = phased_pages([[0, 1], [5, 6]] * 3, span=100)
        analyzer = BLIAnalyzer(pages, windows=(16, 4096))
        fine = analyzer.intervals(0)
        coarse = analyzer.intervals(1)
        assert len(coarse) < len(fine)
        assert analyzer.mean_size(1) >= analyzer.mean_size(0)

    def test_results_cached(self):
        analyzer = BLIAnalyzer([0, 1] * 100, windows=(16,))
        assert analyzer.intervals(0) is analyzer.intervals(0)


class TestValidation:
    def test_bad_level(self):
        analyzer = BLIAnalyzer([0, 1], windows=(16,))
        with pytest.raises(ValueError):
            analyzer.intervals(1)

    def test_bad_windows(self):
        with pytest.raises(ValueError):
            BLIAnalyzer([0], windows=())
        with pytest.raises(ValueError):
            BLIAnalyzer([0], windows=(0,))

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            BLIAnalyzer([0], windows=(16,), similarity_threshold=1.5)

    def test_summary_mentions_levels(self):
        analyzer = BLIAnalyzer([0, 1] * 200, windows=(16, 64))
        text = analyzer.summary()
        assert "level 0" in text and "level 1" in text


class TestPredictionComparison:
    def test_requires_allocate_events(self):
        trace = make_trace([0, 1, 2])
        with pytest.raises(ValueError, match="no ALLOCATE"):
            compare_with_predictions(trace)

    def test_on_real_workload(self):
        from repro.experiments.runner import artifacts_for

        art = artifacts_for("TQL")
        comparison = compare_with_predictions(art.trace)
        assert comparison.program == "TQL"
        assert comparison.predicted_mean > 0
        assert comparison.detected_mean > 0
        # The compiler's inner-level sizes land within a small factor of
        # the measured fine-scale localities.
        assert 0.2 < comparison.ratio < 5.0

    def test_describe(self):
        from repro.experiments.runner import artifacts_for

        art = artifacts_for("TQL")
        text = compare_with_predictions(art.trace).describe()
        assert "TQL" in text and "pages" in text


class TestHierarchyOnRealTraces:
    @pytest.mark.parametrize("name", ["MAIN", "CONDUCT", "TQL"])
    def test_hierarchical_structure(self, name):
        # The paper's claim: numerical programs exhibit hierarchical
        # locality structure.  Coarser scales must show fewer, larger
        # localities.
        from repro.experiments.runner import artifacts_for

        analyzer = BLIAnalyzer(artifacts_for(name).trace)
        counts = [len(analyzer.intervals(lv)) for lv in range(3)]
        sizes = [analyzer.mean_size(lv) for lv in range(3)]
        # Monotone across scales, with a genuine contraction overall
        # (two adjacent scales may coincide when one loop level
        # dominates, as in MAIN's time-step phases).
        assert counts[0] >= counts[1] >= counts[2]
        assert counts[0] > counts[2]
        assert sizes[0] <= sizes[1] <= sizes[2]
        assert sizes[2] > sizes[0]
