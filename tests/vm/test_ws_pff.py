"""Unit tests for the dynamic baselines: Working Set and PFF."""

import pytest

from repro.vm.policies import PFFPolicy, WorkingSetPolicy
from repro.vm.simulator import simulate

from .conftest import make_trace


class TestWorkingSet:
    def test_cold_faults(self):
        result = simulate(make_trace([0, 1, 2]), WorkingSetPolicy(tau=10))
        assert result.page_faults == 3

    def test_rereference_within_window_hits(self):
        result = simulate(make_trace([0, 1, 0]), WorkingSetPolicy(tau=2))
        assert result.page_faults == 2

    def test_rereference_outside_window_faults(self):
        # gap of 2 with tau=1: page 0 left the working set.
        result = simulate(make_trace([0, 1, 0]), WorkingSetPolicy(tau=1))
        assert result.page_faults == 3

    def test_window_size_one_keeps_one_page(self):
        policy = WorkingSetPolicy(tau=1)
        simulate(make_trace([0, 1, 2, 3]), policy)
        assert policy.resident_size == 1

    def test_ws_size_tracks_locality(self, locality_trace):
        # A window spanning one phase holds ~2-3 pages, not 5.
        result = simulate(locality_trace, WorkingSetPolicy(tau=6))
        assert 1.5 < result.mem_average < 3.5

    def test_large_window_holds_everything(self, locality_trace):
        policy = WorkingSetPolicy(tau=locality_trace.length)
        result = simulate(locality_trace, policy)
        assert result.page_faults == 5  # only cold faults
        assert policy.resident_size == 5

    def test_transition_faults(self, locality_trace):
        # Interlocality transition: the second phase cold-faults.
        result = simulate(locality_trace, WorkingSetPolicy(tau=12))
        assert result.page_faults == 5

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            WorkingSetPolicy(tau=0)

    def test_mem_average_reflects_expiry(self):
        # tau=1: exactly one page resident after each reference.
        result = simulate(make_trace([0, 1, 2, 3]), WorkingSetPolicy(tau=1))
        assert result.mem_average == 1.0


class TestPFF:
    def test_cold_faults(self):
        result = simulate(make_trace([0, 1, 2]), PFFPolicy(threshold=2))
        assert result.page_faults == 3

    def test_grows_under_rapid_faulting(self):
        # Faults closer together than the threshold accumulate pages.
        policy = PFFPolicy(threshold=10)
        simulate(make_trace([0, 1, 2, 3]), policy)
        assert policy.resident_size == 4

    def test_shrinks_on_slow_faulting(self):
        # Long hit run, then a fault: shrink to used-since-last-fault + new.
        policy = PFFPolicy(threshold=3)
        pages = [0, 1, 1, 1, 1, 1, 2]
        simulate(make_trace(pages), policy)
        # At the fault on 2: used-since-last-fault = {1}; resident = {1, 2}.
        assert policy.resident_size == 2

    def test_never_evicts_on_hits(self):
        policy = PFFPolicy(threshold=1)
        trace = make_trace([0, 1, 0, 1, 0, 1])
        simulate(trace, policy)
        assert policy.resident_size == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PFFPolicy(threshold=0)

    def test_reset(self):
        policy = PFFPolicy(threshold=5)
        first = simulate(make_trace([0, 1, 2]), policy)
        second = simulate(make_trace([0, 1, 2]), policy)
        assert first.page_faults == second.page_faults == 3
