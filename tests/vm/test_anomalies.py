"""Anomaly demonstrations from the paper's survey.

The introduction cites two pathologies of the baselines:

* FIFO's Belady anomaly (more frames, more faults) — shown in
  ``tests/vm/test_fixed_policies.py``;
* PFF's "anomalous behavior" [FrGG78]: a *larger* threshold (more
  generous memory) can produce *more* faults, because the shrink rule
  fires at different instants.  This file exhibits it concretely and
  verifies the stack policies are immune.
"""

from repro.vm.policies import LRUPolicy, OPTPolicy, PFFPolicy
from repro.vm.simulator import simulate

from .conftest import make_trace


def _pff_fault_curve(pages, thresholds):
    trace = make_trace(pages)
    return {
        t: simulate(trace, PFFPolicy(threshold=t)).page_faults
        for t in thresholds
    }


#: A concrete witness (found by search over short strings): PFF with
#: threshold 3 takes 6 faults, with the *more generous* threshold 4 it
#: takes 8 — the shrink fires at a worse instant.
ANOMALY_STRING = [4, 1, 1, 0, 4, 4, 2, 0, 1, 1, 3, 3, 1, 3, 4, 0, 2, 4, 3, 2, 3]


def _anomaly_trace():
    return list(ANOMALY_STRING)


class TestPFFAnomaly:
    def test_concrete_witness(self):
        curve = _pff_fault_curve(ANOMALY_STRING, (3, 4))
        assert curve[3] == 6
        assert curve[4] == 8
        assert curve[3] < curve[4]

    def test_anomaly_exists(self):
        # Some pair of thresholds t1 < t2 with faults(t1) < faults(t2).
        curve = _pff_fault_curve(_anomaly_trace(), range(1, 15))
        items = sorted(curve.items())
        assert any(
            f1 < f2
            for (_t1, f1), (_t2, f2) in zip(items, items[1:])
        ), "expected at least one non-monotone step in the PFF curve"

    def test_lru_immune_on_same_trace(self):
        pages = _anomaly_trace()
        trace = make_trace(pages)
        faults = [
            simulate(trace, LRUPolicy(frames=m)).page_faults
            for m in range(1, 10)
        ]
        assert faults == sorted(faults, reverse=True)

    def test_opt_immune_on_same_trace(self):
        pages = _anomaly_trace()
        trace = make_trace(pages)
        faults = [
            simulate(trace, OPTPolicy(frames=m)).page_faults
            for m in range(1, 10)
        ]
        assert faults == sorted(faults, reverse=True)
