"""The load-controlled pool: profiles, admission policies, conservation."""

import numpy as np
import pytest

from repro.directives.model import AllocateRequest
from repro.obs import Admit, Defer, Depart, PoolSample, RingBufferSink, Suspend, Tracer
from repro.tracegen.events import DirectiveEvent, DirectiveKind
from repro.vm.multiprog import (
    ADMISSION_POLICIES,
    JobProfile,
    LoadControlledPool,
    MultiprogSimulator,
    admission_policy,
    poisson_arrivals,
)

from .conftest import make_trace


def alloc(position, *pairs):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.ALLOCATE,
        site=0,
        requests=tuple(AllocateRequest(pi, x) for pi, x in pairs),
    )


def profile(pages, directives=None, name="J", **kw):
    return JobProfile.from_trace(
        make_trace(pages, directives=directives, name=name), **kw
    )


CYCLIC8 = list(range(8)) * 100  # 800 refs over 8 pages; knee = 8


class TestJobProfile:
    def test_basic_shape(self):
        p = profile(CYCLIC8)
        assert p.length == 800
        assert p.distinct == 8
        assert p.knee_frames == 8
        assert p.prev[0] == -1
        assert p.prev[8] == 0  # page 0 re-referenced one cycle later

    def test_faults_at_matches_lru_sweep(self):
        from repro.vm.analyzers import LRUSweep

        p = profile(CYCLIC8)
        sweep = LRUSweep(np.asarray(CYCLIC8, dtype=np.int32))
        for m in (1, 4, 8, 16):
            assert p.faults_at(m) == sweep.faults(m)

    def test_directive_demand(self):
        p = profile(CYCLIC8, [alloc(0, (1, 3), (2, 6))])
        assert p.cd_min_frames == 3  # largest PI=1 request
        assert p.cd_pref_frames == 6  # largest request of any PI

    def test_no_directives_falls_back_to_knee(self):
        p = profile(CYCLIC8)
        assert p.cd_min_frames == p.knee_frames
        assert p.cd_pref_frames == p.knee_frames

    def test_max_refs_truncates(self):
        p = profile(CYCLIC8, max_refs=80)
        assert p.length == 80


class TestAdmissionPolicies:
    def test_registry_has_all_four(self):
        assert set(ADMISSION_POLICIES) == {"uncontrolled", "knee", "ws", "cd"}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            admission_policy("lottery")

    def test_knee_defers_when_short(self):
        pol = admission_policy("knee")
        p = profile(CYCLIC8)
        assert pol.allocation_for(p, free=4, total=32, admitted=1) is None
        assert pol.allocation_for(p, free=8, total=32, admitted=1) == 8

    def test_uncontrolled_admits_on_a_single_frame(self):
        pol = admission_policy("uncontrolled")
        p = profile(CYCLIC8)
        assert pol.allocation_for(p, free=1, total=32, admitted=5) == 1
        assert pol.allocation_for(p, free=0, total=32, admitted=5) is None

    def test_uncontrolled_share_shrinks_with_queue(self):
        pol = admission_policy("uncontrolled")
        p = profile(CYCLIC8)
        roomy = pol.allocation_for(p, free=32, total=32, admitted=0)
        jammed = pol.allocation_for(
            p, free=32, total=32, admitted=0, waiting=30
        )
        assert roomy == 8 and jammed == 1

    def test_cd_uses_directive_demand(self):
        pol = admission_policy("cd")
        p = profile(CYCLIC8, [alloc(0, (1, 3), (2, 6))])
        # walks the ALLOCATE chain (6, 3): largest named request that
        # fits -- never an in-between size the program didn't ask for
        assert p.cd_chain == (6, 3)
        assert pol.allocation_for(p, free=8, total=32, admitted=0) == 6
        assert pol.allocation_for(p, free=4, total=32, admitted=0) == 3
        assert pol.allocation_for(p, free=3, total=32, admitted=0) == 3
        assert pol.allocation_for(p, free=2, total=32, admitted=0) is None


def run_pool(arrivals, frames, policy, **kw):
    ring = RingBufferSink()
    pool = LoadControlledPool(
        arrivals, total_frames=frames, policy=policy,
        tracer=Tracer(ring), **kw,
    )
    result = pool.run()
    assert result.violations == []
    return result, ring.events


class TestPoolScheduling:
    def test_single_job_runs_exactly(self):
        p = profile(CYCLIC8)
        result, events = run_pool([(0, p)], frames=16, policy="knee")
        assert result.completed == 1
        rec = result.records[0]
        assert rec.references == p.length
        assert rec.faults == p.faults_at(rec.allocation) == 8
        assert rec.finish_time == result.elapsed

    def test_zero_process_pool(self):
        result, events = run_pool([], frames=16, policy="knee")
        assert result.arrivals == result.completed == 0
        assert result.elapsed == 0
        assert result.throughput == 0.0
        assert events == []

    def test_job_larger_than_pool_still_completes(self):
        # knee wants 8 but the whole machine has 4 frames: the grant is
        # clamped to the pool and the job simply faults more.
        p = profile(CYCLIC8)
        result, _ = run_pool([(0, p)], frames=4, policy="knee")
        rec = result.records[0]
        assert result.completed == 1
        assert rec.allocation == 4
        assert rec.faults == p.faults_at(4)

    def test_simultaneous_arrivals_admit_in_submission_order(self):
        p = profile(CYCLIC8)
        arrivals = [(0, p), (0, p), (0, p)]
        result, events = run_pool(arrivals, frames=16, policy="knee")
        admits = [e for e in events if isinstance(e, Admit)]
        # two fit at once (8 frames each); the third is deferred
        assert [a.proc for a in admits[:2]] == ["J#0", "J#1"]
        first_defer = next(e for e in events if isinstance(e, Defer))
        assert first_defer.proc == "J#2"
        assert result.completed == 3

    def test_determinism_under_fixed_seed(self):
        p = profile(CYCLIC8)
        arrivals = poisson_arrivals([p], load=2.0, horizon=20_000, seed=42)
        again = poisson_arrivals([p], load=2.0, horizon=20_000, seed=42)
        assert arrivals == again
        r1, _ = run_pool(arrivals, frames=24, policy="uncontrolled")
        r2, _ = run_pool(arrivals, frames=24, policy="uncontrolled")
        assert [rec.finish_time for rec in r1.records] == [
            rec.finish_time for rec in r2.records
        ]
        assert r1.faults == r2.faults

    def test_pool_faults_identity_across_policies(self):
        p = profile(CYCLIC8)
        arrivals = poisson_arrivals([p], load=1.0, horizon=30_000, seed=1)
        for policy in ADMISSION_POLICIES:
            result, _ = run_pool(arrivals, frames=24, policy=policy)
            for rec in result.records:
                if rec.suspensions == 0 and rec.finish_time is not None:
                    assert rec.faults == p.faults_at(rec.allocation)

    def test_frames_conserved_in_event_stream(self):
        p = profile(CYCLIC8)
        arrivals = poisson_arrivals([p], load=3.0, horizon=40_000, seed=5)
        _, events = run_pool(arrivals, frames=24, policy="uncontrolled")
        used = 0
        for e in events:
            if isinstance(e, Admit):
                used += e.frames
            elif isinstance(e, (Suspend, Depart)):
                used -= e.frames
            assert 0 <= used <= 24
        assert used == 0  # everything departed (no horizon)

    def test_pool_samples_emitted(self):
        p = profile(CYCLIC8)
        arrivals = poisson_arrivals([p], load=1.0, horizon=30_000, seed=2)
        _, events = run_pool(arrivals, frames=16, policy="knee")
        samples = [e for e in events if isinstance(e, PoolSample)]
        assert samples
        for s in samples:
            assert s.used + s.free == 16

    def test_horizon_bounds_the_run(self):
        p = profile(CYCLIC8)
        arrivals = poisson_arrivals([p], load=4.0, horizon=50_000, seed=3)
        result, _ = run_pool(
            arrivals, frames=8, policy="uncontrolled", horizon=10_000
        )
        assert result.elapsed == 10_000
        assert result.completed <= result.arrivals

    def test_bad_args_rejected(self):
        p = profile(CYCLIC8)
        with pytest.raises(ValueError):
            LoadControlledPool([(0, p)], total_frames=0)
        with pytest.raises(ValueError):
            LoadControlledPool([(0, p)], total_frames=8, cpus=0)
        with pytest.raises(ValueError):
            LoadControlledPool([(0, p)], total_frames=8, quantum=0)


class TestPreemption:
    def test_cd_swapper_suspends_larger_victim(self):
        # big takes the whole pool; the small PI=1 newcomer forces the
        # paper's swapper: big is suspended (releasing every frame),
        # small runs, big is re-admitted after small departs.
        big = profile(CYCLIC8, [alloc(0, (1, 8))], name="big")
        small = profile(
            [0, 1] * 40, [alloc(0, (1, 2))], name="small"
        )
        arrivals = [(0, big), (5, small)]
        result, events = run_pool(arrivals, frames=8, policy="cd")
        suspends = [e for e in events if isinstance(e, Suspend)]
        assert len(suspends) == 1
        assert suspends[0].proc == "big#0"
        assert suspends[0].frames == 8
        assert result.completed == 2
        big_rec = next(r for r in result.records if r.program == "big")
        assert big_rec.suspensions == 1
        # after the flush, the re-admitted process cold-starts: it
        # faults at least its resident set again
        assert big_rec.faults >= big.faults_at(big_rec.allocation)

    def test_knee_never_preempts(self):
        big = profile(CYCLIC8, name="big")
        small = profile([0, 1] * 40, name="small")
        result, events = run_pool(
            [(0, big), (5, small)], frames=8, policy="knee"
        )
        assert not [e for e in events if isinstance(e, Suspend)]
        assert result.suspensions == 0
        assert result.completed == 2

    def test_suspended_holds_zero_frames(self):
        big = profile(CYCLIC8, [alloc(0, (1, 8))], name="big")
        small = profile([0, 1] * 40, [alloc(0, (1, 2))], name="small")
        _, events = run_pool([(0, big), (5, small)], frames=8, policy="cd")
        held = {}
        suspended = set()
        for e in events:
            if isinstance(e, Admit):
                held[e.proc] = e.frames
                suspended.discard(e.proc)
            elif isinstance(e, Suspend):
                assert held[e.proc] == e.frames
                held[e.proc] = 0
                suspended.add(e.proc)
            elif isinstance(e, PoolSample) and suspended:
                # suspended processes contribute nothing to `used`
                assert e.used == sum(
                    f for pname, f in held.items() if pname not in suspended
                )


class TestLegacySimulatorEdgeCases:
    """Edge cases of the fixed-mix simulator that predate the pool."""

    def test_zero_process_mix(self):
        result = MultiprogSimulator([], total_frames=8, mode="cd").run()
        assert result.processes == []
        assert result.makespan == 0
        assert result.mem_utilization == 0.0

    @pytest.mark.parametrize("mode", ["cd", "ws"])
    def test_process_larger_than_pool(self, mode):
        trace = make_trace(list(range(12)) * 50, name="big")
        result = MultiprogSimulator(
            [("big", trace)], total_frames=4, mode=mode
        ).run()
        stats = result.processes[0]
        assert stats.references == 600
        assert stats.finish_time is not None
        assert stats.faults >= 12  # at least one cold fault per page


class TestPoissonArrivals:
    def test_deterministic_and_sorted(self):
        p = profile(CYCLIC8)
        a = poisson_arrivals([p], load=1.0, horizon=50_000, seed=9)
        assert a == poisson_arrivals([p], load=1.0, horizon=50_000, seed=9)
        assert all(a[i][0] <= a[i + 1][0] for i in range(len(a) - 1))
        assert all(t <= 50_000 for t, _ in a)

    def test_load_scales_volume(self):
        p = profile(CYCLIC8)
        light = poisson_arrivals([p], load=0.5, horizon=100_000, seed=9)
        heavy = poisson_arrivals([p], load=4.0, horizon=100_000, seed=9)
        assert len(heavy) > 2 * len(light)

    def test_empty_and_bad_args(self):
        p = profile(CYCLIC8)
        assert poisson_arrivals([], load=1.0, horizon=1000) == []
        with pytest.raises(ValueError):
            poisson_arrivals([p], load=0.0, horizon=1000)
        with pytest.raises(ValueError):
            poisson_arrivals([p], load=1.0, horizon=0)
