"""Tests for the adaptive CD policy (online directive-set selection)."""

import pytest

from repro.directives.model import AllocateRequest
from repro.tracegen.events import DirectiveEvent, DirectiveKind
from repro.vm.policies import AdaptiveCDPolicy, CDConfig, CDPolicy
from repro.vm.simulator import simulate

from .conftest import make_trace


def alloc(position, *pairs, site=0):
    return DirectiveEvent(
        position=position,
        kind=DirectiveKind.ALLOCATE,
        site=site,
        requests=tuple(AllocateRequest(pi, x) for pi, x in pairs),
    )


def thrash_trace(rounds=30, pages=8):
    """A loop whose locality (``pages``) exceeds the innermost request:
    directives offer (2, pages) else (1, 2) at one site, re-executed
    every round — the adaptive policy should learn to take the outer
    request."""
    refs = []
    directives = []
    position = 0
    cycles = 6  # several passes per round: enough evidence per interval
    for _round in range(rounds):
        directives.append(alloc(position, (2, pages), (1, 2), site=7))
        refs.extend(list(range(pages)) * cycles)
        position += pages * cycles
    return make_trace(refs, directives=directives)


class TestLearning:
    def test_learns_to_take_outer_request(self):
        trace = thrash_trace()
        policy = AdaptiveCDPolicy()
        result = simulate(trace, policy)
        static_inner = simulate(trace, CDPolicy(CDConfig(pi_cap=1)))
        # The static inner-level run thrashes forever; adaptive learns.
        assert policy.level_raises >= 1
        assert result.page_faults < static_inner.page_faults / 2

    def test_matches_static_outer_after_learning(self):
        trace = thrash_trace(rounds=60)
        adaptive = simulate(trace, AdaptiveCDPolicy())
        outer = simulate(trace, CDPolicy(CDConfig(pi_cap=2)))
        # The learning cost is bounded by one thrashed round (8 pages x
        # 6 cycles); after that the adaptive run tracks the static one.
        assert adaptive.page_faults <= outer.page_faults + 8 * 6

    def test_no_oscillation_on_stable_fit(self):
        # Once the grant fits and is fully used, the level must not
        # bounce (the drop rule requires idle memory, not just zero
        # faults).
        trace = thrash_trace(rounds=60)
        policy = AdaptiveCDPolicy()
        simulate(trace, policy)
        assert policy.level_drops == 0

    def test_drops_idle_outer_grant(self):
        # A site that requests far more than it touches: fault-free,
        # mostly idle intervals pull the level back down.
        refs = []
        directives = []
        position = 0
        for _round in range(40):
            directives.append(alloc(position, (2, 20), (1, 2), site=3))
            refs.extend([0, 1] * 20)  # touches 2 pages of a 20-page grant
            position += 40
        trace = make_trace(refs, directives=directives)
        policy = AdaptiveCDPolicy(initial_level=2)
        simulate(trace, policy)
        assert policy.level_drops >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveCDPolicy(raise_threshold=0)
        with pytest.raises(ValueError):
            AdaptiveCDPolicy(min_evidence=0)
        with pytest.raises(ValueError):
            AdaptiveCDPolicy(initial_level=0)

    def test_reset_forgets_learning(self):
        trace = thrash_trace()
        policy = AdaptiveCDPolicy()
        first = simulate(trace, policy)
        second = simulate(trace, policy)  # simulate() resets
        assert first.page_faults == second.page_faults

    def test_respects_memory_limit(self):
        trace = thrash_trace(pages=16)
        policy = AdaptiveCDPolicy(memory_limit=4)
        simulate(trace, policy)
        assert policy.resident_size <= 4


class TestOnRealWorkloads:
    @pytest.mark.parametrize("name", ["APPROX", "CONDUCT", "MAIN"])
    def test_lands_near_best_static_set(self, name):
        from repro.experiments.runner import artifacts_for

        artifacts = artifacts_for(name)
        adaptive = simulate(artifacts.trace, AdaptiveCDPolicy())
        best = min(
            (
                artifacts.cd_result(CDConfig(pi_cap=cap))
                for cap in (None, 2, 1)
            ),
            key=lambda r: r.space_time,
        )
        # Within 2.5x of the best offline choice, with zero offline
        # knowledge (geo-mean over all nine programs is ~1.7x).
        assert adaptive.space_time <= best.space_time * 2.5
