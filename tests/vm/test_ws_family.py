"""Unit tests for the WS-family policies: DWS, SWS, VSWS."""

import pytest

from repro.vm.policies import (
    DampedWorkingSetPolicy,
    SampledWorkingSetPolicy,
    VariableSampledWorkingSetPolicy,
    WorkingSetPolicy,
)
from repro.vm.simulator import simulate

from .conftest import make_trace


class TestDWS:
    def test_cold_faults(self):
        result = simulate(make_trace([0, 1, 2]), DampedWorkingSetPolicy(tau=10))
        assert result.page_faults == 3

    def test_expiry_batched_between_faults(self):
        # With a large damp interval and no faults, stale pages linger
        # beyond τ — until the next scan.
        policy = DampedWorkingSetPolicy(tau=2, damp=100)
        pages = [0, 1, 1, 1, 1, 1]
        simulate(make_trace(pages), policy)
        # Page 0 left the τ-window long ago but no fault/scan dropped it.
        assert policy.resident_size == 2

    def test_fault_forces_expiry(self):
        # The same string plus a fault at the end: the fault triggers
        # the expiry scan and page 0 is dropped with the new page added.
        policy = DampedWorkingSetPolicy(tau=2, damp=100)
        pages = [0, 1, 1, 1, 1, 1, 2]
        simulate(make_trace(pages), policy)
        assert policy.resident_size == 2  # {1, 2}; 0 was shed at the fault

    def test_matches_ws_fault_count_on_stable_locality(self, cyclic_trace):
        dws = simulate(cyclic_trace, DampedWorkingSetPolicy(tau=10))
        ws = simulate(cyclic_trace, WorkingSetPolicy(tau=10))
        assert dws.page_faults == ws.page_faults  # only cold faults

    def test_dws_mem_at_most_slightly_above_ws(self, locality_trace):
        # DWS holds stale pages a bit longer: MEM(DWS) >= MEM(WS),
        # but the damping is bounded by the scan interval.
        dws = simulate(locality_trace, DampedWorkingSetPolicy(tau=12, damp=3))
        ws = simulate(locality_trace, WorkingSetPolicy(tau=12))
        assert dws.mem_average >= ws.mem_average - 1e-9
        assert dws.mem_average <= ws.mem_average + 2.0

    def test_default_damp_is_quarter_window(self):
        policy = DampedWorkingSetPolicy(tau=40)
        assert policy.damp == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            DampedWorkingSetPolicy(tau=0)
        with pytest.raises(ValueError):
            DampedWorkingSetPolicy(tau=5, damp=-1)

    def test_reset(self):
        policy = DampedWorkingSetPolicy(tau=5)
        a = simulate(make_trace([0, 1, 2]), policy)
        b = simulate(make_trace([0, 1, 2]), policy)
        assert a.page_faults == b.page_faults


class TestSWS:
    def test_cold_faults(self):
        result = simulate(make_trace([0, 1, 2]), SampledWorkingSetPolicy(interval=4))
        assert result.page_faults == 3

    def test_grows_between_samples(self):
        policy = SampledWorkingSetPolicy(interval=100)
        simulate(make_trace([0, 1, 2, 3, 4]), policy)
        assert policy.resident_size == 5

    def test_sample_drops_unreferenced(self):
        # interval 4: at the sample boundary only pages used in the last
        # interval survive.
        policy = SampledWorkingSetPolicy(interval=4)
        pages = [0, 1, 2, 3, 9, 9, 9, 9, 9]
        simulate(make_trace(pages), policy)
        assert policy.resident_size == 1  # only 9 survives the samples

    def test_refault_after_sampling_out(self):
        pages = [0, 9, 9, 9, 9, 9, 9, 9, 0]
        result = simulate(make_trace(pages), SampledWorkingSetPolicy(interval=4))
        # 0, 9 cold; 0 again after being sampled out.
        assert result.page_faults == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SampledWorkingSetPolicy(interval=0)

    def test_sws_cheaper_but_coarser_than_ws(self, locality_trace):
        # At interval == τ the SWS resident set brackets the true WS:
        # never smaller at sampling points, possibly larger between.
        sws = simulate(locality_trace, SampledWorkingSetPolicy(interval=12))
        ws = simulate(locality_trace, WorkingSetPolicy(tau=12))
        assert sws.mem_average >= ws.mem_average * 0.5
        assert sws.page_faults <= ws.page_faults + 5


class TestVSWS:
    def test_cold_faults(self):
        policy = VariableSampledWorkingSetPolicy(m_min=2, l_max=20, q_faults=3)
        result = simulate(make_trace([0, 1, 2]), policy)
        assert result.page_faults == 3

    def test_transition_triggers_early_sample(self):
        # A fault burst after m_min forces a sample well before l_max.
        policy = VariableSampledWorkingSetPolicy(m_min=2, l_max=1000, q_faults=2)
        pages = [0, 1, 0, 1, 0, 1, 5, 6, 7, 8, 5, 6, 7, 8]
        simulate(make_trace(pages), policy)
        # The old locality {0, 1} was shed by the early sample.
        assert 0 not in policy._resident
        assert 1 not in policy._resident

    def test_l_max_bounds_staleness(self):
        policy = VariableSampledWorkingSetPolicy(m_min=1, l_max=4, q_faults=99)
        pages = [0, 9, 9, 9, 9, 9, 9, 9, 9]
        simulate(make_trace(pages), policy)
        assert policy.resident_size == 1

    def test_no_sample_before_m_min(self):
        # Faults alone cannot trigger sampling before m_min elapses.
        policy = VariableSampledWorkingSetPolicy(m_min=50, l_max=100, q_faults=1)
        simulate(make_trace([0, 1, 2, 3, 4]), policy)
        assert policy.resident_size == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            VariableSampledWorkingSetPolicy(m_min=0, l_max=5, q_faults=1)
        with pytest.raises(ValueError):
            VariableSampledWorkingSetPolicy(m_min=6, l_max=5, q_faults=1)
        with pytest.raises(ValueError):
            VariableSampledWorkingSetPolicy(m_min=1, l_max=5, q_faults=0)

    def test_reset(self):
        policy = VariableSampledWorkingSetPolicy(m_min=2, l_max=8, q_faults=2)
        a = simulate(make_trace([0, 1, 2, 0, 1]), policy)
        b = simulate(make_trace([0, 1, 2, 0, 1]), policy)
        assert a.page_faults == b.page_faults

    def test_parameter_reported(self):
        policy = VariableSampledWorkingSetPolicy(m_min=2, l_max=8, q_faults=2)
        assert policy.describe_parameter() == 8
