"""Performance benchmarks: the streaming simulation core.

Measures what the one-pass engine buys over the event-driven simulator
on the same large real trace bench_simulator.py uses (CONDUCT, ~175k
references): per-policy streaming throughput, the one-pass multi-policy
amortisation (a pair, then an eight-request LRU/FIFO sweep fed by a
single scan), off-disk replay over a sharded trace, and — when numba is
importable — the jitted backend against the vectorized numpy one.

``python benchmarks/bench_stream.py`` re-measures the headline numbers
and rewrites the ``stream`` section of BENCH_simulator.json in place;
``--quick`` is the warn-only CI smoke.
"""

import pytest

from repro.experiments.runner import artifacts_for
from repro.vm.policies import FIFOPolicy, LRUPolicy, WorkingSetPolicy
from repro.vm.simulator import simulate
from repro.vm.stream import StreamRequest, numba_available, stream_simulate

SWEEP8 = [
    *(StreamRequest.lru(m) for m in (8, 16, 32, 64)),
    *(StreamRequest.fifo(m) for m in (8, 16, 32, 64)),
]


@pytest.fixture(scope="module")
def conduct_trace(warm_artifacts):
    return artifacts_for("CONDUCT").trace


def _policy_rate(benchmark, trace, n_requests):
    benchmark.extra_info["policy_refs_per_sec"] = round(
        trace.length * n_requests / benchmark.stats.stats.mean
    )


def bench_stream_lru(benchmark, conduct_trace):
    result = benchmark(
        stream_simulate, conduct_trace, [StreamRequest.lru(32)]
    )[0]
    _policy_rate(benchmark, conduct_trace, 1)
    assert result.page_faults > 0


def bench_stream_fifo(benchmark, conduct_trace):
    benchmark(stream_simulate, conduct_trace, [StreamRequest.fifo(32)])
    _policy_rate(benchmark, conduct_trace, 1)


def bench_stream_ws(benchmark, conduct_trace):
    benchmark(stream_simulate, conduct_trace, [StreamRequest.ws(2000)])
    _policy_rate(benchmark, conduct_trace, 1)


def bench_stream_cd(benchmark, conduct_trace):
    benchmark(stream_simulate, conduct_trace, [StreamRequest.cd()])
    _policy_rate(benchmark, conduct_trace, 1)


def bench_stream_pair_lru_fifo(benchmark, conduct_trace):
    """Two policies from one scan — the smallest one-pass win."""
    requests = [StreamRequest.lru(32), StreamRequest.fifo(32)]
    benchmark(stream_simulate, conduct_trace, requests)
    _policy_rate(benchmark, conduct_trace, 2)


def bench_stream_sweep8(benchmark, conduct_trace):
    """Eight requests (LRU and FIFO at four sizes each), one scan."""
    benchmark(stream_simulate, conduct_trace, list(SWEEP8))
    _policy_rate(benchmark, conduct_trace, len(SWEEP8))


def bench_stream_sharded_lru(benchmark, conduct_trace, tmp_path):
    """Off-disk replay: mmap-backed shards instead of an in-RAM trace."""
    from repro.tracegen.io import open_sharded_trace, save_trace_sharded

    save_trace_sharded(conduct_trace, tmp_path / "conduct", shard_size=65536)
    sharded = open_sharded_trace(tmp_path / "conduct")
    benchmark(stream_simulate, sharded, [StreamRequest.lru(32)])
    _policy_rate(benchmark, conduct_trace, 1)


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
def bench_stream_numba_lru(benchmark, conduct_trace):
    stream_simulate(conduct_trace, [StreamRequest.lru(32)], backend="numba")
    benchmark(
        stream_simulate,
        conduct_trace,
        [StreamRequest.lru(32)],
        backend="numba",
    )
    _policy_rate(benchmark, conduct_trace, 1)


# -- standalone summary writer -------------------------------------------------


def _time(fn, repeat=3):
    import time as _time_mod

    best = float("inf")
    for _ in range(repeat):
        t0 = _time_mod.perf_counter()
        fn()
        best = min(best, _time_mod.perf_counter() - t0)
    return best


def _sharded_rss_kb(length_factor):
    """Peak RSS (KiB) of a fresh process replaying a sharded trace.

    The CONDUCT trace is tiled ``length_factor`` times before sharding,
    so comparing factors shows the footprint does not grow with trace
    length — the engine holds one chunk plus per-policy state, never the
    whole reference string.
    """
    import os
    import subprocess
    import sys
    import tempfile
    import textwrap

    with tempfile.TemporaryDirectory() as tmp:
        script = textwrap.dedent(
            f"""
            import resource
            import numpy as np
            from repro.experiments.runner import artifacts_for
            from repro.tracegen.io import (
                ShardedTraceWriter, open_sharded_trace,
            )
            from repro.vm.stream import StreamRequest, stream_simulate

            trace = artifacts_for("CONDUCT").trace
            writer = ShardedTraceWriter(
                {tmp!r} + "/trace", trace.program_name,
                int(np.max(trace.pages)) + 1, shard_size=1 << 16,
            )
            for _ in range({length_factor}):
                writer.append(trace.pages)
            writer.close()
            del trace
            sharded = open_sharded_trace({tmp!r} + "/trace")
            stream_simulate(
                sharded, [StreamRequest.lru(32)], chunk_size=1 << 16
            )
            print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
            """
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONPATH="src"),
        )
    return int(out.stdout.strip())


def write_stream_section(path="BENCH_simulator.json"):
    """Measure the streaming core and update ``path`` in place."""
    import json
    import sys

    trace = artifacts_for("CONDUCT").trace
    section = {"backend": "numpy", "numba_available": numba_available()}

    one_pass = {}
    singles = {
        "LRU": [StreamRequest.lru(32)],
        "FIFO": [StreamRequest.fifo(32)],
        "WS": [StreamRequest.ws(2000)],
        "CD": [StreamRequest.cd()],
        "LRU+FIFO": [StreamRequest.lru(32), StreamRequest.fifo(32)],
        "sweep8": list(SWEEP8),
    }
    for name, requests in singles.items():
        stream_simulate(trace, requests)  # warm kernels and caches
        secs = _time(lambda r=requests: stream_simulate(trace, r))
        one_pass[name] = {
            "wall_sec": round(secs, 4),
            "policy_refs_per_sec": round(
                trace.length * len(requests) / secs
            ),
        }
    section["one_pass"] = one_pass

    # one-pass vs N independent event-driven replays: the same eight
    # results the sweep8 scan produces, replayed one policy at a time.
    def n_replay():
        for m in (8, 16, 32, 64):
            simulate(trace, LRUPolicy(frames=m))
        for m in (8, 16, 32, 64):
            simulate(trace, FIFOPolicy(frames=m))

    n_secs = _time(n_replay, repeat=1)
    section["sweep8_event_driven_wall_sec"] = round(n_secs, 3)
    section["sweep8_one_pass_speedup"] = round(
        n_secs / one_pass["sweep8"]["wall_sec"], 1
    )
    ws_secs = _time(lambda: simulate(trace, WorkingSetPolicy(tau=2000)))
    section["ws_event_driven_refs_per_sec"] = round(trace.length / ws_secs)

    # chunked off-disk replay over mmap-backed shards
    import tempfile

    from repro.tracegen.io import open_sharded_trace, save_trace_sharded

    with tempfile.TemporaryDirectory() as tmp:
        save_trace_sharded(trace, tmp + "/conduct", shard_size=65536)
        sharded = open_sharded_trace(tmp + "/conduct")
        secs = _time(
            lambda: stream_simulate(sharded, [StreamRequest.lru(32)])
        )
        section["sharded_lru"] = {
            "wall_sec": round(secs, 4),
            "refs_per_sec": round(trace.length / secs),
        }

    rss1 = _sharded_rss_kb(1)
    rss4 = _sharded_rss_kb(4)
    section["sharded_peak_rss_kb"] = {
        "trace_x1": rss1,
        "trace_x4": rss4,
        "growth_ratio": round(rss4 / rss1, 2),
    }

    if numba_available():
        stream_simulate(trace, [StreamRequest.lru(32)], backend="numba")
        secs = _time(
            lambda: stream_simulate(
                trace, [StreamRequest.lru(32)], backend="numba"
            )
        )
        section["numba_lru"] = {
            "wall_sec": round(secs, 4),
            "refs_per_sec": round(trace.length / secs),
        }

    try:
        with open(path) as fh:
            summary = json.load(fh)
    except (OSError, ValueError):
        summary = {}
    summary["stream"] = section
    with open(path, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote stream section of {path}", file=sys.stderr)
    return section


def quick_check(baseline_path="BENCH_simulator.json", slowdown_factor=4.0):
    """Warn-only streaming smoke for CI: re-measure one-pass throughput
    on CONDUCT and compare with the committed ``stream`` section.

    Never fails the build — shared CI runners vary too much — but warns
    when a configuration runs ``slowdown_factor`` times slower than the
    recorded baseline, which only trips on algorithmic regressions.
    """
    import json
    import sys

    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)["stream"]["one_pass"]
    except (OSError, KeyError, ValueError) as err:
        print(f"quick: no usable stream baseline ({err})")
        return 0

    trace = artifacts_for("CONDUCT").trace
    configs = {
        "LRU": [StreamRequest.lru(32)],
        "FIFO": [StreamRequest.fifo(32)],
        "WS": [StreamRequest.ws(2000)],
        "CD": [StreamRequest.cd()],
        "sweep8": list(SWEEP8),
    }
    warnings = 0
    for name, requests in configs.items():
        stream_simulate(trace, requests)
        secs = _time(lambda r=requests: stream_simulate(trace, r), repeat=2)
        measured = round(trace.length * len(requests) / secs)
        expected = baseline.get(name, {}).get("policy_refs_per_sec")
        if expected is None:
            print(f"quick: {name:8s} {measured:>12,} policy-refs/s (no baseline)")
            continue
        ratio = expected / measured
        status = "ok"
        if ratio > slowdown_factor:
            status = f"WARNING: {ratio:.1f}x slower than baseline"
            warnings += 1
        print(
            f"quick: {name:8s} {measured:>12,} policy-refs/s "
            f"(baseline {expected:,}) {status}"
        )
    if numba_available():
        stream_simulate(trace, [StreamRequest.lru(32)], backend="numba")
        secs = _time(
            lambda: stream_simulate(
                trace, [StreamRequest.lru(32)], backend="numba"
            ),
            repeat=2,
        )
        print(f"quick: numba    {round(trace.length / secs):>12,} refs/s")
    else:
        print("quick: numba backend not installed; skipped")
    if warnings:
        print(
            f"quick: {warnings} streaming config(s) below threshold — "
            "investigate before trusting sweep timings",
            file=sys.stderr,
        )
    return 0  # warn-only by design


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        args = [a for a in sys.argv[1:] if a != "--quick"]
        sys.exit(quick_check(*args[:1]))
    write_stream_section(*sys.argv[1:2])
