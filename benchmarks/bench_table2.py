"""Benchmark: regenerate Table 2 (minimal-ST LRU and WS vs best CD).

Paper reference (%ST LRU / %ST WS): MAIN3 47/17, FDJAC 27/39,
FIELD 23/6, INIT 133/22, APPROX 36/58, HYBRJ 31/32, CONDUCT 288/32,
TQL1 7/4 — LRU and WS minima are always worse than the best CD run.

Reproduced shape: the best CD directive set matches or beats the
best-tuned LRU/WS everywhere except (as in the paper) the near-tie
TQL row, with the largest margins on the phase-varying programs.
"""

from repro.experiments.table2 import generate_table2, render_table2

from .conftest import emit


def bench_table2(benchmark, warm_artifacts):
    rows = benchmark(generate_table2)
    emit("Table 2 (reproduced)", render_table2(rows))
    by_label = {r.label: r for r in rows}
    assert by_label["CONDUCT"].pct_st_lru > 50
    assert by_label["APPROX"].pct_st_lru > 30
    average = sum(r.pct_st_lru for r in rows) / len(rows)
    assert average > 10
    benchmark.extra_info["pct_st"] = {
        r.label: {
            "lru": round(r.pct_st_lru, 1),
            "ws": round(r.pct_st_ws, 1),
        }
        for r in rows
    }
