"""Shared fixtures for the benchmark harness.

Each ``bench_table*.py`` module regenerates one table of the paper's
evaluation; ``pytest benchmarks/ --benchmark-only`` runs them all,
prints every regenerated table, and records the headline numbers in the
benchmark's ``extra_info`` (visible with ``--benchmark-verbose`` or in
``--benchmark-json`` output).

The expensive, shared artifacts (traces and sweeps for all nine
programs) are warmed once per session so each benchmark measures its own
table assembly, not trace generation.
"""

import pytest

from repro.experiments.runner import artifacts_for
from repro.workloads import workload_names


@pytest.fixture(scope="session")
def warm_artifacts():
    """Generate every workload's trace and sweeps once."""
    for name in workload_names():
        artifacts_for(name)
    # The base MAIN variant additionally executes LOCK/UNLOCK events.
    artifacts_for("MAIN", with_locks=True)
    return True


def emit(title: str, text: str) -> None:
    """Print a regenerated table so it lands in the pytest output."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")
