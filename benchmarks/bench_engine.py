"""Benchmark: supervision overhead of the sweep engine.

Each job attempt pays for a forked worker process, a pipe, and the
supervisor's poll loop.  ``selftest`` jobs do trivial arithmetic, so
the measured time is almost pure engine overhead — the number that
tells us when per-attempt isolation is affordable (milliseconds per
job) versus when work should be batched into fewer, larger jobs.
"""

from repro.engine import Engine, EngineConfig, JobSpec

from .conftest import emit

_JOBS = 16


def _specs():
    return [
        JobSpec(f"selftest:{i}", "selftest", {"value": i}) for i in range(_JOBS)
    ]


def _run_batch():
    report = Engine(EngineConfig(max_workers=4, backoff_base=0.01)).run(_specs())
    assert report.ok
    return report


def bench_engine_overhead(benchmark):
    report = benchmark(_run_batch)
    per_job_ms = 1000.0 * report.elapsed / _JOBS
    emit(
        "Engine overhead",
        f"{_JOBS} selftest jobs, 4 workers: {report.elapsed * 1000:.0f} ms "
        f"total, {per_job_ms:.1f} ms/job supervision overhead",
    )
    benchmark.extra_info["jobs"] = _JOBS
    benchmark.extra_info["per_job_ms"] = round(per_job_ms, 2)
