"""Benchmark: regenerate Table 1 (directive-set study under CD).

Paper reference values (MEM, PF, ST×10⁻⁶):
MAIN 1.62/531/3.39 — MAIN1 20.37/144/3.89 — MAIN2 12.23/319/10.6 —
MAIN3 1.11/652/2.77 — FDJAC 2.47/178/1.46 — FDJAC1 3.11/175/2.04 —
TQL1 2.48/322/2.84 — TQL2 2.02/421/3.063.

The reproduced trend: outer-level directive sets consume more memory
and fault less; inner-level sets the reverse.
"""

from repro.experiments.table1 import generate_table1, render_table1

from .conftest import emit


def bench_table1(benchmark, warm_artifacts):
    rows = benchmark(generate_table1)
    emit("Table 1 (reproduced)", render_table1(rows))
    by_label = {r.label: r for r in rows}
    # The paper's headline trend must hold.
    assert by_label["MAIN1"].mem > by_label["MAIN2"].mem > by_label["MAIN3"].mem
    assert (
        by_label["MAIN1"].page_faults
        < by_label["MAIN2"].page_faults
        < by_label["MAIN3"].page_faults
    )
    benchmark.extra_info["rows"] = {
        r.label: {
            "mem": round(r.mem, 2),
            "pf": r.page_faults,
            "st_millions": round(r.st_millions, 3),
        }
        for r in rows
    }
