"""Benchmark: regenerate Table 3 (ΔPF and %ST at equal average memory).

Paper reference: "Using the same amount of memory, LRU and WS produce
on the average 2863 and 2340 more page faults than does CD", with rows
like CONDUCT ΔPF(LRU)=3477 / %ST=988.3 and INIT ΔPF(LRU)=2287.

Reproduced shape: large positive average ΔPF for both baselines, LRU
worse than WS, CONDUCT/INIT/FIELD rows dramatic.
"""

from repro.experiments.table3 import generate_table3, render_table3

from .conftest import emit


def bench_table3(benchmark, warm_artifacts):
    rows = benchmark(generate_table3)
    emit("Table 3 (reproduced)", render_table3(rows))
    lru_avg = sum(r.delta_pf_lru for r in rows) / len(rows)
    ws_avg = sum(r.delta_pf_ws for r in rows) / len(rows)
    assert lru_avg > 1000
    assert ws_avg > 0
    assert lru_avg > ws_avg  # the paper's ordering: 2863 vs 2340
    benchmark.extra_info["avg_delta_pf"] = {
        "lru": round(lru_avg),
        "ws": round(ws_avg),
    }
    benchmark.extra_info["rows"] = {
        r.label: {
            "mem_cd": round(r.mem_cd, 2),
            "dpf_lru": r.delta_pf_lru,
            "pct_st_lru": round(r.pct_st_lru, 1),
            "dpf_ws": r.delta_pf_ws,
            "pct_st_ws": round(r.pct_st_ws, 1),
        }
        for r in rows
    }
