"""Benchmark: regenerate Table 4 (memory LRU/WS need to match CD's
fault count).

Paper reference: "LRU and WS need on the average 247% and 175%
respectively, more memory than the CD needs to generate the same number
of page faults", with HWSCRT's LRU row the extreme (442%).

Reproduced shape: large positive average %MEM for LRU, LRU above WS,
CONDUCT/HWSCRT among the largest rows.
"""

from repro.experiments.table4 import generate_table4, render_table4

from .conftest import emit


def bench_table4(benchmark, warm_artifacts):
    rows = benchmark(generate_table4)
    emit("Table 4 (reproduced)", render_table4(rows))
    lru_avg = sum(r.pct_mem_lru for r in rows) / len(rows)
    ws_avg = sum(r.pct_mem_ws for r in rows) / len(rows)
    assert lru_avg > 50  # paper: 247%
    assert lru_avg > ws_avg  # paper: 247% vs 175%
    by_label = {r.label: r for r in rows}
    assert by_label["CONDUCT"].pct_mem_lru > 200
    benchmark.extra_info["avg_pct_mem"] = {
        "lru": round(lru_avg, 1),
        "ws": round(ws_avg, 1),
    }
