"""Performance benchmarks: simulator and analyzer throughput.

These are true timing benchmarks (many rounds, meaningful statistics),
complementing the table-regeneration benchmarks: they track the cost of
replaying one large real trace (CONDUCT, ~175k references) under each
policy, and of the one-pass sweep analyzers that make the full LRU/WS
parameter sweeps affordable.
"""

import pytest

from repro.experiments.runner import artifacts_for
from repro.vm.analyzers import LRUSweep, WSSweep
from repro.vm.policies import (
    CDPolicy,
    FIFOPolicy,
    LRUPolicy,
    OPTPolicy,
    PFFPolicy,
    WorkingSetPolicy,
)
from repro.vm.simulator import simulate


@pytest.fixture(scope="module")
def conduct_trace(warm_artifacts):
    return artifacts_for("CONDUCT").trace


def bench_replay_lru(benchmark, conduct_trace):
    result = benchmark(simulate, conduct_trace, LRUPolicy(frames=32))
    benchmark.extra_info["refs_per_sec"] = round(
        conduct_trace.length / benchmark.stats.stats.mean
    )
    assert result.page_faults > 0


def bench_replay_fifo(benchmark, conduct_trace):
    benchmark(simulate, conduct_trace, FIFOPolicy(frames=32))


def bench_replay_ws(benchmark, conduct_trace):
    benchmark(simulate, conduct_trace, WorkingSetPolicy(tau=2000))


def bench_replay_pff(benchmark, conduct_trace):
    benchmark(simulate, conduct_trace, PFFPolicy(threshold=2000))


def bench_replay_opt(benchmark, conduct_trace):
    benchmark(simulate, conduct_trace, OPTPolicy(frames=32))


def bench_replay_cd(benchmark, conduct_trace):
    benchmark(simulate, conduct_trace, CDPolicy())


def bench_lru_sweep_construction(benchmark, conduct_trace):
    sweep = benchmark(LRUSweep, conduct_trace)
    assert sweep.max_useful_frames > 100


def bench_ws_sweep_construction(benchmark, conduct_trace):
    benchmark(WSSweep, conduct_trace)


def bench_ws_sweep_query(benchmark, conduct_trace):
    sweep = WSSweep(conduct_trace)

    def query():
        sweep._cache.clear()
        return sweep.result(2000)

    benchmark(query)


def bench_trace_generation(benchmark, warm_artifacts):
    """End-to-end trace generation for a mid-size workload (TQL)."""
    from repro.tracegen.interpreter import generate_trace
    from repro.workloads import get_workload

    workload = get_workload("TQL")

    def generate():
        return generate_trace(workload.program(), symbols=workload.symbols())

    trace = benchmark(generate)
    benchmark.extra_info["refs"] = trace.length


def bench_replay_cd_fast(benchmark, conduct_trace):
    """Closed-form CD replay (the path the tables actually take)."""
    from repro.vm.analyzers import LRUSweep
    from repro.vm.fastsim import simulate_cd_fast
    from repro.vm.policies import CDConfig

    distances = LRUSweep(conduct_trace)._distances
    result = benchmark(
        simulate_cd_fast, conduct_trace, CDConfig(pi_cap=2), distances
    )
    benchmark.extra_info["refs_per_sec"] = round(
        conduct_trace.length / benchmark.stats.stats.mean
    )
    assert result.page_faults > 0


# -- standalone summary writer -------------------------------------------------
#
# ``python benchmarks/bench_simulator.py`` measures the headline numbers
# without pytest-benchmark and writes them to BENCH_simulator.json at
# the repo root: per-policy replay throughput, per-table wall times, and
# the cold/warm ``table 2`` CLI walls against the pre-optimization seed.


#: seed-tree wall time of ``python -m repro table 2`` (measured before
#: the affine trace compiler / fast CD replay / artifact cache landed)
SEED_TABLE2_WALL = 8.78


def _time(fn, repeat=3):
    import time as _time_mod

    best = float("inf")
    for _ in range(repeat):
        t0 = _time_mod.perf_counter()
        fn()
        best = min(best, _time_mod.perf_counter() - t0)
    return best


def _cli_wall(args, env):
    import subprocess
    import sys
    import time as _time_mod

    t0 = _time_mod.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", *args],
        check=True,
        env=env,
        stdout=subprocess.DEVNULL,
    )
    return _time_mod.perf_counter() - t0


def write_summary(path="BENCH_simulator.json"):
    import json
    import os
    import sys
    import tempfile

    from repro.experiments.runner import clear_cache
    from repro.tracegen.interpreter import generate_trace
    from repro.vm.analyzers import LRUSweep as _LRU
    from repro.vm.fastsim import simulate_cd_fast
    from repro.vm.policies import CDConfig
    from repro.workloads import get_workload, workload_names

    # merge into the existing file so sections owned by other writers
    # (e.g. ``stream`` from bench_stream.py) survive a regeneration
    try:
        with open(path) as fh:
            summary = json.load(fh)
    except (OSError, ValueError):
        summary = {}
    summary["seed_table2_wall_sec"] = SEED_TABLE2_WALL

    trace = artifacts_for("CONDUCT").trace
    replay = {}
    policies = {
        "LRU": lambda: simulate(trace, LRUPolicy(frames=32)),
        "FIFO": lambda: simulate(trace, FIFOPolicy(frames=32)),
        "WS": lambda: simulate(trace, WorkingSetPolicy(tau=2000)),
        "CD": lambda: simulate(trace, CDPolicy()),
    }
    distances = _LRU(trace)._distances
    policies["CD_fast"] = lambda: simulate_cd_fast(
        trace, CDConfig(pi_cap=2), distances
    )
    for name, fn in policies.items():
        secs = _time(fn)
        replay[name] = {
            "wall_sec": round(secs, 4),
            "refs_per_sec": round(trace.length / secs),
        }
    summary["replay_conduct"] = replay

    tracegen = {}
    for name in workload_names():
        w = get_workload(name)
        secs = _time(
            lambda: generate_trace(w.program(), symbols=w.symbols()), repeat=1
        )
        t = w.program()  # noqa: F841 - keep parse warm across timings
        tracegen[name] = {"wall_sec": round(secs, 4)}
    summary["tracegen"] = tracegen

    # True CLI wall times, in fresh processes: cold (empty cache) and
    # warm (cache populated by the cold run).  Best of two runs each —
    # single-sample process walls are noisy on small machines.
    with tempfile.TemporaryDirectory() as cache:
        env = dict(os.environ, REPRO_CACHE_DIR=cache, PYTHONPATH="src")
        tables = {}

        def cold_run():
            for entry in os.listdir(cache):
                os.unlink(os.path.join(cache, entry))
            return _cli_wall(["table", "2"], env)

        cold2 = min(cold_run(), cold_run())
        warm2 = min(_cli_wall(["table", "2"], env) for _ in range(2))
        tables["2"] = {
            "cold_wall_sec": round(cold2, 3),
            "warm_wall_sec": round(warm2, 3),
            "cold_speedup_vs_seed": round(SEED_TABLE2_WALL / cold2, 2),
            "warm_speedup_vs_seed": round(SEED_TABLE2_WALL / warm2, 2),
        }
        for which in ("1", "3", "4"):
            tables[which] = {
                "warm_wall_sec": round(_cli_wall(["table", which], env), 3)
            }
        summary["tables"] = tables

    # Symbolic engine vs the trace-backed path, in-process so python
    # startup does not drown the comparison.  Three operating points:
    # trace-mode cold (empty cache — the full tracegen + sweep build),
    # symbolic cold (empty cache — run-structured generation, verified
    # collapse, weighted sweeps), and symbolic steady-state (its
    # cache-keyed operating point: runs/analysis npz on disk, process
    # memo cleared — the same way the trace path amortizes repeat use).
    # Every timed run's rows are asserted identical to trace-mode's.
    from repro.analysis.symbolic.artifacts import (
        _SYM_CACHE,
        clear_symbolic_cache,
    )
    from repro.experiments.table2 import generate_table2

    with tempfile.TemporaryDirectory() as cache:
        prior = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = cache
        try:
            trace_rows = []
            sym_rows = []

            def run_trace_cold():
                clear_cache()
                trace_rows.append(generate_table2())

            def run_sym_cold():
                clear_symbolic_cache()
                sym_rows.append(generate_table2(mode="symbolic"))

            def run_sym_steady():
                _SYM_CACHE.clear()
                sym_rows.append(generate_table2(mode="symbolic"))

            cold_trace = _time(run_trace_cold)
            cold_sym = _time(run_sym_cold)
            steady_sym = _time(run_sym_steady)
            rows_identical = bool(trace_rows) and all(
                rows == trace_rows[0] for rows in trace_rows + sym_rows
            )
            summary["symbolic"] = {
                "table2_trace_cold_wall_sec": round(cold_trace, 3),
                "table2_symbolic_cold_wall_sec": round(cold_sym, 3),
                "table2_symbolic_steady_wall_sec": round(steady_sym, 3),
                "cold_speedup_vs_cold_tracegen": round(
                    cold_trace / cold_sym, 2
                ),
                "steady_speedup_vs_cold_tracegen": round(
                    cold_trace / steady_sym, 2
                ),
                "rows_identical": rows_identical,
            }
        finally:
            clear_cache(disk=False)
            clear_symbolic_cache(disk=False)
            if prior is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = prior

    # Static (closed-form) tier vs cold tracegen, same protocol as the
    # symbolic section: cold (empty cache — affine recovery + partial
    # evaluation, no flat string ever built) and steady-state (static
    # npz on disk, process memo cleared).  Rows asserted identical.
    from repro.analysis.staticloc.artifacts import (
        _STATIC_CACHE,
        clear_static_cache,
    )

    with tempfile.TemporaryDirectory() as cache:
        prior = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = cache
        try:
            trace_rows = []
            static_rows = []

            def run_trace_cold():
                clear_cache()
                trace_rows.append(generate_table2())

            def run_static_cold():
                clear_static_cache()
                static_rows.append(generate_table2(mode="static"))

            def run_static_steady():
                _STATIC_CACHE.clear()
                static_rows.append(generate_table2(mode="static"))

            cold_trace = _time(run_trace_cold)
            cold_static = _time(run_static_cold)
            steady_static = _time(run_static_steady)
            rows_identical = bool(trace_rows) and all(
                rows == trace_rows[0] for rows in trace_rows + static_rows
            )
            summary["static"] = {
                "table2_trace_cold_wall_sec": round(cold_trace, 3),
                "table2_static_cold_wall_sec": round(cold_static, 3),
                "table2_static_steady_wall_sec": round(steady_static, 3),
                "cold_speedup_vs_cold_tracegen": round(
                    cold_trace / cold_static, 2
                ),
                "steady_speedup_vs_cold_tracegen": round(
                    cold_trace / steady_static, 2
                ),
                "rows_identical": rows_identical,
            }
        finally:
            clear_cache(disk=False)
            clear_static_cache(disk=False)
            if prior is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = prior

    clear_cache(disk=False)
    with open(path, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}", file=sys.stderr)
    return summary


def quick_check(baseline_path="BENCH_simulator.json", slowdown_factor=4.0):
    """Warn-only benchmark smoke: re-measure the per-policy replay
    throughput on CONDUCT and compare with the committed baseline.

    CI shares runners of wildly varying speed, so this never fails the
    build — it prints a WARNING when a policy replays more than
    ``slowdown_factor`` times slower than the recorded numbers, which is
    loose enough to only trip on a genuine algorithmic regression.
    """
    import json
    import sys

    from repro.vm.analyzers import LRUSweep as _LRU
    from repro.vm.fastsim import simulate_cd_fast
    from repro.vm.policies import CDConfig

    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)["replay_conduct"]
    except (OSError, KeyError, ValueError) as err:
        print(f"quick: no usable baseline ({err}); nothing to compare")
        return 0

    trace = artifacts_for("CONDUCT").trace
    distances = _LRU(trace)._distances
    policies = {
        "LRU": lambda: simulate(trace, LRUPolicy(frames=32)),
        "FIFO": lambda: simulate(trace, FIFOPolicy(frames=32)),
        "WS": lambda: simulate(trace, WorkingSetPolicy(tau=2000)),
        "CD": lambda: simulate(trace, CDPolicy()),
        "CD_fast": lambda: simulate_cd_fast(
            trace, CDConfig(pi_cap=2), distances
        ),
    }
    warnings = 0
    for name, fn in policies.items():
        expected = baseline.get(name, {}).get("refs_per_sec")
        secs = _time(fn, repeat=2)
        measured = round(trace.length / secs)
        if expected is None:
            print(f"quick: {name:8s} {measured:>12,} refs/s (no baseline)")
            continue
        ratio = expected / measured
        status = "ok"
        if ratio > slowdown_factor:
            status = f"WARNING: {ratio:.1f}x slower than baseline"
            warnings += 1
        print(
            f"quick: {name:8s} {measured:>12,} refs/s "
            f"(baseline {expected:,}) {status}"
        )
    if warnings:
        print(
            f"quick: {warnings} polic{'y' if warnings == 1 else 'ies'} "
            "below threshold — investigate before trusting table timings",
            file=sys.stderr,
        )
    return 0  # warn-only by design


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        args = [a for a in sys.argv[1:] if a != "--quick"]
        sys.exit(quick_check(*args[:1]))
    write_summary(*sys.argv[1:2])
