"""Performance benchmarks: simulator and analyzer throughput.

These are true timing benchmarks (many rounds, meaningful statistics),
complementing the table-regeneration benchmarks: they track the cost of
replaying one large real trace (CONDUCT, ~175k references) under each
policy, and of the one-pass sweep analyzers that make the full LRU/WS
parameter sweeps affordable.
"""

import pytest

from repro.experiments.runner import artifacts_for
from repro.vm.analyzers import LRUSweep, WSSweep
from repro.vm.policies import (
    CDPolicy,
    FIFOPolicy,
    LRUPolicy,
    OPTPolicy,
    PFFPolicy,
    WorkingSetPolicy,
)
from repro.vm.simulator import simulate


@pytest.fixture(scope="module")
def conduct_trace(warm_artifacts):
    return artifacts_for("CONDUCT").trace


def bench_replay_lru(benchmark, conduct_trace):
    result = benchmark(simulate, conduct_trace, LRUPolicy(frames=32))
    benchmark.extra_info["refs_per_sec"] = round(
        conduct_trace.length / benchmark.stats.stats.mean
    )
    assert result.page_faults > 0


def bench_replay_fifo(benchmark, conduct_trace):
    benchmark(simulate, conduct_trace, FIFOPolicy(frames=32))


def bench_replay_ws(benchmark, conduct_trace):
    benchmark(simulate, conduct_trace, WorkingSetPolicy(tau=2000))


def bench_replay_pff(benchmark, conduct_trace):
    benchmark(simulate, conduct_trace, PFFPolicy(threshold=2000))


def bench_replay_opt(benchmark, conduct_trace):
    benchmark(simulate, conduct_trace, OPTPolicy(frames=32))


def bench_replay_cd(benchmark, conduct_trace):
    benchmark(simulate, conduct_trace, CDPolicy())


def bench_lru_sweep_construction(benchmark, conduct_trace):
    sweep = benchmark(LRUSweep, conduct_trace)
    assert sweep.max_useful_frames > 100


def bench_ws_sweep_construction(benchmark, conduct_trace):
    benchmark(WSSweep, conduct_trace)


def bench_ws_sweep_query(benchmark, conduct_trace):
    sweep = WSSweep(conduct_trace)

    def query():
        sweep._cache.clear()
        return sweep.result(2000)

    benchmark(query)


def bench_trace_generation(benchmark, warm_artifacts):
    """End-to-end trace generation for a mid-size workload (TQL)."""
    from repro.tracegen.interpreter import generate_trace
    from repro.workloads import get_workload

    workload = get_workload("TQL")

    def generate():
        return generate_trace(workload.program(), symbols=workload.symbols())

    trace = benchmark(generate)
    benchmark.extra_info["refs"] = trace.length
