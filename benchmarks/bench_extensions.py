"""Benchmarks for the reproduction's extension studies.

* Page-geometry sweep — the paper's system parameter P varied from 128B
  to 1KB: CD's matched-memory advantage over LRU must persist at every
  geometry.
* WS family — WS vs DWS/SWS/VSWS (the policies the paper's introduction
  surveys) on the real benchmark traces.
* BLI validation — compiler-predicted locality sizes vs the bounded
  locality intervals detected in the traces.
"""

from repro.experiments.ablations import (
    adaptive_cd_study,
    render_adaptive_study,
    render_ws_family,
    ws_family_comparison,
)
from repro.experiments.controllability import (
    controllability_study,
    render_controllability,
)
from repro.experiments.geometry import geometry_sweep, render_geometry
from repro.vm.bli import BLIAnalyzer, compare_with_predictions
from repro.experiments.runner import artifacts_for

from .conftest import emit


def bench_geometry_sweep(benchmark, warm_artifacts):
    rows = benchmark.pedantic(
        geometry_sweep,
        kwargs={"names": ("APPROX",), "page_sizes": (128, 256, 512)},
        rounds=1,
        iterations=1,
    )
    emit("Ablation: page-size sensitivity", render_geometry(rows))
    for row in rows:
        assert row.delta_pf > 0  # CD's advantage at every geometry
    sizes = {r.page_bytes: r.virtual_pages for r in rows}
    assert sizes[128] > sizes[256] > sizes[512]
    benchmark.extra_info["delta_pf"] = {r.page_bytes: r.delta_pf for r in rows}


def bench_ws_family(benchmark, warm_artifacts):
    rows = benchmark(ws_family_comparison, ["MAIN", "TQL", "CONDUCT"])
    emit("Ablation: WS family", render_ws_family(rows))
    for row in rows:
        # The cheap realizations stay in WS's neighborhood: same order
        # of magnitude in faults, never less memory than half of WS.
        assert row.dws_pf <= row.ws_pf * 3 + 10
        assert row.sws_pf <= row.ws_pf * 3 + 10
        assert row.vsws_pf <= row.ws_pf * 5 + 10
        assert row.dws_mem >= row.ws_mem - 1e-9  # damping only holds longer
    benchmark.extra_info["rows"] = {
        r.program: {
            "ws": r.ws_pf,
            "dws": r.dws_pf,
            "sws": r.sws_pf,
            "vsws": r.vsws_pf,
        }
        for r in rows
    }


def bench_adaptive_cd(benchmark, warm_artifacts):
    rows = benchmark.pedantic(
        adaptive_cd_study,
        kwargs={"names": ["MAIN", "APPROX", "CONDUCT", "FDJAC", "INIT"]},
        rounds=1,
        iterations=1,
    )
    emit("Ablation: adaptive directive-set selection", render_adaptive_study(rows))
    import math

    geo_mean = math.exp(sum(math.log(r.ratio) for r in rows) / len(rows))
    # Online selection lands within ~2x of the best offline set on this
    # mix (and beats it on APPROX).
    assert geo_mean < 2.0
    assert min(r.ratio for r in rows) < 1.0 or geo_mean < 1.5
    benchmark.extra_info["geo_mean_ratio"] = round(geo_mean, 3)


def bench_controllability(benchmark, warm_artifacts):
    rows = benchmark.pedantic(
        controllability_study,
        kwargs={"names": ("MAIN", "FDJAC", "INIT", "CONDUCT")},
        rounds=1,
        iterations=1,
    )
    emit("Controllability study", render_controllability(rows))
    # The paper's motivation, reproduced: the 10% worst-case claim fails
    # on numerical programs, while CD's memory bound is never exceeded.
    assert any(not r.ws_within_10pct for r in rows)
    assert all(r.cd_overshoots == 0 for r in rows)
    benchmark.extra_info["ws_worst"] = {
        r.program: round(r.ws_worst_error, 3) for r in rows
    }


def bench_bli_validation(benchmark, warm_artifacts):
    def validate():
        results = {}
        for name in ("MAIN", "TQL", "CONDUCT", "HWSCRT"):
            trace = artifacts_for(name).trace
            analyzer = BLIAnalyzer(trace)
            comparison = compare_with_predictions(trace)
            results[name] = (analyzer, comparison)
        return results

    results = benchmark.pedantic(validate, rounds=1, iterations=1)
    lines = []
    for name, (analyzer, comparison) in results.items():
        lines.append(analyzer.summary())
        lines.append("  -> " + comparison.describe())
        # Hierarchical structure: coarser scales show fewer, larger
        # localities.
        assert len(analyzer.intervals(0)) > len(analyzer.intervals(2))
        assert analyzer.mean_size(2) > analyzer.mean_size(0)
    emit("BLI validation", "\n".join(lines))
    benchmark.extra_info["ratios"] = {
        name: round(comparison.ratio, 2)
        for name, (_a, comparison) in results.items()
    }
