"""Benchmark: CD vs WS in a multiprogramming environment.

The paper's future-work experiment: a mix of three benchmark programs
shares one physical memory under round-robin scheduling with overlapped
fault service.  CD processes are managed by their directives (with the
paper's PI=1 swapping rule); WS processes by working sets with classic
load control.
"""

from repro.experiments.runner import artifacts_for
from repro.vm.multiprog import MultiprogSimulator

from .conftest import emit

MIX = ["TQL", "FDJAC", "HYBRJ"]
FRAMES = 48


def _run_mix(mode: str):
    traces = [(name, artifacts_for(name).trace) for name in MIX]
    return MultiprogSimulator(traces, total_frames=FRAMES, mode=mode).run()


def bench_multiprog_cd(benchmark, warm_artifacts):
    result = benchmark(_run_mix, "cd")
    emit(f"Multiprogramming (CD, {FRAMES} frames)", result.describe())
    assert all(p.finish_time is not None for p in result.processes)
    benchmark.extra_info["makespan"] = result.makespan
    benchmark.extra_info["faults"] = result.total_faults
    benchmark.extra_info["swaps"] = result.swaps


def bench_multiprog_ws(benchmark, warm_artifacts):
    result = benchmark(_run_mix, "ws")
    emit(f"Multiprogramming (WS, {FRAMES} frames)", result.describe())
    assert all(p.finish_time is not None for p in result.processes)
    benchmark.extra_info["makespan"] = result.makespan
    benchmark.extra_info["faults"] = result.total_faults
    benchmark.extra_info["swaps"] = result.swaps


def bench_multiprog_cd_beats_ws(benchmark, warm_artifacts):
    """Head-to-head at moderate pressure: CD's directive-driven control
    avoids the swap storms WS load control produces."""

    def head_to_head():
        return _run_mix("cd"), _run_mix("ws")

    cd, ws = benchmark(head_to_head)
    emit(
        "Multiprogramming head-to-head",
        f"CD : makespan={cd.makespan} faults={cd.total_faults} swaps={cd.swaps}\n"
        f"WS : makespan={ws.makespan} faults={ws.total_faults} swaps={ws.swaps}",
    )
    assert cd.swaps <= ws.swaps
    benchmark.extra_info["cd_makespan"] = cd.makespan
    benchmark.extra_info["ws_makespan"] = ws.makespan
