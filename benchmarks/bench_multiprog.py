"""Benchmark: CD vs WS in a multiprogramming environment.

The paper's future-work experiment at both scales: a fixed mix of
three benchmark programs under round-robin scheduling (CD directives
vs WS load control), and the heavy-traffic load-controlled pool —
hundreds of stochastic arrivals over a shared frame pool, measuring
scheduler throughput in executed references per second of wall time.
"""

from repro.experiments.runner import artifacts_for
from repro.vm.multiprog import (
    JobProfile,
    LoadControlledPool,
    MultiprogSimulator,
    poisson_arrivals,
)

from .conftest import emit

MIX = ["TQL", "FDJAC", "HYBRJ"]
FRAMES = 48


def _run_mix(mode: str):
    traces = [(name, artifacts_for(name).trace) for name in MIX]
    return MultiprogSimulator(traces, total_frames=FRAMES, mode=mode).run()


def bench_multiprog_cd(benchmark, warm_artifacts):
    result = benchmark(_run_mix, "cd")
    emit(f"Multiprogramming (CD, {FRAMES} frames)", result.describe())
    assert all(p.finish_time is not None for p in result.processes)
    benchmark.extra_info["makespan"] = result.makespan
    benchmark.extra_info["faults"] = result.total_faults
    benchmark.extra_info["swaps"] = result.swaps


def bench_multiprog_ws(benchmark, warm_artifacts):
    result = benchmark(_run_mix, "ws")
    emit(f"Multiprogramming (WS, {FRAMES} frames)", result.describe())
    assert all(p.finish_time is not None for p in result.processes)
    benchmark.extra_info["makespan"] = result.makespan
    benchmark.extra_info["faults"] = result.total_faults
    benchmark.extra_info["swaps"] = result.swaps


def bench_multiprog_cd_beats_ws(benchmark, warm_artifacts):
    """Head-to-head at moderate pressure: CD's directive-driven control
    avoids the swap storms WS load control produces."""

    def head_to_head():
        return _run_mix("cd"), _run_mix("ws")

    cd, ws = benchmark(head_to_head)
    emit(
        "Multiprogramming head-to-head",
        f"CD : makespan={cd.makespan} faults={cd.total_faults} swaps={cd.swaps}\n"
        f"WS : makespan={ws.makespan} faults={ws.total_faults} swaps={ws.swaps}",
    )
    assert cd.swaps <= ws.swaps
    benchmark.extra_info["cd_makespan"] = cd.makespan
    benchmark.extra_info["ws_makespan"] = ws.makespan


def _pool_arrivals():
    profiles = [
        JobProfile.from_trace(
            artifacts_for(name).trace, name=name, max_refs=30_000
        )
        for name in MIX
    ]
    return poisson_arrivals(profiles, load=2.0, horizon=2_000_000, seed=0)


def bench_pool_knee_heavy_traffic(benchmark, warm_artifacts):
    """Hundreds of concurrent arrivals under knee-based admission:
    the event-driven pool must stay cheap per executed reference."""
    arrivals = _pool_arrivals()

    def run_pool():
        return LoadControlledPool(
            arrivals, total_frames=96, policy="knee", horizon=6_000_000
        ).run()

    result = benchmark(run_pool)
    assert result.violations == []
    assert result.completed > 0
    emit(
        "Load-controlled pool (knee, 96 frames)",
        result.describe(),
    )
    benchmark.extra_info["arrivals"] = result.arrivals
    benchmark.extra_info["completed"] = result.completed
    benchmark.extra_info["sim_refs_per_sec"] = round(
        result.executed_refs / benchmark.stats.stats.mean
    )
