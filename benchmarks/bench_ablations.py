"""Benchmarks: the ablation studies this reproduction adds.

* Policy zoo — every implemented policy at CD's average memory (adds
  FIFO, OPT, and PFF to the paper's LRU/WS comparison).
* Sizing strategy — ACTIVE_PAGE (Figure-5 arithmetic) vs CONSERVATIVE
  (Figure-1 whole-column) locality sizing.
* LOCK effectiveness — the study the paper defers ("The effectiveness
  of LOCK and UNLOCK directives is not studied in this work").
"""

from repro.experiments.ablations import (
    lock_ablation,
    policy_zoo,
    render_lock_ablation,
    render_policy_zoo,
    render_sizing_ablation,
    sizing_strategy_ablation,
)

from .conftest import emit

# Representative subset: keeps the zoo benchmark under a minute while
# covering small (TQL), mid (HWSCRT), and large/phase-heavy (CONDUCT,
# INIT) programs.
ZOO_PROGRAMS = ["TQL", "INIT", "CONDUCT", "HWSCRT"]


def bench_policy_zoo(benchmark, warm_artifacts):
    rows = benchmark(policy_zoo, ZOO_PROGRAMS)
    emit("Ablation: policy zoo", render_policy_zoo(rows))
    for row in rows:
        # OPT is the offline bound: never above LRU at equal allocation.
        assert row.opt_pf <= row.lru_pf
        # CD at its own memory never loses to LRU by more than noise.
        assert row.cd_pf <= row.lru_pf * 1.05 + 5
    benchmark.extra_info["faults"] = {
        r.program: {
            "cd": r.cd_pf,
            "lru": r.lru_pf,
            "fifo": r.fifo_pf,
            "opt": r.opt_pf,
            "ws": r.ws_pf,
            "pff": r.pff_pf,
        }
        for r in rows
    }


def bench_sizing_strategy(benchmark, warm_artifacts):
    rows = benchmark(sizing_strategy_ablation, ["MAIN", "TQL", "FIELD", "HWSCRT"])
    emit("Ablation: sizing strategy", render_sizing_ablation(rows))
    for row in rows:
        # CONSERVATIVE sizing never allocates less, never faults more.
        assert row.conservative_mem >= row.active_mem - 1e-9
        assert row.conservative_pf <= row.active_pf
    benchmark.extra_info["rows"] = {
        r.program: {
            "active": (round(r.active_mem, 2), r.active_pf),
            "conservative": (round(r.conservative_mem, 2), r.conservative_pf),
        }
        for r in rows
    }


def bench_lock_effectiveness(benchmark, warm_artifacts):
    rows = benchmark(lock_ablation, ["MAIN", "FDJAC", "TQL", "HYBRJ"])
    emit("Ablation: LOCK effectiveness", render_lock_ablation(rows))
    # LOCK never increases faults, and saves dramatically on TQL, whose
    # inner-level sets would otherwise churn the D/E vector pages.
    for row in rows:
        assert row.locked_pf <= row.bare_pf
    by_program = {r.program: r for r in rows}
    assert by_program["TQL"].pf_saved > 1000
    benchmark.extra_info["pf_saved"] = {r.program: r.pf_saved for r in rows}
