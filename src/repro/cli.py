"""Command-line interface: ``python -m repro`` / ``cdmm``.

Subcommands
-----------

``analyze <file|workload>``
    Print the loop tree with Λ, Δ, PI, and locality sizes.

``instrument <file|workload>``
    Print the program with ALLOCATE/LOCK/UNLOCK directives interleaved
    (Figure-5c style).

``trace <file|workload>``
    Generate the reference trace and print its summary.

``simulate <file|workload> --policy …``
    Replay the trace under one policy and print PF/MEM/ST.

``table {1,2,3,4,zoo,locks,sizing}``
    Regenerate one of the paper's tables or an ablation.

``lint <file|workload|all> …``
    Run the static checker: paper invariants (Procedure 1, Algorithms
    1/2) and locality hygiene on the program and its directive plan.
    Exit code 1 when any error-level finding is reported.

``run [targets…] --jobs N --resume <run-id>``
    Run an experiment sweep (tables and/or oracle seed batches) as a
    DAG of supervised, retryable jobs; completed jobs checkpoint to a
    JSONL run ledger under ``results/runs/<run-id>/`` so an interrupted
    sweep resumes exactly where it stopped.  ``--chaos`` injects
    deterministic faults for testing the supervisor.

``list``
    List the bundled benchmark workloads.

``verify [--seeds N] [--time-budget S]``
    Run the differential-testing oracle: random loop nests through the
    compiled/interpreted trace paths, the fast/slow metric paths, and
    the policy invariants.  Divergences are shrunk and written to
    ``results/oracle_failures/``.

``serve [--dir D] [--jobs N] [--resume] [--quota T=BYTES …]``
    Run the persistent sweep daemon on a UNIX socket; clients drive it
    with the subcommands below.  SIGTERM drains in-flight attempts and
    exits 143; ``--resume`` picks the journaled queue back up.

``submit / status / results / watch / cancel / shutdown``
    Talk to a running daemon: enqueue sweep targets under a tenant and
    priority, inspect the queue, fetch settled payloads, stream a
    job's live events, cancel, or ask the daemon to drain.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.analysis.locality import analyze_program
from repro.directives import instrument_program, render_instrumented
from repro.frontend.errors import FrontendError
from repro.frontend.parser import parse_source
from repro.tracegen.interpreter import generate_trace
from repro.vm.policies import (
    CDConfig,
    CDPolicy,
    FIFOPolicy,
    LRUPolicy,
    OPTPolicy,
    PFFPolicy,
    WorkingSetPolicy,
)
from repro.vm.simulator import simulate
from repro.workloads import all_workloads, get_workload


def _load_program(spec: str):
    """A workload name or a path to a mini-FORTRAN source file."""
    path = Path(spec)
    if path.exists():
        return parse_source(path.read_text())
    try:
        return get_workload(spec).program()
    except KeyError:
        raise SystemExit(
            f"error: {spec!r} is neither a file nor a bundled workload"
        ) from None


def _replay_trace(spec: str, with_locks: bool):
    """An instrumented trace for a replay command.

    Bundled workloads go through the content-hash artifact cache
    (:func:`repro.experiments.runner.artifacts_for`), so the slow
    tracegen workloads (HYBRJ, TQL) pay their generation cost once per
    cache, not once per invocation.  Source files are always fresh.
    """
    path = Path(spec)
    if not path.exists():
        from repro.experiments.runner import artifacts_for

        try:
            return artifacts_for(spec, with_locks=with_locks).trace
        except KeyError:
            raise SystemExit(
                f"error: {spec!r} is neither a file nor a bundled workload"
            ) from None
    program = parse_source(path.read_text())
    plan = instrument_program(program, with_locks=with_locks)
    return generate_trace(program, plan=plan)


def _cmd_list(_args) -> int:
    for w in all_workloads():
        print(f"{w.name:8s} [{w.origin:8s}] {w.description}")
    return 0


def _cmd_analyze(args) -> int:
    program = _load_program(args.program)
    analysis = analyze_program(program)
    if args.report:
        from repro.analysis.explain import explain_program

        print(explain_program(program, analysis=analysis), end="")
        return 0
    print(f"PROGRAM {program.name}: Δ = {analysis.tree.max_depth}, ", end="")
    print(f"V = {analysis.program_virtual_size} pages")
    for node in analysis.tree.nodes():
        report = analysis.reports[node.loop_id]
        indent = "  " * node.level
        print(
            f"{indent}DO {node.var} (line {report.line}): "
            f"level Λ={report.level}, PI={report.priority_index}, "
            f"X={report.virtual_size} pages"
        )
        if args.verbose:
            for c in report.contributions:
                print(
                    f"{indent}    {c.array}: {c.pages} pages "
                    f"[{c.order.value}, d={c.depth_difference}] ({c.rule})"
                )
    return 0


def _cmd_instrument(args) -> int:
    program = _load_program(args.program)
    plan = instrument_program(program, with_locks=not args.no_locks)
    print(render_instrumented(program, plan), end="")
    return 0


def _cmd_lint(args) -> int:
    from repro.staticcheck import (
        all_rules,
        has_errors,
        lint_program,
        lint_source,
        render_json,
        render_text,
    )

    if args.list_rules:
        for info in all_rules():
            print(
                f"{info.rule_id}  {info.name:22s} {info.severity:8s} "
                f"{info.summary}"
            )
        return 0
    specs = list(args.programs)
    if specs == ["all"]:
        specs = [w.name for w in all_workloads()]
    if not specs:
        raise SystemExit("error: no programs given (or use --list-rules)")
    rule_ids = args.rules.split(",") if args.rules else None
    exit_code = 0
    for spec in specs:
        path = Path(spec)
        if path.exists():
            # Instrumented sources are checked against the plan they
            # carry; plain sources are self-instrumented and checked.
            diagnostics = lint_source(path.read_text(), rule_ids=rule_ids)
            name = str(path)
        else:
            diagnostics = lint_program(_load_program(spec), rule_ids=rule_ids)
            name = spec
        render = render_json if args.json else render_text
        print(render(diagnostics, name), end="")
        if has_errors(diagnostics):
            exit_code = 1
    return exit_code


def _cmd_trace(args) -> int:
    if args.policy is not None:
        return _trace_with_policy(args)
    program = _load_program(args.program)
    plan = None
    if args.directives:
        plan = instrument_program(program)
    trace = generate_trace(program, plan=plan)
    print(trace.summary())
    for array, pages in sorted(trace.footprint_by_array().items()):
        first, count = trace.array_pages[array]
        print(f"  {array:8s} pages {first}..{first + count - 1} ({pages} touched)")
    return 0


def _trace_with_policy(args) -> int:
    """``trace --policy``: replay under a policy with the tracer on,
    then write the event log and/or render a profile report."""
    from repro.obs import (
        Fault,
        JsonlSink,
        RingBufferSink,
        Tracer,
        build_profile,
        render_profile,
    )

    trace = _replay_trace(args.program, args.locks)
    policy = _make_policy(args)
    sample_every = args.sample_every
    if sample_every is None:
        # Auto: ~4096 samples per run keeps event logs a few MB at most.
        sample_every = max(1, len(trace.pages) // 4096)
    ring = RingBufferSink()
    sinks = [ring]
    if args.events:
        sinks.append(JsonlSink(Path(args.events)))
    tracer = Tracer(*sinks)
    try:
        result = simulate(
            trace, policy, tracer=tracer, sample_interval=sample_every
        )
    finally:
        tracer.close()
    event_faults = sum(1 for e in ring.events if isinstance(e, Fault))
    if event_faults != result.page_faults:
        print(
            f"error: event log recorded {event_faults} faults but the "
            f"simulator counted {result.page_faults}",
            file=sys.stderr,
        )
        return 1
    report = render_profile(
        build_profile(ring.events, array_pages=trace.array_pages),
        result=result,
        fmt=args.format,
    )
    if args.report and args.report != "-":
        Path(args.report).parent.mkdir(parents=True, exist_ok=True)
        Path(args.report).write_text(report + "\n")
        print(f"wrote report to {args.report}")
    else:
        print(report)
    if args.events:
        print(f"wrote {ring.total_seen} events to {args.events}")
    return 0


def _make_policy(args):
    name = args.policy.upper()
    if name == "LRU":
        return LRUPolicy(frames=args.frames or 8)
    if name == "FIFO":
        return FIFOPolicy(frames=args.frames or 8)
    if name == "CLOCK":
        from repro.vm.policies import ClockPolicy

        return ClockPolicy(frames=args.frames or 8)
    if name == "OPT":
        return OPTPolicy(frames=args.frames or 8)
    if name == "WS":
        return WorkingSetPolicy(tau=args.tau or 1000)
    if name == "PFF":
        return PFFPolicy(threshold=args.tau or 1000)
    if name == "CD":
        return CDPolicy(
            CDConfig(pi_cap=args.pi_cap, memory_limit=args.memory_limit)
        )
    raise SystemExit(f"error: unknown policy {args.policy!r}")


def _stream_request(args):
    """Translate ``simulate`` policy flags to a streaming request."""
    from repro.vm.stream import StreamRequest

    name = args.policy.upper()
    if name == "LRU":
        return StreamRequest.lru(args.frames or 8)
    if name == "FIFO":
        return StreamRequest.fifo(args.frames or 8)
    if name == "WS":
        return StreamRequest.ws(args.tau or 1000)
    if name == "CD":
        return StreamRequest.cd(
            CDConfig(pi_cap=args.pi_cap, memory_limit=args.memory_limit)
        )
    raise SystemExit(
        f"error: --stream supports LRU, FIFO, WS, and CD (got {args.policy!r})"
    )


def _cmd_simulate(args) -> int:
    trace = _replay_trace(args.program, args.locks)
    if args.stream:
        from repro.vm.stream import BackendUnavailable, stream_simulate

        try:
            result = stream_simulate(
                trace,
                [_stream_request(args)],
                backend=args.backend,
                chunk_size=args.chunk_size,
            )[0]
        except BackendUnavailable as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
        print(result.describe())
        return 0
    policy = _make_policy(args)
    result = simulate(trace, policy)
    print(result.describe())
    if result.swaps or result.denied_requests or result.lock_releases:
        print(
            f"  swaps={result.swaps} denied={result.denied_requests} "
            f"lock_releases={result.lock_releases}"
        )
    return 0


def _cmd_multiprog(args) -> int:
    from repro.experiments.load_control import (
        cliff_report,
        load_control_sweep,
        nest_profiles,
        render_load_control,
        workload_profiles,
    )

    if args.smoke:
        loads = [0.25, 1.0, 4.0]
        nest_seeds = [11, 23, 47]
        workloads: list = []
        frames = 48
        arrival_horizon = 150_000
        run_horizon = 450_000
    else:
        loads = [float(x) for x in args.loads.split(",")]
        nest_seeds = (
            [int(x) for x in args.nest_seeds.split(",")]
            if args.nest_seeds
            else []
        )
        workloads = args.workloads.split(",") if args.workloads else []
        frames = args.frames
        arrival_horizon = args.horizon
        run_horizon = args.run_horizon
    policies = args.policies.split(",")

    profiles = []
    if workloads:
        profiles.extend(workload_profiles(workloads, max_refs=args.max_refs))
    if nest_seeds:
        profiles.extend(nest_profiles(nest_seeds, max_refs=args.max_refs))
    if not profiles:
        # default mix: three benchmarks plus three fuzzer nests
        profiles.extend(
            workload_profiles(("TQL", "FDJAC", "HYBRJ"), max_refs=args.max_refs)
        )
        profiles.extend(nest_profiles((11, 23, 47), max_refs=args.max_refs))

    tracer = None
    sink = None
    if args.events:
        from repro.obs import JsonlSink, Tracer

        sink = JsonlSink(Path(args.events))
        tracer = Tracer(sink)
    try:
        points = load_control_sweep(
            profiles,
            loads=loads,
            policies=policies,
            total_frames=frames,
            cpus=args.cpus,
            arrival_horizon=arrival_horizon,
            run_horizon=run_horizon,
            seed=args.seed,
            tracer=tracer,
        )
    finally:
        if sink is not None:
            sink.close()
    print(render_load_control(points))
    if args.check:
        verdicts = cliff_report(points)
        failures = []
        if "uncontrolled" in policies and not verdicts.get("uncontrolled"):
            failures.append(
                "expected the uncontrolled baseline to hit a thrashing cliff"
            )
        for policy in policies:
            if policy != "uncontrolled" and verdicts.get(policy, False):
                failures.append(f"{policy} control fell off a cliff")
        if failures:
            for f in failures:
                print(f"CHECK FAILED: {f}", file=sys.stderr)
            return 1
        print("load-control checks passed", file=sys.stderr)
    return 0


def _cmd_table(args) -> int:
    import os
    import time

    from repro.engine.jobs import TABLE_RENDERERS, render_table
    from repro.experiments.runner import STATS, warm_for_table

    if args.timelines:
        tdir = Path(args.timelines)
        tdir.mkdir(parents=True, exist_ok=True)
        os.environ["REPRO_TIMELINES_DIR"] = str(tdir)
    if args.backend:
        # resolve eagerly so an unavailable backend fails before any work
        from repro.vm.stream import BackendUnavailable, resolve_backend

        try:
            resolve_backend(args.backend)
        except BackendUnavailable as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
        os.environ["REPRO_BACKEND"] = args.backend
    t0 = time.perf_counter()
    which = args.which.lower()
    if which not in TABLE_RENDERERS:
        raise SystemExit(f"error: unknown table {args.which!r}")
    if args.mode in ("symbolic", "static"):
        if which != "2":
            raise SystemExit(
                f"error: --mode {args.mode} currently supports table 2 only"
            )
        from repro.experiments.table2 import render_table2

        print(render_table2(mode=args.mode))
        if args.stats:
            wall = time.perf_counter() - t0
            print(f"[stats] wall {wall:.2f}s · {STATS.describe()}", file=sys.stderr)
        return 0
    if args.jobs and args.jobs > 1:
        warm_for_table(which, jobs=args.jobs)
    print(render_table(which))
    if args.stats:
        wall = time.perf_counter() - t0
        print(f"[stats] wall {wall:.2f}s · {STATS.describe()}", file=sys.stderr)
    return 0


def _cmd_cache(args) -> int:
    from repro.experiments.runner import cache_dir, cache_info, clear_cache

    action = args.action
    if action == "path":
        cdir = cache_dir()
        print(cdir if cdir is not None else "(disabled)")
    elif action == "info":
        info = cache_info()
        print(f"dir:          {info['dir'] or '(disabled)'}")
        print(f"disk entries: {info['disk_entries']}")
        print(f"disk bytes:   {info['disk_bytes']}")
        if info["quarantined"]:
            print(f"quarantined:  {info['quarantined']} (*.corrupt)")
    elif action == "clear":
        before = cache_info()["disk_entries"]
        clear_cache()
        print(f"removed {before} cached file(s)")
    else:
        raise SystemExit(f"error: unknown cache action {action!r}")
    return 0


def _cmd_curves(args) -> int:
    from repro.experiments.curves import policy_curves

    curves = policy_curves(args.program)
    if args.csv:
        print(curves.to_csv(), end="")
    else:
        print(curves.render())
    return 0


def _cmd_reproduce(args) -> int:
    """Regenerate every table and study, writing one file per artifact."""
    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    from repro.experiments.table1 import render_table1
    from repro.experiments.table2 import render_table2
    from repro.experiments.table3 import render_table3
    from repro.experiments.table4 import render_table4
    from repro.experiments.ablations import (
        render_adaptive_study,
        render_lock_ablation,
        render_policy_zoo,
        render_sizing_ablation,
        render_ws_family,
    )
    from repro.experiments.controllability import render_controllability
    from repro.experiments.geometry import render_geometry
    from repro.experiments.multiprog_study import render_multiprog

    artifacts = [
        ("table1.txt", render_table1),
        ("table2.txt", render_table2),
        ("table3.txt", render_table3),
        ("table4.txt", render_table4),
        ("ablation_zoo.txt", render_policy_zoo),
        ("ablation_sizing.txt", render_sizing_ablation),
        ("ablation_locks.txt", render_lock_ablation),
        ("ablation_ws_family.txt", render_ws_family),
        ("ablation_adaptive.txt", render_adaptive_study),
        ("controllability.txt", render_controllability),
        ("geometry.txt", render_geometry),
        ("multiprogramming.txt", render_multiprog),
    ]
    for filename, render in artifacts:
        text = render()
        (out_dir / filename).write_text(text + "\n")
        print(f"wrote {out_dir / filename}")
        if args.show:
            print(text)
            print()
    return 0


def _cmd_bli(args) -> int:
    from repro.directives import instrument_program
    from repro.vm.bli import BLIAnalyzer, compare_with_predictions

    program = _load_program(args.program)
    plan = instrument_program(program)
    trace = generate_trace(program, plan=plan)
    analyzer = BLIAnalyzer(trace)
    print(analyzer.summary())
    print(compare_with_predictions(trace).describe())
    return 0


def _cmd_run(args) -> int:
    """``repro run``: a supervised, resumable experiment sweep."""
    from repro.engine import ChaosPlan, EngineConfig, new_run_id, run_sweep

    chaos = None
    if args.chaos:
        chaos = ChaosPlan(
            args.chaos, hits=args.chaos_hits, match=args.chaos_match
        )
    config = EngineConfig(
        max_workers=max(1, args.jobs),
        max_retries=args.max_retries,
        timeout=args.timeout,
        chaos=chaos,
    )
    run_id = args.resume or new_run_id()
    try:
        result = run_sweep(
            args.targets,
            run_id=run_id,
            runs_root=Path(args.output),
            resume=args.resume is not None,
            config=config,
            progress=lambda msg: print(msg, flush=True),
        )
    except ValueError as err:
        raise SystemExit(f"error: {err}") from None
    report = result.report
    print(report.summary())
    for job_id, error in sorted(report.failed.items()):
        print(f"  {job_id}: {error}")
    oracle_failures = result.oracle_failures()
    for failure in oracle_failures:
        print(
            f"  oracle seed {failure['seed']}: {failure['check']} — "
            f"{failure['detail']}"
        )
    print(f"run ledger: {result.run_dir / 'ledger.jsonl'}")
    if not report.ok:
        print(
            f"resume with: repro run {' '.join(args.targets)} "
            f"--resume {result.run_id}"
        )
    return 0 if report.ok and not oracle_failures else 1


def _cmd_verify(args) -> int:
    from repro.oracle import verify

    report = verify(
        seeds=args.seeds,
        time_budget=args.time_budget,
        start_seed=args.start_seed,
        out_dir=Path(args.output) if args.output else None,
        shrink=not args.no_shrink,
        engine=args.engine,
        progress=lambda msg: print(msg, flush=True),
    )
    print(report.summary())
    for failure in report.failures:
        print(f"  seed {failure.seed}: {failure.check} — {failure.detail}")
        for path in failure.paths:
            print(f"    {path}")
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    """``repro serve``: the persistent sweep daemon."""
    from repro.engine import EngineConfig
    from repro.service import ServeDaemon, TenantQuotas

    limits = {}
    for spec in args.quota or []:
        tenant, _, raw = spec.partition("=")
        if not tenant or not raw.isdigit():
            raise SystemExit(f"error: bad --quota {spec!r} (want TENANT=BYTES)")
        limits[tenant] = int(raw)
    quotas = TenantQuotas(limits, default_limit=args.default_quota)
    config = EngineConfig(
        max_workers=max(1, args.jobs),
        max_retries=args.max_retries,
        timeout=args.timeout,
    )
    daemon = ServeDaemon(args.dir, config=config, quotas=quotas)
    try:
        return daemon.serve(
            resume=args.resume, announce=lambda msg: print(msg, flush=True)
        )
    except RuntimeError as err:
        raise SystemExit(f"error: {err}") from None


def _client(args):
    from repro.service import ServiceClient

    return ServiceClient(args.dir)


def _service_fail(err) -> int:
    print(f"error: {err}", file=sys.stderr)
    return 1


def _cmd_submit(args) -> int:
    import json

    from repro.service import ServiceError

    try:
        with _client(args) as client:
            reply = client.submit(
                args.targets, tenant=args.tenant, priority=args.priority
            )
            job = reply["job"]
            if args.json:
                print(json.dumps(reply, sort_keys=True))
            else:
                warm = f" ({len(reply['warm'])} warm)" if reply.get("warm") else ""
                print(f"{job}: {len(reply['specs'])} spec(s) queued{warm}")
            if not args.wait:
                return 0
            state = client.wait(job)
            if not args.json:
                print(f"{job}: {state}")
            return 0 if state == "done" else 1
    except ServiceError as err:
        return _service_fail(err)


def _render_job(record: dict) -> str:
    states = record.get("spec_states", {})
    done = sum(1 for s in states.values() if s.get("state") == "done")
    warm = sum(
        1
        for s in states.values()
        if s.get("state") == "done" and s.get("attempts", 0) == 0
    )
    line = (
        f"{record['job']}  {record['tenant']:10s} prio {record['priority']:>3d}  "
        f"{record['state']:9s} {done}/{len(states)} specs"
        + (f" ({warm} warm)" if warm else "")
    )
    if record.get("error"):
        line += f"  [{record['error']}]"
    return line


def _cmd_status(args) -> int:
    import json

    from repro.service import ServiceError

    try:
        with _client(args) as client:
            reply = client.status(args.job)
    except ServiceError as err:
        return _service_fail(err)
    if args.json:
        print(json.dumps(reply, sort_keys=True))
        return 0
    records = [reply["job"]] if args.job else reply.get("jobs", [])
    if not records:
        print("no jobs")
    for record in records:
        print(_render_job(record))
        if args.job:
            for spec_id, s in record.get("spec_states", {}).items():
                detail = f"    {spec_id:24s} {s.get('state', '?'):8s}"
                detail += f" attempts={s.get('attempts', 0)}"
                if s.get("error"):
                    detail += f"  [{s['error']}]"
                print(detail)
    tenants = reply.get("tenants") or {}
    for tenant, usage in tenants.items():
        limit = usage.get("limit_bytes")
        print(
            f"tenant {tenant}: {usage.get('used_bytes', 0)} bytes charged"
            + (f" / {limit}" if limit is not None else "")
        )
    return 0


def _cmd_results(args) -> int:
    import json

    from repro.engine.sweeps import _output_name
    from repro.service import ServiceError

    try:
        with _client(args) as client:
            reply = client.results(args.job)
    except ServiceError as err:
        return _service_fail(err)
    payloads = reply.get("payloads", {})
    if args.output:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        for payload in payloads.values():
            if isinstance(payload, dict) and "text" in payload and "which" in payload:
                path = out_dir / _output_name(payload["which"])
                path.write_text(payload["text"] + "\n")
                print(f"wrote {path}")
        return 0
    if args.json:
        print(json.dumps(reply, sort_keys=True))
        return 0
    for spec_id, payload in payloads.items():
        if isinstance(payload, dict) and "text" in payload:
            print(payload["text"])
        else:
            print(f"{spec_id}: {json.dumps(payload, sort_keys=True)}")
    return 0


def _cmd_watch(args) -> int:
    import json

    from repro.service import ServiceError

    try:
        with _client(args) as client:
            final = "unknown"
            for frame in client.watch(args.job):
                if "done" in frame:
                    final = str(frame.get("state", "unknown"))
                    print(f"{args.job}: {final}")
                else:
                    print(json.dumps(frame.get("event", {}), sort_keys=True))
            return 0 if final == "done" else 1
    except ServiceError as err:
        return _service_fail(err)


def _cmd_cancel(args) -> int:
    from repro.service import ServiceError

    try:
        with _client(args) as client:
            reply = client.cancel(args.job)
    except ServiceError as err:
        return _service_fail(err)
    cancelled = reply.get("cancelled", [])
    shared = "" if cancelled else " (all specs shared or settled)"
    print(f"{reply['job']}: {reply['state']}, {len(cancelled)} spec(s) stopped{shared}")
    return 0


def _cmd_shutdown(args) -> int:
    from repro.service import ServiceError

    try:
        with _client(args) as client:
            client.shutdown()
    except ServiceError as err:
        return _service_fail(err)
    print("daemon draining")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cdmm",
        description=(
            "Compiler Directed Memory Management (Malkawi & Patel, SOSP 1985)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled workloads").set_defaults(
        func=_cmd_list
    )

    p = sub.add_parser("analyze", help="source-level locality analysis")
    p.add_argument("program", help="workload name or source file")
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument(
        "--report", action="store_true", help="emit a markdown analysis report"
    )
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("instrument", help="show inserted directives")
    p.add_argument("program")
    p.add_argument("--no-locks", action="store_true")
    p.set_defaults(func=_cmd_instrument)

    p = sub.add_parser(
        "lint",
        help="static checker: directive invariants and locality hygiene",
    )
    p.add_argument(
        "programs",
        nargs="*",
        help="workload names, source files, or 'all' for every workload",
    )
    p.add_argument("--json", action="store_true", help="emit a JSON report")
    p.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        dest="list_rules",
        help="print the rule catalog and exit",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "trace",
        help="generate a reference trace; with --policy, capture a "
        "structured event log and render a paging profile",
    )
    p.add_argument("program")
    p.add_argument("--directives", action="store_true")
    p.add_argument(
        "--policy",
        default=None,
        help="replay under this policy with event tracing on",
    )
    p.add_argument("--frames", type=int, help="frames for LRU/FIFO/OPT")
    p.add_argument("--tau", type=int, help="window for WS / threshold for PFF")
    p.add_argument("--pi-cap", type=int, dest="pi_cap")
    p.add_argument("--memory-limit", type=int, dest="memory_limit")
    p.add_argument("--locks", action="store_true", help="execute LOCK/UNLOCK")
    p.add_argument(
        "--events", default=None, help="write the event stream as JSONL here"
    )
    p.add_argument(
        "--report",
        default=None,
        help="write the profile report here ('-' or omitted: stdout)",
    )
    p.add_argument(
        "--format",
        choices=["text", "markdown"],
        default="text",
        help="profile report format",
    )
    p.add_argument(
        "--sample-every",
        type=int,
        default=None,
        dest="sample_every",
        help="resident-set sample interval in references "
        "(default: auto, ~4096 samples per run)",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("simulate", help="replay under one policy")
    p.add_argument("program")
    p.add_argument("--policy", default="CD")
    p.add_argument("--frames", type=int, help="frames for LRU/FIFO/OPT")
    p.add_argument("--tau", type=int, help="window for WS / threshold for PFF")
    p.add_argument("--pi-cap", type=int, dest="pi_cap")
    p.add_argument("--memory-limit", type=int, dest="memory_limit")
    p.add_argument("--locks", action="store_true", help="execute LOCK/UNLOCK")
    p.add_argument(
        "--stream",
        action="store_true",
        help="replay through the one-pass streaming engine (LRU/FIFO/WS/CD)",
    )
    p.add_argument(
        "--backend",
        choices=["numpy", "numba", "auto"],
        default=None,
        help="streaming kernel backend (default: REPRO_BACKEND or auto)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        dest="chunk_size",
        help="streaming chunk size in references (default 65536)",
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("table", help="regenerate a paper table or ablation")
    p.add_argument(
        "which",
        help=(
            "1, 2, 3, 4, zoo, locks, sizing, geometry, multiprog, "
            "loadctl, wsfamily, control, or adaptive"
        ),
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="build missing artifacts with this many worker processes",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage wall time and cache hit counts to stderr",
    )
    p.add_argument(
        "--timelines",
        nargs="?",
        const="results/timelines",
        default=None,
        help="persist per-cell CD event timelines (JSONL) under this "
        "directory (default results/timelines)",
    )
    p.add_argument(
        "--backend",
        choices=["numpy", "numba", "auto"],
        default=None,
        help="streaming kernel backend for one-pass replays "
        "(sets REPRO_BACKEND for the run)",
    )
    p.add_argument(
        "--mode",
        choices=["trace", "symbolic", "static"],
        default="trace",
        help="symbolic: derive the table from the run-structured trace "
        "via the weighted analyzers (identical rows, no full replay); "
        "static: derive it from the closed-form static string without "
        "materializing a trace at all",
    )
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser(
        "multiprog",
        help="heavy-traffic load-control sweep: throughput/response vs load",
    )
    p.add_argument(
        "--policies",
        default="uncontrolled,knee,ws,cd",
        help="comma-separated admission policies to sweep",
    )
    p.add_argument(
        "--loads",
        default="0.25,0.5,1.0,2.0,4.0",
        help="comma-separated offered loads (fraction of CPU capacity)",
    )
    p.add_argument("--frames", type=int, default=64, help="shared pool size")
    p.add_argument("--cpus", type=int, default=1)
    p.add_argument("--seed", type=int, default=0, help="arrival-stream seed")
    p.add_argument(
        "--workloads",
        default="",
        help="comma-separated traced benchmark names (default mix if no "
        "--workloads/--nest-seeds given)",
    )
    p.add_argument(
        "--nest-seeds",
        default="",
        dest="nest_seeds",
        help="comma-separated fuzzer seeds for generated nest jobs",
    )
    p.add_argument(
        "--max-refs",
        type=int,
        default=30_000,
        dest="max_refs",
        help="truncate each job's trace to this many references",
    )
    p.add_argument(
        "--horizon",
        type=int,
        default=400_000,
        help="arrival window in virtual time units",
    )
    p.add_argument(
        "--run-horizon",
        type=int,
        default=1_200_000,
        dest="run_horizon",
        help="hard stop for each pool run (virtual time)",
    )
    p.add_argument(
        "--events",
        default=None,
        help="write pool events (Admit/Defer/Suspend/Depart/PoolSample) "
        "to this JSONL file",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the uncontrolled baseline thrashes and every "
        "controlled policy stays flat-topped",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="small fast preset (fuzzer nests only) for CI",
    )
    p.set_defaults(func=_cmd_multiprog)

    p = sub.add_parser(
        "cache", help="inspect or clear the persistent artifact cache"
    )
    p.add_argument("action", choices=["info", "clear", "path"])
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "bli", help="detect locality intervals and compare with predictions"
    )
    p.add_argument("program")
    p.set_defaults(func=_cmd_bli)

    p = sub.add_parser(
        "curves", help="LRU/WS sweep series with CD operating points"
    )
    p.add_argument("program", help="bundled workload name")
    p.add_argument("--csv", action="store_true", help="emit CSV instead of text")
    p.set_defaults(func=_cmd_curves)

    p = sub.add_parser(
        "verify",
        help="run the differential-testing oracle over random loop nests",
    )
    p.add_argument(
        "--seeds", type=int, default=50, help="number of seeds to run"
    )
    p.add_argument(
        "--time-budget",
        type=float,
        default=None,
        dest="time_budget",
        help="stop cleanly after this many seconds (always runs >= 1 seed)",
    )
    p.add_argument(
        "--start-seed",
        type=int,
        default=0,
        dest="start_seed",
        help="first seed (replay a reproducer with --seeds 1 --start-seed N)",
    )
    p.add_argument(
        "-o",
        "--output",
        default=None,
        help="failure-reproducer directory (default results/oracle_failures)",
    )
    p.add_argument(
        "--no-shrink",
        action="store_true",
        dest="no_shrink",
        help="write the original failing source without minimizing it",
    )
    p.add_argument(
        "--engine",
        action="store_true",
        help="also run the engine self-checks (chaos retry/resume, "
        "ledger round-trip, cache self-healing)",
    )
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "run",
        help="run an experiment sweep under supervision: retries, "
        "timeouts, checkpoint/resume, optional chaos",
    )
    p.add_argument(
        "targets",
        nargs="*",
        default=["1", "2", "3", "4"],
        help="tables/ablations (table names) and/or verify[:seeds[:batch]] "
        "(default: tables 1-4)",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="supervised worker processes",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="continue an interrupted run from its ledger",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        dest="max_retries",
        help="extra attempts per job after the first (default 2)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-attempt timeout in seconds (default: none)",
    )
    p.add_argument(
        "--chaos",
        choices=["kill-worker", "inject-exception", "slow-job",
                 "corrupt-cache-entry"],
        default=None,
        help="inject deterministic faults (testing the supervisor)",
    )
    p.add_argument(
        "--chaos-hits",
        type=int,
        default=1,
        dest="chaos_hits",
        help="sabotaged attempts per matching job (default 1)",
    )
    p.add_argument(
        "--chaos-match",
        default="*",
        dest="chaos_match",
        help="fnmatch pattern over job ids the chaos applies to",
    )
    p.add_argument(
        "-o",
        "--output",
        default="results/runs",
        help="runs directory (default results/runs)",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "reproduce",
        help="regenerate every table and study into an output directory",
    )
    p.add_argument("-o", "--output", default="results", help="output directory")
    p.add_argument("--show", action="store_true", help="also print each table")
    p.set_defaults(func=_cmd_reproduce)

    default_dir = "results/service"

    p = sub.add_parser(
        "serve",
        help="run the persistent sweep daemon on a UNIX socket",
    )
    p.add_argument(
        "--dir",
        default=default_dir,
        help=f"service directory: socket, queue journal, ledgers "
        f"(default {default_dir})",
    )
    p.add_argument(
        "-j", "--jobs", type=int, default=2, help="supervised worker processes"
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="pick up an existing queue journal (required if one exists)",
    )
    p.add_argument(
        "--max-retries", type=int, default=2, dest="max_retries",
        help="extra attempts per job after the first (default 2)",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-attempt timeout in seconds (default: none)",
    )
    p.add_argument(
        "--quota",
        action="append",
        metavar="TENANT=BYTES",
        help="artifact-cache byte quota for one tenant (repeatable)",
    )
    p.add_argument(
        "--default-quota",
        type=int,
        default=None,
        dest="default_quota",
        help="quota for tenants without an explicit --quota (default: none)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit", help="enqueue sweep targets on the daemon")
    p.add_argument(
        "targets",
        nargs="+",
        help="tables/ablations and/or verify[:seeds[:batch]], as for 'run'",
    )
    p.add_argument("--dir", default=default_dir, help="service directory")
    p.add_argument("--tenant", default="default", help="tenant id")
    p.add_argument(
        "--priority", type=int, default=0,
        help="scheduling priority (higher launches first)",
    )
    p.add_argument(
        "--wait", action="store_true",
        help="block until the job settles (exit 1 unless it completes)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("status", help="one job's record, or the whole queue")
    p.add_argument("job", nargs="?", default=None, help="service job id")
    p.add_argument("--dir", default=default_dir, help="service directory")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("results", help="fetch a settled job's payloads")
    p.add_argument("job", help="service job id")
    p.add_argument("--dir", default=default_dir, help="service directory")
    p.add_argument(
        "-o", "--output", default=None,
        help="write table payloads as files into this directory",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_results)

    p = sub.add_parser("watch", help="stream a job's engine events live")
    p.add_argument("job", help="service job id")
    p.add_argument("--dir", default=default_dir, help="service directory")
    p.set_defaults(func=_cmd_watch)

    p = sub.add_parser("cancel", help="cancel a queued or running job")
    p.add_argument("job", help="service job id")
    p.add_argument("--dir", default=default_dir, help="service directory")
    p.set_defaults(func=_cmd_cancel)

    p = sub.add_parser("shutdown", help="ask the daemon to drain and exit")
    p.add_argument("--dir", default=default_dir, help="service directory")
    p.set_defaults(func=_cmd_shutdown)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Long sweeps are interrupted on purpose; the engine has already
        # flushed its run ledger and event sinks on the way up.  Exit
        # with the conventional 128+SIGINT instead of a traceback.
        print("\ninterrupted — partial results checkpointed", file=sys.stderr)
        return 130
    except FrontendError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except BaseException as err:
        # SIGTERM surfaces as GracefulExit from the engine/daemon after
        # workers are reaped and the ledger is flushed; exit 128+SIGTERM.
        from repro.engine import GracefulExit

        if isinstance(err, GracefulExit):
            print("\nterminated — partial results checkpointed", file=sys.stderr)
            return GracefulExit.exit_code
        raise


if __name__ == "__main__":
    sys.exit(main())
