"""The Working-Set family the paper's introduction surveys.

The paper positions CD against the whole WS lineage:

* **DWS** — the Damped Working Set [Smit76]: on an interlocality
  transition the plain WS holds both localities for a full window; DWS
  damps this by shrinking the resident set toward the *current* working
  set faster once a fault burst signals a transition.  "the DWS
  outperforms WS by less than 10%" [Grah76].
* **SWS** — the Sampled Working Set [RoDu73]: a cheap realization that
  examines use bits only at sampling interval boundaries instead of on
  every reference.
* **VSWS** — the Variable-interval SWS [FeYi83]: adjusts the sampling
  interval from fault behavior to cut both cost and transition faults
  (parameters M, L, Q: minimum/maximum interval and a fault cap that
  forces early sampling).

These are implemented reference-exactly (per-reference bookkeeping, not
hardware use bits — the simulator's luxury) so their *policy decisions*
match the published definitions while remaining comparable with the
exact WS implementation.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.vm.policies.base import Policy


class DampedWorkingSetPolicy(Policy):
    """WS with damped shrinking at interlocality transitions [Smit76].

    Operates like WS with window τ, but pages are not dropped the
    instant they leave the window: expiry runs only every ``damp``
    references (Smith's modification batches deletions), except that a
    page fault forces an immediate expiry — so during a transition the
    resident set sheds the old locality at the fault, not τ references
    later.
    """

    name = "DWS"

    def __init__(self, tau: int, damp: int = 0):
        if tau < 1:
            raise ValueError("the DWS window must be at least 1")
        if damp < 0:
            raise ValueError("damp must be non-negative")
        self.tau = tau
        #: batching interval for expiry scans; 0 = τ/4 (Smith's guidance
        #: of a fraction of the window)
        self.damp = damp if damp > 0 else max(1, tau // 4)
        self._last_ref: Dict[int, int] = {}
        self._resident: Set[int] = set()
        self._next_scan = 0

    def access(self, page: int, time: int) -> bool:
        fault = page not in self._resident
        self._last_ref[page] = time
        self._resident.add(page)
        if fault or time >= self._next_scan:
            self._expire(time)
            self._next_scan = time + self.damp
        return fault

    def _expire(self, now: int) -> None:
        boundary = now - self.tau
        dead = [p for p, t in self._last_ref.items() if t <= boundary]
        for p in dead:
            del self._last_ref[p]
            self._resident.discard(p)

    @property
    def resident_size(self) -> int:
        return len(self._resident)

    def reset(self) -> None:
        self._last_ref.clear()
        self._resident.clear()
        self._next_scan = 0

    def describe_parameter(self) -> int:
        return self.tau


class SampledWorkingSetPolicy(Policy):
    """The Sampled Working Set [RoDu73].

    Use bits are examined only at sampling-interval boundaries: a page
    is dropped at a sample point when it was not referenced during the
    last ``interval`` references.  Between samples the resident set only
    grows.  With ``interval = 1`` SWS degenerates to exact WS with
    τ = 1-interval granularity.
    """

    name = "SWS"

    def __init__(self, interval: int):
        if interval < 1:
            raise ValueError("the sampling interval must be at least 1")
        self.interval = interval
        self._resident: Set[int] = set()
        self._used: Set[int] = set()  # use bits since the last sample
        self._next_sample = 0

    def access(self, page: int, time: int) -> bool:
        if time >= self._next_sample:
            self._sample(time)
        fault = page not in self._resident
        self._resident.add(page)
        self._used.add(page)
        return fault

    def _sample(self, now: int) -> None:
        if self._next_sample > 0:  # skip the degenerate first boundary
            self._resident = set(self._used)
        self._used = set()
        self._next_sample = now + self.interval

    @property
    def resident_size(self) -> int:
        return len(self._resident)

    def reset(self) -> None:
        self._resident.clear()
        self._used.clear()
        self._next_sample = 0

    def describe_parameter(self) -> int:
        return self.interval


class VariableSampledWorkingSetPolicy(Policy):
    """VSWS: the Variable-Interval Sampled Working Set [FeYi83].

    Three parameters control the sampling interval:

    * ``m_min`` — minimum time between samples (cost control);
    * ``l_max`` — maximum time between samples (staleness control);
    * ``q_faults`` — if ``q_faults`` page faults accumulate before
      ``m_min`` elapses the sample fires as soon as ``m_min`` allows,
      catching interlocality transitions early.

    At each sample, pages unreferenced since the previous sample are
    dropped (as in SWS).
    """

    name = "VSWS"

    def __init__(self, m_min: int, l_max: int, q_faults: int):
        if not 1 <= m_min <= l_max:
            raise ValueError("need 1 <= m_min <= l_max")
        if q_faults < 1:
            raise ValueError("q_faults must be at least 1")
        self.m_min = m_min
        self.l_max = l_max
        self.q_faults = q_faults
        self._resident: Set[int] = set()
        self._used: Set[int] = set()
        self._last_sample = 0
        self._faults_since_sample = 0
        self._started = False

    def access(self, page: int, time: int) -> bool:
        elapsed = time - self._last_sample
        due = (
            elapsed >= self.l_max
            or (elapsed >= self.m_min and self._faults_since_sample >= self.q_faults)
        )
        if due:
            self._sample(time)
        fault = page not in self._resident
        self._resident.add(page)
        self._used.add(page)
        if fault:
            self._faults_since_sample += 1
        return fault

    def _sample(self, now: int) -> None:
        if self._started:
            self._resident = set(self._used)
        self._started = True
        self._used = set()
        self._last_sample = now
        self._faults_since_sample = 0

    @property
    def resident_size(self) -> int:
        return len(self._resident)

    def reset(self) -> None:
        self._resident.clear()
        self._used.clear()
        self._last_sample = 0
        self._faults_since_sample = 0
        self._started = False

    def describe_parameter(self) -> int:
        return self.l_max
