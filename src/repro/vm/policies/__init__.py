"""Page-replacement policies for the VM simulator."""

from repro.vm.policies.base import Policy
from repro.vm.policies.cd import CDConfig, CDPolicy
from repro.vm.policies.cd_adaptive import AdaptiveCDPolicy
from repro.vm.policies.clock import ClockPolicy
from repro.vm.policies.fifo import FIFOPolicy
from repro.vm.policies.lru import LRUPolicy
from repro.vm.policies.opt import OPTPolicy
from repro.vm.policies.pff import PFFPolicy
from repro.vm.policies.ws import WorkingSetPolicy
from repro.vm.policies.ws_family import (
    DampedWorkingSetPolicy,
    SampledWorkingSetPolicy,
    VariableSampledWorkingSetPolicy,
)

__all__ = [
    "AdaptiveCDPolicy",
    "CDConfig",
    "CDPolicy",
    "ClockPolicy",
    "DampedWorkingSetPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "OPTPolicy",
    "PFFPolicy",
    "Policy",
    "SampledWorkingSetPolicy",
    "VariableSampledWorkingSetPolicy",
    "WorkingSetPolicy",
]
