"""Adaptive CD: online directive-set selection (an extension study).

The paper selects a program's directive set *before* execution (Table 1
reruns MAIN with four different sets) and leaves the choice to the
multiprogramming OS.  This extension asks: can the OS pick the level
online, from fault-rate feedback, without being told?

The policy learns a *level preference per directive site* (per loop):
directive sites re-execute on every enclosing iteration, so each site
accumulates evidence quickly.  When control returns to a site, the
interval since its last execution is judged:

* inter-fault time below ``raise_threshold`` references → that loop's
  granted locality didn't fit → raise the site's level (take the next
  larger request next time);
* a fault-free interval that also left most of the grant *unused*
  (peak residency under half the target) → memory went idle → lower it.
  Judging utilization rather than fault rate alone prevents the obvious
  oscillation where a successful raise is immediately "rewarded" with a
  drop.

Grants use the site's current level: the largest request with
``PI ≤ level[site]``.  On phase-varying programs this lands near the
best static set without being told; the ablation benchmark quantifies
the gap.
"""

from __future__ import annotations

from typing import Optional

from repro.tracegen.events import DirectiveEvent, DirectiveKind
from repro.vm.policies.cd import CDConfig, CDPolicy


class AdaptiveCDPolicy(CDPolicy):
    """CD with per-site, fault-rate-steered directive-level selection."""

    name = "CD-A"

    def __init__(
        self,
        raise_threshold: int = 50,
        min_evidence: int = 30,
        initial_level: int = 1,
        memory_limit: Optional[int] = None,
    ):
        """``raise_threshold`` is the inter-fault time (in references)
        below which a grant is judged too small.  Tuned empirically over
        the nine benchmarks: 50 references balances reacting to genuine
        thrash against over-reacting to transition faults (a threshold
        near the 2000-reference fault service over-raises on every
        phase change).  ``min_evidence`` is the minimum interval length
        judged at all."""
        if raise_threshold < 1:
            raise ValueError("raise_threshold must be >= 1")
        if min_evidence < 1:
            raise ValueError("min_evidence must be >= 1")
        if initial_level < 1:
            raise ValueError("initial_level must be >= 1")
        super().__init__(CDConfig(pi_cap=initial_level, memory_limit=memory_limit))
        self.raise_threshold = raise_threshold
        self.min_evidence = min_evidence
        self._initial_level = initial_level
        self._level_by_site: dict = {}
        self._refs = 0
        self._faults = 0
        self._peak_resident = 0
        #: (site, refs-at-grant, faults-at-grant, max PI) of the live grant
        self._live_grant: Optional[tuple] = None
        self.level_raises = 0
        self.level_drops = 0

    def access(self, page: int, time: int) -> bool:
        fault = super().access(page, time)
        self._refs += 1
        if fault:
            self._faults += 1
        if self.resident_size > self._peak_resident:
            self._peak_resident = self.resident_size
        return fault

    def on_directive(self, event: DirectiveEvent) -> None:
        if event.kind is DirectiveKind.ALLOCATE:
            self._judge_previous_grant()
            level = self._level_by_site.get(event.site, self._initial_level)
            self.config = CDConfig(
                pi_cap=level,
                memory_limit=self.config.memory_limit,
                min_allocation=self.config.min_allocation,
                honor_locks=self.config.honor_locks,
            )
            max_level = max(r.priority_index for r in event.requests)
            self._peak_resident = self.resident_size
            self._live_grant = (event.site, self._refs, self._faults, max_level)
        super().on_directive(event)

    def _judge_previous_grant(self) -> None:
        """Steer the previous site's level from its interval outcome."""
        if self._live_grant is None:
            return
        site, refs_at, faults_at, max_level = self._live_grant
        refs = self._refs - refs_at
        faults = self._faults - faults_at
        if refs < self.min_evidence:
            return  # too little evidence; keep the level
        interfault = refs / faults if faults else float("inf")
        level = self._level_by_site.get(site, self._initial_level)
        if interfault < self.raise_threshold and level < max_level:
            self._level_by_site[site] = level + 1
            self.level_raises += 1
            self._emit_level_change(site, level, level + 1)
        elif (
            faults == 0
            and level > 1
            and self._peak_resident * 2 < self.allocation_target
        ):
            # Fault-free *and* mostly idle: release the outer grant.
            self._level_by_site[site] = level - 1
            self.level_drops += 1
            self._emit_level_change(site, level, level - 1)

    def _emit_level_change(self, site: int, old: int, new: int) -> None:
        if self.tracer is not None:
            from repro.obs.events import LevelChange

            self.tracer.emit(
                LevelChange(
                    time=self._now, site=site, old_level=old, new_level=new
                )
            )

    def reset(self) -> None:
        super().reset()
        self.config = CDConfig(
            pi_cap=self._initial_level, memory_limit=self.config.memory_limit
        )
        self._level_by_site = {}
        self._refs = 0
        self._faults = 0
        self._peak_resident = 0
        self._live_grant = None
        self.level_raises = 0
        self.level_drops = 0

    def describe_parameter(self) -> Optional[int]:
        return None  # the level varies by site; no single parameter
