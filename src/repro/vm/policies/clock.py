"""CLOCK (second chance): the standard cheap LRU approximation.

Not named in the paper, but it is what the era's real systems (VAX/VMS
descendants, 4BSD) actually shipped instead of true LRU; the policy zoo
uses it to show CD's margin against a *deployable* static baseline, not
just the idealized LRU.

A circular list of frames with one use bit each: the hand sweeps,
clearing use bits, and evicts the first page whose bit is already
clear.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.vm.policies.base import Policy


class ClockPolicy(Policy):
    """Fixed-allocation second-chance replacement."""

    name = "CLOCK"

    def __init__(self, frames: int):
        if frames < 1:
            raise ValueError("CLOCK needs at least one frame")
        self.frames = frames
        self._pages: List[Optional[int]] = []
        self._use_bit: List[bool] = []
        self._where: Dict[int, int] = {}
        self._hand = 0

    def access(self, page: int, time: int) -> bool:
        slot = self._where.get(page)
        if slot is not None:
            self._use_bit[slot] = True
            return False
        if len(self._pages) < self.frames:
            self._where[page] = len(self._pages)
            self._pages.append(page)
            self._use_bit.append(True)
            return True
        self._evict_and_place(page)
        return True

    def _evict_and_place(self, page: int) -> None:
        while True:
            if self._use_bit[self._hand]:
                self._use_bit[self._hand] = False
                self._hand = (self._hand + 1) % self.frames
                continue
            victim = self._pages[self._hand]
            del self._where[victim]
            self._pages[self._hand] = page
            self._use_bit[self._hand] = True
            self._where[page] = self._hand
            self._hand = (self._hand + 1) % self.frames
            return

    @property
    def resident_size(self) -> int:
        return len(self._where)

    def reset(self) -> None:
        self._pages.clear()
        self._use_bit.clear()
        self._where.clear()
        self._hand = 0

    def describe_parameter(self) -> int:
        return self.frames
