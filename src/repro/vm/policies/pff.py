"""Page Fault Frequency (Chu & Opderbeck 1972) — dynamic baseline.

The classic PFF rule with threshold ``T``: on a fault at time ``t``,

* if the inter-fault interval ``t − t_last_fault`` is *smaller* than
  ``T`` (faulting too often), grow the resident set by adding the page;
* otherwise shrink: keep only the pages referenced since the last fault
  (plus the faulting page).

Between faults the resident set only grows by used bits; the paper
cites PFF as "cheaper to implement but has poorer performance than the
WS", and notes its anomalous behavior [FrGG78] — both visible in the
ablation benchmarks.
"""

from __future__ import annotations

from typing import Set

from repro.vm.policies.base import Policy


class PFFPolicy(Policy):
    """Page-fault-frequency variable-allocation policy."""

    name = "PFF"

    def __init__(self, threshold: int):
        if threshold < 1:
            raise ValueError("the PFF threshold must be at least 1")
        self.threshold = threshold
        self._resident: Set[int] = set()
        self._used_since_fault: Set[int] = set()
        self._last_fault_time: int = -(10**18)

    def access(self, page: int, time: int) -> bool:
        if page in self._resident:
            self._used_since_fault.add(page)
            return False
        interval = time - self._last_fault_time
        if interval >= self.threshold:
            # Faulting slowly: shrink to the pages with the use bit set.
            if self.tracer is not None:
                from repro.obs.events import Evict

                for victim in sorted(self._resident - self._used_since_fault):
                    self.tracer.emit(
                        Evict(time=time, page=victim, reason="pff-shrink")
                    )
            self._resident = set(self._used_since_fault)
        self._resident.add(page)
        self._used_since_fault = {page}
        self._last_fault_time = time
        return True

    @property
    def resident_size(self) -> int:
        return len(self._resident)

    def reset(self) -> None:
        self._resident.clear()
        self._used_since_fault.clear()
        self._last_fault_time = -(10**18)

    def describe_parameter(self) -> int:
        return self.threshold
