"""First-In First-Out with a fixed partition (static baseline).

Included for the policy-zoo ablation; FIFO is the classic static policy
the paper's introduction names alongside LRU, and it exhibits Belady's
anomaly, which the property tests demonstrate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Set

from repro.vm.policies.base import Policy


class FIFOPolicy(Policy):
    """Fixed-allocation FIFO replacement."""

    name = "FIFO"

    def __init__(self, frames: int):
        if frames < 1:
            raise ValueError("FIFO needs at least one frame")
        self.frames = frames
        self._queue: Deque[int] = deque()
        self._resident: Set[int] = set()

    def access(self, page: int, time: int) -> bool:
        if page in self._resident:
            return False
        if len(self._resident) >= self.frames:
            victim = self._queue.popleft()
            self._resident.discard(victim)
        self._queue.append(page)
        self._resident.add(page)
        return True

    @property
    def resident_size(self) -> int:
        return len(self._resident)

    def reset(self) -> None:
        self._queue.clear()
        self._resident.clear()

    def describe_parameter(self) -> int:
        return self.frames
