"""Policy protocol for the event-driven simulator.

A policy is a mutable object consumed by :func:`repro.vm.simulator.simulate`:

* ``access(page, time)`` services one reference and reports whether it
  faulted;
* ``resident_size`` is the current resident-set size (read after every
  reference to integrate MEM/ST);
* ``on_directive(event)`` receives ALLOCATE/LOCK/UNLOCK events (only the
  CD policy reacts; the default ignores them);
* ``reset()`` returns the policy to its initial state so one instance
  can replay several traces.
"""

from __future__ import annotations

import abc

from repro.tracegen.events import DirectiveEvent


class Policy(abc.ABC):
    """Base class for page-replacement policies."""

    #: short name used in reports ("LRU", "WS", "CD", …)
    name: str = "?"

    #: optional :class:`repro.obs.Tracer`; None (the default) keeps every
    #: hot path free of emission work beyond one attribute test on the
    #: fault/eviction branches.  :func:`repro.vm.simulator.simulate`
    #: installs its tracer here for the duration of a replay.
    tracer = None

    @abc.abstractmethod
    def access(self, page: int, time: int) -> bool:
        """Service a reference to ``page`` at virtual reference index
        ``time``; return True when it page-faulted."""

    @property
    @abc.abstractmethod
    def resident_size(self) -> int:
        """Current number of resident pages."""

    def on_directive(self, event: DirectiveEvent) -> None:
        """Receive a directive event (default: ignore)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all state, ready to replay another trace."""

    def describe_parameter(self):
        """The policy's control parameter, for result records (or None)."""
        return None
