"""Belady's MIN (OPT): the offline-optimal fixed-partition policy.

Not part of the paper's comparison tables, but the natural upper bound
for the ablation benchmarks (the paper cites [AhDU71] and DMIN
[BDMS81]).  OPT requires the whole future reference string; the
simulator calls :meth:`prepare` before replay.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set

import numpy as np

from repro.vm.policies.base import Policy


class OPTPolicy(Policy):
    """Fixed-allocation optimal replacement (evict farthest next use)."""

    name = "OPT"

    def __init__(self, frames: int):
        if frames < 1:
            raise ValueError("OPT needs at least one frame")
        self.frames = frames
        self._next_use: np.ndarray = np.empty(0, dtype=np.int64)
        self._resident: Set[int] = set()
        #: max-heap of (-next_use_time, page) — entries may be stale and
        #: are validated against ``_page_next`` on pop
        self._heap: List = []
        self._page_next: Dict[int, int] = {}
        self._prepared = False

    def prepare(self, pages: np.ndarray) -> None:
        """Precompute, for each position, the next position at which the
        same page is referenced (``len(pages)`` when never again)."""
        n = len(pages)
        next_use = np.empty(n, dtype=np.int64)
        last_seen: Dict[int, int] = {}
        infinity = n
        for i in range(n - 1, -1, -1):
            page = int(pages[i])
            next_use[i] = last_seen.get(page, infinity)
            last_seen[page] = i
        self._next_use = next_use
        self._prepared = True

    def access(self, page: int, time: int) -> bool:
        if not self._prepared:
            raise RuntimeError("OPTPolicy.prepare(pages) must run before replay")
        upcoming = int(self._next_use[time])
        if page in self._resident:
            self._page_next[page] = upcoming
            heapq.heappush(self._heap, (-upcoming, page))
            return False
        if len(self._resident) >= self.frames:
            self._evict()
        self._resident.add(page)
        self._page_next[page] = upcoming
        heapq.heappush(self._heap, (-upcoming, page))
        return True

    def _evict(self) -> None:
        while self._heap:
            neg_next, page = heapq.heappop(self._heap)
            if page in self._resident and self._page_next.get(page) == -neg_next:
                self._resident.discard(page)
                del self._page_next[page]
                return
        raise RuntimeError("eviction requested with empty heap")  # pragma: no cover

    @property
    def resident_size(self) -> int:
        return len(self._resident)

    def reset(self) -> None:
        self._resident.clear()
        self._heap.clear()
        self._page_next.clear()
        self._prepared = False

    def describe_parameter(self) -> int:
        return self.frames
