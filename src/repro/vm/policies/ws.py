"""Denning's Working Set policy (the paper's dynamic baseline).

``W(t, τ)`` is the set of pages referenced in the last ``τ`` references
(window inclusive of the current reference).  A page faults when it is
not in the working set; pages leave the set when their last reference
falls out of the window.  "The WS parameter, the window size τ, is
varied between 1 and some integer K ≤ R."
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from repro.vm.policies.base import Policy


class WorkingSetPolicy(Policy):
    """Exact working-set simulation with window ``tau``."""

    name = "WS"

    def __init__(self, tau: int):
        if tau < 1:
            raise ValueError("the WS window must be at least 1")
        self.tau = tau
        self._last_ref: Dict[int, int] = {}
        self._window: Deque[Tuple[int, int]] = deque()  # (time, page)

    def access(self, page: int, time: int) -> bool:
        # Fault test: the page is absent from W(t−1, τ), i.e. its backward
        # inter-reference gap exceeds τ.
        previous = self._last_ref.get(page)
        fault = previous is None or (time - previous) > self.tau
        self._last_ref[page] = time
        self._window.append((time, page))
        self._expire(time)
        return fault

    def _expire(self, now: int) -> None:
        """Keep exactly W(now, τ): pages last referenced in (now−τ, now]."""
        boundary = now - self.tau  # last reference <= boundary has expired
        window = self._window
        last_ref = self._last_ref
        while window and window[0][0] <= boundary:
            when, page = window.popleft()
            if last_ref.get(page) == when:
                del last_ref[page]
                if self.tracer is not None:
                    from repro.obs.events import Evict

                    self.tracer.emit(
                        Evict(time=now, page=page, reason="window")
                    )

    @property
    def resident_size(self) -> int:
        return len(self._last_ref)

    def reset(self) -> None:
        self._last_ref.clear()
        self._window.clear()

    def describe_parameter(self) -> int:
        return self.tau
