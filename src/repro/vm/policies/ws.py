"""Denning's Working Set policy (the paper's dynamic baseline).

``W(t, τ)`` is the set of pages referenced in the last ``τ`` references
(window inclusive of the current reference).  A page faults when it is
not in the working set; pages leave the set when their last reference
falls out of the window.  "The WS parameter, the window size τ, is
varied between 1 and some integer K ≤ R."

Expiry is incremental: a ring of ``τ`` slots records which page was
referenced at each time modulo ``τ``.  With consecutive time steps the
cursor's current slot holds exactly the reference from ``t − τ`` — the
one leaving the window now — so each access is one list read and one
ledger probe, with no window rescan, no per-access tuple boxing, and no
modulo in the hot path.  A slot's page is evicted only when the
last-use ledger confirms its most recent reference has really left the
window (``last_ref == t − τ``); later re-references keep it resident.
Non-consecutive time steps (direct API use) fall back to a full resync.
"""

from __future__ import annotations

from typing import Dict, List

from repro.vm.policies.base import Policy


class WorkingSetPolicy(Policy):
    """Exact working-set simulation with window ``tau``."""

    name = "WS"

    def __init__(self, tau: int):
        if tau < 1:
            raise ValueError("the WS window must be at least 1")
        self.tau = tau
        self._last_ref: Dict[int, int] = {}
        self._ring: List[int] = []  # page referenced at time t, by t % tau
        self._slot = 0  # ring position of the next (current) time step
        self._time = -1  # time of the previous access

    def access(self, page: int, time: int) -> bool:
        # Fault test: the page is absent from W(t−1, τ), i.e. its backward
        # inter-reference gap exceeds τ.
        last_ref = self._last_ref
        previous = last_ref.get(page)
        tau = self.tau
        fault = previous is None or time - previous > tau
        last_ref[page] = time
        if time != self._time + 1:
            self._resync(time)
        self._time = time
        ring = self._ring
        if len(ring) < tau:
            # growth phase: nothing can expire before time τ, so the ring
            # fills to τ slots without ever examining an occupant
            ring.append(page)
            return fault
        slot = self._slot
        old = ring[slot]
        if old >= 0 and last_ref[old] == time - tau:
            del last_ref[old]
            if self.tracer is not None:
                from repro.obs.events import Evict

                self.tracer.emit(Evict(time=time, page=old, reason="window"))
        ring[slot] = page
        slot += 1
        self._slot = 0 if slot == tau else slot
        return fault

    def _resync(self, time: int) -> None:
        """Catch up after a non-consecutive time step (direct API use).

        The simulators always advance time by one, so this never runs on
        the replay paths; it exists so out-of-band ``access`` calls keep
        the ledger and ring consistent.  The current page is already in
        the ledger when this runs.
        """
        tau = self.tau
        last_ref = self._last_ref
        boundary = time - tau
        if boundary > 0:
            expired = [p for p, when in last_ref.items() if when < boundary]
            for p in expired:
                del last_ref[p]
                if self.tracer is not None:
                    from repro.obs.events import Evict

                    self.tracer.emit(
                        Evict(time=time, page=p, reason="window")
                    )
        ring = self._ring
        if len(ring) < tau:
            ring.extend([-1] * (tau - len(ring)))
        else:
            for i in range(tau):
                ring[i] = -1
        for p, when in last_ref.items():
            ring[when % tau] = p
        self._slot = time % tau

    @property
    def resident_size(self) -> int:
        return len(self._last_ref)

    def reset(self) -> None:
        self._last_ref.clear()
        self._ring = []
        self._slot = 0
        self._time = -1

    def describe_parameter(self) -> int:
        return self.tau
