"""The Compiler Directed (CD) memory management policy — Section 4.

The policy is driven by the directive events in the trace (Figure 6):

* **ALLOCATE ((PI1,X1) else (PI2,X2) else …)** — grant the first (i.e.
  largest, outermost) affordable request: ``X1`` pages if available,
  else ``X2``, …  When nothing is affordable and the smallest priority
  index in the list is 1, the OS suspends/swaps (counted in ``swaps``;
  the allocation falls back to what fits).  When the smallest PI is > 1
  the program simply continues with its current allocation until the
  next directive.
* **LOCK (PJ, Y…)** — soft-pin pages: they are skipped by replacement.
  Re-executing the LOCK at the same site moves the pin to the new pages.
  Under memory pressure the OS may release pins without an UNLOCK,
  highest PJ first ("pages with higher PJ values have lower priority and
  they are unlocked first").
* **UNLOCK (Y…)** — drop the listed pins.

Within its current allocation the process replaces LRU among unlocked
resident pages.  A grant smaller than the current allocation evicts
down immediately — CD "dynamically allocates to a program the space it
requires as specified by the received directive".

The ``CDConfig.pi_cap`` knob selects which *set of directives* executes,
reproducing the paper's reruns (MAIN1 = outer-level directives = no cap;
MAIN3 = inner-level directives = cap 1): only requests with
``PI ≤ pi_cap`` are considered.  ``memory_limit`` models the physically
available memory (None = the paper's uniprogramming assumption of no
physical limit).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.tracegen.events import DirectiveEvent, DirectiveKind
from repro.vm.policies.base import Policy


@dataclass(frozen=True)
class CDConfig:
    """Run-time configuration of the CD policy.

    ``pi_cap`` — honor only ALLOCATE requests with ``PI ≤ pi_cap``
    (None = all requests; 1 = innermost-only, the paper's "directives
    inserted at the lower levels").
    ``memory_limit`` — physically available pages (None = unlimited).
    ``min_allocation`` — the system-default minimum allocation.
    ``honor_locks`` — process LOCK/UNLOCK events (off for the paper's
    main experiments, which study ALLOCATE alone).
    """

    pi_cap: Optional[int] = None
    memory_limit: Optional[int] = None
    min_allocation: int = 1
    honor_locks: bool = True

    def __post_init__(self) -> None:
        if self.pi_cap is not None and self.pi_cap < 1:
            raise ValueError("pi_cap must be >= 1")
        if self.memory_limit is not None and self.memory_limit < 1:
            raise ValueError("memory_limit must be >= 1")
        if self.min_allocation < 1:
            raise ValueError("min_allocation must be >= 1")

    def label(self) -> str:
        parts = []
        if self.pi_cap is not None:
            parts.append(f"pi<={self.pi_cap}")
        if self.memory_limit is not None:
            parts.append(f"mem<={self.memory_limit}")
        return "CD(" + ", ".join(parts) + ")" if parts else "CD"


class CDPolicy(Policy):
    """Compiler-directed allocation with LRU replacement inside it."""

    name = "CD"

    def __init__(self, config: Optional[CDConfig] = None):
        self.config = config or CDConfig()
        self._target = self.config.min_allocation
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self._locked_site_of: Dict[int, int] = {}  # page -> site
        self._site_pages: Dict[int, Set[int]] = {}  # site -> pages
        self._site_pj: Dict[int, int] = {}
        self._locked_resident = 0
        self._now = 0  # virtual time of the last access/directive (tracing)
        self.swaps = 0
        self.denied_requests = 0
        self.lock_releases = 0

    # -- Policy interface ---------------------------------------------------

    def access(self, page: int, time: int) -> bool:
        resident = self._resident
        if page in resident:
            resident.move_to_end(page)
            return False
        self._now = time
        resident[page] = None
        if page in self._locked_site_of:
            self._locked_resident += 1
        self._shrink_unlocked_to(self._target, exclude=page)
        self._enforce_memory_limit(exclude=page)
        return True

    @property
    def resident_size(self) -> int:
        return len(self._resident)

    @property
    def allocation_target(self) -> int:
        return self._target

    @property
    def locked_page_count(self) -> int:
        return len(self._locked_site_of)

    def reset(self) -> None:
        self._target = self.config.min_allocation
        self._resident.clear()
        self._locked_site_of.clear()
        self._site_pages.clear()
        self._site_pj.clear()
        self._locked_resident = 0
        self._now = 0
        self.swaps = 0
        self.denied_requests = 0
        self.lock_releases = 0

    def describe_parameter(self) -> Optional[int]:
        return self.config.pi_cap

    # -- directives -----------------------------------------------------------

    def on_directive(self, event: DirectiveEvent) -> None:
        self._now = event.position
        if event.kind is DirectiveKind.ALLOCATE:
            self._process_allocate(event)
        elif event.kind is DirectiveKind.LOCK:
            if self.config.honor_locks:
                self._process_lock(event)
        elif event.kind is DirectiveKind.UNLOCK:
            if self.config.honor_locks:
                self._process_unlock(event)

    def _process_allocate(self, event: DirectiveEvent) -> None:
        cap = self.config.pi_cap
        limit = self.config.memory_limit
        tracer = self.tracer
        if tracer is not None:
            from repro.obs import events as obs

            tracer.emit(
                obs.AllocateRequest(
                    time=event.position,
                    site=event.site,
                    requests=tuple(
                        (r.priority_index, r.pages) for r in event.requests
                    ),
                )
            )
        eligible = [
            r for r in event.requests if cap is None or r.priority_index <= cap
        ]
        if not eligible:
            # Nothing at or below the cap: the innermost request is the
            # program's hard minimum and is always considered.
            eligible = [event.requests[-1]]
        granted = None
        granted_pi = 0
        for request in eligible:
            if limit is None or request.pages <= limit:
                granted = request.pages
                granted_pi = request.priority_index
                break
            self.denied_requests += 1
            if tracer is not None:
                tracer.emit(
                    obs.AllocateDeny(
                        time=event.position,
                        site=event.site,
                        pages=request.pages,
                        priority_index=request.priority_index,
                        reason="over-limit",
                    )
                )
        if granted is None:
            innermost = eligible[-1]
            if innermost.priority_index > 1:
                # An outer-level locality: keep the current allocation and
                # wait for a deeper directive (Figure 6's "continue").
                if tracer is not None:
                    tracer.emit(
                        obs.AllocateDeny(
                            time=event.position,
                            site=event.site,
                            pages=innermost.pages,
                            priority_index=innermost.priority_index,
                            reason="deferred",
                        )
                    )
                return
            # PI = 1 and no space: suspend/swap.  In uniprogramming we
            # count the swap and run with whatever memory exists.
            self.swaps += 1
            if tracer is not None:
                tracer.emit(obs.Suspend(time=event.position, reason="swap"))
            granted = limit
            granted_pi = innermost.priority_index
        self._target = max(granted, self.config.min_allocation)
        if tracer is not None:
            tracer.emit(
                obs.AllocateGrant(
                    time=event.position,
                    site=event.site,
                    pages=granted,
                    priority_index=granted_pi,
                    target=self._target,
                )
            )
        self._shrink_unlocked_to(self._target)
        self._enforce_memory_limit()

    def _process_lock(self, event: DirectiveEvent) -> None:
        site = event.site
        # A re-executed LOCK supersedes the pages it pinned previously.
        self._release_site(site, count_as_release=False)
        pages: Set[int] = set()
        for page in event.lock_pages:
            if page in self._locked_site_of:
                continue  # already pinned by another site; leave it there
            self._locked_site_of[page] = site
            pages.add(page)
            if page in self._resident:
                self._locked_resident += 1
        if pages:
            self._site_pages[site] = pages
            self._site_pj[site] = event.priority_index
            if self.tracer is not None:
                from repro.obs import events as obs

                self.tracer.emit(
                    obs.Lock(
                        time=event.position,
                        site=site,
                        pages=tuple(sorted(pages)),
                        priority_index=event.priority_index,
                    )
                )
        self._enforce_memory_limit()

    def _process_unlock(self, event: DirectiveEvent) -> None:
        unpinned = []
        for page in event.lock_pages:
            site = self._locked_site_of.pop(page, None)
            if site is None:
                continue
            unpinned.append(page)
            if page in self._resident:
                self._locked_resident -= 1
            site_set = self._site_pages.get(site)
            if site_set is not None:
                site_set.discard(page)
                if not site_set:
                    del self._site_pages[site]
                    self._site_pj.pop(site, None)
        if unpinned and self.tracer is not None:
            from repro.obs import events as obs

            self.tracer.emit(
                obs.Unlock(
                    time=event.position,
                    site=event.site,
                    pages=tuple(sorted(unpinned)),
                )
            )
        self._shrink_unlocked_to(self._target)

    # -- internals ---------------------------------------------------------------

    def _unlocked_resident(self) -> int:
        return len(self._resident) - self._locked_resident

    def _shrink_unlocked_to(self, limit: int, exclude: Optional[int] = None) -> None:
        """Evict LRU unlocked pages until at most ``limit`` remain.

        ``exclude`` protects the page being referenced right now — the
        process cannot run without it resident.
        """
        while self._unlocked_resident() > limit:
            if not self._evict_one_unlocked(exclude, reason="shrink"):
                break  # nothing evictable (everything is pinned)

    def _evict_one_unlocked(
        self, exclude: Optional[int] = None, reason: str = "capacity"
    ) -> bool:
        for page in self._resident:  # iterates LRU -> MRU
            if page not in self._locked_site_of and page != exclude:
                del self._resident[page]
                if self.tracer is not None:
                    from repro.obs.events import Evict

                    self.tracer.emit(
                        Evict(time=self._now, page=page, reason=reason)
                    )
                return True
        return False

    def _enforce_memory_limit(self, exclude: Optional[int] = None) -> None:
        limit = self.config.memory_limit
        if limit is None:
            return
        while len(self._resident) > limit:
            if self._evict_one_unlocked(exclude, reason="limit"):
                continue
            if not self._release_highest_pj_site():
                break  # only the pinned working page remains

    def _release_highest_pj_site(self) -> bool:
        """High memory contention: drop the pin with the largest PJ."""
        if not self._site_pj:
            return False
        site = max(self._site_pj, key=lambda s: (self._site_pj[s], s))
        self._release_site(site, count_as_release=True)
        return True

    def _release_site(self, site: int, count_as_release: bool) -> None:
        pages = self._site_pages.pop(site, None)
        pj = self._site_pj.pop(site, 0)
        if not pages:
            return
        released = []
        for page in pages:
            if self._locked_site_of.get(page) == site:
                del self._locked_site_of[page]
                released.append(page)
                if page in self._resident:
                    self._locked_resident -= 1
        if count_as_release:
            self.lock_releases += 1
        if released and self.tracer is not None:
            from repro.obs.events import ForcedRelease

            self.tracer.emit(
                ForcedRelease(
                    time=self._now,
                    site=site,
                    pages=tuple(sorted(released)),
                    priority_index=pj,
                    reason="pressure" if count_as_release else "superseded",
                )
            )
