"""Least Recently Used with a fixed partition (the paper's LRU baseline).

"For LRU the memory allocated to a program is varied between 1 and V,
where V is the virtual size of the program measured in pages."
"""

from __future__ import annotations

from collections import OrderedDict

from repro.vm.policies.base import Policy


class LRUPolicy(Policy):
    """Fixed-allocation LRU replacement."""

    name = "LRU"

    def __init__(self, frames: int):
        if frames < 1:
            raise ValueError("LRU needs at least one frame")
        self.frames = frames
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    def access(self, page: int, time: int) -> bool:
        resident = self._resident
        if page in resident:
            resident.move_to_end(page)
            return False
        if len(resident) >= self.frames:
            victim, _ = resident.popitem(last=False)
            if self.tracer is not None:
                from repro.obs.events import Evict

                self.tracer.emit(
                    Evict(time=time, page=victim, reason="capacity")
                )
        resident[page] = None
        return True

    @property
    def resident_size(self) -> int:
        return len(self._resident)

    def reset(self) -> None:
        self._resident.clear()

    def describe_parameter(self) -> int:
        return self.frames
