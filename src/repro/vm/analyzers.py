"""One-pass parameter-sweep analyzers for LRU and WS.

The paper's Tables 2–4 need LRU at *every* memory size 1..V and WS at
*many* window values.  Replaying the trace once per parameter is
wasteful; both policies admit single-pass analyses:

* **LRU is a stack algorithm** — one pass computes each reference's
  stack distance, from which the fault count for every partition size
  follows; the resident-set size under LRU with ``m`` frames after
  reference ``t`` is ``min(m, distinct_pages_seen(t))``, so MEM and ST
  follow too.
* **WS is window-defined** — a reference faults for window τ iff its
  backward inter-reference gap exceeds τ, and the working-set size at
  time ``t`` is the number of references ``s ≤ t`` that are still the
  most recent reference of their page and satisfy ``t < s + τ``; both
  derive from the backward/forward gap arrays in O(R) per τ.

Every number these analyzers produce agrees exactly with the
event-driven simulator (asserted by the test suite and the hypothesis
property tests).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.tracegen.events import ReferenceTrace
from repro.vm.metrics import FAULT_SERVICE_REFERENCES, SimulationResult

PagesLike = Union[ReferenceTrace, np.ndarray, List[int]]

#: Sentinel for "never" (first touch / no next reference): must exceed
#: any allocation or window a caller could query, not just the trace
#: length — callers may probe frames/τ larger than the trace.
_INFINITE_DISTANCE = np.int64(2**62)

#: Above this many distinct pages the O(V²) whole-curve histograms would
#: allocate large matrices; fall back to the per-allocation scan.
_DENSE_CURVE_LIMIT = 1500


def _as_pages(trace_or_pages: PagesLike) -> np.ndarray:
    if isinstance(trace_or_pages, ReferenceTrace):
        return trace_or_pages.pages
    return np.asarray(trace_or_pages, dtype=np.int32)


def previous_occurrences(trace_or_pages: PagesLike) -> np.ndarray:
    """``prev[t]``: index of the previous reference to ``pages[t]``
    (−1 on first touch), computed with one stable sort.

    This array, together with the LRU stack distances, is the whole
    state a segmented replay needs: after a flush at position ``f`` a
    reference faults iff ``prev < f`` (the page left with the flush) or
    its stack distance exceeds the allocation.  The multiprogrammed
    pool scheduler leans on exactly that identity.
    """
    pages = _as_pages(trace_or_pages)
    n = len(pages)
    prev = np.full(n, -1, dtype=np.int64)
    if n:
        idx = np.arange(n, dtype=np.int64)
        order = np.lexsort((idx, pages))
        po = idx[order]
        same = pages[order][1:] == pages[order][:-1]
        prev[po[1:][same]] = po[:-1][same]
    return prev


class LRUSweep:
    """All-partition-sizes LRU analysis of one reference string."""

    def __init__(
        self,
        trace_or_pages: PagesLike,
        program: str = "?",
        fault_service: int = FAULT_SERVICE_REFERENCES,
    ):
        if isinstance(trace_or_pages, ReferenceTrace):
            program = trace_or_pages.program_name
        self.program = program
        self.fault_service = fault_service
        self.pages = _as_pages(trace_or_pages)
        self._frame_stats_cache = None
        self._compute_distances()

    def _compute_distances(self) -> None:
        """LRU stack distances without a per-reference Python loop.

        With ``prev[t]`` the previous occurrence of the page referenced
        at ``t`` (−1 when cold), the stack distance satisfies

            distance(t) = #{s < t : prev[s] ≤ prev[t]} − prev[t]

        — each counted ``s`` is either ≤ prev[t] (contributing the
        subtracted prefix wholesale) or the *first* in-window occurrence
        of a distinct page.  That count is a two-sided dominance query
        answered offline: one bottom-up merge pass per doubling block
        size, all blocks of a level batched through one ``searchsorted``
        by lifting each block into its own disjoint value range.
        """
        n = len(self.pages)
        cold = _INFINITE_DISTANCE  # larger than any queryable allocation
        if n == 0:
            self._distances = np.empty(0, dtype=np.int64)
            self._distinct = np.empty(0, dtype=np.int64)
            self.max_useful_frames = 0
            return
        prev = previous_occurrences(self.pages)

        pad_point = n + 1  # sorts after every real prev, never ≤ a query
        offset = n + 3  # lifts row r into [r·offset, r·offset + n + 1]
        counts = np.zeros(n, dtype=np.int64)
        b = 1
        while b < n:
            width = 2 * b
            padded = ((n + width - 1) // width) * width
            points = np.full(padded, pad_point, dtype=np.int64)
            points[:n] = prev
            points = points.reshape(-1, width)
            left = np.sort(points[:, :b], axis=1)
            rows = np.arange(left.shape[0], dtype=np.int64)[:, None]
            queries = np.full(padded, -2, dtype=np.int64)  # pads count 0
            queries[:n] = prev
            queries = queries.reshape(-1, width)[:, b:]
            hits = (
                np.searchsorted(
                    (left + rows * offset).ravel(),
                    (queries + rows * offset).ravel(),
                    side="right",
                ).reshape(-1, b)
                - rows * b
            )
            pos = (rows * width + b + np.arange(b, dtype=np.int64)).ravel()
            valid = pos < n
            counts[pos[valid]] += hits.ravel()[valid]
            b = width

        distances = np.where(prev < 0, cold, counts - prev)
        self._distances = distances
        self._distinct = np.cumsum(prev < 0)
        #: number of distinct pages ever referenced
        self.max_useful_frames = int(self._distinct[-1]) if n else 0

    # -- persistence ---------------------------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The precomputed per-reference arrays, for on-disk caching."""
        return {
            "pages": self.pages,
            "distances": self._distances,
            "distinct": self._distinct,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays: Dict[str, np.ndarray],
        program: str = "?",
        fault_service: int = FAULT_SERVICE_REFERENCES,
    ) -> "LRUSweep":
        """Rebuild a sweep from :meth:`to_arrays` output without the
        O(R·depth) stack simulation."""
        sweep = object.__new__(cls)
        sweep.program = program
        sweep.fault_service = fault_service
        sweep.pages = np.asarray(arrays["pages"], dtype=np.int32)
        sweep._distances = np.asarray(arrays["distances"], dtype=np.int64)
        sweep._distinct = np.asarray(arrays["distinct"], dtype=np.int64)
        sweep._frame_stats_cache = None
        n = len(sweep.pages)
        sweep.max_useful_frames = int(sweep._distinct[-1]) if n else 0
        return sweep

    # -- point queries -------------------------------------------------------

    def faults(self, frames: int) -> int:
        """Page faults under LRU with ``frames`` frames."""
        if frames < 1:
            raise ValueError("frames must be >= 1")
        return int((self._distances > frames).sum())

    def mem(self, frames: int) -> float:
        """MEM: mean resident-set size."""
        if frames < 1:
            raise ValueError("frames must be >= 1")
        if not len(self.pages):
            return 0.0
        return float(np.minimum(self._distinct, frames).mean())

    def space_time(self, frames: int) -> float:
        """ST: space-time product including fault service."""
        if frames < 1:
            raise ValueError("frames must be >= 1")
        resident = np.minimum(self._distinct, frames)
        fault_mask = self._distances > frames
        return float(
            resident.sum() + self.fault_service * resident[fault_mask].sum()
        )

    def lifetime(self, frames: int) -> float:
        """Denning's lifetime function g(m): mean references between
        faults at allocation ``frames`` (``inf`` when nothing faults)."""
        faults = self.faults(frames)
        if faults == 0:
            return float("inf")
        return len(self.pages) / faults

    def _frame_stats(self):
        """Exact per-allocation sweep arrays for every m in 1..V.

        Returns ``(faults, mem_sums, space_times)`` — each an ndarray
        indexed by ``m - 1`` — computed from small histograms over
        (stack distance, distinct count) instead of one O(R) pass per
        allocation.  Every entry equals the corresponding point query.
        """
        if self._frame_stats_cache is not None:
            return self._frame_stats_cache
        n = len(self.pages)
        v = max(self.max_useful_frames, 1)
        if n == 0 or v > _DENSE_CURVE_LIMIT:
            faults = np.array([self.faults(m) for m in range(1, v + 1)])
            mem_sums = np.array(
                [np.minimum(self._distinct, m).sum() for m in range(1, v + 1)]
            )
            sts = np.array([self.space_time(m) for m in range(1, v + 1)])
            self._frame_stats_cache = (faults, mem_sums, sts)
            return self._frame_stats_cache
        # Clip distances into 1..v+1 (cold/deep references all behave
        # identically for any queried m ≤ v) and build the joint
        # histogram H[d-1, k-1] of (distance, distinct-so-far).
        d = np.minimum(self._distances, v + 1)
        k = self._distinct
        hist = np.bincount(
            (d - 1) * v + (k - 1), minlength=(v + 1) * v
        ).reshape(v + 1, v)
        m_col = np.arange(1, v + 1)[:, None]  # allocations, per row
        k_row = np.arange(1, v + 1)[None, :]  # distinct counts, per col
        min_mk = np.minimum(m_col, k_row)  # min(k, m) matrix
        # faults(m) = #{d > m}
        d_counts = hist.sum(axis=1)
        faults = n - np.cumsum(d_counts)[:v]
        # Σ_t min(distinct_t, m)
        k_counts = hist.sum(axis=0)
        mem_sums = min_mk @ k_counts
        # Σ_{t: d_t > m} min(distinct_t, m): suffix-over-distance rows
        suffix = np.cumsum(hist[::-1], axis=0)[::-1]
        fault_mem = np.einsum("mk,mk->m", suffix[1 : v + 1], min_mk)
        space_times = (mem_sums + self.fault_service * fault_mem).astype(
            np.float64
        )
        self._frame_stats_cache = (faults, mem_sums, space_times)
        return self._frame_stats_cache

    def knee_frames(self) -> int:
        """The primary knee of the lifetime curve: the allocation
        maximizing g(m)/m, the classical operating point for
        load-control rules."""
        if not len(self.pages):
            return 1
        faults, _, _ = self._frame_stats()
        n = len(self.pages)
        scores = np.where(
            faults == 0,
            (n * 10.0) / np.arange(1, len(faults) + 1),
            (n / np.maximum(faults, 1)) / np.arange(1, len(faults) + 1),
        )
        return int(np.argmax(scores)) + 1

    def lifetime_curve(self) -> np.ndarray:
        """Denning's lifetime function g(m) for every m in 1..V: mean
        references between faults (``inf`` where nothing faults).

        This — with :meth:`knee_frames` — is the load-control API the
        multiprogrammed pool uses: knee-based admission sizes each
        process at the allocation maximizing g(m)/m and refuses to
        admit past the pool.
        """
        if not len(self.pages):
            return np.empty(0, dtype=np.float64)
        faults, _, _ = self._frame_stats()
        n = len(self.pages)
        with np.errstate(divide="ignore"):
            return np.where(faults > 0, n / np.maximum(faults, 1), np.inf)

    def result(self, frames: int) -> SimulationResult:
        return SimulationResult(
            policy="LRU",
            program=self.program,
            page_faults=self.faults(frames),
            references=len(self.pages),
            mem_average=self.mem(frames),
            space_time=self.space_time(frames),
            parameter=frames,
            fault_service=self.fault_service,
        )

    # -- sweep helpers ------------------------------------------------------------

    def curve(
        self, frames_values: Optional[Iterable[int]] = None
    ) -> List[SimulationResult]:
        """Results across a range of partition sizes (default 1..V)."""
        if frames_values is None:
            frames_values = range(1, max(self.max_useful_frames, 1) + 1)
        return [self.result(m) for m in frames_values]

    def min_space_time(self) -> SimulationResult:
        """The allocation minimizing ST (the paper's ST_min comparisons)."""
        if not len(self.pages):
            return self.result(1)
        _, _, space_times = self._frame_stats()
        return self.result(int(np.argmin(space_times)) + 1)

    def frames_for_mem(self, target_mem: float) -> int:
        """Smallest allocation whose MEM is closest to ``target_mem``
        (the paper's "similar values were obtained by direct assignment")."""
        if not len(self.pages):
            return 1
        _, mem_sums, _ = self._frame_stats()
        gaps = np.abs(mem_sums / len(self.pages) - target_mem)
        return int(np.argmin(gaps)) + 1

    def min_frames_with_faults_at_most(self, max_faults: int) -> Optional[int]:
        """Smallest allocation generating at most ``max_faults`` faults
        (LRU fault counts are monotone in the allocation: stack property)."""
        faults, _, _ = self._frame_stats()
        if faults[-1] > max_faults:
            return None
        return int(np.argmax(faults <= max_faults)) + 1


class WSSweep:
    """All-window-sizes Working Set analysis of one reference string."""

    def __init__(
        self,
        trace_or_pages: PagesLike,
        program: str = "?",
        fault_service: int = FAULT_SERVICE_REFERENCES,
    ):
        if isinstance(trace_or_pages, ReferenceTrace):
            program = trace_or_pages.program_name
        self.program = program
        self.fault_service = fault_service
        self.pages = _as_pages(trace_or_pages)
        self._compute_gaps()
        self._cache: Dict[int, SimulationResult] = {}
        self._min_st_cache: Optional[SimulationResult] = None

    def _compute_gaps(self) -> None:
        n = len(self.pages)
        backward = np.full(n, _INFINITE_DISTANCE, dtype=np.int64)
        forward = np.full(n, _INFINITE_DISTANCE, dtype=np.int64)  # "never again"
        if n:
            idx = np.arange(n, dtype=np.int64)
            # Stable sort by page keeps positions ascending inside each
            # page's occurrence list; consecutive entries of one page
            # are exactly the inter-reference gaps.
            order = np.lexsort((idx, self.pages))
            pos = idx[order]
            same = self.pages[order][1:] == self.pages[order][:-1]
            gaps = pos[1:] - pos[:-1]
            backward[pos[1:][same]] = gaps[same]
            forward[pos[:-1][same]] = gaps[same]
        self._backward = backward
        self._forward = forward
        self._init_point_helpers()

    def _init_point_helpers(self) -> None:
        n = len(self.pages)
        order = np.argsort(self._backward, kind="stable")
        self._sorted_backward = self._backward[order]
        # Suffix sums of reference positions in backward-gap order:
        # Σ of fault positions for any τ is one searchsorted away.
        pos_suffix = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(order[::-1], out=pos_suffix[1:])
        self._fault_pos_suffix = pos_suffix[::-1]
        # A reference at s keeps its page resident for
        # min(forward_s, τ, n - s) time steps; the τ-independent cap
        # sorted once turns Σ_s min(cap_s, τ) into two lookups.
        cap = np.minimum(self._forward, n - np.arange(n, dtype=np.int64))
        self._sorted_cap = np.sort(cap)
        self._cap_prefix = np.concatenate(
            ([0], np.cumsum(self._sorted_cap))
        )
        # int32 mirrors for the per-τ pass (halves memory traffic);
        # infinite gaps clip to 2^31-1, still above any queryable τ.
        clip = np.int64(2**31 - 1)
        self._backward32 = np.minimum(self._backward, clip).astype(np.int32)
        self._cap32 = cap.astype(np.int32)
        self._arange32 = np.arange(n, dtype=np.int32)

    # -- persistence ---------------------------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The precomputed per-reference arrays, for on-disk caching."""
        return {
            "pages": self.pages,
            "backward": self._backward,
            "forward": self._forward,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays: Dict[str, np.ndarray],
        program: str = "?",
        fault_service: int = FAULT_SERVICE_REFERENCES,
    ) -> "WSSweep":
        """Rebuild a sweep from :meth:`to_arrays` output."""
        sweep = object.__new__(cls)
        sweep.program = program
        sweep.fault_service = fault_service
        sweep.pages = np.asarray(arrays["pages"], dtype=np.int32)
        sweep._backward = np.asarray(arrays["backward"], dtype=np.int64)
        sweep._forward = np.asarray(arrays["forward"], dtype=np.int64)
        sweep._init_point_helpers()
        sweep._cache = {}
        sweep._min_st_cache = None
        return sweep

    def _ws_size_sum(self, tau: int) -> int:
        """Σ_t |W(t, τ)| exactly, in O(log R)."""
        n = len(self.pages)
        split = int(np.searchsorted(self._sorted_cap, tau, side="right"))
        return int(self._cap_prefix[split]) + tau * (n - split)

    def _analyze(self, tau: int) -> SimulationResult:
        if tau < 1:
            raise ValueError("tau must be >= 1")
        cached = self._cache.get(tau)
        if cached is not None:
            return cached
        n = len(self.pages)
        if n == 0:
            result = SimulationResult(
                policy="WS",
                program=self.program,
                page_faults=0,
                references=0,
                mem_average=0.0,
                space_time=0.0,
                parameter=tau,
                fault_service=self.fault_service,
            )
            self._cache[tau] = result
            return result
        # All three indexes have closed forms over the gap arrays; the
        # only O(R) work left is one prefix count of faults plus one
        # gather at the interval ends (exact, integer arithmetic).
        tau_eff = min(tau, n)  # every gap and cap is ≤ n
        k0 = int(np.searchsorted(self._sorted_backward, tau_eff, side="right"))
        faults = n - k0
        ws_sum = self._ws_size_sum(tau_eff)
        # Σ_{t fault} |W(t,τ)| = Σ_s (#faults < e_s) - Σ_s (#faults < s)
        # where e_s = s + min(cap_s, τ); the second term telescopes to
        # (n-1)·faults - Σ(fault positions).
        prefix = np.empty(n + 1, dtype=np.int32)
        prefix[0] = 0
        np.cumsum(self._backward32 > tau_eff, dtype=np.int32, out=prefix[1:])
        ends = self._arange32 + np.minimum(self._cap32, tau_eff)
        sum_at_ends = int(prefix[ends].sum(dtype=np.int64))
        sum_at_starts = (n - 1) * faults - int(self._fault_pos_suffix[k0])
        fault_space = sum_at_ends - sum_at_starts
        result = SimulationResult(
            policy="WS",
            program=self.program,
            page_faults=faults,
            references=n,
            mem_average=ws_sum / n,
            space_time=float(ws_sum + self.fault_service * fault_space),
            parameter=tau,
            fault_service=self.fault_service,
        )
        self._cache[tau] = result
        return result

    # -- point queries -----------------------------------------------------------

    def faults(self, tau: int) -> int:
        if tau < 1:
            raise ValueError("tau must be >= 1")
        cached = self._cache.get(tau)
        if cached is not None:
            return cached.page_faults
        n = len(self.pages)
        return n - int(
            np.searchsorted(self._sorted_backward, tau, side="right")
        )

    def mem(self, tau: int) -> float:
        if tau < 1:
            raise ValueError("tau must be >= 1")
        cached = self._cache.get(tau)
        if cached is not None:
            return cached.mem_average
        n = len(self.pages)
        if n == 0:
            return 0.0
        return self._ws_size_sum(tau) / n

    def space_time(self, tau: int) -> float:
        return self._analyze(tau).space_time

    def result(self, tau: int) -> SimulationResult:
        return self._analyze(tau)

    def lifetime(self, tau: int) -> float:
        """Mean references between faults at window ``tau``."""
        faults = self.faults(tau)
        if faults == 0:
            return float("inf")
        return len(self.pages) / faults

    def mean_frames(self, tau: int) -> int:
        """The WS load-control estimate: mean working-set size at
        window ``tau``, rounded up to whole frames (≥ 1 for a
        non-empty string) — what a WS-style admission controller
        reserves for the process."""
        if not len(self.pages):
            return 1
        return max(1, int(np.ceil(self.mem(tau))))

    # -- sweep helpers ---------------------------------------------------------------

    def default_taus(self, count: int = 48) -> List[int]:
        """A geometric grid of window sizes in [1, R]."""
        n = max(len(self.pages), 2)
        grid = np.unique(
            np.round(np.geomspace(1, n, num=count)).astype(np.int64)
        )
        return [int(t) for t in grid]

    def curve(self, taus: Optional[Iterable[int]] = None) -> List[SimulationResult]:
        if taus is None:
            taus = self.default_taus()
        return [self.result(t) for t in taus]

    def _st_many(self, taus: np.ndarray) -> np.ndarray:
        """Exact ST for a whole batch of windows in a few array passes.

        Same integer arithmetic as :meth:`_analyze`, vectorized over τ
        (chunked to bound the R×T working set); every entry equals the
        corresponding ``space_time(tau)``.
        """
        n = len(self.pages)
        taus = np.asarray(taus, dtype=np.int64)
        if n == 0:
            return np.zeros(len(taus), dtype=np.float64)
        tau_eff = np.minimum(taus, n)
        k0 = np.searchsorted(self._sorted_backward, tau_eff, side="right")
        faults = n - k0
        split = np.searchsorted(self._sorted_cap, tau_eff, side="right")
        ws_sum = self._cap_prefix[split] + tau_eff * (n - split)
        sum_at_starts = (n - 1) * faults - self._fault_pos_suffix[k0]
        sum_at_ends = np.empty(len(taus), dtype=np.int64)
        tau32 = tau_eff.astype(np.int32)
        for lo in range(0, len(taus), 16):
            block = tau32[lo : lo + 16, None]
            prefix = np.cumsum(
                self._backward32[None, :] > block, axis=1, dtype=np.int32
            )
            # e_s = s + min(cap_s, τ) ≥ 1, so prefix[e_s - 1] is the
            # fault count strictly before the interval end.
            ends = self._arange32 + np.minimum(self._cap32, block)
            rows = np.arange(len(block), dtype=np.int64)[:, None] * n
            gathered = prefix.ravel()[(ends - 1) + rows]
            sum_at_ends[lo : lo + 16] = gathered.sum(axis=1, dtype=np.int64)
        fault_space = sum_at_ends - sum_at_starts
        return (ws_sum + self.fault_service * fault_space).astype(np.float64)

    def min_space_time(self, taus: Optional[Iterable[int]] = None) -> SimulationResult:
        """The window minimizing ST over a grid (refined locally).

        The default-grid optimum is memoized (and persisted with the
        artifact cache) — the ~80-window scan is the dominant cost of a
        warm Table 2 run otherwise.
        """
        if taus is None and self._min_st_cache is not None:
            return self._min_st_cache
        candidates = list(taus) if taus is not None else self.default_taus()
        sts = self._st_many(np.array(candidates, dtype=np.int64))
        index = int(np.argmin(sts))
        best = self.result(candidates[index])
        # Local refinement around the best grid point.
        tau = int(best.parameter)
        lo = candidates[index - 1] if index > 0 else max(1, tau // 2)
        hi = candidates[index + 1] if index + 1 < len(candidates) else tau * 2
        step = max(1, (hi - lo) // 32)
        refine = list(range(lo, hi + 1, step))
        refine_sts = self._st_many(np.array(refine, dtype=np.int64))
        r_index = int(np.argmin(refine_sts))
        if refine_sts[r_index] < best.space_time:
            best = self.result(refine[r_index])
        if taus is None:
            self._min_st_cache = best
        return best

    def tau_for_mem(self, target_mem: float) -> int:
        """Window whose MEM best matches ``target_mem`` (paper Table 3:
        "by adjusting the WS parameter, the window size τ").

        Mean WS size is non-decreasing in τ, so bisection applies.
        """
        lo, hi = 1, max(len(self.pages), 1)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.mem(mid) < target_mem:
                lo = mid + 1
            else:
                hi = mid
        # lo is the first τ reaching target; its neighbor below may be closer.
        best = lo
        if lo > 1 and abs(self.mem(lo - 1) - target_mem) < abs(
            self.mem(lo) - target_mem
        ):
            best = lo - 1
        return best

    def min_tau_with_faults_at_most(self, max_faults: int) -> Optional[int]:
        """Smallest window generating at most ``max_faults`` faults
        (WS fault counts are non-increasing in τ)."""
        lo, hi = 1, max(len(self.pages), 1)
        if self.faults(hi) > max_faults:
            return None
        while lo < hi:
            mid = (lo + hi) // 2
            if self.faults(mid) <= max_faults:
                hi = mid
            else:
                lo = mid + 1
        return lo
