"""One-pass parameter-sweep analyzers for LRU and WS.

The paper's Tables 2–4 need LRU at *every* memory size 1..V and WS at
*many* window values.  Replaying the trace once per parameter is
wasteful; both policies admit single-pass analyses:

* **LRU is a stack algorithm** — one pass computes each reference's
  stack distance, from which the fault count for every partition size
  follows; the resident-set size under LRU with ``m`` frames after
  reference ``t`` is ``min(m, distinct_pages_seen(t))``, so MEM and ST
  follow too.
* **WS is window-defined** — a reference faults for window τ iff its
  backward inter-reference gap exceeds τ, and the working-set size at
  time ``t`` is the number of references ``s ≤ t`` that are still the
  most recent reference of their page and satisfy ``t < s + τ``; both
  derive from the backward/forward gap arrays in O(R) per τ.

Every number these analyzers produce agrees exactly with the
event-driven simulator (asserted by the test suite and the hypothesis
property tests).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.tracegen.events import ReferenceTrace
from repro.vm.metrics import FAULT_SERVICE_REFERENCES, SimulationResult

PagesLike = Union[ReferenceTrace, np.ndarray, List[int]]

#: Sentinel for "never" (first touch / no next reference): must exceed
#: any allocation or window a caller could query, not just the trace
#: length — callers may probe frames/τ larger than the trace.
_INFINITE_DISTANCE = np.int64(2**62)


def _as_pages(trace_or_pages: PagesLike) -> np.ndarray:
    if isinstance(trace_or_pages, ReferenceTrace):
        return trace_or_pages.pages
    return np.asarray(trace_or_pages, dtype=np.int32)


class LRUSweep:
    """All-partition-sizes LRU analysis of one reference string."""

    def __init__(
        self,
        trace_or_pages: PagesLike,
        program: str = "?",
        fault_service: int = FAULT_SERVICE_REFERENCES,
    ):
        if isinstance(trace_or_pages, ReferenceTrace):
            program = trace_or_pages.program_name
        self.program = program
        self.fault_service = fault_service
        self.pages = _as_pages(trace_or_pages)
        self._compute_distances()

    def _compute_distances(self) -> None:
        n = len(self.pages)
        distances = np.empty(n, dtype=np.int64)
        distinct = np.empty(n, dtype=np.int64)
        stack: List[int] = []  # most-recent first
        cold = _INFINITE_DISTANCE  # larger than any queryable allocation
        for i in range(n):
            page = int(self.pages[i])
            try:
                depth = stack.index(page)
            except ValueError:
                distances[i] = cold
                stack.insert(0, page)
            else:
                distances[i] = depth + 1
                del stack[depth]
                stack.insert(0, page)
            distinct[i] = len(stack)
        self._distances = distances
        self._distinct = distinct
        #: number of distinct pages ever referenced
        self.max_useful_frames = int(distinct[-1]) if n else 0

    # -- point queries -------------------------------------------------------

    def faults(self, frames: int) -> int:
        """Page faults under LRU with ``frames`` frames."""
        if frames < 1:
            raise ValueError("frames must be >= 1")
        return int((self._distances > frames).sum())

    def mem(self, frames: int) -> float:
        """MEM: mean resident-set size."""
        if frames < 1:
            raise ValueError("frames must be >= 1")
        if not len(self.pages):
            return 0.0
        return float(np.minimum(self._distinct, frames).mean())

    def space_time(self, frames: int) -> float:
        """ST: space-time product including fault service."""
        if frames < 1:
            raise ValueError("frames must be >= 1")
        resident = np.minimum(self._distinct, frames)
        fault_mask = self._distances > frames
        return float(
            resident.sum() + self.fault_service * resident[fault_mask].sum()
        )

    def lifetime(self, frames: int) -> float:
        """Denning's lifetime function g(m): mean references between
        faults at allocation ``frames`` (``inf`` when nothing faults)."""
        faults = self.faults(frames)
        if faults == 0:
            return float("inf")
        return len(self.pages) / faults

    def knee_frames(self) -> int:
        """The primary knee of the lifetime curve: the allocation
        maximizing g(m)/m, the classical operating point for
        load-control rules."""
        best_m, best_score = 1, -1.0
        for m in range(1, max(self.max_useful_frames, 1) + 1):
            g = self.lifetime(m)
            score = (len(self.pages) * 10.0) / m if g == float("inf") else g / m
            if score > best_score:
                best_m, best_score = m, score
        return best_m

    def result(self, frames: int) -> SimulationResult:
        return SimulationResult(
            policy="LRU",
            program=self.program,
            page_faults=self.faults(frames),
            references=len(self.pages),
            mem_average=self.mem(frames),
            space_time=self.space_time(frames),
            parameter=frames,
            fault_service=self.fault_service,
        )

    # -- sweep helpers ------------------------------------------------------------

    def curve(self, frames_values: Optional[Iterable[int]] = None) -> List[SimulationResult]:
        """Results across a range of partition sizes (default 1..V)."""
        if frames_values is None:
            frames_values = range(1, max(self.max_useful_frames, 1) + 1)
        return [self.result(m) for m in frames_values]

    def min_space_time(self) -> SimulationResult:
        """The allocation minimizing ST (the paper's ST_min comparisons)."""
        best: Optional[SimulationResult] = None
        for m in range(1, max(self.max_useful_frames, 1) + 1):
            candidate = self.result(m)
            if best is None or candidate.space_time < best.space_time:
                best = candidate
        return best

    def frames_for_mem(self, target_mem: float) -> int:
        """Smallest allocation whose MEM is closest to ``target_mem``
        (the paper's "similar values were obtained by direct assignment")."""
        best_m, best_gap = 1, float("inf")
        for m in range(1, max(self.max_useful_frames, 1) + 1):
            gap = abs(self.mem(m) - target_mem)
            if gap < best_gap:
                best_m, best_gap = m, gap
        return best_m

    def min_frames_with_faults_at_most(self, max_faults: int) -> Optional[int]:
        """Smallest allocation generating at most ``max_faults`` faults
        (LRU fault counts are monotone in the allocation: stack property)."""
        lo, hi = 1, max(self.max_useful_frames, 1)
        if self.faults(hi) > max_faults:
            return None
        while lo < hi:
            mid = (lo + hi) // 2
            if self.faults(mid) <= max_faults:
                hi = mid
            else:
                lo = mid + 1
        return lo


class WSSweep:
    """All-window-sizes Working Set analysis of one reference string."""

    def __init__(
        self,
        trace_or_pages: PagesLike,
        program: str = "?",
        fault_service: int = FAULT_SERVICE_REFERENCES,
    ):
        if isinstance(trace_or_pages, ReferenceTrace):
            program = trace_or_pages.program_name
        self.program = program
        self.fault_service = fault_service
        self.pages = _as_pages(trace_or_pages)
        self._compute_gaps()
        self._cache: Dict[int, SimulationResult] = {}

    def _compute_gaps(self) -> None:
        n = len(self.pages)
        backward = np.empty(n, dtype=np.int64)
        forward = np.full(n, _INFINITE_DISTANCE, dtype=np.int64)  # "never again"
        last_seen: Dict[int, int] = {}
        infinite = _INFINITE_DISTANCE
        for i in range(n):
            page = int(self.pages[i])
            prev = last_seen.get(page)
            if prev is None:
                backward[i] = infinite
            else:
                backward[i] = i - prev
                forward[prev] = i - prev
            last_seen[page] = i
        self._backward = backward
        self._forward = forward

    def _analyze(self, tau: int) -> SimulationResult:
        if tau < 1:
            raise ValueError("tau must be >= 1")
        cached = self._cache.get(tau)
        if cached is not None:
            return cached
        n = len(self.pages)
        if n == 0:
            result = SimulationResult(
                policy="WS",
                program=self.program,
                page_faults=0,
                references=0,
                mem_average=0.0,
                space_time=0.0,
                parameter=tau,
                fault_service=self.fault_service,
            )
            self._cache[tau] = result
            return result
        fault_mask = self._backward > tau
        # Working-set size after each reference: a reference at s keeps
        # its page in W(t, τ) for t in [s, s + min(forward, τ) - 1].
        span = np.minimum(self._forward, tau)
        ends = np.minimum(np.arange(n, dtype=np.int64) + span, n)
        delta = np.zeros(n + 1, dtype=np.int64)
        delta[:n] += 1  # each reference opens its interval at its own slot
        np.subtract.at(delta, ends, 1)  # and closes it at s + min(fwd, τ)
        ws_size = np.cumsum(delta[:n])
        result = SimulationResult(
            policy="WS",
            program=self.program,
            page_faults=int(fault_mask.sum()),
            references=n,
            mem_average=float(ws_size.mean()),
            space_time=float(
                ws_size.sum() + self.fault_service * ws_size[fault_mask].sum()
            ),
            parameter=tau,
            fault_service=self.fault_service,
        )
        self._cache[tau] = result
        return result

    # -- point queries -----------------------------------------------------------

    def faults(self, tau: int) -> int:
        return self._analyze(tau).page_faults

    def mem(self, tau: int) -> float:
        return self._analyze(tau).mem_average

    def space_time(self, tau: int) -> float:
        return self._analyze(tau).space_time

    def result(self, tau: int) -> SimulationResult:
        return self._analyze(tau)

    def lifetime(self, tau: int) -> float:
        """Mean references between faults at window ``tau``."""
        faults = self.faults(tau)
        if faults == 0:
            return float("inf")
        return len(self.pages) / faults

    # -- sweep helpers ---------------------------------------------------------------

    def default_taus(self, count: int = 48) -> List[int]:
        """A geometric grid of window sizes in [1, R]."""
        n = max(len(self.pages), 2)
        grid = np.unique(
            np.round(np.geomspace(1, n, num=count)).astype(np.int64)
        )
        return [int(t) for t in grid]

    def curve(self, taus: Optional[Iterable[int]] = None) -> List[SimulationResult]:
        if taus is None:
            taus = self.default_taus()
        return [self.result(t) for t in taus]

    def min_space_time(self, taus: Optional[Iterable[int]] = None) -> SimulationResult:
        """The window minimizing ST over a grid (refined locally)."""
        candidates = list(taus) if taus is not None else self.default_taus()
        best = min((self.result(t) for t in candidates), key=lambda r: r.space_time)
        # Local refinement around the best grid point.
        tau = int(best.parameter)
        index = candidates.index(tau)
        lo = candidates[index - 1] if index > 0 else max(1, tau // 2)
        hi = candidates[index + 1] if index + 1 < len(candidates) else tau * 2
        step = max(1, (hi - lo) // 32)
        for t in range(lo, hi + 1, step):
            candidate = self.result(t)
            if candidate.space_time < best.space_time:
                best = candidate
        return best

    def tau_for_mem(self, target_mem: float) -> int:
        """Window whose MEM best matches ``target_mem`` (paper Table 3:
        "by adjusting the WS parameter, the window size τ").

        Mean WS size is non-decreasing in τ, so bisection applies.
        """
        lo, hi = 1, max(len(self.pages), 1)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.mem(mid) < target_mem:
                lo = mid + 1
            else:
                hi = mid
        # lo is the first τ reaching target; its neighbor below may be closer.
        best = lo
        if lo > 1 and abs(self.mem(lo - 1) - target_mem) < abs(
            self.mem(lo) - target_mem
        ):
            best = lo - 1
        return best

    def min_tau_with_faults_at_most(self, max_faults: int) -> Optional[int]:
        """Smallest window generating at most ``max_faults`` faults
        (WS fault counts are non-increasing in τ)."""
        lo, hi = 1, max(len(self.pages), 1)
        if self.faults(hi) > max_faults:
            return None
        while lo < hi:
            mid = (lo + hi) // 2
            if self.faults(mid) <= max_faults:
                hi = mid
            else:
                lo = mid + 1
        return lo
