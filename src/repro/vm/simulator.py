"""Event-driven replay of a reference trace under one policy.

The simulator merges the dense page-reference string with the sparse
directive stream (fired at their recorded positions), drives the policy,
and integrates the three performance indexes.  It is exact and
policy-agnostic; the one-pass analyzers in :mod:`repro.vm.analyzers`
reproduce its LRU/WS numbers for whole parameter sweeps and are
cross-validated against it in the test suite.

Passing ``tracer`` (a :class:`repro.obs.Tracer`) records the replay as
a typed event stream: the simulator emits :class:`~repro.obs.Fault`
per demand fetch and a :class:`~repro.obs.ResidentSample` every
``sample_interval`` references, and installs the tracer on the policy
so it emits its own Evict/ALLOCATE/LOCK decisions.  With ``tracer``
left as None the replay loop is byte-for-byte the untraced one.
"""

from __future__ import annotations

from typing import Optional

from repro.tracegen.events import ReferenceTrace
from repro.vm.metrics import FAULT_SERVICE_REFERENCES, SimulationResult
from repro.vm.policies.base import Policy


def simulate(
    trace: ReferenceTrace,
    policy: Policy,
    fault_service: int = FAULT_SERVICE_REFERENCES,
    deliver_directives: Optional[bool] = None,
    tracer=None,
    sample_interval: int = 1,
) -> SimulationResult:
    """Replay ``trace`` under ``policy`` and return the metrics.

    ``deliver_directives`` defaults to True; pass False to replay the
    bare reference string (baselines ignore directives anyway, so this
    only matters for experiments that deliberately starve CD).

    ``sample_interval`` (with a tracer) spaces the ResidentSample
    events; the default 1 samples after every reference, which makes
    MEM and ST exactly reconstructible from the event stream.
    """
    policy.reset()
    prepare = getattr(policy, "prepare", None)
    if prepare is not None:
        prepare(trace.pages)
    deliver = True if deliver_directives is None else deliver_directives
    directives = trace.directives if deliver else []
    pages = trace.pages
    total_refs = len(pages)

    faults = 0
    mem_sum = 0  # Σ resident-size after each reference
    fault_space_time = 0  # Σ resident-size × service over fault intervals

    event_index = 0
    event_count = len(directives)
    if tracer is None:
        for time in range(total_refs):
            while (
                event_index < event_count
                and directives[event_index].position <= time
            ):
                policy.on_directive(directives[event_index])
                event_index += 1
            fault = policy.access(int(pages[time]), time)
            resident = policy.resident_size
            mem_sum += resident
            if fault:
                faults += 1
                fault_space_time += resident * fault_service
        while event_index < event_count:
            policy.on_directive(directives[event_index])
            event_index += 1
    else:
        from repro.obs.events import Fault, ResidentSample

        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        previous_tracer = policy.tracer
        policy.tracer = tracer
        try:
            for time in range(total_refs):
                while (
                    event_index < event_count
                    and directives[event_index].position <= time
                ):
                    policy.on_directive(directives[event_index])
                    event_index += 1
                page = int(pages[time])
                fault = policy.access(page, time)
                resident = policy.resident_size
                mem_sum += resident
                if fault:
                    faults += 1
                    fault_space_time += resident * fault_service
                    tracer.emit(Fault(time=time, page=page, resident=resident))
                if time % sample_interval == 0:
                    tracer.emit(ResidentSample(time=time, resident=resident))
            # Trailing directives (position == total_refs) still trace:
            # the final UNLOCKs land here and the lock ledger must see them.
            while event_index < event_count:
                policy.on_directive(directives[event_index])
                event_index += 1
        finally:
            policy.tracer = previous_tracer

    mem_average = mem_sum / total_refs if total_refs else 0.0
    return SimulationResult(
        policy=policy.name,
        program=trace.program_name,
        page_faults=faults,
        references=total_refs,
        mem_average=mem_average,
        space_time=float(mem_sum + fault_space_time),
        parameter=policy.describe_parameter(),
        fault_service=fault_service,
        swaps=getattr(policy, "swaps", 0),
        denied_requests=getattr(policy, "denied_requests", 0),
        lock_releases=getattr(policy, "lock_releases", 0),
    )
