"""Multiprogrammed memory management — the evaluation the paper defers.

"The performance of CD in a multiprogramming environment is still to be
evaluated."  This module evaluates it: several traced programs share one
physical memory under round-robin scheduling with overlapped fault
service, managed either by CD (directive-driven allocation with the
paper's swapping mechanism) or by the Working Set policy with classic
WS load control.

Model
-----

* Time is virtual and global.  The scheduler runs one READY process at a
  time for a quantum of references; a page fault blocks the process for
  ``fault_service`` time units during which other processes run (I/O is
  overlapped, as in a real multiprogrammed system).
* Physical memory holds ``total_frames`` pages shared by all processes.
  Each process's pages live in its own address space (disjoint from the
  others).
* **CD processes** follow Figure 6: an ALLOCATE grants the largest
  request not exceeding what the process could reach (its own resident
  pages plus free frames).  When the PI=1 request cannot be granted,
  the *swapper* is invoked: the largest other resident process is
  swapped out entirely (its frames freed, the process suspended until
  memory frees up); "The swapper is never invoked by a request whose
  priority is > 1."
* **WS processes** maintain their working sets; load control deactivates
  (swaps out) the process with the largest working set when total
  demand exceeds physical memory — Denning's classical rule.

Faults, swaps, completion time, and memory utilization are reported per
process and in aggregate, so CD's directive-driven control can be
compared with WS load control on identical workload mixes.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.vm.metrics import FAULT_SERVICE_REFERENCES


class ProcessState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"  # waiting out a page-fault service
    SWAPPED = "swapped"  # evicted wholesale by the swapper
    DONE = "done"


@dataclass
class ProcessStats:
    name: str
    policy: str
    references: int = 0
    faults: int = 0
    swapped_out: int = 0
    finish_time: Optional[int] = None
    mem_integral: int = 0  # Σ resident over its executed references

    @property
    def mem_average(self) -> float:
        if self.references == 0:
            return 0.0
        return self.mem_integral / self.references


class _Process:
    """One program sharing the machine."""

    def __init__(self, name: str, trace: ReferenceTrace, mode: str, tau: int):
        if mode not in ("cd", "ws"):
            raise ValueError("mode must be 'cd' or 'ws'")
        self.name = name
        self.trace = trace
        self.mode = mode
        self.tau = tau
        self.position = 0  # next reference index
        self.event_index = 0
        self.state = ProcessState.READY
        self.wake_time = 0
        self.resident: "OrderedDict[int, None]" = OrderedDict()
        self.target = 1  # CD allocation target
        self.last_ref: Dict[int, int] = {}  # WS: page -> local time
        self.local_time = 0  # WS window counts this process's own refs
        #: CD soft pins: page -> site, and per-site PJ (for release order)
        self.locked_site_of: Dict[int, int] = {}
        self.site_pages: Dict[int, set] = {}
        self.site_pj: Dict[int, int] = {}
        self.stats = ProcessStats(name=name, policy=mode.upper())

    @property
    def done(self) -> bool:
        return self.position >= self.trace.length

    @property
    def resident_size(self) -> int:
        return len(self.resident)

    def demand(self) -> int:
        """Frames the process currently wants resident."""
        if self.mode == "cd":
            locked_resident = sum(
                1 for p in self.resident if p in self.locked_site_of
            )
            return max(self.target + locked_resident, 1)
        return max(self.ws_size(), 1)

    def ws_size(self) -> int:
        boundary = self.local_time - self.tau
        return sum(1 for t in self.last_ref.values() if t > boundary)


@dataclass
class MultiprogResult:
    total_frames: int
    makespan: int
    processes: List[ProcessStats]
    swaps: int
    mem_utilization: float  # mean fraction of frames occupied

    @property
    def total_faults(self) -> int:
        return sum(p.faults for p in self.processes)

    @property
    def throughput(self) -> float:
        """References completed per unit of virtual time."""
        if self.makespan == 0:
            return 0.0
        return sum(p.references for p in self.processes) / self.makespan

    def describe(self) -> str:
        lines = [
            f"{len(self.processes)} processes, {self.total_frames} frames: "
            f"makespan={self.makespan}, faults={self.total_faults}, "
            f"swaps={self.swaps}, util={self.mem_utilization:.2f}"
        ]
        for p in self.processes:
            lines.append(
                f"  {p.name:10s} [{p.policy}] PF={p.faults:6d} "
                f"MEM={p.mem_average:6.2f} done@{p.finish_time}"
            )
        return "\n".join(lines)


class MultiprogSimulator:
    """Round-robin multiprogramming over a shared frame pool."""

    def __init__(
        self,
        workloads: List[Tuple[str, ReferenceTrace]],
        total_frames: int,
        mode: str = "cd",
        quantum: int = 500,
        fault_service: int = FAULT_SERVICE_REFERENCES,
        ws_tau: int = 1500,
        max_time: int = 500_000_000,
        tracer=None,
        sample_interval: int = 1000,
    ):
        if total_frames < len(workloads):
            raise ValueError("need at least one frame per process")
        if quantum < 1:
            raise ValueError("quantum must be positive")
        if sample_interval < 1:
            raise ValueError("sample_interval must be positive")
        self.total_frames = total_frames
        self.quantum = quantum
        self.fault_service = fault_service
        self.max_time = max_time
        self.processes = [
            _Process(name, trace, mode, ws_tau) for name, trace in workloads
        ]
        self.clock = 0
        self.swaps = 0
        self._util_integral = 0.0
        self._util_samples = 0
        #: optional :class:`repro.obs.Tracer`; events carry ``proc``
        self.tracer = tracer
        self.sample_interval = sample_interval

    # -- memory accounting -------------------------------------------------

    @property
    def frames_used(self) -> int:
        return sum(p.resident_size for p in self.processes)

    @property
    def frames_free(self) -> int:
        return self.total_frames - self.frames_used

    # -- main loop -----------------------------------------------------------

    def run(self) -> MultiprogResult:
        while self.clock < self.max_time:
            process = self._pick_ready()
            if process is None:
                if all(p.state is ProcessState.DONE for p in self.processes):
                    break
                self._advance_to_next_wake()
                continue
            self._run_quantum(process)
        util = self._util_integral / self._util_samples if self._util_samples else 0.0
        return MultiprogResult(
            total_frames=self.total_frames,
            makespan=self.clock,
            processes=[p.stats for p in self.processes],
            swaps=self.swaps,
            mem_utilization=util,
        )

    def _pick_ready(self) -> Optional[_Process]:
        self._wake_sleepers()
        ready = [p for p in self.processes if p.state is ProcessState.READY]
        if not ready:
            return None
        # Round robin: the ready process that has executed the least.
        return min(ready, key=lambda p: p.stats.references)

    def _wake_sleepers(self) -> None:
        for p in self.processes:
            if p.state is ProcessState.BLOCKED and p.wake_time <= self.clock:
                p.state = ProcessState.READY
            elif p.state is ProcessState.SWAPPED:
                # Swap back in when a fair share of memory is free.
                share = self.total_frames // max(len(self.processes), 1)
                if self.frames_free >= max(1, min(share, p.demand())):
                    p.state = ProcessState.READY
                    self._emit_resume(p)

    def _advance_to_next_wake(self) -> None:
        pending = [
            p.wake_time
            for p in self.processes
            if p.state is ProcessState.BLOCKED
        ]
        if pending:
            self.clock = max(self.clock + 1, min(pending))
            return
        # Only SWAPPED processes remain: force the smallest back in.
        candidates = [p for p in self.processes if p.state is ProcessState.SWAPPED]
        if candidates:
            victim = min(candidates, key=lambda p: p.demand())
            victim.state = ProcessState.READY
            self._emit_resume(victim)
        self.clock += 1

    def _run_quantum(self, process: _Process) -> None:
        for _ in range(self.quantum):
            if process.done:
                process.state = ProcessState.DONE
                process.stats.finish_time = self.clock
                self._release_all(process)
                return
            self._fire_directives(process)
            if process.state is not ProcessState.READY:
                return  # a directive swapped us out
            faulted = self._reference(process)
            self.clock += 1
            self._sample_utilization()
            if faulted:
                process.stats.faults += 1
                process.state = ProcessState.BLOCKED
                process.wake_time = self.clock + self.fault_service
                return
        if process.done:
            process.state = ProcessState.DONE
            process.stats.finish_time = self.clock
            self._release_all(process)

    def _sample_utilization(self) -> None:
        self._util_integral += self.frames_used / self.total_frames
        self._util_samples += 1
        if self.tracer is not None and self.clock % self.sample_interval == 0:
            from repro.obs.events import ResidentSample

            self.tracer.emit(
                ResidentSample(time=self.clock, resident=self.frames_used)
            )

    def _emit_resume(self, process: _Process) -> None:
        if self.tracer is not None:
            from repro.obs.events import Resume

            self.tracer.emit(Resume(time=self.clock, proc=process.name))

    # -- referencing -----------------------------------------------------------

    def _reference(self, process: _Process) -> bool:
        page = int(process.trace.pages[process.position])
        process.position += 1
        process.stats.references += 1
        process.local_time += 1
        if process.mode == "ws":
            fault = self._ws_access(process, page)
        else:
            fault = self._cd_access(process, page)
        process.stats.mem_integral += process.resident_size
        if fault and self.tracer is not None:
            from repro.obs.events import Fault

            self.tracer.emit(
                Fault(
                    time=self.clock,
                    page=page,
                    resident=process.resident_size,
                    proc=process.name,
                )
            )
        return fault

    def _cd_access(self, process: _Process, page: int) -> bool:
        if page in process.resident:
            process.resident.move_to_end(page)
            return False
        self._claim_frame(process, exclude_page=page)
        process.resident[page] = None
        # Stay within the CD allocation target; pinned pages ride above
        # it (the pin is precisely for surviving a denied allocation).
        self._shed_to_target(process, keep=page)
        return True

    @staticmethod
    def _shed_to_target(process: _Process, keep: Optional[int] = None) -> None:
        # LRU-ordered unlocked eviction candidates; the page being
        # referenced right now is never a candidate.
        candidates = [
            p
            for p in process.resident
            if p not in process.locked_site_of and p != keep
        ]
        unlocked_count = sum(
            1 for p in process.resident if p not in process.locked_site_of
        )
        index = 0
        while unlocked_count > process.target and index < len(candidates):
            del process.resident[candidates[index]]
            index += 1
            unlocked_count -= 1

    def _ws_access(self, process: _Process, page: int) -> bool:
        previous = process.last_ref.get(page)
        fault = previous is None or (process.local_time - previous) > process.tau
        process.last_ref[page] = process.local_time
        # Expire pages that left the window.
        boundary = process.local_time - process.tau
        expired = [
            p
            for p, t in process.last_ref.items()
            if t <= boundary and p != page
        ]
        for p in expired:
            del process.last_ref[p]
            process.resident.pop(p, None)
        if not fault and page in process.resident:
            process.resident.move_to_end(page)
            return False
        self._claim_frame(process, exclude_page=page)
        process.resident[page] = None
        return True

    def _claim_frame(self, process: _Process, exclude_page: int) -> None:
        """Make room for one incoming page."""
        if self.frames_free > 0:
            return
        # First shed our own excess (CD: over target; WS: out-of-window
        # pages were already shed).
        if process.mode == "cd" and process.resident_size >= process.target:
            if process.resident:
                victim = next(iter(process.resident))
                del process.resident[victim]
                return
        # Steal from the process with the largest surplus over demand.
        surplus_holder = max(
            (p for p in self.processes if p.resident_size > 0),
            key=lambda p: p.resident_size - p.demand(),
            default=None,
        )
        if surplus_holder is not None and (
            surplus_holder.resident_size - surplus_holder.demand() > 0
        ):
            victim = next(
                (
                    p
                    for p in surplus_holder.resident
                    if p not in surplus_holder.locked_site_of
                ),
                None,
            )
            if victim is not None:
                del surplus_holder.resident[victim]
                if surplus_holder.mode == "ws":
                    surplus_holder.last_ref.pop(victim, None)
                return
        # Memory is genuinely over-committed: load control.
        self._load_control(requester=process)
        if self.frames_free <= 0 and process.resident:
            victim = next(iter(process.resident))
            del process.resident[victim]
            if process.mode == "ws":
                process.last_ref.pop(victim, None)

    def _load_control(self, requester: _Process) -> None:
        """Swap out the largest other active process."""
        candidates = [
            p
            for p in self.processes
            if p is not requester
            and p.state in (ProcessState.READY, ProcessState.BLOCKED)
            and p.resident_size > 0
        ]
        if not candidates:
            return
        victim = max(candidates, key=lambda p: p.resident_size)
        self._swap_out(victim)

    def _swap_out(self, victim: _Process) -> None:
        self._release_all(victim)
        victim.state = ProcessState.SWAPPED
        victim.stats.swapped_out += 1
        self.swaps += 1
        if self.tracer is not None:
            from repro.obs.events import Suspend

            self.tracer.emit(
                Suspend(time=self.clock, reason="swap", proc=victim.name)
            )

    def _release_all(self, process: _Process) -> None:
        process.resident.clear()
        if process.mode == "ws":
            process.last_ref.clear()
        # Swapping out (or finishing) drops all pins: "the operating
        # system is entitled to release the locked pages".
        process.locked_site_of.clear()
        process.site_pages.clear()
        process.site_pj.clear()

    # -- directives ------------------------------------------------------------

    def _fire_directives(self, process: _Process) -> None:
        if process.mode != "cd":
            return
        directives = process.trace.directives
        while (
            process.event_index < len(directives)
            and directives[process.event_index].position <= process.position
        ):
            event = directives[process.event_index]
            process.event_index += 1
            if event.kind is DirectiveKind.ALLOCATE:
                self._process_allocate(process, event)
                if process.state is not ProcessState.READY:
                    return
            elif event.kind is DirectiveKind.LOCK:
                self._process_lock(process, event)
            elif event.kind is DirectiveKind.UNLOCK:
                self._process_unlock(process, event)

    @staticmethod
    def _process_lock(process: _Process, event: DirectiveEvent) -> None:
        site = event.site
        # Re-executing a LOCK at the same site moves its pins.
        for page in process.site_pages.pop(site, set()):
            if process.locked_site_of.get(page) == site:
                del process.locked_site_of[page]
        process.site_pj.pop(site, None)
        pages = set()
        for page in event.lock_pages:
            if page in process.locked_site_of:
                continue
            process.locked_site_of[page] = site
            pages.add(page)
        if pages:
            process.site_pages[site] = pages
            process.site_pj[site] = event.priority_index

    @staticmethod
    def _process_unlock(process: _Process, event: DirectiveEvent) -> None:
        for page in event.lock_pages:
            site = process.locked_site_of.pop(page, None)
            if site is None:
                continue
            site_set = process.site_pages.get(site)
            if site_set is not None:
                site_set.discard(page)
                if not site_set:
                    process.site_pages.pop(site, None)
                    process.site_pj.pop(site, None)

    def _process_allocate(self, process: _Process, event: DirectiveEvent) -> None:
        reachable = process.resident_size + self.frames_free
        granted: Optional[int] = None
        for request in event.requests:
            if request.pages <= reachable:
                granted = request.pages
                break
        if granted is None:
            innermost = event.requests[-1]
            if innermost.priority_index > 1:
                return  # keep the current allocation (Figure 6)
            # PI = 1 denied: invoke the swapper on another process.
            self._load_control(requester=process)
            reachable = process.resident_size + self.frames_free
            granted = min(innermost.pages, max(reachable, 1))
        process.target = max(granted, 1)
        while process.resident_size > process.target:
            victim = next(iter(process.resident))
            del process.resident[victim]
