"""Multiprogrammed memory management — the evaluation the paper defers.

"The performance of CD in a multiprogramming environment is still to be
evaluated."  This module evaluates it at two scales:

* :class:`MultiprogSimulator` — the original fixed-mix round-robin
  reference: a handful of traced programs share one physical memory,
  managed either by CD (directive-driven allocation with the paper's
  swapping mechanism) or by the Working Set policy with classic WS
  load control.

* :class:`LoadControlledPool` — the heavy-traffic scenario family: an
  event-driven pool scheduler running hundreds-to-thousands of
  processes with stochastic arrival/departure over a shared frame
  pool, under a pluggable *admission/load-control* policy
  (:data:`ADMISSION_POLICIES`): knee-based control at the lifetime
  knee g(m)/m (Denning), WS-estimate control, CD-directive-aware
  control with PI-priority preemption, and an uncontrolled
  thrash-prone baseline.  Each admitted process replays its reference
  string exactly (segmented LRU replay over precomputed stack
  distances, see :class:`JobProfile`), so per-process fault counts are
  checkable against the single-process analyzers — the oracle's
  ``pool-*`` conservation checks do exactly that.

Fixed-mix model
---------------

* Time is virtual and global.  The scheduler runs one READY process at a
  time for a quantum of references; a page fault blocks the process for
  ``fault_service`` time units during which other processes run (I/O is
  overlapped, as in a real multiprogrammed system).
* Physical memory holds ``total_frames`` pages shared by all processes.
  Each process's pages live in its own address space (disjoint from the
  others).
* **CD processes** follow Figure 6: an ALLOCATE grants the largest
  request not exceeding what the process could reach (its own resident
  pages plus free frames).  When the PI=1 request cannot be granted,
  the *swapper* is invoked: the largest other resident process is
  swapped out entirely (its frames freed, the process suspended until
  memory frees up); "The swapper is never invoked by a request whose
  priority is > 1."
* **WS processes** maintain their working sets; load control deactivates
  (swaps out) the process with the largest working set when total
  demand exceeds physical memory — Denning's classical rule.

Faults, swaps, completion time, and memory utilization are reported per
process and in aggregate, so CD's directive-driven control can be
compared with WS load control on identical workload mixes.
"""

from __future__ import annotations

import enum
import heapq
import random
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.vm.metrics import FAULT_SERVICE_REFERENCES


class ProcessState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"  # waiting out a page-fault service
    SWAPPED = "swapped"  # evicted wholesale by the swapper
    DONE = "done"


@dataclass
class ProcessStats:
    name: str
    policy: str
    references: int = 0
    faults: int = 0
    swapped_out: int = 0
    finish_time: Optional[int] = None
    mem_integral: int = 0  # Σ resident over its executed references

    @property
    def mem_average(self) -> float:
        if self.references == 0:
            return 0.0
        return self.mem_integral / self.references


class _Process:
    """One program sharing the machine."""

    def __init__(self, name: str, trace: ReferenceTrace, mode: str, tau: int):
        if mode not in ("cd", "ws"):
            raise ValueError("mode must be 'cd' or 'ws'")
        self.name = name
        self.trace = trace
        self.mode = mode
        self.tau = tau
        self.position = 0  # next reference index
        self.event_index = 0
        self.state = ProcessState.READY
        self.wake_time = 0
        self.resident: "OrderedDict[int, None]" = OrderedDict()
        self.target = 1  # CD allocation target
        self.last_ref: Dict[int, int] = {}  # WS: page -> local time
        self.local_time = 0  # WS window counts this process's own refs
        #: CD soft pins: page -> site, and per-site PJ (for release order)
        self.locked_site_of: Dict[int, int] = {}
        self.site_pages: Dict[int, set] = {}
        self.site_pj: Dict[int, int] = {}
        self.stats = ProcessStats(name=name, policy=mode.upper())

    @property
    def done(self) -> bool:
        return self.position >= self.trace.length

    @property
    def resident_size(self) -> int:
        return len(self.resident)

    def demand(self) -> int:
        """Frames the process currently wants resident."""
        if self.mode == "cd":
            locked_resident = sum(
                1 for p in self.resident if p in self.locked_site_of
            )
            return max(self.target + locked_resident, 1)
        return max(self.ws_size(), 1)

    def ws_size(self) -> int:
        boundary = self.local_time - self.tau
        return sum(1 for t in self.last_ref.values() if t > boundary)


@dataclass
class MultiprogResult:
    total_frames: int
    makespan: int
    processes: List[ProcessStats]
    swaps: int
    mem_utilization: float  # mean fraction of frames occupied

    @property
    def total_faults(self) -> int:
        return sum(p.faults for p in self.processes)

    @property
    def throughput(self) -> float:
        """References completed per unit of virtual time."""
        if self.makespan == 0:
            return 0.0
        return sum(p.references for p in self.processes) / self.makespan

    def describe(self) -> str:
        lines = [
            f"{len(self.processes)} processes, {self.total_frames} frames: "
            f"makespan={self.makespan}, faults={self.total_faults}, "
            f"swaps={self.swaps}, util={self.mem_utilization:.2f}"
        ]
        for p in self.processes:
            lines.append(
                f"  {p.name:10s} [{p.policy}] PF={p.faults:6d} "
                f"MEM={p.mem_average:6.2f} done@{p.finish_time}"
            )
        return "\n".join(lines)


class MultiprogSimulator:
    """Round-robin multiprogramming over a shared frame pool."""

    def __init__(
        self,
        workloads: List[Tuple[str, ReferenceTrace]],
        total_frames: int,
        mode: str = "cd",
        quantum: int = 500,
        fault_service: int = FAULT_SERVICE_REFERENCES,
        ws_tau: int = 1500,
        max_time: int = 500_000_000,
        tracer=None,
        sample_interval: int = 1000,
    ):
        if total_frames < len(workloads):
            raise ValueError("need at least one frame per process")
        if quantum < 1:
            raise ValueError("quantum must be positive")
        if sample_interval < 1:
            raise ValueError("sample_interval must be positive")
        self.total_frames = total_frames
        self.quantum = quantum
        self.fault_service = fault_service
        self.max_time = max_time
        self.processes = [
            _Process(name, trace, mode, ws_tau) for name, trace in workloads
        ]
        self.clock = 0
        self.swaps = 0
        self._util_integral = 0.0
        self._util_samples = 0
        #: optional :class:`repro.obs.Tracer`; events carry ``proc``
        self.tracer = tracer
        self.sample_interval = sample_interval

    # -- memory accounting -------------------------------------------------

    @property
    def frames_used(self) -> int:
        return sum(p.resident_size for p in self.processes)

    @property
    def frames_free(self) -> int:
        return self.total_frames - self.frames_used

    # -- main loop -----------------------------------------------------------

    def run(self) -> MultiprogResult:
        while self.clock < self.max_time:
            process = self._pick_ready()
            if process is None:
                if all(p.state is ProcessState.DONE for p in self.processes):
                    break
                self._advance_to_next_wake()
                continue
            self._run_quantum(process)
        util = self._util_integral / self._util_samples if self._util_samples else 0.0
        return MultiprogResult(
            total_frames=self.total_frames,
            makespan=self.clock,
            processes=[p.stats for p in self.processes],
            swaps=self.swaps,
            mem_utilization=util,
        )

    def _pick_ready(self) -> Optional[_Process]:
        self._wake_sleepers()
        ready = [p for p in self.processes if p.state is ProcessState.READY]
        if not ready:
            return None
        # Round robin: the ready process that has executed the least.
        return min(ready, key=lambda p: p.stats.references)

    def _wake_sleepers(self) -> None:
        for p in self.processes:
            if p.state is ProcessState.BLOCKED and p.wake_time <= self.clock:
                p.state = ProcessState.READY
            elif p.state is ProcessState.SWAPPED:
                # Swap back in when a fair share of memory is free.
                share = self.total_frames // max(len(self.processes), 1)
                if self.frames_free >= max(1, min(share, p.demand())):
                    p.state = ProcessState.READY
                    self._emit_resume(p)

    def _advance_to_next_wake(self) -> None:
        pending = [
            p.wake_time
            for p in self.processes
            if p.state is ProcessState.BLOCKED
        ]
        if pending:
            self.clock = max(self.clock + 1, min(pending))
            return
        # Only SWAPPED processes remain: force the smallest back in.
        candidates = [p for p in self.processes if p.state is ProcessState.SWAPPED]
        if candidates:
            victim = min(candidates, key=lambda p: p.demand())
            victim.state = ProcessState.READY
            self._emit_resume(victim)
        self.clock += 1

    def _run_quantum(self, process: _Process) -> None:
        for _ in range(self.quantum):
            if process.done:
                process.state = ProcessState.DONE
                process.stats.finish_time = self.clock
                self._release_all(process)
                return
            self._fire_directives(process)
            if process.state is not ProcessState.READY:
                return  # a directive swapped us out
            faulted = self._reference(process)
            self.clock += 1
            self._sample_utilization()
            if faulted:
                process.stats.faults += 1
                process.state = ProcessState.BLOCKED
                process.wake_time = self.clock + self.fault_service
                return
        if process.done:
            process.state = ProcessState.DONE
            process.stats.finish_time = self.clock
            self._release_all(process)

    def _sample_utilization(self) -> None:
        self._util_integral += self.frames_used / self.total_frames
        self._util_samples += 1
        if self.tracer is not None and self.clock % self.sample_interval == 0:
            from repro.obs.events import ResidentSample

            self.tracer.emit(
                ResidentSample(time=self.clock, resident=self.frames_used)
            )

    def _emit_resume(self, process: _Process) -> None:
        if self.tracer is not None:
            from repro.obs.events import Resume

            self.tracer.emit(Resume(time=self.clock, proc=process.name))

    # -- referencing -----------------------------------------------------------

    def _reference(self, process: _Process) -> bool:
        page = int(process.trace.pages[process.position])
        process.position += 1
        process.stats.references += 1
        process.local_time += 1
        if process.mode == "ws":
            fault = self._ws_access(process, page)
        else:
            fault = self._cd_access(process, page)
        process.stats.mem_integral += process.resident_size
        if fault and self.tracer is not None:
            from repro.obs.events import Fault

            self.tracer.emit(
                Fault(
                    time=self.clock,
                    page=page,
                    resident=process.resident_size,
                    proc=process.name,
                )
            )
        return fault

    def _cd_access(self, process: _Process, page: int) -> bool:
        if page in process.resident:
            process.resident.move_to_end(page)
            return False
        self._claim_frame(process, exclude_page=page)
        process.resident[page] = None
        # Stay within the CD allocation target; pinned pages ride above
        # it (the pin is precisely for surviving a denied allocation).
        self._shed_to_target(process, keep=page)
        return True

    @staticmethod
    def _shed_to_target(process: _Process, keep: Optional[int] = None) -> None:
        # LRU-ordered unlocked eviction candidates; the page being
        # referenced right now is never a candidate.
        candidates = [
            p
            for p in process.resident
            if p not in process.locked_site_of and p != keep
        ]
        unlocked_count = sum(
            1 for p in process.resident if p not in process.locked_site_of
        )
        index = 0
        while unlocked_count > process.target and index < len(candidates):
            del process.resident[candidates[index]]
            index += 1
            unlocked_count -= 1

    def _ws_access(self, process: _Process, page: int) -> bool:
        previous = process.last_ref.get(page)
        fault = previous is None or (process.local_time - previous) > process.tau
        process.last_ref[page] = process.local_time
        # Expire pages that left the window.
        boundary = process.local_time - process.tau
        expired = [
            p
            for p, t in process.last_ref.items()
            if t <= boundary and p != page
        ]
        for p in expired:
            del process.last_ref[p]
            process.resident.pop(p, None)
        if not fault and page in process.resident:
            process.resident.move_to_end(page)
            return False
        self._claim_frame(process, exclude_page=page)
        process.resident[page] = None
        return True

    def _claim_frame(self, process: _Process, exclude_page: int) -> None:
        """Make room for one incoming page."""
        if self.frames_free > 0:
            return
        # First shed our own excess (CD: over target; WS: out-of-window
        # pages were already shed).
        if process.mode == "cd" and process.resident_size >= process.target:
            if process.resident:
                victim = next(iter(process.resident))
                del process.resident[victim]
                return
        # Steal from the process with the largest surplus over demand.
        surplus_holder = max(
            (p for p in self.processes if p.resident_size > 0),
            key=lambda p: p.resident_size - p.demand(),
            default=None,
        )
        if surplus_holder is not None and (
            surplus_holder.resident_size - surplus_holder.demand() > 0
        ):
            victim = next(
                (
                    p
                    for p in surplus_holder.resident
                    if p not in surplus_holder.locked_site_of
                ),
                None,
            )
            if victim is not None:
                del surplus_holder.resident[victim]
                if surplus_holder.mode == "ws":
                    surplus_holder.last_ref.pop(victim, None)
                return
        # Memory is genuinely over-committed: load control.
        self._load_control(requester=process)
        if self.frames_free <= 0 and process.resident:
            victim = next(iter(process.resident))
            del process.resident[victim]
            if process.mode == "ws":
                process.last_ref.pop(victim, None)

    def _load_control(self, requester: _Process) -> None:
        """Swap out the largest other active process."""
        candidates = [
            p
            for p in self.processes
            if p is not requester
            and p.state in (ProcessState.READY, ProcessState.BLOCKED)
            and p.resident_size > 0
        ]
        if not candidates:
            return
        victim = max(candidates, key=lambda p: p.resident_size)
        self._swap_out(victim)

    def _swap_out(self, victim: _Process) -> None:
        self._release_all(victim)
        victim.state = ProcessState.SWAPPED
        victim.stats.swapped_out += 1
        self.swaps += 1
        if self.tracer is not None:
            from repro.obs.events import Suspend

            self.tracer.emit(
                Suspend(time=self.clock, reason="swap", proc=victim.name)
            )

    def _release_all(self, process: _Process) -> None:
        process.resident.clear()
        if process.mode == "ws":
            process.last_ref.clear()
        # Swapping out (or finishing) drops all pins: "the operating
        # system is entitled to release the locked pages".
        process.locked_site_of.clear()
        process.site_pages.clear()
        process.site_pj.clear()

    # -- directives ------------------------------------------------------------

    def _fire_directives(self, process: _Process) -> None:
        if process.mode != "cd":
            return
        directives = process.trace.directives
        while (
            process.event_index < len(directives)
            and directives[process.event_index].position <= process.position
        ):
            event = directives[process.event_index]
            process.event_index += 1
            if event.kind is DirectiveKind.ALLOCATE:
                self._process_allocate(process, event)
                if process.state is not ProcessState.READY:
                    return
            elif event.kind is DirectiveKind.LOCK:
                self._process_lock(process, event)
            elif event.kind is DirectiveKind.UNLOCK:
                self._process_unlock(process, event)

    @staticmethod
    def _process_lock(process: _Process, event: DirectiveEvent) -> None:
        site = event.site
        # Re-executing a LOCK at the same site moves its pins.
        for page in process.site_pages.pop(site, set()):
            if process.locked_site_of.get(page) == site:
                del process.locked_site_of[page]
        process.site_pj.pop(site, None)
        pages = set()
        for page in event.lock_pages:
            if page in process.locked_site_of:
                continue
            process.locked_site_of[page] = site
            pages.add(page)
        if pages:
            process.site_pages[site] = pages
            process.site_pj[site] = event.priority_index

    @staticmethod
    def _process_unlock(process: _Process, event: DirectiveEvent) -> None:
        for page in event.lock_pages:
            site = process.locked_site_of.pop(page, None)
            if site is None:
                continue
            site_set = process.site_pages.get(site)
            if site_set is not None:
                site_set.discard(page)
                if not site_set:
                    process.site_pages.pop(site, None)
                    process.site_pj.pop(site, None)

    def _process_allocate(self, process: _Process, event: DirectiveEvent) -> None:
        reachable = process.resident_size + self.frames_free
        granted: Optional[int] = None
        for request in event.requests:
            if request.pages <= reachable:
                granted = request.pages
                break
        if granted is None:
            innermost = event.requests[-1]
            if innermost.priority_index > 1:
                return  # keep the current allocation (Figure 6)
            # PI = 1 denied: invoke the swapper on another process.
            self._load_control(requester=process)
            reachable = process.resident_size + self.frames_free
            granted = min(innermost.pages, max(reachable, 1))
        process.target = max(granted, 1)
        while process.resident_size > process.target:
            victim = next(iter(process.resident))
            del process.resident[victim]


# =====================================================================
# Heavy-traffic pool scheduling: profiles, admission policies, the DES
# =====================================================================


@dataclass(frozen=True)
class JobProfile:
    """Everything the pool needs to replay one program exactly.

    A process admitted at a fixed allocation ``m`` and never resized
    pages exactly like single-process LRU: reference ``t`` faults iff
    its stack distance exceeds ``m``.  A *suspension* flushes the
    resident set; after resuming at position ``f`` the reference
    faults iff ``prev[t] < f`` (its page left with the flush) **or**
    the stack distance exceeds the allocation — both precomputable, so
    the scheduler advances a process by whole compute bursts with one
    vectorized scan instead of a per-reference loop.
    """

    name: str
    length: int
    distinct: int
    prev: np.ndarray = field(repr=False)  # previous occurrence, -1 cold
    distances: np.ndarray = field(repr=False)  # LRU stack distances
    knee_frames: int  # allocation maximizing g(m)/m
    ws_frames: int  # mean WS size at the control window, rounded up
    cd_min_frames: int  # largest PI=1 ALLOCATE request (must-have)
    cd_pref_frames: int  # largest request of any priority (preferred)
    cd_chain: Tuple[int, ...] = ()  # distinct ALLOCATE sizes, descending

    @classmethod
    def from_trace(
        cls,
        trace: ReferenceTrace,
        name: Optional[str] = None,
        ws_tau: int = 1500,
        max_refs: Optional[int] = None,
    ) -> "JobProfile":
        """Profile one trace (optionally truncated to ``max_refs``)."""
        from repro.vm.analyzers import LRUSweep, WSSweep, previous_occurrences

        pages = trace.pages
        directives = trace.directives
        if max_refs is not None and len(pages) > max_refs:
            pages = pages[:max_refs]
            directives = [d for d in directives if d.position < max_refs]
        sweep = LRUSweep(pages, program=trace.program_name)
        ws = WSSweep(pages, program=trace.program_name)
        knee = sweep.knee_frames()
        cd_min, cd_pref, cd_chain = _directive_demand(directives, fallback=knee)
        distinct = sweep.max_useful_frames
        cap = max(distinct, 1)
        return cls(
            name=name or trace.program_name,
            length=int(len(pages)),
            distinct=int(distinct),
            prev=previous_occurrences(pages),
            distances=sweep._distances,
            knee_frames=int(knee),
            ws_frames=int(ws.mean_frames(ws_tau)),
            cd_min_frames=int(max(1, min(cd_min, cap))),
            cd_pref_frames=int(max(1, min(cd_pref, cap))),
            cd_chain=tuple(
                sorted({max(1, min(s, cap)) for s in cd_chain}, reverse=True)
            ),
        )

    def faults_at(self, frames: int) -> int:
        """Single-process LRU fault count at a fixed allocation — the
        reference value the oracle's ``pool-faults`` check compares
        a never-suspended pool process against."""
        return int((self.distances > frames).sum())


def _directive_demand(
    directives: Sequence[DirectiveEvent], fallback: int
) -> Tuple[int, int, Tuple[int, ...]]:
    """(must-have, preferred, chain) frames from a trace's ALLOCATE
    chains.

    The must-have demand is the largest PI=1 request — the paper's
    "never denied" locality; the preferred demand is the largest
    request of any priority; the chain is every distinct request size,
    descending, because the CD policy grants only sizes the program
    actually named (Figure 6's else-chain walks the requests in order
    and takes the largest that fits — an in-between grant would leave
    the process sized for no locality at all).  Traces without
    ALLOCATE events fall back to the lifetime knee.
    """
    must, pref = 0, 0
    sizes: set = set()
    for event in directives:
        if event.kind is not DirectiveKind.ALLOCATE:
            continue
        for request in event.requests:
            pref = max(pref, request.pages)
            sizes.add(request.pages)
            if request.priority_index == 1:
                must = max(must, request.pages)
    if pref == 0:
        return fallback, fallback, (fallback,)
    if must == 0:
        must = pref
    pref = max(pref, must)
    sizes.update((must, pref))
    return must, pref, tuple(sorted(sizes, reverse=True))


# -- admission / load-control policies ----------------------------------------


class AdmissionPolicy:
    """Decides if (and at what allocation) a process enters the pool.

    ``allocation_for`` returns the frames to grant, or ``None`` to
    defer.  Grants are *reservations*: the pool subtracts them from
    the free-frame count at admission and returns them at departure or
    suspension, so conservation is enforced structurally — a policy
    cannot overcommit (grants are clamped to the free count by the
    pool as a final guard, and audited by the ``pool-*`` oracle
    checks).
    """

    name = "?"

    def allocation_for(
        self,
        profile: JobProfile,
        free: int,
        total: int,
        admitted: int,
        waiting: int = 0,
    ) -> Optional[int]:
        raise NotImplementedError

    def min_frames(self, profile: JobProfile, total: int) -> int:
        """The smallest allocation this policy would accept (used by
        preemption to size the hole a victim must leave)."""
        grant = self.allocation_for(profile, total, total, 0)
        return 1 if grant is None else grant

    def preemption_victim(
        self,
        profile: JobProfile,
        need: int,
        candidates: Sequence["_PoolProc"],
    ) -> Optional["_PoolProc"]:
        """A process to suspend so an arrival needing ``need`` frames
        can enter; ``None`` (default) disables preemption."""
        return None


class UncontrolledAdmission(AdmissionPolicy):
    """The thrash-prone baseline: no admission control at all.  Every
    process that can get a single frame gets in, at an even share of
    total memory over everything admitted *or waiting*.  Under heavy
    traffic that share collapses toward one frame per process, every
    reference faults, and throughput falls off the classic thrashing
    cliff — the figure Denning's load-control line of work exists to
    prevent."""

    name = "uncontrolled"

    def allocation_for(self, profile, free, total, admitted, waiting=0):
        if free < 1:
            return None
        share = max(1, total // (admitted + waiting + 1))
        return max(1, min(share, free, profile.distinct or 1))


class KneeAdmission(AdmissionPolicy):
    """Denning knee-based load control: each process runs at the knee
    of its lifetime curve (the allocation maximizing g(m)/m), and
    nothing is admitted past the pool."""

    name = "knee"

    def allocation_for(self, profile, free, total, admitted, waiting=0):
        want = max(1, min(profile.knee_frames, profile.distinct or 1, total))
        return want if want <= free else None


class WSAdmission(AdmissionPolicy):
    """Working-set-estimate control: reserve the process's mean WS
    size at the control window; defer when it does not fit."""

    name = "ws"

    def allocation_for(self, profile, free, total, admitted, waiting=0):
        want = max(1, min(profile.ws_frames, profile.distinct or 1, total))
        return want if want <= free else None


class CDAdmission(AdmissionPolicy):
    """Compiler-directed control: admission is sized by the program's
    own ALLOCATE chain.  Figure 6's else-chain is walked top-down and
    the largest request that fits is granted — never an in-between
    amount, which would size the process for no locality the compiler
    named and leave it faulting on every iteration.  When even the
    PI=1 must-have does not fit, the paper's swapper may suspend a
    strictly larger resident process ("the swapper is never invoked by
    a request whose priority is > 1")."""

    name = "cd"

    def allocation_for(self, profile, free, total, admitted, waiting=0):
        need = max(1, min(profile.cd_min_frames, total))
        if free < need:
            return None
        chain = profile.cd_chain or (profile.cd_pref_frames,)
        for size in chain:  # descending: first fit is the largest fit
            grant = max(need, min(size, total))
            if grant <= free:
                return grant
        return need

    def min_frames(self, profile, total):
        return max(1, min(profile.cd_min_frames, total))

    def preemption_victim(self, profile, need, candidates):
        # Swap the largest allocation, but only for a strictly smaller
        # newcomer: total demand drops monotonically, so preemption
        # cannot ping-pong.
        eligible = [p for p in candidates if p.allocation > need]
        if not eligible:
            return None
        return max(eligible, key=lambda p: (p.allocation, p.name))


#: name -> policy class; the registry `repro multiprog --policies` and
#: the load-control experiment draw from.
ADMISSION_POLICIES: Dict[str, type] = {
    cls.name: cls
    for cls in (UncontrolledAdmission, KneeAdmission, WSAdmission, CDAdmission)
}


def admission_policy(spec: Union[str, AdmissionPolicy]) -> AdmissionPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(spec, AdmissionPolicy):
        return spec
    try:
        return ADMISSION_POLICIES[spec]()
    except KeyError:
        known = ", ".join(sorted(ADMISSION_POLICIES))
        raise ValueError(
            f"unknown admission policy {spec!r}; known: {known}"
        ) from None


# -- the event-driven pool -----------------------------------------------------


class PoolState(enum.Enum):
    DEFERRED = "deferred"  # waiting for admission (or re-admission)
    READY = "ready"  # admitted, waiting for a CPU
    RUNNING = "running"  # executing a compute burst
    BLOCKED = "blocked"  # waiting out a page-fault service
    SUSPENDED = "suspended"  # preempted: zero frames, back in the queue
    DONE = "done"


@dataclass
class PoolProcessRecord:
    """Per-process outcome, kept after the process object is retired."""

    name: str
    program: str
    arrival: int
    admit_time: Optional[int]
    finish_time: Optional[int]
    references: int
    faults: int
    allocation: int  # last granted allocation
    deferrals: int
    suspensions: int
    service: int  # total references the job would execute

    @property
    def response_time(self) -> Optional[int]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival

    @property
    def slowdown(self) -> Optional[float]:
        response = self.response_time
        if response is None or self.service == 0:
            return None
        return response / self.service


class _PoolProc:
    """Mutable per-process scheduler state."""

    __slots__ = (
        "name",
        "profile",
        "arrival",
        "state",
        "position",
        "flush",
        "allocation",
        "faults",
        "deferrals",
        "suspensions",
        "admit_time",
        "finish_time",
        "refs_executed",
        "_burst",
    )

    def __init__(self, name: str, profile: JobProfile, arrival: int):
        self.name = name
        self.profile = profile
        self.arrival = arrival
        self.state = PoolState.DEFERRED
        self.position = 0
        self.flush = 0
        self.allocation = 0
        self.faults = 0
        self.deferrals = 0
        self.suspensions = 0
        self.admit_time: Optional[int] = None
        self.finish_time: Optional[int] = None
        self.refs_executed = 0

    def record(self) -> PoolProcessRecord:
        return PoolProcessRecord(
            name=self.name,
            program=self.profile.name,
            arrival=self.arrival,
            admit_time=self.admit_time,
            finish_time=self.finish_time,
            references=self.refs_executed,
            faults=self.faults,
            allocation=self.allocation,
            deferrals=self.deferrals,
            suspensions=self.suspensions,
            service=self.profile.length,
        )


@dataclass
class PoolResult:
    """Aggregate outcome of one load-controlled pool run."""

    policy: str
    total_frames: int
    cpus: int
    elapsed: int
    arrivals: int
    completed: int
    executed_refs: int
    faults: int
    deferrals: int
    suspensions: int
    peak_admitted: int
    frame_time: float  # ∫ frames_used dt
    busy_time: float  # ∫ busy CPUs dt
    records: List[PoolProcessRecord]
    violations: List[str]

    @property
    def throughput(self) -> float:
        """References executed per unit of virtual time (≤ cpus)."""
        if self.elapsed == 0:
            return 0.0
        return self.executed_refs / self.elapsed

    @property
    def normalized_throughput(self) -> float:
        """Throughput as a fraction of total CPU capacity."""
        if self.cpus == 0:
            return 0.0
        return self.throughput / self.cpus

    @property
    def job_throughput(self) -> float:
        if self.elapsed == 0:
            return 0.0
        return self.completed / self.elapsed

    @property
    def utilization(self) -> float:
        """Mean fraction of the frame pool reserved by admitted work."""
        if self.elapsed == 0 or self.total_frames == 0:
            return 0.0
        return self.frame_time / (self.elapsed * self.total_frames)

    def response_times(self) -> List[int]:
        return [
            r.response_time
            for r in self.records
            if r.response_time is not None
        ]

    @property
    def mean_response(self) -> float:
        times = self.response_times()
        return float(np.mean(times)) if times else float("inf")

    @property
    def p95_response(self) -> float:
        times = self.response_times()
        return float(np.percentile(times, 95)) if times else float("inf")

    @property
    def mean_slowdown(self) -> float:
        downs = [r.slowdown for r in self.records if r.slowdown is not None]
        return float(np.mean(downs)) if downs else float("inf")

    def describe(self) -> str:
        return (
            f"{self.policy}: {self.completed}/{self.arrivals} jobs over "
            f"{self.elapsed} time units; thru={self.normalized_throughput:.3f} "
            f"resp={self.mean_response:.0f} faults={self.faults} "
            f"susp={self.suspensions} util={self.utilization:.2f}"
        )


class LoadControlledPool:
    """Event-driven multiprogramming over a shared frame pool.

    ``arrivals`` is a time-ordered sequence of ``(time, profile)``
    pairs (see :func:`poisson_arrivals`).  ``cpus`` processors execute
    compute bursts of up to ``quantum`` references; a page fault ends
    the burst and blocks the process for ``fault_service`` time units
    (service is overlapped — other processes keep the CPUs busy).
    Admission, deferral, suspension, and resumption are delegated to
    the :class:`AdmissionPolicy`; every decision is traced through
    ``repro.obs`` (Admit/Defer/Suspend/Resume/Depart/PoolSample).

    Memory is conserved *by construction*: a grant is debited from the
    free count at admission, credited back at departure or suspension,
    and never exceeds the free count.  :meth:`run` returns a
    :class:`PoolResult` whose ``violations`` list any breach the
    internal audit observed (it stays empty; the oracle asserts so).
    """

    def __init__(
        self,
        arrivals: Iterable[Tuple[int, JobProfile]],
        total_frames: int,
        policy: Union[str, AdmissionPolicy] = "knee",
        *,
        cpus: int = 1,
        quantum: int = 2000,
        fault_service: int = FAULT_SERVICE_REFERENCES,
        horizon: Optional[int] = None,
        tracer=None,
        sample_interval: int = 5000,
        max_events: Optional[int] = None,
    ):
        if total_frames < 1:
            raise ValueError("total_frames must be positive")
        if cpus < 1:
            raise ValueError("cpus must be positive")
        if quantum < 1:
            raise ValueError("quantum must be positive")
        if sample_interval < 1:
            raise ValueError("sample_interval must be positive")
        self.total_frames = total_frames
        self.policy = admission_policy(policy)
        self.cpus = cpus
        self.quantum = quantum
        self.fault_service = fault_service
        self.horizon = horizon
        self.tracer = tracer
        self.sample_interval = sample_interval
        self.clock = 0
        self.frames_used = 0
        self._procs: List[_PoolProc] = []
        self._ready: "deque[_PoolProc]" = deque()
        self._deferred: "deque[_PoolProc]" = deque()
        self._idle_cpus = cpus
        self._heap: List[tuple] = []
        self._seq = 0
        self._violations: List[str] = []
        self._frame_time = 0.0
        self._busy_time = 0.0
        self._last_t = 0
        self._next_sample = 0
        self._faults = 0
        self._deferrals = 0
        self._suspensions = 0
        self._completed = 0
        self._executed = 0
        self._peak_admitted = 0
        arrivals = sorted(arrivals, key=lambda a: a[0])
        for k, (when, profile) in enumerate(arrivals):
            proc = _PoolProc(f"{profile.name}#{k}", profile, int(when))
            self._procs.append(proc)
            self._push(int(when), "arrive", proc)
        if max_events is None:
            # worst case every reference faults: one burst + one wake
            # per reference, plus the arrival itself
            budget = sum(2 * p.length + 8 for _, p in arrivals)
            max_events = max(100_000, 4 * budget)
        self.max_events = max_events

    # -- plumbing ------------------------------------------------------------

    def _push(self, when: int, action: str, proc: Optional[_PoolProc]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, action, proc))

    def _emit(self, event) -> None:
        if self.tracer is not None:
            self.tracer.emit(event)

    def _advance_time(self, now: int) -> None:
        dt = now - self._last_t
        if dt > 0:
            self._frame_time += self.frames_used * dt
            self._busy_time += (self.cpus - self._idle_cpus) * dt
            self._last_t = now
        self.clock = now
        if self.tracer is not None and now >= self._next_sample:
            self._sample()
            self._next_sample = now + self.sample_interval

    def _sample(self) -> None:
        from repro.obs.events import PoolSample

        census: Dict[PoolState, int] = {}
        for proc in self._procs:
            if proc.arrival > self.clock:
                continue  # not in the system yet
            census[proc.state] = census.get(proc.state, 0) + 1
        admitted = (
            census.get(PoolState.READY, 0)
            + census.get(PoolState.RUNNING, 0)
            + census.get(PoolState.BLOCKED, 0)
        )
        self._emit(
            PoolSample(
                time=self.clock,
                used=self.frames_used,
                free=self.total_frames - self.frames_used,
                admitted=admitted,
                deferred=census.get(PoolState.DEFERRED, 0),
                suspended=census.get(PoolState.SUSPENDED, 0),
            )
        )

    @property
    def frames_free(self) -> int:
        return self.total_frames - self.frames_used

    def _admitted_count(self) -> int:
        return sum(
            1
            for p in self._procs
            if p.state
            in (PoolState.READY, PoolState.RUNNING, PoolState.BLOCKED)
        )

    # -- admission -----------------------------------------------------------

    def _try_admit(self, proc: _PoolProc, fresh: bool) -> bool:
        from repro.obs.events import Admit, Resume

        grant = self.policy.allocation_for(
            proc.profile, self.frames_free, self.total_frames,
            self._admitted_count(), waiting=len(self._deferred),
        )
        if grant is None and fresh:
            grant = self._preempt_for(proc)
        if grant is None:
            return False
        grant = max(1, min(grant, self.frames_free))
        if grant > self.frames_free:  # structurally impossible; audit anyway
            self._violations.append(
                f"grant {grant} exceeds free {self.frames_free}"
            )
            return False
        resumed = proc.suspensions > 0
        self.frames_used += grant
        proc.allocation = grant
        proc.state = PoolState.READY
        if proc.admit_time is None:
            proc.admit_time = self.clock
        self._ready.append(proc)
        self._peak_admitted = max(self._peak_admitted, self._admitted_count())
        if resumed:
            self._emit(Resume(time=self.clock, proc=proc.name))
        self._emit(
            Admit(
                time=self.clock,
                proc=proc.name,
                frames=grant,
                waited=self.clock - proc.arrival,
            )
        )
        self._check_frames()
        return True

    def _preempt_for(self, proc: _PoolProc) -> Optional[int]:
        """CD-style swapper: suspend a larger resident process so this
        one's must-have request fits.  Returns the grant or None."""
        need = self.policy.min_frames(proc.profile, self.total_frames)
        candidates = [
            p
            for p in self._procs
            if p.state in (PoolState.READY, PoolState.BLOCKED)
            and p.suspensions == 0
        ]
        victim = self.policy.preemption_victim(proc.profile, need, candidates)
        if victim is None:
            return None
        self._suspend(victim)
        if self.frames_free >= need:
            return need
        return None

    def _suspend(self, victim: _PoolProc) -> None:
        from repro.obs.events import Suspend

        released = victim.allocation
        self.frames_used -= released
        victim.allocation = 0
        victim.flush = victim.position  # resident set is lost
        victim.suspensions += 1
        self._suspensions += 1
        if victim.state is PoolState.READY:
            self._ready.remove(victim)
            victim.state = PoolState.SUSPENDED
            self._deferred.appendleft(victim)
        else:  # BLOCKED: its wake event re-routes it to the queue
            victim.state = PoolState.SUSPENDED
        self._emit(
            Suspend(
                time=self.clock,
                reason="preempt",
                proc=victim.name,
                frames=released,
            )
        )
        self._check_frames()

    def _drain_deferred(self) -> None:
        """FIFO re-admission: stop at the first process that still
        does not fit (head-of-line order is what keeps knee-based
        control from dribbling tiny grants under pressure)."""
        while self._deferred:
            head = self._deferred[0]
            if not self._try_admit(head, fresh=False):
                break
            self._deferred.popleft()

    def _defer(self, proc: _PoolProc, reason: str) -> None:
        from repro.obs.events import Defer

        proc.state = PoolState.DEFERRED
        proc.deferrals += 1
        self._deferrals += 1
        self._deferred.append(proc)
        self._emit(
            Defer(
                time=self.clock,
                proc=proc.name,
                frames=self.policy.min_frames(
                    proc.profile, self.total_frames
                ),
                reason=reason,
            )
        )

    # -- execution -----------------------------------------------------------

    def _refs_until_fault(self, proc: _PoolProc) -> Optional[int]:
        """Offset (from the current position) of the next faulting
        reference within this burst's lookahead, or None."""
        profile = proc.profile
        start = proc.position
        limit = min(profile.length, start + self.quantum)
        m = proc.allocation
        f = proc.flush
        chunk = 4096
        lo = start
        while lo < limit:
            hi = min(limit, lo + chunk)
            mask = (profile.distances[lo:hi] > m) | (profile.prev[lo:hi] < f)
            hits = np.flatnonzero(mask)
            if hits.size:
                return int(lo - start + hits[0])
            lo = hi
        return None

    def _dispatch(self) -> None:
        while self._idle_cpus > 0 and self._ready:
            proc = self._ready.popleft()
            if proc.state is not PoolState.READY:
                continue  # retired while queued
            stop = self._refs_until_fault(proc)
            remaining = proc.profile.length - proc.position
            if stop is None:
                burst = min(self.quantum, remaining)
                faulted = False
            else:
                burst = stop + 1  # run the hits, then the faulting ref
                faulted = True
            proc.state = PoolState.RUNNING
            self._idle_cpus -= 1
            self._push(self.clock + burst, "burst", proc)
            # stash burst metadata on the proc (one burst in flight max)
            proc._burst = (burst, faulted)  # type: ignore[attr-defined]

    def _finish_burst(self, proc: _PoolProc) -> None:
        burst, faulted = proc._burst  # type: ignore[attr-defined]
        self._idle_cpus += 1
        proc.position += burst
        proc.refs_executed += burst
        self._executed += burst
        if faulted:
            proc.faults += 1
            self._faults += 1
            proc.state = PoolState.BLOCKED
            self._push(self.clock + self.fault_service, "wake", proc)
            return
        if proc.position >= proc.profile.length:
            self._depart(proc)
            return
        proc.state = PoolState.READY
        self._ready.append(proc)

    def _wake(self, proc: _PoolProc) -> None:
        if proc.state is PoolState.SUSPENDED:
            # Preempted while its fault was in service: it joins the
            # queue only now that the page-in completed.
            self._deferred.appendleft(proc)
            return
        if proc.position >= proc.profile.length:
            self._depart(proc)
            return
        proc.state = PoolState.READY
        self._ready.append(proc)

    def _depart(self, proc: _PoolProc) -> None:
        from repro.obs.events import Depart

        released = proc.allocation
        self.frames_used -= released
        proc.state = PoolState.DONE
        proc.finish_time = self.clock
        self._completed += 1
        self._emit(
            Depart(
                time=self.clock,
                proc=proc.name,
                frames=released,
                refs=proc.refs_executed,
                faults=proc.faults,
            )
        )
        self._check_frames()
        self._drain_deferred()

    def _check_frames(self) -> None:
        if not 0 <= self.frames_used <= self.total_frames:
            self._violations.append(
                f"t={self.clock}: frames_used={self.frames_used} "
                f"outside [0, {self.total_frames}]"
            )

    # -- main loop -----------------------------------------------------------

    def run(self) -> PoolResult:
        events = 0
        while self._heap:
            when = self._heap[0][0]
            if self.horizon is not None and when > self.horizon:
                break
            events += 1
            if events > self.max_events:
                raise RuntimeError(
                    f"pool exceeded its event budget ({self.max_events}); "
                    "lower the load or raise max_events"
                )
            when, _seq, action, proc = heapq.heappop(self._heap)
            self._advance_time(when)
            if action == "arrive":
                if not self._try_admit(proc, fresh=True):
                    self._defer(proc, reason="no-frames")
            elif action == "burst":
                self._finish_burst(proc)
            elif action == "wake":
                self._wake(proc)
            self._dispatch()
        if self.horizon is not None:
            elapsed = self.horizon
            self._advance_time(self.horizon)
        else:
            elapsed = self.clock
        self._audit()
        return PoolResult(
            policy=self.policy.name,
            total_frames=self.total_frames,
            cpus=self.cpus,
            elapsed=elapsed,
            arrivals=len(self._procs),
            completed=self._completed,
            executed_refs=self._executed,
            faults=self._faults,
            deferrals=self._deferrals,
            suspensions=self._suspensions,
            peak_admitted=self._peak_admitted,
            frame_time=self._frame_time,
            busy_time=self._busy_time,
            records=[p.record() for p in self._procs],
            violations=list(self._violations),
        )

    def _audit(self) -> None:
        """Closing conservation audit (the oracle asserts it is clean)."""
        reserved = 0
        for proc in self._procs:
            if proc.state in (
                PoolState.READY,
                PoolState.RUNNING,
                PoolState.BLOCKED,
            ):
                reserved += proc.allocation
            elif proc.state in (PoolState.SUSPENDED, PoolState.DEFERRED):
                if proc.allocation != 0:
                    self._violations.append(
                        f"{proc.name}: {proc.state.value} but holds "
                        f"{proc.allocation} frame(s)"
                    )
        if reserved != self.frames_used:
            self._violations.append(
                f"ledger says {self.frames_used} frames used but admitted "
                f"processes hold {reserved}"
            )


def poisson_arrivals(
    profiles: Sequence[JobProfile],
    load: float,
    horizon: int,
    seed: int = 0,
    cpus: int = 1,
) -> List[Tuple[int, JobProfile]]:
    """A stochastic arrival stream at offered load ``load``.

    Offered load is normalized CPU demand: λ·E[service]/cpus, so
    ``load=1.0`` saturates the processors when memory never stalls.
    The stream is a seeded Poisson process over a uniform job mix —
    the same ``(seed, load)`` always yields the same stream, which is
    what makes policy comparisons paired.
    """
    if not profiles:
        return []
    if load <= 0:
        raise ValueError("load must be positive")
    if horizon < 1:
        raise ValueError("horizon must be positive")
    rng = random.Random(seed)
    mean_service = sum(p.length for p in profiles) / len(profiles)
    rate = load * cpus / max(mean_service, 1.0)
    out: List[Tuple[int, JobProfile]] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t > horizon:
            break
        out.append((int(t), rng.choice(profiles)))
    return out
