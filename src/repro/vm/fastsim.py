"""Closed-form CD replay for the uniprogrammed, lock-free case.

The paper's main experiments run CD with no physical-memory ceiling and
no LOCK directives.  Under those conditions the policy degenerates to
*LRU with a piecewise-constant allocation target*: the resident set is
always the top ``r`` entries of the global LRU stack, where ``r`` grows
by one per fault up to the current target and is clamped down whenever
an ALLOCATE grants less.  A reference faults iff its LRU stack distance
exceeds the current ``r`` — and stack distances are computed once per
trace (shared with :class:`~repro.vm.analyzers.LRUSweep`), so replaying
a directive set costs one pass over the *segments* between directives
instead of one Python-level step per reference.

Every number produced here is exactly equal to driving
:class:`~repro.vm.policies.cd.CDPolicy` through
:func:`~repro.vm.simulator.simulate` (asserted by the test suite); the
event-driven pair remains the reference implementation and handles the
general case (memory ceilings, LOCK pinning).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.tracegen.events import DirectiveKind, ReferenceTrace
from repro.vm.metrics import FAULT_SERVICE_REFERENCES, SimulationResult
from repro.vm.policies.cd import CDConfig


def cd_fast_applicable(trace: ReferenceTrace, config: CDConfig) -> bool:
    """True when the closed-form replay reproduces the full simulator.

    Requires the uniprogramming assumption (no memory ceiling) and no
    LOCK pinning in play; UNLOCK events without a prior LOCK are inert
    and do not disqualify a trace.
    """
    if config.memory_limit is not None:
        return False
    if config.honor_locks and any(
        d.kind is DirectiveKind.LOCK for d in trace.directives
    ):
        return False
    return True


def _allocation_schedule(
    trace: ReferenceTrace, config: CDConfig
) -> List[Tuple[int, int]]:
    """(position, new_target) per ALLOCATE, mirroring CDPolicy's grant
    rule for the no-ceiling case: the first eligible (outermost) request
    is always affordable."""
    cap = config.pi_cap
    floor = config.min_allocation
    schedule: List[Tuple[int, int]] = []
    for event in trace.directives:
        if event.kind is not DirectiveKind.ALLOCATE:
            continue
        requests = event.requests
        if cap is None:
            granted = requests[0].pages
        else:
            eligible = [r for r in requests if r.priority_index <= cap]
            granted = eligible[0].pages if eligible else requests[-1].pages
        schedule.append((event.position, max(granted, floor)))
    return schedule


def simulate_cd_fast(
    trace: ReferenceTrace,
    config: Optional[CDConfig] = None,
    distances: Optional[np.ndarray] = None,
    fault_service: int = FAULT_SERVICE_REFERENCES,
) -> SimulationResult:
    """Replay ``trace`` under CD without a per-reference loop.

    ``distances`` are the trace's LRU stack distances (cold = huge); pass
    ``LRUSweep(trace)._distances`` — or leave None to compute them here.
    Raises ValueError if :func:`cd_fast_applicable` is False.
    """
    config = config or CDConfig()
    if not cd_fast_applicable(trace, config):
        raise ValueError("trace/config requires the event-driven simulator")
    if distances is None:
        from repro.vm.analyzers import LRUSweep

        distances = LRUSweep(trace)._distances
    n = len(trace.pages)
    d = distances

    # Prefix fault counts per distinct target, built lazily: entry T
    # holds P with P[k] = #references in [0, k) whose distance > T.
    prefix_cache: Dict[int, np.ndarray] = {}

    def prefix(target: int) -> np.ndarray:
        p = prefix_cache.get(target)
        if p is None:
            p = np.empty(n + 1, dtype=np.int64)
            p[0] = 0
            np.cumsum(d > target, out=p[1:])
            prefix_cache[target] = p
        return p

    r = 0  # resident-set size == depth of the LRU-stack prefix held
    target = config.min_allocation
    mem_sum = 0
    fault_space = 0
    faults = 0

    def run_segment(a: int, b: int) -> None:
        nonlocal r, mem_sum, fault_space, faults
        cur = a
        # Ramp phase: below target, each fault grows the residency.
        while r < target and cur < b:
            window = d[cur:b] > r
            hit_run = int(np.argmax(window))
            if not window[hit_run]:
                mem_sum += r * (b - cur)
                return
            mem_sum += r * hit_run
            r = min(r + 1, target)
            mem_sum += r
            fault_space += r * fault_service
            faults += 1
            cur += hit_run + 1
        if cur < b:
            # Saturated: residency pinned at the target for the rest.
            p = prefix(target)
            seg_faults = int(p[b] - p[cur])
            faults += seg_faults
            mem_sum += target * (b - cur)
            fault_space += target * fault_service * seg_faults

    at = 0
    for position, new_target in _allocation_schedule(trace, config):
        position = min(position, n)
        if position > at:
            run_segment(at, position)
            at = position
        target = new_target
        if r > target:
            r = target
    if at < n:
        run_segment(at, n)

    return SimulationResult(
        policy="CD",
        program=trace.program_name,
        page_faults=faults,
        references=n,
        mem_average=mem_sum / n if n else 0.0,
        space_time=float(mem_sum + fault_space),
        parameter=config.pi_cap,
        fault_service=fault_service,
        swaps=0,
        denied_requests=0,
        lock_releases=0,
    )
