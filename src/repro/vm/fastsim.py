"""Closed-form CD replay for the uniprogrammed, lock-free case.

The paper's main experiments run CD with no physical-memory ceiling and
no LOCK directives.  Under those conditions the policy degenerates to
*LRU with a piecewise-constant allocation target*: the resident set is
always the top ``r`` entries of the global LRU stack, where ``r`` grows
by one per fault up to the current target and is clamped down whenever
an ALLOCATE grants less.  A reference faults iff its LRU stack distance
exceeds the current ``r`` — and stack distances are computed once per
trace (shared with :class:`~repro.vm.analyzers.LRUSweep`), so replaying
a directive set costs one pass over the *segments* between directives
instead of one Python-level step per reference.

Every number produced here is exactly equal to driving
:class:`~repro.vm.policies.cd.CDPolicy` through
:func:`~repro.vm.simulator.simulate` (asserted by the test suite); the
event-driven pair remains the reference implementation and handles the
general case (memory ceilings, LOCK pinning).

With a ``tracer`` the replay *synthesizes* the observability events the
event-driven path would emit — one :class:`~repro.obs.Fault` per fault
(with page identity and post-fault residency), ALLOCATE request/grant
events from the directive schedule, and resident-set samples at each
point the (piecewise constant) residency changes — so timelines taken
on the fast path stay comparable with the reference simulator: fault
counts and positions match exactly.  Per-eviction events are not
synthesized (recovering victim identity would need the full LRU stack);
use the event-driven simulator when eviction order matters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.tracegen.events import DirectiveEvent, DirectiveKind, ReferenceTrace
from repro.vm.metrics import FAULT_SERVICE_REFERENCES, SimulationResult
from repro.vm.policies.cd import CDConfig


def cd_fast_applicable(trace: ReferenceTrace, config: CDConfig) -> bool:
    """True when the closed-form replay reproduces the full simulator.

    Requires the uniprogramming assumption (no memory ceiling) and no
    LOCK pinning in play; UNLOCK events without a prior LOCK are inert
    and do not disqualify a trace.
    """
    if config.memory_limit is not None:
        return False
    if config.honor_locks and any(
        d.kind is DirectiveKind.LOCK for d in trace.directives
    ):
        return False
    return True


def _allocation_schedule(
    trace: ReferenceTrace, config: CDConfig
) -> List[Tuple[int, int, object, DirectiveEvent]]:
    """(position, new_target, granted_request, event) per ALLOCATE,
    mirroring CDPolicy's grant rule for the no-ceiling case: the first
    eligible (outermost) request is always affordable."""
    cap = config.pi_cap
    floor = config.min_allocation
    schedule: List[Tuple[int, int, object, DirectiveEvent]] = []
    for event in trace.directives:
        if event.kind is not DirectiveKind.ALLOCATE:
            continue
        requests = event.requests
        if cap is None:
            chosen = requests[0]
        else:
            eligible = [r for r in requests if r.priority_index <= cap]
            chosen = eligible[0] if eligible else requests[-1]
        schedule.append(
            (event.position, max(chosen.pages, floor), chosen, event)
        )
    return schedule


def simulate_cd_fast(
    trace: ReferenceTrace,
    config: Optional[CDConfig] = None,
    distances: Optional[np.ndarray] = None,
    fault_service: int = FAULT_SERVICE_REFERENCES,
    tracer=None,
) -> SimulationResult:
    """Replay ``trace`` under CD without a per-reference loop.

    ``distances`` are the trace's LRU stack distances (cold = huge); pass
    ``LRUSweep(trace)._distances`` — or leave None to compute them here.
    Raises ValueError if :func:`cd_fast_applicable` is False.

    ``tracer`` (optional) receives synthesized Fault/ALLOCATE/sample
    events equivalent to the event-driven path's stream.
    """
    config = config or CDConfig()
    if not cd_fast_applicable(trace, config):
        raise ValueError("trace/config requires the event-driven simulator")
    if distances is None:
        from repro.vm.analyzers import LRUSweep

        distances = LRUSweep(trace)._distances
    n = len(trace.pages)
    d = distances
    if tracer is not None:
        from repro.obs import events as obs

    # Prefix fault counts per distinct target, built lazily: entry T
    # holds P with P[k] = #references in [0, k) whose distance > T.
    prefix_cache: Dict[int, np.ndarray] = {}

    def prefix(target: int) -> np.ndarray:
        p = prefix_cache.get(target)
        if p is None:
            p = np.empty(n + 1, dtype=np.int64)
            p[0] = 0
            np.cumsum(d > target, out=p[1:])
            prefix_cache[target] = p
        return p

    r = 0  # resident-set size == depth of the LRU-stack prefix held
    target = config.min_allocation
    mem_sum = 0
    fault_space = 0
    faults = 0

    def emit_fault(index: int, resident: int) -> None:
        tracer.emit(
            obs.Fault(
                time=index, page=int(trace.pages[index]), resident=resident
            )
        )
        tracer.emit(obs.ResidentSample(time=index, resident=resident))

    def run_segment(a: int, b: int) -> None:
        nonlocal r, mem_sum, fault_space, faults
        cur = a
        # Ramp phase: below target, each fault grows the residency.
        while r < target and cur < b:
            window = d[cur:b] > r
            hit_run = int(np.argmax(window))
            if not window[hit_run]:
                mem_sum += r * (b - cur)
                return
            mem_sum += r * hit_run
            r = min(r + 1, target)
            mem_sum += r
            fault_space += r * fault_service
            faults += 1
            if tracer is not None:
                emit_fault(cur + hit_run, r)
            cur += hit_run + 1
        if cur < b:
            # Saturated: residency pinned at the target for the rest.
            p = prefix(target)
            seg_faults = int(p[b] - p[cur])
            faults += seg_faults
            mem_sum += target * (b - cur)
            fault_space += target * fault_service * seg_faults
            if tracer is not None and seg_faults:
                for index in np.nonzero(d[cur:b] > target)[0]:
                    emit_fault(cur + int(index), target)

    at = 0
    for position, new_target, granted, event in _allocation_schedule(
        trace, config
    ):
        position = min(position, n)
        if position > at:
            run_segment(at, position)
            at = position
        target = new_target
        if tracer is not None:
            tracer.emit(
                obs.AllocateRequest(
                    time=position,
                    site=event.site,
                    requests=tuple(
                        (q.priority_index, q.pages) for q in event.requests
                    ),
                )
            )
            tracer.emit(
                obs.AllocateGrant(
                    time=position,
                    site=event.site,
                    pages=granted.pages,
                    priority_index=granted.priority_index,
                    target=new_target,
                )
            )
        if r > target:
            r = target
            if tracer is not None:
                tracer.emit(obs.ResidentSample(time=position, resident=r))
    if at < n:
        run_segment(at, n)

    return SimulationResult(
        policy="CD",
        program=trace.program_name,
        page_faults=faults,
        references=n,
        mem_average=mem_sum / n if n else 0.0,
        space_time=float(mem_sum + fault_space),
        parameter=config.pi_cap,
        fault_service=fault_service,
        swaps=0,
        denied_requests=0,
        lock_releases=0,
    )
