"""Bounded Locality Intervals: empirical phase detection over traces.

The paper grounds its compiler analysis in the Madison–Batson BLI model
[MaBa76]: program behavior decomposes into a *hierarchy* of locality
intervals, each with a length (duration), a virtual size (distinct
pages), and a level (depth in the hierarchy) — and for numerical
programs those intervals "can always be associated with iterative
structures" [Malk82].

This module detects locality intervals *empirically* from a reference
string, independently of the compiler: the activity set over a sliding
window is tracked, and an interval boundary is declared where the
activity set turns over (Jaccard similarity against the interval's
running locality set falls below a threshold).  Running the detector at
several window scales produces the hierarchical structure: coarse
windows see the outer-loop localities, fine windows the inner ones.

The point of having this in the reproduction: it closes the paper's
core loop.  The compiler *predicts* locality sizes from source (the X
arguments of ALLOCATE); the detector *measures* them from the trace;
``compare_with_predictions`` checks the two against each other, which
is exactly the premise — "A fair amount of run time behavior can be
predicted from the high level source code."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Union

import numpy as np

from repro.tracegen.events import DirectiveKind, ReferenceTrace

PagesLike = Union[ReferenceTrace, np.ndarray, List[int]]


@dataclass(frozen=True)
class LocalityInterval:
    """One detected locality interval.

    ``level`` indexes the window scale it was detected at (0 = finest);
    the paper's three quantitative parameters map directly:
    *length* = ``end − start``, *virtual size* = ``len(pages)``,
    *level* = ``level``.
    """

    start: int  # first reference index of the interval
    end: int  # one past the last reference index
    pages: FrozenSet[int]
    level: int

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def size(self) -> int:
        return len(self.pages)


class BLIAnalyzer:
    """Detects locality intervals at one or more window scales."""

    def __init__(
        self,
        trace_or_pages: PagesLike,
        windows: Sequence[int] = (64, 512, 4096),
        similarity_threshold: float = 0.4,
        min_length: Optional[int] = None,
    ):
        if isinstance(trace_or_pages, ReferenceTrace):
            self.pages = trace_or_pages.pages
        else:
            self.pages = np.asarray(trace_or_pages, dtype=np.int32)
        if not windows:
            raise ValueError("need at least one window scale")
        if any(w < 1 for w in windows):
            raise ValueError("window scales must be positive")
        if not 0.0 < similarity_threshold < 1.0:
            raise ValueError("similarity_threshold must be in (0, 1)")
        self.windows = sorted(windows)
        self.similarity_threshold = similarity_threshold
        self.min_length = min_length
        self._levels: Dict[int, List[LocalityInterval]] = {}

    # -- detection --------------------------------------------------------

    def intervals(self, level: int = 0) -> List[LocalityInterval]:
        """Locality intervals at one scale (0 = finest window)."""
        if level not in range(len(self.windows)):
            raise ValueError(f"level must be in 0..{len(self.windows) - 1}")
        if level not in self._levels:
            self._levels[level] = self._detect(level)
        return self._levels[level]

    def all_intervals(self) -> List[LocalityInterval]:
        """Every interval across every scale, ordered by (level, start)."""
        result: List[LocalityInterval] = []
        for level in range(len(self.windows)):
            result.extend(self.intervals(level))
        return result

    def _detect(self, level: int) -> List[LocalityInterval]:
        window = self.windows[level]
        n = len(self.pages)
        if n == 0:
            return []
        min_length = self.min_length if self.min_length is not None else window
        boundaries = self._find_boundaries(window, min_length)
        cuts = [0] + boundaries + [n]
        intervals: List[LocalityInterval] = []
        for start, end in zip(cuts, cuts[1:]):
            if start >= end:
                continue
            pages = frozenset(int(p) for p in self.pages[start:end])
            intervals.append(
                LocalityInterval(start=start, end=end, pages=pages, level=level)
            )
        return intervals

    def _find_boundaries(self, window: int, min_length: int) -> List[int]:
        """Phase boundaries: positions where the page set of the last
        ``window`` references and that of the next ``window`` references
        diverge (Jaccard below the threshold).  Runs of low-similarity
        positions collapse to their minimum; boundaries closer than
        ``min_length`` to the previous one are suppressed."""
        n = len(self.pages)
        # Fine stride: a boundary sampled up to window/16 off its true
        # position still shows a deep similarity dip.
        step = max(1, window // 8)
        candidates: List[tuple] = []  # (position, similarity)
        position = window
        while position + 1 <= n - 1:
            left = set(int(p) for p in self.pages[position - window : position])
            right = set(int(p) for p in self.pages[position : position + window])
            union = left | right
            similarity = len(left & right) / len(union) if union else 1.0
            candidates.append((position, similarity))
            position += step
        boundaries: List[int] = []
        run: List[tuple] = []

        def flush_run() -> None:
            if not run:
                return
            best_pos = min(run, key=lambda item: item[1])[0]
            previous = boundaries[-1] if boundaries else 0
            if best_pos - previous >= min_length:
                boundaries.append(best_pos)
            run.clear()

        for pos, similarity in candidates:
            if similarity < self.similarity_threshold:
                run.append((pos, similarity))
            else:
                flush_run()
        flush_run()
        return boundaries

    # -- reporting ------------------------------------------------------------

    def mean_size(self, level: int = 0) -> float:
        """Time-weighted mean locality size at one scale."""
        ivs = self.intervals(level)
        total_time = sum(iv.length for iv in ivs)
        if total_time == 0:
            return 0.0
        return sum(iv.size * iv.length for iv in ivs) / total_time

    def summary(self) -> str:
        lines = [f"BLI analysis over {len(self.pages)} references:"]
        for level, window in enumerate(self.windows):
            ivs = self.intervals(level)
            if not ivs:
                lines.append(f"  level {level} (w={window}): no intervals")
                continue
            sizes = [iv.size for iv in ivs]
            lengths = [iv.length for iv in ivs]
            lines.append(
                f"  level {level} (w={window}): {len(ivs)} intervals, "
                f"size avg {self.mean_size(level):.1f} "
                f"(min {min(sizes)}, max {max(sizes)}), "
                f"length avg {sum(lengths) / len(lengths):.0f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PredictionComparison:
    """Compiler-predicted vs trace-detected locality sizes."""

    program: str
    predicted_mean: float  # time-weighted mean granted ALLOCATE size
    detected_mean: float  # time-weighted mean BLI size (finest level)
    ratio: float  # detected / predicted

    def describe(self) -> str:
        return (
            f"{self.program}: compiler predicted {self.predicted_mean:.1f} "
            f"pages, trace shows {self.detected_mean:.1f} pages "
            f"(ratio {self.ratio:.2f})"
        )


def compare_with_predictions(
    trace: ReferenceTrace,
    level: int = 0,
    windows: Sequence[int] = (64, 512, 4096),
) -> PredictionComparison:
    """Check the compiler's ALLOCATE sizes against detected BLI sizes.

    The prediction stream is reconstructed from the trace's ALLOCATE
    events: between consecutive events the prediction is the *innermost*
    request of the latest directive (the locality of the loop about to
    run); the comparison weights each prediction by the number of
    references it covers.
    """
    events = [d for d in trace.directives if d.kind is DirectiveKind.ALLOCATE]
    if not events:
        raise ValueError("trace carries no ALLOCATE events to compare against")
    weighted = 0.0
    total = 0
    for i, event in enumerate(events):
        end = events[i + 1].position if i + 1 < len(events) else trace.length
        span = max(0, end - event.position)
        weighted += event.requests[-1].pages * span
        total += span
    predicted = weighted / total if total else 0.0
    analyzer = BLIAnalyzer(trace, windows=windows)
    detected = analyzer.mean_size(level)
    ratio = detected / predicted if predicted else float("inf")
    return PredictionComparison(
        program=trace.program_name,
        predicted_mean=predicted,
        detected_mean=detected,
        ratio=ratio,
    )
