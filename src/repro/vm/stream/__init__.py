"""Native-speed streaming simulation core.

One pass over a chunked trace replays many policies at once:

>>> from repro.vm.stream import StreamRequest, stream_simulate
>>> lru, fifo = stream_simulate(trace, [StreamRequest.lru(32),
...                                     StreamRequest.fifo(32)])

Results are exactly equal to the event-driven
:func:`repro.vm.simulator.simulate` (the oracle's ``stream-*`` checks
assert it).  Traces may be in RAM (:class:`ReferenceTrace`) or on disk
in the sharded format (:func:`repro.tracegen.io.open_sharded_trace`),
in which case peak memory is bounded by the chunk size regardless of
trace length.
"""

from repro.vm.stream.chunks import (
    DEFAULT_CHUNK_SIZE,
    MAX_CHUNK_SIZE,
    TraceChunk,
    TraceChunks,
    as_chunk_source,
)
from repro.vm.stream.engine import (
    StreamEngine,
    StreamFallback,
    StreamRequest,
    cd_streamable,
    stream_simulate,
)
from repro.vm.stream.kernels import (
    BackendUnavailable,
    ChunkScan,
    StreamCarry,
    numba_available,
    resolve_backend,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "MAX_CHUNK_SIZE",
    "TraceChunk",
    "TraceChunks",
    "as_chunk_source",
    "StreamEngine",
    "StreamFallback",
    "StreamRequest",
    "cd_streamable",
    "stream_simulate",
    "BackendUnavailable",
    "ChunkScan",
    "StreamCarry",
    "numba_available",
    "resolve_backend",
]
