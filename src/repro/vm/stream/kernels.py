"""Vectorized per-chunk kernels for the streaming simulation core.

One shared scan (:class:`ChunkScan`) per trace chunk feeds every policy
state machine in the one-pass engine.  The scan computes, per
reference, the previous occurrence of the same page (``prev``), the
backward reuse gap, and a cold-miss flag — all against carried
cross-chunk state, so chunking is invisible in the results.

LRU and CD additionally need *stack distances* (number of distinct
pages since the previous occurrence, inclusive).  Computing them for a
whole trace is the job of :class:`repro.vm.analyzers.LRUSweep`; the
streaming engine instead answers sparse *threshold* queries
(``distance > m``?) at the references whose reuse gap exceeds the
allocation, with a block-snapshot decomposition:

* Split the chunk into blocks of ``C`` references and record, at each
  block boundary, the chunk-local last-occurrence position of every
  page (one scatter in page-major order plus a running maximum over
  block rows, then a row sort).
* For a query at ``t`` with in-chunk previous occurrence ``P``,

  ``d(t) = 1 + #{pages whose boundary last-occurrence > P}
         + #{s in [max(block_start, P+1), t) : prev[s] <= P}``

  — the first term (``alive``) is one ``searchsorted`` into the sorted
  snapshot row, the second a flat count over at most ``C`` in-block
  stragglers.  When ``P`` falls inside ``t``'s own block the snapshot
  term vanishes on its own (boundary positions all precede the block).
* Threshold queries rarely need the straggler count at all:
  ``alive <= d - 1 <= alive + window`` brackets the answer, and only
  queries whose bracket straddles the threshold touch the flat path.

References whose previous occurrence precedes the chunk have a
separate exact closed form from the carried state (at most one such
reference per page per chunk), so snapshots stay chunk-local int32.
Every path is exact; block size only trades snapshot memory
(``V`` entries per block) against straggler window length, so it grows
with the page space.  Distances are *defined* only for warm references
(cold misses are infinite); callers filter on ``cold``.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

#: sentinel gap/distance for cold misses (greater than any real value)
INFINITE = np.int64(2**62)

#: clamp for chunk-local ``prev`` values that point before the chunk —
#: below any in-chunk position, so in-chunk comparisons stay exact
_CLAMP = np.int32(-(2**30))

#: default snapshot block size (references per block)
_BLOCK = 128

#: max elements per straggler-window flat batch (bounds peak memory)
_FLAT_BATCH = 1 << 22


class BackendUnavailable(RuntimeError):
    """Raised when an explicitly requested backend cannot be imported."""


def numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to ``"numpy"`` or ``"numba"``.

    Order: explicit ``name`` argument, then the ``REPRO_BACKEND``
    environment variable, then ``auto``.  ``auto`` picks numba when it
    imports and numpy otherwise; asking for numba without it installed
    is an error rather than a silent downgrade.
    """
    choice = (name or os.environ.get("REPRO_BACKEND") or "auto").lower()
    if choice not in ("numpy", "numba", "auto"):
        raise ValueError(
            f"unknown backend {choice!r}: expected numpy, numba, or auto"
        )
    if choice == "auto":
        return "numba" if numba_available() else "numpy"
    if choice == "numba" and not numba_available():
        raise BackendUnavailable(
            "REPRO_BACKEND=numba requested but numba is not importable; "
            "install the 'numba' extra or use numpy/auto"
        )
    return choice


class StreamCarry:
    """Cross-chunk scan state: global last occurrence per page."""

    def __init__(self, total_pages: int):
        self.lastocc = np.full(total_pages, -1, dtype=np.int64)
        self.distinct = 0  # pages seen so far


class ChunkScan:
    """Shared single-scan state over one chunk of the reference string.

    ``pages`` is the chunk's slice of the page string, ``base`` its
    global offset.  Construction updates ``carry`` in place (so scans
    must be built in stream order); a copy of the pre-chunk carry is
    kept for the cross-chunk distance path.
    """

    def __init__(self, pages: np.ndarray, base: int, carry: StreamCarry):
        self.pages = pages
        self.base = base
        self.n = n = len(pages)
        self.total_pages = len(carry.lastocc)
        lastocc = carry.lastocc
        self.lastocc_pre = lastocc.copy()
        self.distinct_before = carry.distinct
        # page-major order; uint16 keys radix-sort faster when V allows
        if self.total_pages <= 0xFFFF:
            order = np.argsort(pages.astype(np.uint16), kind="stable")
        else:
            order = np.argsort(pages, kind="stable")
        self.order = order
        sp = pages[order]
        self.sorted_pages = sp
        first = np.empty(n, dtype=bool)
        if n:
            first[0] = True
            first[1:] = sp[1:] != sp[:-1]
        self.first_sorted = first
        # previous occurrence, built in the sorted domain (the firsts
        # are at most one per page, so one full scatter suffices)
        prev_sorted = np.empty(n, dtype=np.int64)
        if n:
            rep = ~first
            prev_sorted[rep] = base + order[np.flatnonzero(rep) - 1]
            prev_sorted[first] = lastocc[sp[first]]
        prev = np.empty(n, dtype=np.int64)
        prev[order] = prev_sorted
        self.prev = prev
        self.prev_rel = np.clip(prev - base, _CLAMP, None).astype(np.int32)
        self.cold = prev < 0
        # inclusive; int32 cumsum measures ~2x faster than int64 here
        # and chunk lengths stay far below the int32 range
        self.cold_cum = np.cumsum(self.cold, dtype=np.int32)
        gaps = base + np.arange(n, dtype=np.int64) - prev
        np.copyto(gaps, INFINITE, where=self.cold)
        self.gap = gaps
        if n:
            last = np.empty(n, dtype=bool)
            last[:-1] = first[1:]
            last[-1] = True
            self.last_sorted = last
            lastocc[sp[last]] = base + order[last]
            carry.distinct += int(self.cold.sum())
        else:
            self.last_sorted = first
        self._next_local = None
        self._snap = None
        self._cross = None

    # -- derived views ---------------------------------------------------------

    @property
    def next_local(self) -> np.ndarray:
        """Next occurrence of each reference's page within the chunk
        (global position; -1 when the page does not recur here)."""
        if self._next_local is None:
            nxt = np.full(self.n, -1, dtype=np.int64)
            if self.n:
                order = self.order
                rep = np.flatnonzero(~self.first_sorted)
                nxt[order[rep - 1]] = self.base + order[rep]
            self._next_local = nxt
        return self._next_local

    def distinct_inclusive(self) -> np.ndarray:
        """K(t): distinct pages seen up to and including each reference."""
        return self.distinct_before + self.cold_cum

    # -- stack-distance machinery ---------------------------------------------

    @property
    def block_size(self) -> int:
        """Snapshot block size: grows with the page space so snapshot
        memory stays a small multiple of the chunk itself."""
        C = _BLOCK
        while C * 16 < self.total_pages:
            C *= 2
        return C

    def _build_snapshots(self):
        n, C, V = self.n, self.block_size, self.total_pages
        nb = (n + C - 1) // C
        po, sp = self.order, self.sorted_pages
        blk = po // C
        # last position of each (page, block) run: page-major order keeps
        # positions ascending within a page, so run ends carry the max
        boundary = np.empty(n, dtype=bool)
        boundary[:-1] = (sp[1:] != sp[:-1]) | (blk[1:] != blk[:-1])
        boundary[-1] = True
        state = np.full((nb, V), -1, dtype=np.int32)
        # run ends in the last block feed no boundary row (the scatter
        # target would be row nb); drop them instead of branching
        inner = boundary.copy()
        inner[blk == nb - 1] = False
        state[blk[inner] + 1, sp[inner]] = po[inner]
        np.maximum.accumulate(state, axis=0, out=state)
        state.sort(axis=1)
        # row-lift so one flat searchsorted ranks every query in its own
        # block row; int32 when the lifted range allows (2x less memory
        # traffic in the rank search)
        if nb * (n + 2) < 2**31:
            lift = np.int32(n + 2)
            rows = np.arange(nb, dtype=np.int32)[:, None]
        else:
            lift = np.int64(n + 2)
            rows = np.arange(nb, dtype=np.int64)[:, None]
        snap = state + rows * lift
        self._snap = (C, snap.ravel(), lift)
        # prev_rel padded to whole blocks: straggler windows then read
        # contiguous (block, C) rows instead of 2-D index matrices
        relpad = np.empty(nb * C, dtype=np.int32)
        relpad[:n] = self.prev_rel
        self._relpad = relpad.reshape(nb, C)

    def _alive(self, q: np.ndarray, P_rel: np.ndarray) -> np.ndarray:
        """#pages whose last occurrence before ``q``'s block start lies
        strictly after ``P`` (chunk-local positions)."""
        if self._snap is None:
            self._build_snapshots()
        C, snap_flat, lift = self._snap
        blk = q // C
        keys = (P_rel + blk * lift).astype(snap_flat.dtype, copy=False)
        rank = np.searchsorted(snap_flat, keys, side="right")
        return (blk + 1) * self.total_pages - rank

    def _window_counts(self, start, t, P_rel, lens) -> np.ndarray:
        """Exact ``#{s in [start, t) : prev[s] <= P}`` per query.

        Every window lies inside the query's own snapshot block, so
        each query reads one dense ``C``-wide row of ``prev_rel`` and
        masks to its window — pure gathers and compares, no ragged
        bookkeeping (cumsum-based ragged layouts measure several times
        slower than the dense rows they would save).  Batched so peak
        scratch stays bounded by ``_FLAT_BATCH`` elements.
        """
        C = self._snap[0]
        relpad = self._relpad
        out = np.empty(len(t), dtype=np.int64)
        step = max(1, _FLAT_BATCH // C)
        j = np.arange(C, dtype=np.int64)[None, :]
        for b in range(0, len(t), step):
            sl = slice(b, b + step)
            blkq = t[sl] // C
            rows = relpad[blkq]  # contiguous row copies, one per query
            bs = blkq * C
            hit = (
                (j >= (start[sl] - bs)[:, None])
                & (j < (t[sl] - bs)[:, None])
                & (rows <= P_rel[sl, None])
            )
            out[sl] = np.count_nonzero(hit, axis=1)
        return out

    def _build_cross(self):
        pre = self.lastocc_pre
        self._cross_pre = np.sort(pre[pre >= 0])
        xmask = (self.prev >= 0) & (self.prev < self.base)
        xq = np.flatnonzero(xmask)
        self._cross = (xq.astype(np.int64), self.prev[xq])
        # references that first touch their page within this chunk,
        # exclusive prefix count
        firsts = self.prev < self.base
        self._chunk_first_cum = np.concatenate(
            ([0], np.cumsum(firsts, dtype=np.int64))
        )

    def _cross_distances(self, q: np.ndarray) -> np.ndarray:
        """Exact distances for queries whose prev is in an earlier
        chunk: every page alive at the chunk boundary counts unless its
        boundary occurrence is at or before ``P`` and it was not
        re-touched, plus pages first touched in-chunk before ``t``
        (minus those whose pre-chunk occurrence already counted)."""
        if self._cross is None:
            self._build_cross()
        xtime, xprev = self._cross
        P = self.prev[q]
        touched = self._chunk_first_cum[q]
        alive_pre = len(self._cross_pre) - np.searchsorted(
            self._cross_pre, P, side="right"
        )
        if len(xtime):
            dead = (
                (xtime[None, :] < q[:, None]) & (xprev[None, :] > P[:, None])
            ).sum(axis=1)
        else:
            dead = 0
        return 1 + touched + alive_pre - dead

    def distances(self, q: np.ndarray) -> np.ndarray:
        """Exact stack distances at local positions ``q`` (non-cold)."""
        if len(q) == 0:
            return np.empty(0, dtype=np.int64)
        out = np.empty(len(q), dtype=np.int64)
        cross = self.prev[q] < self.base
        cq = np.flatnonzero(cross)
        if len(cq):
            out[cq] = self._cross_distances(q[cq])
        iq = np.flatnonzero(~cross)
        if len(iq):
            qi = q[iq]
            P_rel = self.prev_rel[qi].astype(np.int64)
            alive = self._alive(qi, P_rel)
            C = self._snap[0]
            start = np.maximum((qi // C) * C, P_rel + 1)
            lens = qi - start
            res = 1 + alive
            live = np.flatnonzero(lens > 0)
            if len(live):
                res[live] += self._window_counts(
                    start[live], qi[live], P_rel[live], lens[live]
                )
            out[iq] = res
        return out

    def distance_gt(self, q: np.ndarray, threshold) -> np.ndarray:
        """Boolean ``stack distance > threshold`` at local positions
        ``q`` (non-cold; cold distances are infinite by definition and
        must be handled by the caller).  ``threshold`` is a scalar or
        an array aligned with ``q``.

        ``alive <= d - 1 <= alive + window`` resolves most queries from
        the snapshot rank alone; only bracket-straddlers pay for the
        flat straggler count.
        """
        if len(q) == 0:
            return np.empty(0, dtype=bool)
        thr = np.broadcast_to(np.asarray(threshold, dtype=np.int64), q.shape)
        out = np.empty(len(q), dtype=bool)
        cross = self.prev[q] < self.base
        cq = np.flatnonzero(cross)
        if len(cq):
            out[cq] = self._cross_distances(q[cq]) > thr[cq]
        iq = np.flatnonzero(~cross)
        if len(iq) == 0:
            return out
        qi = q[iq]
        t = thr[iq]
        P_rel = self.prev_rel[qi].astype(np.int64)
        alive = self._alive(qi, P_rel)
        C = self._snap[0]
        start = np.maximum((qi // C) * C, P_rel + 1)
        lens = qi - start
        # d > thr  <=>  alive + stragglers >= thr
        res = alive >= t  # certain: stragglers only add
        undecided = ~res & (alive + lens >= t)
        uq = np.flatnonzero(undecided)
        if len(uq):
            cnt = self._window_counts(
                start[uq], qi[uq], P_rel[uq], lens[uq]
            )
            res[uq] = (alive[uq] + cnt) >= t[uq]
        out[iq] = res
        return out
