"""Chunked trace protocol: bounded-memory iteration over page strings.

A *chunk source* is anything the streaming engine can replay: it
exposes the trace metadata (length, page space, directives, program
name) and yields ``TraceChunk`` views of the page string in order.
Two sources ship here:

* :class:`TraceChunks` adapts an in-RAM :class:`ReferenceTrace`
  (zero-copy slices), so existing call sites stream transparently.
* ``ShardedTrace`` (:mod:`repro.tracegen.io`) adapts the on-disk
  sharded format, where each shard is an mmap-backed ``.npy`` file and
  only the chunk being scanned is ever resident.

Chunk boundaries are invisible in results: the engine carries
cross-chunk state (last occurrences, policy state machines) so any
``chunk_size`` produces byte-identical metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.tracegen.events import DirectiveEvent, ReferenceTrace

#: default references per chunk: large enough to amortize kernel
#: overheads, small enough to keep the scan tables cache-friendly
DEFAULT_CHUNK_SIZE = 1 << 16

#: hard ceiling — the scan's row-lifted merges assume chunk-local
#: positions fit comfortably in the lifted int64 value ranges
MAX_CHUNK_SIZE = 1 << 22


@dataclass(frozen=True)
class TraceChunk:
    """One dense slice of the reference string."""

    pages: np.ndarray  # int32 view, never mutated
    base: int  # global index of pages[0]
    is_last: bool


def _clamp_chunk_size(chunk_size: int) -> int:
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return min(chunk_size, MAX_CHUNK_SIZE)


class TraceChunks:
    """Chunk source over an in-RAM :class:`ReferenceTrace`."""

    def __init__(
        self, trace: ReferenceTrace, chunk_size: int = DEFAULT_CHUNK_SIZE
    ):
        self.trace = trace
        self.chunk_size = _clamp_chunk_size(chunk_size)

    @property
    def program_name(self) -> str:
        return self.trace.program_name

    @property
    def total_pages(self) -> int:
        return self.trace.total_pages

    @property
    def length(self) -> int:
        return self.trace.length

    @property
    def directives(self) -> Sequence[DirectiveEvent]:
        return self.trace.directives

    def chunks(self) -> Iterator[TraceChunk]:
        pages = self.trace.pages
        n = len(pages)
        if n == 0:
            return
        for base in range(0, n, self.chunk_size):
            stop = min(base + self.chunk_size, n)
            yield TraceChunk(
                pages=pages[base:stop], base=base, is_last=stop == n
            )


def as_chunk_source(source, chunk_size: int = None):
    """Coerce ``source`` into a chunk source.

    Accepts a :class:`ReferenceTrace`, an existing chunk source (object
    with ``.chunks()`` plus the metadata properties), or anything with
    a ``.as_chunks(chunk_size)`` adapter (the sharded reader).
    """
    size = DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
    if isinstance(source, ReferenceTrace):
        return TraceChunks(source, size)
    if hasattr(source, "as_chunks"):
        return source.as_chunks(_clamp_chunk_size(size))
    if hasattr(source, "chunks"):
        return source
    raise TypeError(
        f"cannot stream from {type(source).__name__}: expected a "
        "ReferenceTrace, a sharded trace, or a chunk source"
    )


def directive_positions(directives: List[DirectiveEvent]) -> np.ndarray:
    """Directive positions as an int64 array (for boundary bookkeeping)."""
    return np.asarray([d.position for d in directives], dtype=np.int64)
