"""One-pass multi-policy streaming engine.

A single scan of the reference string feeds every requested policy at
once: the shared per-chunk kernel (:class:`~repro.vm.stream.kernels.
ChunkScan`) computes previous-occurrence/reuse-gap state one time, and
per-policy state machines consume it to produce the exact metrics the
event-driven :func:`repro.vm.simulator.simulate` would — faults, MEM,
and ST are byte-identical (asserted by the oracle's ``stream-*``
checks).  Directive events are merged at their recorded positions
exactly as the simulator does: CD's allocation schedule fires before
the reference at each position; LRU/FIFO/WS ignore directives, as
their ``on_directive`` does.

How each policy streams:

* **LRU(m)** — a reference faults iff its stack distance exceeds
  ``m``.  References with reuse gap ≤ m are guaranteed hits (the gap
  bounds the distance), so only the sparse candidate set needs the
  kernel's threshold queries.  Residency is ``min(distinct-so-far, m)``.
* **FIFO(m)** — replayed by *trajectory speculation*: guess the fault
  set (cold ∪ gap > m is exact when no page is re-fetched), derive the
  per-reference last-insertion ordinals the guess implies (one
  segmented scan), and recompute the implied fault set: a reference
  faults iff its page was never inserted or at least ``m`` insertions
  happened since.  A self-consistent trajectory is *the* trajectory
  (induction on the first divergence), and each iteration extends the
  guaranteed-correct prefix, so the loop converges — almost always in
  one round; a bounded iteration cap falls back to an exact
  event-driven replay of the chunk from the carried queue state.
* **WS(τ)** — faults are exactly the references with backward gap > τ;
  the working-set size over time is the coverage count of the
  intervals ``[s, min(s+τ, next(s)))``, accumulated with a difference
  array (carried intervals resolve across chunk boundaries).
* **CD** — streams when the closed-form replay applies (no memory
  ceiling, no honored LOCKs — the paper's main configuration): LRU
  with a piecewise-constant allocation target from the directive
  schedule, ramping by one per fault.  Other configurations raise
  :class:`StreamFallback`; :func:`stream_simulate` transparently runs
  those through the event-driven simulator when the trace is in RAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.tracegen.events import DirectiveEvent, DirectiveKind
from repro.vm.fastsim import _allocation_schedule
from repro.vm.metrics import FAULT_SERVICE_REFERENCES, SimulationResult
from repro.vm.policies.cd import CDConfig
from repro.vm.stream.chunks import as_chunk_source
from repro.vm.stream.kernels import (
    INFINITE,
    ChunkScan,
    StreamCarry,
    resolve_backend,
)


class StreamFallback(RuntimeError):
    """The request needs the event-driven simulator (not streamable)."""


@dataclass(frozen=True)
class StreamRequest:
    """One policy/parameter pair for the one-pass engine."""

    kind: str  # "LRU" | "FIFO" | "WS" | "CD"
    frames: int = 0
    tau: int = 0
    config: Optional[CDConfig] = None

    @staticmethod
    def lru(frames: int) -> "StreamRequest":
        if frames < 1:
            raise ValueError("LRU needs at least one frame")
        return StreamRequest(kind="LRU", frames=frames)

    @staticmethod
    def fifo(frames: int) -> "StreamRequest":
        if frames < 1:
            raise ValueError("FIFO needs at least one frame")
        return StreamRequest(kind="FIFO", frames=frames)

    @staticmethod
    def ws(tau: int) -> "StreamRequest":
        if tau < 1:
            raise ValueError("the WS window must be at least 1")
        return StreamRequest(kind="WS", tau=tau)

    @staticmethod
    def cd(config: Optional[CDConfig] = None) -> "StreamRequest":
        return StreamRequest(kind="CD", config=config or CDConfig())

    def parameter(self):
        if self.kind in ("LRU", "FIFO"):
            return self.frames
        if self.kind == "WS":
            return self.tau
        return self.config.pi_cap

    def label(self) -> str:
        return f"{self.kind}({self.parameter()})"


def cd_streamable(
    config: CDConfig, directives: Sequence[DirectiveEvent]
) -> bool:
    """Mirror of :func:`repro.vm.fastsim.cd_fast_applicable` that works
    from a chunk source's metadata (no materialized trace needed)."""
    if config.memory_limit is not None:
        return False
    if config.honor_locks and any(
        d.kind is DirectiveKind.LOCK for d in directives
    ):
        return False
    return True


class _Base:
    """Shared accumulator plumbing for the numpy state machines."""

    def __init__(self, request, program, fault_service, collect_faults):
        self.request = request
        self.program = program
        self.fault_service = fault_service
        self.collect = collect_faults
        self.faults = 0
        self.mem_sum = 0
        self.fault_mem = 0  # Σ resident-at-fault; × service at finalize
        self.chunk_faults = None  # (positions, resident) when collecting
        self.last_resident = 0

    def _record(self, positions, resident_at_faults):
        if self.collect:
            self.chunk_faults = (positions, resident_at_faults)

    def finalize(self, n: int) -> SimulationResult:
        return SimulationResult(
            policy=self.request.kind,
            program=self.program,
            page_faults=int(self.faults),
            references=n,
            mem_average=self.mem_sum / n if n else 0.0,
            space_time=float(self.mem_sum + self.fault_mem * self.fault_service),
            parameter=self.request.parameter(),
            fault_service=self.fault_service,
        )


class _LRUState(_Base):
    def __init__(self, request, program, fault_service, collect_faults):
        super().__init__(request, program, fault_service, collect_faults)
        self.distinct = 0

    def consume(self, scan: ChunkScan) -> None:
        m = self.request.frames
        n = scan.n
        if n == 0:
            return
        cand = np.flatnonzero(~scan.cold & (scan.gap > m))
        deep = cand[scan.distance_gt(cand, m)]
        cold_pos = np.flatnonzero(scan.cold)
        # resident(t) = min(distinct + cold_cum[t], m) is monotone: sum
        # it in O(crossing point) instead of materializing the array
        cc = scan.cold_cum
        c0 = self.distinct
        idx = int(np.searchsorted(cc, m - c0, side="left"))
        self.mem_sum += c0 * idx + int(cc[:idx].sum(dtype=np.int64))
        self.mem_sum += m * (n - idx)
        self.distinct += len(cold_pos)
        fpos = np.sort(np.concatenate([cold_pos, deep]))
        res_f = np.minimum(c0 + cc[fpos].astype(np.int64), m)
        self.faults += len(fpos)
        self.fault_mem += int(res_f.sum())
        self.last_resident = min(c0 + int(cc[-1]), m)
        self._record(fpos, res_f)


class _FIFOState(_Base):
    """FIFO by whole-trajectory speculation.

    Guess the fault set (cold ∪ gap > m — exact when no page is ever
    re-fetched), derive the insertion ordinals the guess implies with
    one segmented scan, and recompute the implied fault set: a
    reference faults iff its page was never inserted or ≥ m insertions
    happened since its last insertion.  A fixed point is *the* FIFO
    trajectory, and a self-consistent **prefix** is already correct
    (induction on positions: each implied value depends only on
    earlier ones), so on the rare non-convergent chunk (FIFO is not
    stack-based; small frame counts can oscillate) we commit the
    agreeing prefix and replay only the disputed tail exactly.
    """

    FULL_ROUNDS = 6  # typical chunks converge in one
    SUB_ROUNDS = 10
    SUB = 2048

    def __init__(self, request, program, fault_service, collect_faults, V):
        super().__init__(request, program, fault_service, collect_faults)
        self.insertions = 0
        self.last_ordinal = np.zeros(V, dtype=np.int64)  # 0 = never inserted
        self._small_keys = V <= 0xFFFF
        self._inserted = None  # cumsum cache from the converged round

    def consume(self, scan: ChunkScan) -> None:
        n = scan.n
        if n == 0:
            return
        m = self.request.frames
        guess = scan.cold | (scan.gap > m)
        fault = self._speculate(
            scan.pages,
            guess,
            self.FULL_ROUNDS,
            scan.order,
            scan.first_sorted,
            scan.last_sorted,
        )
        if fault is None:
            fault = self._subchunks(scan.pages, guess)
        inserted = self._inserted
        if inserted is None or len(inserted) != n:
            inserted = np.cumsum(fault, dtype=np.int32)
        # resident(t) = min(pre + inserted[t], m) is monotone — same
        # O(crossing point) summation as LRU
        pre = self.insertions - int(inserted[-1])
        idx = int(np.searchsorted(inserted, m - pre, side="left"))
        self.mem_sum += pre * idx + int(inserted[:idx].sum(dtype=np.int64))
        self.mem_sum += m * (n - idx)
        fpos = np.flatnonzero(fault)
        res_f = np.minimum(pre + inserted[fpos].astype(np.int64), m)
        self.faults += len(fpos)
        self.fault_mem += int(res_f.sum())
        self.last_resident = min(pre + int(inserted[-1]), m)
        self._record(fpos, res_f)

    def _speculate(
        self, pages, guess, rounds, order=None, first=None, last=None
    ):
        """Iterate to a fixed point over one slice; commit the carry and
        return the fault vector on convergence, else commit the agreed
        prefix and finish the tail with the exact replay.  ``order``/
        ``first``/``last`` reuse a ChunkScan's sort when available.
        Returns None (no commit) when ``rounds`` runs out and the slice
        is larger than one sub-chunk (caller retries in sub-chunks)."""
        n = len(pages)
        if order is None:
            keys = pages.astype(np.uint16) if self._small_keys else pages
            order = np.argsort(keys, kind="stable")
            sp = pages[order]
            first = np.empty(n, dtype=bool)
            first[0] = True
            first[1:] = sp[1:] != sp[:-1]
            last = np.empty(n, dtype=bool)
            last[:-1] = first[1:]
            last[-1] = True
        else:
            sp = pages[order]
        group = np.cumsum(first, dtype=np.int32)
        group -= 1
        seed = self.last_ordinal[sp]
        big = np.int64(self.insertions + n + 2)
        G = group * big  # per-page lift, fixed across rounds
        m = self.request.frames
        fault = guess.copy()
        converged = False
        run_max = None
        for _ in range(rounds):
            inserted = np.cumsum(fault, dtype=np.int32)
            ordinal = np.add(inserted, np.int64(self.insertions))
            val = np.where(fault, ordinal, 0)[order]
            val += G
            run_max = np.maximum.accumulate(val, out=val)
            run_max -= G
            exclusive = np.empty(n, dtype=np.int64)
            exclusive[1:] = run_max[:-1]
            exclusive[first] = 0
            last_seen = np.empty(n, dtype=np.int64)
            last_seen[order] = np.maximum(exclusive, seed)
            before = ordinal - fault
            implied = (last_seen == 0) | (before - last_seen >= m)
            if np.array_equal(implied, fault):
                converged = True
                break
            prior = fault
            fault = implied
        if converged:
            self.last_ordinal[sp[last]] = np.maximum(run_max[last], seed[last])
            self.insertions += int(inserted[-1])
            self._inserted = inserted
            return fault
        self._inserted = None
        if n > self.SUB:
            return None
        # commit the self-consistent prefix, replay the disputed tail
        agreed = int(np.argmin(prior == fault)) if n else 0
        if agreed:
            inserted = np.cumsum(fault[:agreed])
            ordinal = np.zeros(n, dtype=np.int64)
            ordinal[:agreed] = np.where(
                fault[:agreed], self.insertions + inserted, 0
            )
            val = ordinal[order]
            run_max = np.maximum.accumulate(val + G) - G
            self.last_ordinal[sp[last]] = np.maximum(run_max[last], seed[last])
            self.insertions += int(inserted[-1])
        tail = self._replay(pages[agreed:])
        out = fault.copy()
        out[:agreed] = fault[:agreed]
        out[agreed:] = tail
        return out

    def _subchunks(self, pages, guess):
        out = np.empty(len(pages), dtype=bool)
        for a in range(0, len(pages), self.SUB):
            b = min(a + self.SUB, len(pages))
            out[a:b] = self._speculate(pages[a:b], guess[a:b], self.SUB_ROUNDS)
        return out

    def _replay(self, pages) -> np.ndarray:
        """Exact event-driven FIFO over a short slice from the carried
        ordinals (the resident set and queue order are fully determined
        by each page's last insertion ordinal)."""
        from collections import deque

        m = self.request.frames
        alive = np.flatnonzero(
            (self.last_ordinal > 0)
            & (self.last_ordinal > self.insertions - m)
        )
        queue = deque(sorted(alive.tolist(), key=lambda p: self.last_ordinal[p]))
        resident = set(queue)
        fault = np.zeros(len(pages), dtype=bool)
        count = self.insertions
        for t in range(len(pages)):
            page = int(pages[t])
            if page in resident:
                continue
            fault[t] = True
            count += 1
            self.last_ordinal[page] = count
            if len(resident) >= m:
                victim = queue.popleft()
                resident.discard(victim)
            queue.append(page)
            resident.add(page)
        self.insertions = count
        return fault


class _WSState(_Base):
    def consume(self, scan: ChunkScan) -> None:
        n, base = scan.n, scan.base
        if n == 0:
            return
        tau = self.request.tau
        local = np.arange(n, dtype=np.int64)
        next_g = scan.next_local
        end = np.where(
            next_g >= 0,
            np.minimum(base + local + tau, next_g),
            np.minimum(base + local + tau, base + n),
        )
        # interval-coverage difference array; bincount beats np.add.at
        # by a wide margin for these scatter-adds
        ends = np.bincount(end - base, minlength=n + 1)
        pre = scan.lastocc_pre
        carried = np.flatnonzero((pre >= 0) & (pre + tau > base))
        opens = len(carried)
        if opens:
            first_here = np.full(len(pre), -1, dtype=np.int64)
            fp = scan.order[scan.first_sorted]
            first_here[scan.sorted_pages[scan.first_sorted]] = base + fp
            reref = first_here[carried]
            stop = np.where(
                reref >= 0,
                np.minimum(pre[carried] + tau, reref),
                pre[carried] + tau,
            )
            stop = np.minimum(stop, base + n)
            ends += np.bincount(
                np.maximum(stop - base, 0), minlength=n + 1
            )
        diff = -ends[:n]
        diff[0] += 1 + opens
        diff[1:] += 1
        resident = np.cumsum(diff, dtype=np.int32)
        fault = scan.cold | (scan.gap > tau)
        fpos = np.flatnonzero(fault)
        self.faults += len(fpos)
        self.mem_sum += int(resident.sum(dtype=np.int64))
        self.fault_mem += int(resident[fpos].sum(dtype=np.int64))
        self.last_resident = int(resident[-1])
        self._record(fpos, resident[fpos])


class _CDState(_Base):
    RAMP_BATCH = 1024

    def __init__(
        self, request, program, fault_service, collect_faults, directives, length
    ):
        super().__init__(request, program, fault_service, collect_faults)
        config = request.config
        holder = _DirectiveHolder(directives)
        self.schedule = _allocation_schedule(holder, config)
        self.length = length
        self.next_event = 0
        self.resident = 0  # r: depth of the LRU-stack prefix held
        self.target = config.min_allocation
        self._fpos: List[int] = []
        self._fres: List[int] = []

    def consume(self, scan: ChunkScan) -> None:
        if self.collect:
            self._fpos, self._fres = [], []
        base, hi = scan.base, scan.base + scan.n
        at = base
        while self.next_event < len(self.schedule):
            position, new_target, _granted, _event = self.schedule[
                self.next_event
            ]
            position = min(position, self.length)
            if position > hi:
                break
            if new_target == self.target:
                # no-op grant: the segment logic re-checks distances at
                # the live residency, so equal-target segments merge
                self.next_event += 1
                continue
            if position > at:
                self._segment(scan, at, position)
                at = position
            self.target = new_target
            if self.resident > self.target:
                self.resident = self.target
            self.next_event += 1
        if at < hi:
            self._segment(scan, at, hi)
        if self.collect:
            self.chunk_faults = (
                np.asarray(self._fpos, dtype=np.int64) - base,
                np.asarray(self._fres, dtype=np.int64),
            )

    def _segment(self, scan: ChunkScan, a: int, b: int) -> None:
        """Stream one directive segment slice [a, b) (global positions).

        Mirrors ``fastsim.run_segment``: candidates are the references
        that could possibly fault at the entry residency (cold or gap
        beyond it — gap bounds the stack distance, and the residency
        only grows inside a segment, so everything else is a hit)."""
        base = scan.base
        al, bl = a - base, b - base
        r, target = self.resident, self.target
        sl = slice(al, bl)
        cand = al + np.flatnonzero(scan.cold[sl] | (scan.gap[sl] > r))
        cur = al
        ci = 0
        rel = scan.prev_rel
        while r < target and ci < len(cand):
            # distance *bounds* for the next candidate block (the exact
            # straggler count is deferred), then a pure scalar walk:
            # distances don't depend on the residency, so the ramp
            # needs no re-querying as r grows, and most candidates
            # resolve from ``alive <= d - 1 <= alive + window`` alone
            block = cand[ci : ci + self.RAMP_BATCH]
            nb = len(block)
            dlow = np.full(nb, INFINITE)
            dhigh = np.full(nb, INFINITE)
            wstart = np.zeros(nb, dtype=np.int64)
            wP = np.zeros(nb, dtype=np.int64)
            warm = np.flatnonzero(~scan.cold[block])
            if len(warm):
                q = block[warm]
                cross = scan.prev[q] < scan.base
                cq = np.flatnonzero(cross)
                if len(cq):
                    d = scan._cross_distances(q[cq])
                    dlow[warm[cq]] = d
                    dhigh[warm[cq]] = d
                iq = np.flatnonzero(~cross)
                if len(iq):
                    qi = q[iq]
                    P_rel = rel[qi].astype(np.int64)
                    alive = scan._alive(qi, P_rel)
                    C = scan._snap[0]
                    start = np.maximum((qi // C) * C, P_rel + 1)
                    dlow[warm[iq]] = 1 + alive
                    dhigh[warm[iq]] = 1 + alive + (qi - start)
                    wstart[warm[iq]] = start
                    wP[warm[iq]] = P_rel
            # certain hits (dhigh <= r) stay hits as r grows, so jump
            # straight to the next candidate whose bracket can exceed
            # the live residency instead of walking hits one by one
            k0 = 0
            while r < target and k0 < nb:
                k = k0 + int(np.argmax(dhigh[k0:] > r))
                if dhigh[k] <= r:
                    k0 = nb
                    break
                pos = int(block[k])
                if dlow[k] <= r:
                    # bracket straddles the live residency: one short
                    # slice-sum settles the exact distance
                    d = int(dlow[k]) + int(
                        (rel[int(wstart[k]) : pos] <= wP[k]).sum()
                    )
                    dlow[k] = dhigh[k] = d
                    if d <= r:
                        k0 = k + 1
                        continue
                self.mem_sum += r * (pos - cur)
                r += 1  # min(r + 1, target) — loop holds r < target
                self.mem_sum += r
                self.fault_mem += r
                self.faults += 1
                if self.collect:
                    self._fpos.append(base + pos)
                    self._fres.append(r)
                cur = pos + 1
                k0 = k + 1
            ci += k0
        if cur < bl and r < target:
            # ramp exhausted its candidates below target: everything
            # left in the segment is a hit at the current residency
            self.mem_sum += r * (bl - cur)
            cur = bl
        if cur < bl:
            live = cand[(cand >= cur) & (scan.gap[cand] > target)]
            deep = scan.cold[live].copy()
            warm = np.flatnonzero(~deep)
            if len(warm):
                deep[warm] = scan.distance_gt(live[warm], target)
            seg_faults = int(deep.sum())
            self.faults += seg_faults
            self.mem_sum += target * (bl - cur)
            self.fault_mem += target * seg_faults
            if self.collect and seg_faults:
                for pos in live[deep]:
                    self._fpos.append(base + int(pos))
                    self._fres.append(target)
        self.resident = r
        self.last_resident = r

    def finalize(self, n: int) -> SimulationResult:
        # drain trailing directives (target updates after the last
        # reference change no metric, but keep the schedule consistent)
        while self.next_event < len(self.schedule):
            _, new_target, _g, _e = self.schedule[self.next_event]
            self.target = new_target
            if self.resident > self.target:
                self.resident = self.target
            self.next_event += 1
        return super().finalize(n)


class _DirectiveHolder:
    """Minimal trace stand-in for ``_allocation_schedule``."""

    def __init__(self, directives):
        self.directives = list(directives)


class StreamEngine:
    """Replay many policies over one scan of a chunked trace.

    ``backend`` follows :func:`repro.vm.stream.kernels.resolve_backend`
    (``REPRO_BACKEND`` env, ``auto`` by default).  With a ``tracer``
    the engine emits exact per-fault events (time, page, post-fault
    residency, matching the event-driven stream) plus one
    ResidentSample per chunk boundary; tracing requires a single
    request and always uses the numpy kernels.  Eviction events are not
    synthesized — use the event-driven simulator when victim identity
    matters.
    """

    def __init__(
        self,
        requests: Sequence[StreamRequest],
        fault_service: int = FAULT_SERVICE_REFERENCES,
        backend: Optional[str] = None,
        chunk_size: Optional[int] = None,
        tracer=None,
    ):
        if not requests:
            raise ValueError("at least one StreamRequest is required")
        self.requests = list(requests)
        self.fault_service = fault_service
        self.backend = backend
        self.chunk_size = chunk_size
        self.tracer = tracer
        if tracer is not None and len(self.requests) != 1:
            raise ValueError("tracing supports exactly one request")

    def run(self, source) -> List[SimulationResult]:
        src = as_chunk_source(source, self.chunk_size)
        directives = list(src.directives)
        for request in self.requests:
            if request.kind == "CD" and not cd_streamable(
                request.config, directives
            ):
                raise StreamFallback(
                    f"{request.label()} needs the event-driven simulator "
                    "(memory ceiling or honored LOCK directives)"
                )
        backend = resolve_backend(self.backend)
        if self.tracer is not None:
            backend = "numpy"
        if backend == "numba":
            from repro.vm.stream import _numba

            return _numba.run(self, src)
        return self._run_numpy(src)

    def _make_states(self, src, collect):
        states = []
        for request in self.requests:
            if request.kind == "LRU":
                states.append(
                    _LRUState(
                        request, src.program_name, self.fault_service, collect
                    )
                )
            elif request.kind == "FIFO":
                states.append(
                    _FIFOState(
                        request,
                        src.program_name,
                        self.fault_service,
                        collect,
                        src.total_pages,
                    )
                )
            elif request.kind == "WS":
                states.append(
                    _WSState(
                        request, src.program_name, self.fault_service, collect
                    )
                )
            elif request.kind == "CD":
                states.append(
                    _CDState(
                        request,
                        src.program_name,
                        self.fault_service,
                        collect,
                        src.directives,
                        src.length,
                    )
                )
            else:
                raise ValueError(f"unknown stream policy {request.kind!r}")
        return states

    def _run_numpy(self, src) -> List[SimulationResult]:
        collect = self.tracer is not None
        states = self._make_states(src, collect)
        carry = StreamCarry(src.total_pages)
        for chunk in src.chunks():
            scan = ChunkScan(chunk.pages, chunk.base, carry)
            for state in states:
                state.consume(scan)
            if collect:
                self._emit(states[0], scan)
        return [state.finalize(src.length) for state in states]

    def _emit(self, state, scan) -> None:
        from repro.obs.events import Fault, ResidentSample

        positions, residents = state.chunk_faults or (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        for pos, res in zip(positions, residents):
            self.tracer.emit(
                Fault(
                    time=scan.base + int(pos),
                    page=int(scan.pages[int(pos)]),
                    resident=int(res),
                )
            )
        self.tracer.emit(
            ResidentSample(
                time=scan.base + scan.n - 1, resident=int(state.last_resident)
            )
        )


def stream_simulate(
    source,
    requests: Sequence[StreamRequest],
    fault_service: int = FAULT_SERVICE_REFERENCES,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    tracer=None,
) -> List[SimulationResult]:
    """One-pass replay of ``requests`` over ``source``.

    Requests the engine cannot stream (CD with a memory ceiling or
    honored LOCKs) fall back to the event-driven simulator when the
    source is an in-RAM :class:`ReferenceTrace`; for sharded sources
    the :class:`StreamFallback` propagates, since falling back would
    materialize the whole trace.
    """
    from repro.tracegen.events import ReferenceTrace

    requests = list(requests)
    engine_requests = []
    fallback = {}
    for index, request in enumerate(requests):
        if request.kind == "CD" and not cd_streamable(
            request.config, list(getattr(source, "directives", []))
        ):
            fallback[index] = request
        else:
            engine_requests.append((index, request))
    if fallback and not isinstance(source, ReferenceTrace):
        raise StreamFallback(
            "event-driven fallback needs an in-RAM trace; got "
            f"{type(source).__name__}"
        )
    results: List[Optional[SimulationResult]] = [None] * len(requests)
    if engine_requests:
        engine = StreamEngine(
            [request for _, request in engine_requests],
            fault_service=fault_service,
            backend=backend,
            chunk_size=chunk_size,
            tracer=tracer,
        )
        for (index, _), result in zip(engine_requests, engine.run(source)):
            results[index] = result
    if fallback:
        from repro.vm.policies.cd import CDPolicy
        from repro.vm.simulator import simulate

        for index, request in fallback.items():
            results[index] = simulate(
                source, CDPolicy(request.config), fault_service=fault_service
            )
    return results
