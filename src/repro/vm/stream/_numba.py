"""Optional numba-jitted backend for the streaming engine.

Importing this module requires numba (``pip install repro[numba]``);
:func:`repro.vm.stream.kernels.resolve_backend` only routes here when
it is importable, and an explicit ``REPRO_BACKEND=numba`` without it
raises :class:`~repro.vm.stream.kernels.BackendUnavailable` at resolve
time — this guard is the backstop for direct imports.

The jitted kernels are the *sequential reference algorithms* (LRU
doubly-linked stack, FIFO ring queue, WS last-use ring, CD stack walk
with the directive schedule), compiled to native loops: simple code
whose exactness is easy to audit, with the interpreter overhead — the
reason the event-driven path is slow — compiled away.  Results are
byte-identical to both the numpy kernels and the event-driven
simulator; the oracle's ``stream-*`` checks and the backend tests
assert it whenever numba is importable.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.vm.metrics import SimulationResult
from repro.vm.stream.kernels import BackendUnavailable

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit
except ImportError as err:  # pragma: no cover
    raise BackendUnavailable(
        "the numba backend needs the optional 'numba' dependency "
        "(pip install repro[numba])"
    ) from err


# pragma: no cover begins here — this module is unreachable without numba


@njit(cache=True)
def _lru_chunk(pages, m, nxt, prv, head, in_stack, distinct, acc):
    # acc: [faults, mem_sum, fault_mem, last_resident]
    for i in range(len(pages)):
        page = pages[i]
        cold = not in_stack[page]
        if cold:
            distinct += 1
            fault = True
        else:
            # hit iff the page sits within the first m stack entries
            fault = True
            node = head[0]
            for _ in range(m):
                if node < 0:
                    break
                if node == page:
                    fault = False
                    break
                node = nxt[node]
            # unlink for the move-to-front
            p, q = prv[page], nxt[page]
            if p >= 0:
                nxt[p] = q
            else:
                head[0] = q
            if q >= 0:
                prv[q] = p
        # push to front
        old = head[0]
        nxt[page] = old
        prv[page] = -1
        if old >= 0:
            prv[old] = page
        head[0] = page
        in_stack[page] = True
        resident = distinct if distinct < m else m
        acc[1] += resident
        if fault:
            acc[0] += 1
            acc[2] += resident
        acc[3] = resident
    return distinct


@njit(cache=True)
def _fifo_chunk(pages, m, queue, qhead, resident_flag, state, acc):
    # state: [insertions, queue_len]; queue is a ring of capacity m
    insertions, qlen = state[0], state[1]
    for i in range(len(pages)):
        page = pages[i]
        if not resident_flag[page]:
            acc[0] += 1
            insertions += 1
            if qlen >= m:
                victim = queue[qhead[0]]
                resident_flag[victim] = False
                queue[qhead[0]] = page
                qhead[0] = (qhead[0] + 1) % m
            else:
                queue[(qhead[0] + qlen) % m] = page
                qlen += 1
            resident_flag[page] = True
            resident = insertions if insertions < m else m
            acc[2] += resident
        resident = insertions if insertions < m else m
        acc[1] += resident
        acc[3] = resident
    state[0], state[1] = insertions, qlen
    return 0


@njit(cache=True)
def _ws_chunk(pages, base, tau, ring, last_ref, state, acc):
    # state: [resident_count]; last_ref is -1 when absent
    count = state[0]
    for i in range(len(pages)):
        t = base + i
        page = pages[i]
        prev = last_ref[page]
        fault = prev < 0 or t - prev > tau
        if prev < 0:
            count += 1
        last_ref[page] = t
        boundary = t - tau
        if boundary >= 0:
            slot = boundary % tau
            old = ring[slot]
            if old >= 0 and old != page:
                when = last_ref[old]
                if when >= 0 and when <= boundary:
                    last_ref[old] = -1
                    count -= 1
            ring[slot] = -1
        ring[t % tau] = page
        acc[1] += count
        if fault:
            acc[0] += 1
            acc[2] += count
        acc[3] = count
    state[0] = count
    return 0


@njit(cache=True)
def _cd_chunk(
    pages, base, positions, targets, nxt, prv, head, in_stack, state, acc
):
    # state: [next_event, resident_r, target]
    ev, r, target = state[0], state[1], state[2]
    for i in range(len(pages)):
        t = base + i
        while ev < len(positions) and positions[ev] <= t:
            target = targets[ev]
            if r > target:
                r = target
            ev += 1
        page = pages[i]
        if not in_stack[page]:
            fault = True
        else:
            fault = True
            node = head[0]
            for _ in range(r):
                if node < 0:
                    break
                if node == page:
                    fault = False
                    break
                node = nxt[node]
            p, q = prv[page], nxt[page]
            if p >= 0:
                nxt[p] = q
            else:
                head[0] = q
            if q >= 0:
                prv[q] = p
        old = head[0]
        nxt[page] = old
        prv[page] = -1
        if old >= 0:
            prv[old] = page
        head[0] = page
        in_stack[page] = True
        if fault:
            if r < target:
                r += 1
            acc[0] += 1
            acc[2] += r
        acc[1] += r
        acc[3] = r
    state[0], state[1], state[2] = ev, r, target
    return 0


class _JitState:
    """One policy's carried native-kernel state."""

    def __init__(self, request, src, fault_service):
        from repro.vm.fastsim import _allocation_schedule
        from repro.vm.stream.engine import _DirectiveHolder

        self.request = request
        self.program = src.program_name
        self.fault_service = fault_service
        self.acc = np.zeros(4, dtype=np.int64)
        V = max(1, src.total_pages)
        kind = request.kind
        if kind in ("LRU", "CD"):
            self.nxt = np.full(V, -1, dtype=np.int64)
            self.prv = np.full(V, -1, dtype=np.int64)
            self.head = np.full(1, -1, dtype=np.int64)
            self.in_stack = np.zeros(V, dtype=np.bool_)
        if kind == "LRU":
            self.distinct = 0
        elif kind == "FIFO":
            self.queue = np.zeros(max(1, request.frames), dtype=np.int64)
            self.qhead = np.zeros(1, dtype=np.int64)
            self.resident_flag = np.zeros(V, dtype=np.bool_)
            self.state = np.zeros(2, dtype=np.int64)
        elif kind == "WS":
            self.ring = np.full(request.tau, -1, dtype=np.int64)
            self.last_ref = np.full(V, -1, dtype=np.int64)
            self.state = np.zeros(1, dtype=np.int64)
        elif kind == "CD":
            schedule = _allocation_schedule(
                _DirectiveHolder(src.directives), request.config
            )
            self.positions = np.asarray(
                [min(p, src.length) for p, _t, _g, _e in schedule],
                dtype=np.int64,
            )
            self.targets = np.asarray(
                [t for _p, t, _g, _e in schedule], dtype=np.int64
            )
            self.state = np.asarray(
                [0, 0, request.config.min_allocation], dtype=np.int64
            )

    def consume(self, pages: np.ndarray, base: int) -> None:
        kind = self.request.kind
        pages = np.ascontiguousarray(pages, dtype=np.int64)
        if kind == "LRU":
            self.distinct = _lru_chunk(
                pages, self.request.frames, self.nxt, self.prv, self.head,
                self.in_stack, self.distinct, self.acc,
            )
        elif kind == "FIFO":
            _fifo_chunk(
                pages, self.request.frames, self.queue, self.qhead,
                self.resident_flag, self.state, self.acc,
            )
        elif kind == "WS":
            _ws_chunk(
                pages, base, self.request.tau, self.ring, self.last_ref,
                self.state, self.acc,
            )
        else:
            _cd_chunk(
                pages, base, self.positions, self.targets, self.nxt,
                self.prv, self.head, self.in_stack, self.state, self.acc,
            )

    def finalize(self, n: int) -> SimulationResult:
        faults, mem_sum, fault_mem, _last = (int(x) for x in self.acc)
        return SimulationResult(
            policy=self.request.kind,
            program=self.program,
            page_faults=faults,
            references=n,
            mem_average=mem_sum / n if n else 0.0,
            space_time=float(mem_sum + fault_mem * self.fault_service),
            parameter=self.request.parameter(),
            fault_service=self.fault_service,
        )


def run(engine, src) -> List[SimulationResult]:
    """Replay ``engine.requests`` over ``src`` with the jitted kernels.

    Each policy consumes the raw chunks natively; the shared numpy scan
    is not needed on this path (the jitted state machines carry their
    own cross-chunk state in page-space arrays).
    """
    states = [
        _JitState(request, src, engine.fault_service)
        for request in engine.requests
    ]
    for chunk in src.chunks():
        for state in states:
            state.consume(chunk.pages, chunk.base)
    return [state.finalize(src.length) for state in states]
