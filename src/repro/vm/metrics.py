"""Performance indexes: PF, MEM, and ST.

Time is virtual: each memory reference advances time by one unit and
each page fault adds :data:`FAULT_SERVICE_REFERENCES` units of service
delay (the paper "assumed 2000 memory references").

* ``PF`` counts every demand fetch, including cold (first-touch) faults,
  as in the paper's fault counts.
* ``MEM`` is the resident-set size averaged over *reference* time —
  "the average memory allocated to a program".
* ``ST`` integrates the resident-set size over *virtual* time: each
  reference contributes ``m`` (the resident size after the reference)
  and each fault additionally contributes ``m × 2000`` for its service
  interval, during which the process occupies its memory while waiting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: The paper's page-fault service time, in memory references.
FAULT_SERVICE_REFERENCES = 2000


@dataclass
class SimulationResult:
    """Outcome of replaying one trace under one policy setting."""

    policy: str
    program: str
    page_faults: int
    references: int
    mem_average: float  # MEM
    space_time: float  # ST
    parameter: Optional[float] = None  # frames for LRU/FIFO/OPT, τ for WS
    fault_service: int = FAULT_SERVICE_REFERENCES
    #: CD-only counters
    swaps: int = 0
    denied_requests: int = 0
    lock_releases: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def fault_rate(self) -> float:
        """Faults per reference (0 for an empty trace)."""
        if self.references == 0:
            return 0.0
        return self.page_faults / self.references

    @property
    def virtual_time(self) -> float:
        """Total virtual time: references plus fault service."""
        return self.references + self.page_faults * self.fault_service

    def describe(self) -> str:
        param = f" ({self.parameter})" if self.parameter is not None else ""
        return (
            f"{self.policy}{param} on {self.program}: "
            f"PF={self.page_faults}, MEM={self.mem_average:.2f}, "
            f"ST={self.space_time:.3e}"
        )


def percent_excess(value: float, baseline: float) -> float:
    """The paper's %-excess metric: ``(value − baseline)/baseline × 100``.

    Used for %MEM and %ST comparisons against CD.  Raises
    :class:`ZeroDivisionError` mirroring an undefined comparison when the
    baseline is zero.
    """
    return (value - baseline) / baseline * 100.0
