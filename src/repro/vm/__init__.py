"""Virtual-memory simulation substrate.

An event-driven paging simulator replays a
:class:`~repro.tracegen.events.ReferenceTrace` under a replacement
policy and reports the paper's three performance indexes:

* **PF** — page faults;
* **MEM** — average memory allocated (resident pages, averaged over
  reference time);
* **ST** — space-time cost, the integral of resident pages over virtual
  time, where every fault adds a 2000-reference service delay (the
  paper's assumption).

Policies: :class:`LRUPolicy` and :class:`FIFOPolicy` (fixed partition),
:class:`WorkingSetPolicy` (WS), :class:`OPTPolicy` (Belady MIN),
:class:`PFFPolicy` (page-fault frequency), and :class:`CDPolicy` — the
paper's compiler-directed policy driven by ALLOCATE/LOCK/UNLOCK events.

:mod:`repro.vm.analyzers` provides one-pass parameter-sweep analyzers
(all LRU partition sizes via stack distances; all WS windows via
inter-reference gaps) that agree exactly with the event simulator.
"""

from repro.vm.metrics import FAULT_SERVICE_REFERENCES, SimulationResult
from repro.vm.simulator import simulate
from repro.vm.policies import (
    CDConfig,
    CDPolicy,
    DampedWorkingSetPolicy,
    FIFOPolicy,
    LRUPolicy,
    OPTPolicy,
    PFFPolicy,
    SampledWorkingSetPolicy,
    VariableSampledWorkingSetPolicy,
    WorkingSetPolicy,
)
from repro.vm.analyzers import LRUSweep, WSSweep
from repro.vm.bli import BLIAnalyzer, LocalityInterval, compare_with_predictions
from repro.vm.multiprog import MultiprogSimulator, MultiprogResult

__all__ = [
    "BLIAnalyzer",
    "CDConfig",
    "CDPolicy",
    "DampedWorkingSetPolicy",
    "FAULT_SERVICE_REFERENCES",
    "FIFOPolicy",
    "LRUPolicy",
    "LRUSweep",
    "LocalityInterval",
    "MultiprogResult",
    "MultiprogSimulator",
    "OPTPolicy",
    "PFFPolicy",
    "SampledWorkingSetPolicy",
    "SimulationResult",
    "VariableSampledWorkingSetPolicy",
    "WSSweep",
    "WorkingSetPolicy",
    "compare_with_predictions",
    "simulate",
]
