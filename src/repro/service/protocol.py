"""Wire protocol: newline-delimited JSON over a UNIX domain socket.

Every request and response is one JSON object on one line, UTF-8,
``\\n``-terminated — the same framing as the run ledger and the event
logs, so the whole stack stays greppable with standard tools.

Requests carry an ``op`` plus op-specific fields::

    {"op": "submit", "targets": ["1"], "tenant": "alice", "priority": 5}

Responses carry ``ok`` plus either the result fields or an ``error``::

    {"ok": true, "job": "j0001", "specs": ["warm:field", "table:1"]}
    {"ok": false, "error": "tenant alice over quota ..."}

``watch`` is the one streaming op: after the initial ``ok`` the server
keeps writing ``{"event": {...}}`` lines (engine lifecycle events for
the watched job's specs, in :mod:`repro.obs.events` dict form) and
finishes with ``{"done": true, "state": "..."}``.

Ops
---

``ping``
    Liveness check; returns the daemon's pid and queue depth.
``submit``
    Enqueue sweep targets as one service job.
``status``
    One job's record, or every job the daemon knows.
``results``
    A settled job's per-spec payloads (table text, oracle reports…).
``watch``
    Stream the job's engine events until it settles.
``cancel``
    Cancel a job; specs shared with other live jobs keep running.
``shutdown``
    Drain in-flight attempts and exit cleanly.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "DEFAULT_SERVICE_DIR",
    "ProtocolError",
    "recv_message",
    "send_message",
    "socket_path",
]

#: default daemon runtime directory (socket, queue journal, ledgers)
DEFAULT_SERVICE_DIR = Path("results") / "service"

#: socket filename inside the service directory
SOCKET_NAME = "serve.sock"

#: generous per-line cap — a table payload is ~2 KB, oracle reports a
#: few hundred KB at worst; anything past this is a protocol bug
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed frame (bad JSON, oversized line, truncated stream)."""


def socket_path(service_dir: Union[str, Path, None] = None) -> Path:
    """The daemon's socket path for a service directory."""
    return Path(service_dir or DEFAULT_SERVICE_DIR) / SOCKET_NAME


def send_message(sock: socket.socket, message: dict) -> None:
    """Write one JSON object as one line (atomic enough for AF_UNIX)."""
    data = json.dumps(message, separators=(",", ":"), sort_keys=True)
    sock.sendall(data.encode("utf-8") + b"\n")


def recv_message(fh) -> Optional[dict]:
    """Read one frame from a file-like reader; ``None`` on EOF.

    ``fh`` is a buffered reader over the socket (``sock.makefile("rb")``)
    so partial reads are reassembled into full lines for us.
    """
    line = fh.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated frame (connection died mid-line)")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as err:
        raise ProtocolError(f"bad frame: {err}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message
