"""Service jobs and the fsynced queue journal.

A *service job* is one submission: a tenant, a priority, the sweep
targets, and the engine spec ids they expanded to.  The daemon
journals every submission and every state change to ``queue.jsonl``
with the same fsync-per-append discipline as the run ledger
(:class:`repro.engine.ledger.RunLedger` *is* the writer), so a daemon
killed at any instant restarts with at most the line being written
lost, and ``repro serve --resume`` re-enqueues exactly the jobs that
had not settled.

Record kinds
------------

``submit``
    One accepted submission: job id, tenant, priority, targets, and
    the expanded engine spec ids.

``job-state``
    A terminal transition: ``done``, ``failed`` (with the first spec
    error), or ``cancelled``.  Jobs without one are pending on resume.

``charge``
    A quota charge: tenant, cache key, bytes.  Replayed on resume so
    accounting survives restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.ledger import RunLedger

__all__ = ["JobQueue", "ServiceJob"]

#: states a service job can be in (terminal: done/failed/cancelled)
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


@dataclass
class ServiceJob:
    """One submission's bookkeeping."""

    id: str
    tenant: str
    priority: int
    targets: List[str]
    specs: Tuple[str, ...]
    state: str = "queued"
    error: Optional[str] = None

    @property
    def settled(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def to_dict(self) -> dict:
        return {
            "job": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "targets": list(self.targets),
            "specs": list(self.specs),
            "state": self.state,
            "error": self.error,
        }


class JobQueue:
    """The daemon's job table plus its crash-safe journal.

    Not thread-safe by itself; the daemon serializes access (handler
    threads submit, the engine thread settles) under its state lock.
    """

    def __init__(self, journal_path: Union[str, Path]):
        self.journal = RunLedger(journal_path)
        self.jobs: Dict[str, ServiceJob] = {}
        self._next = 1

    # -- journal replay --------------------------------------------------------

    @staticmethod
    def load_records(journal_path: Union[str, Path]) -> List[dict]:
        """Parse the journal, skipping a torn tail like the run ledger."""
        import json

        records: List[dict] = []
        path = Path(journal_path)
        if not path.exists():
            return records
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # crash mid-append: don't trust the line
        return records

    @classmethod
    def resume(
        cls, journal_path: Union[str, Path]
    ) -> Tuple["JobQueue", List[dict]]:
        """Rebuild the job table from the journal.

        Returns the queue plus the ``charge`` records (the daemon
        replays those into its :class:`~repro.service.quota.TenantQuotas`).
        """
        queue = cls(journal_path)
        charges: List[dict] = []
        for record in cls.load_records(journal_path):
            kind = record.get("kind")
            if kind == "submit":
                job = ServiceJob(
                    id=record["job"],
                    tenant=record.get("tenant", "default"),
                    priority=int(record.get("priority", 0)),
                    targets=list(record.get("targets", [])),
                    specs=tuple(record.get("specs", [])),
                )
                queue.jobs[job.id] = job
                number = _job_number(job.id)
                if number is not None and number >= queue._next:
                    queue._next = number + 1
            elif kind == "job-state":
                job = queue.jobs.get(record.get("job", ""))
                if job is not None and record.get("state") in JOB_STATES:
                    job.state = record["state"]
                    job.error = record.get("error")
            elif kind == "charge":
                charges.append(record)
        return queue, charges

    # -- mutation (journal + table together) -----------------------------------

    def submit(
        self,
        tenant: str,
        priority: int,
        targets: List[str],
        specs: Tuple[str, ...],
    ) -> ServiceJob:
        job = ServiceJob(
            id=f"j{self._next:04d}",
            tenant=tenant,
            priority=priority,
            targets=list(targets),
            specs=specs,
        )
        self._next += 1
        self.jobs[job.id] = job
        self.journal.append(
            {
                "kind": "submit",
                "job": job.id,
                "tenant": job.tenant,
                "priority": job.priority,
                "targets": job.targets,
                "specs": list(job.specs),
            }
        )
        return job

    def set_state(
        self, job: ServiceJob, state: str, error: Optional[str] = None
    ) -> None:
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        if job.state == state:
            return
        job.state = state
        job.error = error
        if job.settled or state == "running":
            record = {"kind": "job-state", "job": job.id, "state": state}
            if error:
                record["error"] = error
            self.journal.append(record)

    def record_charge(self, tenant: str, key: str, nbytes: int) -> None:
        self.journal.append(
            {"kind": "charge", "tenant": tenant, "key": key, "bytes": nbytes}
        )

    # -- queries ---------------------------------------------------------------

    def pending(self) -> List[ServiceJob]:
        """Jobs that have not settled, in submission order."""
        return [job for job in self.jobs.values() if not job.settled]

    def spec_refs(self, spec_id: str) -> List[ServiceJob]:
        """Live jobs referencing a spec (cancel keeps shared specs)."""
        return [
            job
            for job in self.jobs.values()
            if not job.settled and spec_id in job.specs
        ]

    def close(self) -> None:
        self.journal.close()


def _job_number(job_id: str) -> Optional[int]:
    if job_id.startswith("j") and job_id[1:].isdigit():
        return int(job_id[1:])
    return None
