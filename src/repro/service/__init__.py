"""The paging-policy service: a persistent sweep daemon.

``repro serve`` wraps the supervised engine (:mod:`repro.engine`) in a
long-running job-queue daemon listening on a UNIX domain socket.
Clients (``repro submit / status / results / watch / cancel``) speak
newline-delimited JSON; each submission is a list of sweep targets
(exactly what ``repro run`` accepts) tagged with a tenant id and a
scheduling priority.

* :mod:`repro.service.protocol` — NDJSON framing over the socket plus
  the default socket/runtime-directory layout;
* :mod:`repro.service.quota` — per-tenant artifact-cache byte quotas,
  charged once per cache entry to the tenant that materialized it;
* :mod:`repro.service.queue` — service jobs and the fsynced queue
  journal that lets a restarted daemon resume exactly;
* :mod:`repro.service.daemon` — the daemon: listener + engine loop,
  live event fan-out to watchers, SIGTERM drain;
* :mod:`repro.service.client` — the client used by the CLI
  subcommands (and anything else that wants to drive the daemon).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServeDaemon
from repro.service.protocol import (
    DEFAULT_SERVICE_DIR,
    recv_message,
    send_message,
    socket_path,
)
from repro.service.queue import JobQueue, ServiceJob
from repro.service.quota import QuotaError, TenantQuotas

__all__ = [
    "DEFAULT_SERVICE_DIR",
    "JobQueue",
    "QuotaError",
    "ServeDaemon",
    "ServiceClient",
    "ServiceError",
    "ServiceJob",
    "TenantQuotas",
    "recv_message",
    "send_message",
    "socket_path",
]
