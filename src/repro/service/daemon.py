"""The ``repro serve`` daemon: a persistent sweep service.

One process, three kinds of threads:

* the **main thread** runs the supervised engine in serving mode
  (:meth:`repro.engine.Engine.run` with ``intake``/``cancels``/
  ``stop``/``wakeup``), so worker forking and signal handling stay
  where POSIX wants them;
* a **listener thread** accepts UNIX-socket connections;
* one **handler thread** per connection speaks the NDJSON protocol
  (:mod:`repro.service.protocol`).

Handlers never touch the engine directly: submissions and
cancellations go through thread-safe queues the engine loop drains,
and a :class:`~repro.obs.BroadcastSink` on the engine's tracer fans
lifecycle events out to an always-on JSONL log, the daemon's
settlement bookkeeping, and every live ``watch`` subscription.

Engine spec ids are *global*: two tenants submitting overlapping
targets share the underlying jobs, and a spec that already completed
replays instantly (a scheduler-level warm-cache hit — ``status``
shows ``attempts: 0`` for every spec the submission got for free).

Shutdown: SIGTERM (or the ``shutdown`` op) requests a drain — no new
launches, in-flight attempts finish, queued jobs stay journaled — and
the daemon exits 143 (clean ``shutdown``: 0).  SIGINT aborts like any
engine run: workers are killed and the interrupt is recorded.  Either
way ``repro serve --resume`` picks the queue back up exactly.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.engine.jobs import JobSpec
from repro.engine.ledger import LedgerState, RunLedger
from repro.engine.supervisor import Engine, EngineConfig, Wakeup, with_priority
from repro.engine.sweeps import build_sweep
from repro.obs import Tracer
from repro.obs.events import JobDone, JobFail, JobStart
from repro.obs.sinks import BroadcastSink, JsonlSink, QueueSink, Sink
from repro.service.protocol import (
    ProtocolError,
    recv_message,
    send_message,
    socket_path,
)
from repro.service.queue import JobQueue, ServiceJob
from repro.service.quota import TenantQuotas

__all__ = ["ServeDaemon"]

#: watch/status poll granularity for connection handlers (seconds)
_POLL = 0.25


def _default_expand(targets: Sequence[str]) -> List[JobSpec]:
    """Targets -> engine specs, exactly as ``repro run`` would."""
    return build_sweep(list(targets))


def _cache_entry_exists(key: str) -> bool:
    try:
        from repro.experiments.runner import cache_entry_exists

        return cache_entry_exists(key)
    except Exception:
        return False  # cache disabled: nothing is pre-paid


class _SettlementSink(Sink):
    """Engine lifecycle events -> service-job state transitions."""

    def __init__(self, daemon: "ServeDaemon"):
        self._daemon = daemon

    def handle(self, event) -> None:
        if isinstance(event, JobStart):
            self._daemon._on_spec_start(event.job)
        elif isinstance(event, JobDone):
            self._daemon._on_spec_settled(event.job, "done", None, event.attempts)
        elif isinstance(event, JobFail):
            self._daemon._on_spec_settled(
                event.job, "failed", event.error, event.attempts
            )


class _ServiceLedger(RunLedger):
    """The engine ledger, with payloads mirrored into the daemon."""

    def __init__(self, path, daemon: "ServeDaemon"):
        super().__init__(path)
        self._daemon = daemon

    def job_done(self, job, fingerprint, attempts, payload) -> None:
        super().job_done(job, fingerprint, attempts, payload)
        with self._daemon._lock:
            self._daemon.payloads[job] = payload


class ServeDaemon:
    """The service: queue + quotas + engine + socket front end.

    ``expand`` is the seam between submissions and engine specs: it
    maps a target list to :class:`JobSpec` objects (default: the
    ``repro run`` sweep builder).  Tests inject a cheap ``selftest``
    expansion so service behavior is exercised without real traces.
    """

    def __init__(
        self,
        service_dir: Union[str, Path],
        config: Optional[EngineConfig] = None,
        quotas: Optional[TenantQuotas] = None,
        expand: Optional[Callable[[Sequence[str]], List[JobSpec]]] = None,
    ):
        self.dir = Path(service_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.sock_path = socket_path(self.dir)
        self.config = config or EngineConfig(max_workers=2)
        # the daemon drains on SIGTERM itself; the engine must not
        # hijack the signal into an abort
        self.config.install_sigterm = False
        self.quotas = quotas or TenantQuotas()
        self.expand = expand or _default_expand

        self._lock = threading.RLock()
        self._intake: "deque[JobSpec]" = deque()
        self._cancels: "deque[str]" = deque()
        self._stop = False
        self._term_signal: Optional[str] = None
        self._serving = threading.Event()  # listener is accepting
        self._finished = threading.Event()  # engine loop has returned
        self.wakeup = Wakeup()
        self.broadcast = BroadcastSink()

        self.queue: Optional[JobQueue] = None
        #: spec id -> the JobSpec as (first) submitted
        self.specs: Dict[str, JobSpec] = {}
        #: spec id -> tenant whose submission first introduced it
        self.spec_owner: Dict[str, str] = {}
        #: spec id -> {"state", "error", "attempts"}
        self.spec_states: Dict[str, dict] = {}
        #: spec id -> settled payload (engine-ledger mirror)
        self.payloads: Dict[str, dict] = {}
        self._resume_state: Optional[LedgerState] = None
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []

    # -- startup / resume ------------------------------------------------------

    def start(self, resume: bool = False) -> None:
        """Load (or create) the queue journal and re-enqueue survivors."""
        journal_path = self.dir / "queue.jsonl"
        existing = journal_path.exists() and journal_path.stat().st_size > 0
        if existing and not resume:
            raise RuntimeError(
                f"{journal_path} already has a queue; start with --resume "
                "to pick it up (or remove the service directory)"
            )
        if resume and existing:
            self.queue, charges = JobQueue.resume(journal_path)
            for record in charges:
                self.quotas.charge(
                    record.get("tenant") or "default",
                    record.get("key", ""),
                    int(record.get("bytes", 0)),
                )
            self._resume_state = LedgerState.load(self.dir / "ledger.jsonl")
            self.payloads.update(
                {
                    job: payload
                    for job, (_fp, payload) in self._resume_state.completed.items()
                }
            )
            for job in self.queue.pending():
                self._enqueue_specs(job, announce=False)
        else:
            self.queue = JobQueue(journal_path)

    def _enqueue_specs(self, job: ServiceJob, announce: bool = True) -> None:
        """Expand a job's targets and hand the specs to the engine.

        Used both for fresh submissions and for journal-resumed jobs;
        for the latter, specs whose checkpoint fingerprint still
        matches settle instantly inside the engine.
        """
        specs = [with_priority(s, job.priority) for s in self.expand(job.targets)]
        for spec in specs:
            self.specs.setdefault(spec.id, spec)
            self.spec_owner.setdefault(spec.id, job.tenant)
            state = self.spec_states.get(spec.id)
            if state is not None and state["state"] == "failed":
                # the engine gives failed ids a fresh chance; so do we
                del self.spec_states[spec.id]
            if (
                self._resume_state is not None
                and spec.id not in self.spec_states
                and self._resume_state.payload_for(spec.id, spec.fingerprint())
                is not None
            ):
                self.spec_states[spec.id] = {
                    "state": "done",
                    "error": None,
                    "attempts": 0,
                }
            self._intake.append(spec)
        self._recompute_job(job)
        self.wakeup.set()

    # -- submission / cancellation (handler threads) ---------------------------

    def submit(self, tenant: str, priority: int, targets: List[str]) -> dict:
        with self._lock:
            if self._stop:
                raise RuntimeError("daemon is draining; submission refused")
            self.quotas.check_admission(tenant)
            try:
                expanded = self.expand(targets)
            except ValueError as err:
                raise RuntimeError(str(err)) from None
            if not expanded:
                raise RuntimeError("submission expanded to no jobs")
            # cache entries that already exist are free for everyone
            for spec in expanded:
                key = self._cache_key_for(spec)
                if key is not None and _cache_entry_exists(key):
                    self.quotas.mark_free(key)
            job = self.queue.submit(
                tenant, priority, targets, tuple(s.id for s in expanded)
            )
            self._enqueue_specs(job)
            warm_hits = [
                s.id
                for s in expanded
                if self.spec_states.get(s.id, {}).get("state") == "done"
            ]
            return {"job": job.id, "specs": list(job.specs), "warm": warm_hits}

    def cancel(self, job_id: str) -> dict:
        with self._lock:
            job = (self.queue.jobs if self.queue else {}).get(job_id)
            if job is None:
                raise RuntimeError(f"unknown job {job_id!r}")
            if job.settled:
                return {"job": job.id, "state": job.state, "cancelled": []}
            self.queue.set_state(job, "cancelled", "cancelled by client")
            to_cancel = []
            for spec_id in job.specs:
                state = self.spec_states.get(spec_id)
                if state is not None and state["state"] == "done":
                    continue  # already settled; nothing to stop
                if self.queue.spec_refs(spec_id):
                    continue  # another live job still needs it
                to_cancel.append(spec_id)
            self._cancels.extend(to_cancel)
            self.wakeup.set()
            return {"job": job.id, "state": job.state, "cancelled": to_cancel}

    def request_shutdown(self) -> None:
        with self._lock:
            self._stop = True
        self.wakeup.set()

    # -- settlement (engine thread, via the broadcast sink) --------------------

    def _on_spec_start(self, spec_id: str) -> None:
        with self._lock:
            self.spec_states[spec_id] = {
                "state": "running",
                "error": None,
                "attempts": self.spec_states.get(spec_id, {}).get("attempts", 0),
            }
            for job in self.queue.spec_refs(spec_id):
                if job.state == "queued":
                    self.queue.set_state(job, "running")

    def _on_spec_settled(
        self, spec_id: str, state: str, error: Optional[str], attempts: int
    ) -> None:
        with self._lock:
            self.spec_states[spec_id] = {
                "state": state,
                "error": error,
                "attempts": attempts,
            }
            if state == "done":
                self._charge_for(spec_id)
            for job in self.queue.spec_refs(spec_id):
                self._recompute_job(job)

    def _recompute_job(self, job: ServiceJob) -> None:
        if job.settled:
            return
        states = [self.spec_states.get(s) for s in job.specs]
        if any(s is None or s["state"] in ("queued", "running") for s in states):
            return
        failed = [
            (spec_id, s["error"])
            for spec_id, s in zip(job.specs, states)
            if s["state"] == "failed"
        ]
        if failed:
            spec_id, error = failed[0]
            self.queue.set_state(job, "failed", f"{spec_id}: {error}")
        else:
            self.queue.set_state(job, "done")

    # -- quotas ----------------------------------------------------------------

    def _cache_key_for(self, spec: JobSpec) -> Optional[str]:
        if spec.kind != "warm":
            return None
        try:
            from repro.experiments.runner import cache_entry_key

            return cache_entry_key(
                str(spec.params["workload"]),
                with_locks=bool(spec.params.get("with_locks", False)),
            )
        except Exception:
            return None  # cache disabled or unknown workload: nothing to meter

    def _charge_for(self, spec_id: str) -> None:
        spec = self.specs.get(spec_id)
        if spec is None:
            return
        key = self._cache_key_for(spec)
        if key is None:
            return
        from repro.experiments.runner import cache_entry_bytes

        tenant = self.spec_owner.get(spec_id, "default")
        nbytes = cache_entry_bytes(key)
        if self.quotas.charge(tenant, key, nbytes):
            self.queue.record_charge(tenant, key, nbytes)

    # -- status / results (handler threads) ------------------------------------

    def job_record(self, job: ServiceJob) -> dict:
        with self._lock:
            record = job.to_dict()
            record["spec_states"] = {
                spec_id: dict(
                    self.spec_states.get(
                        spec_id,
                        {"state": "queued", "error": None, "attempts": 0},
                    )
                )
                for spec_id in job.specs
            }
            return record

    def status(self, job_id: Optional[str] = None) -> dict:
        with self._lock:
            if job_id is not None:
                job = self.queue.jobs.get(job_id)
                if job is None:
                    raise RuntimeError(f"unknown job {job_id!r}")
                return {"job": self.job_record(job)}
            return {
                "jobs": [
                    self.job_record(j) for j in self.queue.jobs.values()
                ],
                "tenants": self.quotas.snapshot(),
                "draining": self._stop,
            }

    def results(self, job_id: str) -> dict:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None:
                raise RuntimeError(f"unknown job {job_id!r}")
            if not job.settled:
                raise RuntimeError(f"job {job_id} is {job.state}; not settled")
            if job.state != "done":
                raise RuntimeError(
                    f"job {job_id} {job.state}: {job.error or 'no results'}"
                )
            missing = [s for s in job.specs if s not in self.payloads]
            if missing:
                raise RuntimeError(
                    f"job {job_id} payloads missing for: {', '.join(missing)}"
                )
            return {
                "job": job.id,
                "payloads": {s: self.payloads[s] for s in job.specs},
            }

    # -- the socket front end --------------------------------------------------

    def _handle_connection(self, conn: socket.socket) -> None:
        reader = conn.makefile("rb")
        try:
            while True:
                try:
                    request = recv_message(reader)
                except ProtocolError as err:
                    send_message(conn, {"ok": False, "error": str(err)})
                    return
                if request is None:
                    return
                op = request.get("op")
                try:
                    if op == "ping":
                        with self._lock:
                            reply = {
                                "pid": os.getpid(),
                                "jobs": len(self.queue.jobs),
                                "pending": len(self.queue.pending()),
                            }
                    elif op == "submit":
                        reply = self.submit(
                            str(request.get("tenant") or "default"),
                            int(request.get("priority") or 0),
                            [str(t) for t in request.get("targets", [])],
                        )
                    elif op == "status":
                        reply = self.status(request.get("job"))
                    elif op == "results":
                        reply = self.results(str(request.get("job")))
                    elif op == "cancel":
                        reply = self.cancel(str(request.get("job")))
                    elif op == "shutdown":
                        self.request_shutdown()
                        reply = {"draining": True}
                    elif op == "watch":
                        self._handle_watch(conn, str(request.get("job")))
                        continue
                    else:
                        raise RuntimeError(f"unknown op {op!r}")
                except Exception as err:
                    # report everything: a half-dead connection is worse
                    # for the client than an ugly error string
                    send_message(conn, {"ok": False, "error": str(err)})
                    continue
                reply["ok"] = True
                send_message(conn, reply)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; nothing to clean up but the socket
        finally:
            reader.close()
            conn.close()

    def _handle_watch(self, conn: socket.socket, job_id: str) -> None:
        """Stream the job's engine events until it settles."""
        with self._lock:
            job = self.queue.jobs.get(job_id)
        if job is None:
            send_message(conn, {"ok": False, "error": f"unknown job {job_id!r}"})
            return
        sink = QueueSink(maxsize=4096)
        self.broadcast.subscribe(sink)
        try:
            send_message(conn, {"ok": True, "watching": job.id})
            import queue as queue_mod

            while True:
                try:
                    event = sink.queue.get(timeout=_POLL)
                except queue_mod.Empty:
                    event = None
                if event is not None and getattr(event, "job", None) in job.specs:
                    send_message(conn, {"event": event.to_dict()})
                if event is None or sink.queue.empty():
                    with self._lock:
                        settled, state = job.settled, job.state
                    if settled:
                        send_message(conn, {"done": True, "state": state})
                        return
                    if self._finished.is_set():
                        send_message(conn, {"done": False, "state": state})
                        return
        finally:
            self.broadcast.unsubscribe(sink)

    def _listen(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    # -- the main loop ---------------------------------------------------------

    def _drain_intake(self) -> List[JobSpec]:
        specs = []
        while True:
            try:
                specs.append(self._intake.popleft())
            except IndexError:
                return specs

    def _drain_cancels(self) -> List[str]:
        ids = []
        while True:
            try:
                ids.append(self._cancels.popleft())
            except IndexError:
                return ids

    def serve(
        self,
        resume: bool = False,
        announce: Optional[Callable[[str], None]] = None,
    ) -> int:
        """Run until drained; returns the process exit code."""
        say = announce or (lambda _msg: None)
        self.start(resume)
        if self.sock_path.exists():
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(str(self.sock_path))
            except OSError:
                self.sock_path.unlink()  # stale socket from a dead daemon
            else:
                probe.close()
                raise RuntimeError(
                    f"another daemon is already serving on {self.sock_path}"
                )
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(str(self.sock_path))
        self._listener.listen()

        events_sink = JsonlSink(self.dir / "events.jsonl", append=True)
        self.broadcast.subscribe(events_sink)
        self.broadcast.subscribe(_SettlementSink(self))
        tracer = Tracer(self.broadcast)
        ledger = _ServiceLedger(self.dir / "ledger.jsonl", self)
        engine = Engine(self.config, tracer=tracer, ledger=ledger)
        self.engine = engine

        previous_term = None
        term_installable = (
            threading.current_thread() is threading.main_thread()
        )
        if term_installable:

            def _on_sigterm(_signum, _frame):
                self._term_signal = "SIGTERM"
                self.request_shutdown()

            previous_term = signal.signal(signal.SIGTERM, _on_sigterm)

        listener_thread = threading.Thread(target=self._listen, daemon=True)
        listener_thread.start()
        self._serving.set()
        resumed = f" ({len(self.queue.pending())} job(s) resumed)" if resume else ""
        say(f"serving on {self.sock_path}{resumed}")
        try:
            engine.run(
                [],
                resume=self._resume_state,
                intake=self._drain_intake,
                cancels=self._drain_cancels,
                stop=lambda: self._stop,
                wakeup=self.wakeup,
            )
        finally:
            self._finished.set()
            try:
                self._listener.close()
            except OSError:
                pass
            self.sock_path.unlink(missing_ok=True)
            tracer.close()
            ledger.close()
            if self.queue is not None:
                self.queue.close()
            self.wakeup.close()
            if term_installable:
                signal.signal(
                    signal.SIGTERM,
                    signal.SIG_DFL if previous_term is None else previous_term,
                )
        say("drained; exiting")
        return 143 if self._term_signal else 0
