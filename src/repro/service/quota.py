"""Per-tenant artifact-cache quotas.

The daemon shares one content-hash artifact cache across every tenant:
the second tenant to ask for Table 1 gets a scheduler-level warm hit
and pays nothing.  What a quota bounds is how much *new* cache a
tenant can materialize.  Each cache entry (a ``warm`` artifact key) is
charged exactly once — to the tenant whose job first built it — at its
actual on-disk size; entries that already exist at submission time are
free for everyone.

Enforcement happens at admission: a submission from a tenant whose
charged bytes already meet its limit is rejected before anything is
enqueued.  A job admitted under the limit may still push the tenant
over it when its artifacts land (sizes are only known after the
build); the overrun is recorded and the *next* submission is denied —
the classic disk-quota soft edge, documented in ``docs/service.md``.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["QuotaError", "TenantQuotas"]


class QuotaError(RuntimeError):
    """A submission was denied at admission for being over quota."""


class TenantQuotas:
    """Charge-once-per-key byte accounting with per-tenant limits.

    Not thread-safe by itself — the daemon serializes all access under
    its state lock (charges come from the engine thread, admission
    checks from connection handler threads).
    """

    def __init__(
        self,
        limits: Optional[Dict[str, int]] = None,
        default_limit: Optional[int] = None,
    ):
        #: tenant -> byte limit; missing tenants use ``default_limit``
        self.limits = dict(limits or {})
        #: limit for tenants not in ``limits`` (None: unlimited)
        self.default_limit = default_limit
        #: cache key -> (tenant, bytes) for every charged entry
        self.charged: Dict[str, tuple] = {}
        #: tenant -> total charged bytes
        self.used: Dict[str, int] = {}

    def limit_for(self, tenant: str) -> Optional[int]:
        return self.limits.get(tenant, self.default_limit)

    def used_by(self, tenant: str) -> int:
        return self.used.get(tenant, 0)

    def check_admission(self, tenant: str) -> None:
        """Raise :class:`QuotaError` when the tenant is at/over limit."""
        limit = self.limit_for(tenant)
        if limit is None:
            return
        used = self.used_by(tenant)
        if used >= limit:
            raise QuotaError(
                f"tenant {tenant!r} over quota: {used} of {limit} "
                "bytes charged; cancel jobs or clear cache entries"
            )

    def mark_free(self, key: str) -> None:
        """Record that ``key`` pre-existed: nobody pays for it, ever."""
        self.charged.setdefault(key, (None, 0))

    def charge(self, tenant: str, key: str, nbytes: int) -> bool:
        """Charge ``key`` to ``tenant`` unless some tenant already paid.

        Returns True when a new charge was recorded (the caller
        journals it); False when the key was already charged.
        """
        if key in self.charged or nbytes <= 0:
            return False
        self.charged[key] = (tenant, nbytes)
        self.used[tenant] = self.used_by(tenant) + nbytes
        return True

    def snapshot(self) -> Dict[str, dict]:
        """Per-tenant usage for ``status`` responses."""
        tenants = set(self.used) | set(self.limits)
        return {
            tenant: {
                "used_bytes": self.used_by(tenant),
                "limit_bytes": self.limit_for(tenant),
            }
            for tenant in sorted(tenants)
        }
