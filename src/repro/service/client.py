"""The service client: what the CLI subcommands drive.

One :class:`ServiceClient` wraps one connection to a running daemon.
Every method is a single request/response exchange except
:meth:`watch`, which yields the streamed event frames until the job
settles.  Errors the daemon reports come back as :class:`ServiceError`
so the CLI can print them without a traceback.
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.service.protocol import recv_message, send_message, socket_path

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The daemon rejected a request (or is unreachable)."""


class ServiceClient:
    """A connection to a ``repro serve`` daemon."""

    def __init__(
        self,
        service_dir: Union[str, Path, None] = None,
        timeout: Optional[float] = None,
    ):
        self.sock_path = socket_path(service_dir)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.connect(str(self.sock_path))
        except OSError as err:
            self._sock.close()
            raise ServiceError(
                f"no daemon on {self.sock_path} ({err}); start one with "
                "'repro serve'"
            ) from None
        self._reader = self._sock.makefile("rb")

    def close(self) -> None:
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- plumbing --------------------------------------------------------------

    def _exchange(self, request: dict) -> dict:
        send_message(self._sock, request)
        reply = recv_message(self._reader)
        if reply is None:
            raise ServiceError("daemon closed the connection")
        if not reply.get("ok", False):
            raise ServiceError(reply.get("error", "request failed"))
        return reply

    # -- ops -------------------------------------------------------------------

    def ping(self) -> dict:
        return self._exchange({"op": "ping"})

    def submit(
        self,
        targets: List[str],
        tenant: str = "default",
        priority: int = 0,
    ) -> dict:
        return self._exchange(
            {
                "op": "submit",
                "targets": list(targets),
                "tenant": tenant,
                "priority": priority,
            }
        )

    def status(self, job: Optional[str] = None) -> dict:
        request = {"op": "status"}
        if job is not None:
            request["job"] = job
        return self._exchange(request)

    def results(self, job: str) -> dict:
        return self._exchange({"op": "results", "job": job})

    def cancel(self, job: str) -> dict:
        return self._exchange({"op": "cancel", "job": job})

    def shutdown(self) -> dict:
        return self._exchange({"op": "shutdown"})

    def watch(self, job: str) -> Iterator[dict]:
        """Yield ``{"event": ...}`` frames, then the ``{"done": ...}``
        terminator (yielded last so callers see the final state)."""
        self._exchange({"op": "watch", "job": job})
        while True:
            frame = recv_message(self._reader)
            if frame is None:
                raise ServiceError("daemon closed the stream")
            yield frame
            if "done" in frame:
                return

    def wait(self, job: str) -> str:
        """Block until the job settles; returns its final state."""
        final = "unknown"
        for frame in self.watch(job):
            if "done" in frame:
                final = str(frame.get("state", "unknown"))
        return final
