"""Closed-form page-visit structure of one affine loop binding.

A recipe-tier nest references ``n_sites`` array cells per iteration in
statement order; site ``s`` touches page ``first[s] + (lin0[s] +
dlin[s]·t) // epp`` at iteration ``t``.  Everything the run detector
needs about the materialized page string can be computed directly from
those arithmetic progressions:

* the page of any reference position ``p = t·n_sites + s`` is a gather
  plus a floor division (:meth:`ClosedFormPages.pages_at`);
* ``pages[p] != pages[p + n_sites]`` holds exactly when iteration ``t``
  is a *page crossing* of site ``s`` — and the crossing iterations of a
  monotone arithmetic progression have a closed form
  (:func:`ap_crossings`): for each page boundary the progression
  passes, one integer ceiling division.

Feeding those mismatch positions to the very same greedy claimer the
trace-backed detector uses (:func:`~repro.analysis.symbolic.collapse.
_runs_between`) reproduces its run journal *by construction* — the two
paths share the algorithm and differ only in how the mismatch set is
obtained, O(pages visited) here versus O(references) there.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.analysis.symbolic.collapse import MIN_REPEATS, _runs_between, kept_mask
from repro.analysis.symbolic.runtrace import Run

__all__ = ["ap_crossings", "ClosedFormPages"]


def ap_crossings(lin0: int, dlin: int, trips: int, epp: int) -> np.ndarray:
    """Iterations ``t`` (``0 <= t < trips - 1``) where the page of the
    progression ``offset(t) = lin0 + dlin·t`` changes between ``t`` and
    ``t + 1``, with ``page(t) = offset(t) // epp``.

    The offsets of a bound site are in-bounds, hence non-negative, so
    plain floor/ceiling arithmetic applies.  Cost is O(pages visited),
    independent of ``trips``.
    """
    if trips < 2 or dlin == 0:
        return np.empty(0, dtype=np.int64)
    lin0, dlin, epp = int(lin0), int(dlin), int(epp)
    q0 = lin0 // epp
    qn = (lin0 + dlin * (trips - 1)) // epp
    if qn == q0:
        return np.empty(0, dtype=np.int64)
    if dlin > 0:
        # first t on page >= v is ceil((v·epp − lin0) / dlin); the
        # crossing sits one iteration earlier
        v = np.arange(q0 + 1, qn + 1, dtype=np.int64)
        t = -((lin0 - v * epp) // dlin) - 1
    else:
        # descending: first t on page <= v is
        # ceil((lin0 − (v+1)·epp + 1) / −dlin)
        m = -dlin
        v = np.arange(qn, q0, dtype=np.int64)
        t = -((-(lin0 - (v + 1) * epp + 1)) // m) - 1
    # a step larger than a page crosses several boundaries at the same
    # iteration — one mismatch position, not several
    return np.unique(t)


class ClosedFormPages:
    """The page list of one recipe binding, as arithmetic instead of a
    list: ``len()`` and closed-form structure with no per-reference
    materialization.  Reference position ``p = t·n_sites + s`` (sites in
    statement order within one iteration).
    """

    __slots__ = ("first", "lin0", "dlin", "epp", "trips", "n_sites")

    def __init__(self, first, lin0, dlin, epp: int, trips: int) -> None:
        self.first = np.asarray(first, dtype=np.int64)
        self.lin0 = np.asarray(lin0, dtype=np.int64)
        self.dlin = np.asarray(dlin, dtype=np.int64)
        self.epp = int(epp)
        self.trips = int(trips)
        self.n_sites = len(self.first)

    def __len__(self) -> int:
        return self.n_sites * self.trips

    def pages_at(self, pos) -> np.ndarray:
        """Pages at (segment-relative) reference positions ``pos``."""
        pos = np.asarray(pos, dtype=np.int64)
        t, s = np.divmod(pos, self.n_sites)
        page = self.first[s] + (self.lin0[s] + self.dlin[s] * t) // self.epp
        return page.astype(np.int32)

    def materialize(self) -> np.ndarray:
        """The full page string (tests and truncation only)."""
        return self.pages_at(np.arange(len(self), dtype=np.int64))

    def mismatches(self) -> np.ndarray:
        """Sorted positions ``p`` in ``[0, len − n_sites)`` with
        ``page(p) != page(p + n_sites)`` — the exact mismatch set the
        run detector derives by comparing the materialized string with
        a shifted copy of itself."""
        b = self.n_sites
        parts: List[np.ndarray] = []
        for s in range(b):
            t = ap_crossings(
                int(self.lin0[s]), int(self.dlin[s]), self.trips, self.epp
            )
            if len(t):
                parts.append(t * b + s)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def structure(
        self, min_repeats: int = MIN_REPEATS
    ) -> Tuple[List[Run], np.ndarray, np.ndarray]:
        """``(runs, kept_pos, kept_pages)``, all segment-relative —
        identical to detecting runs of period ``n_sites`` over the
        materialized pages and applying the surrogate's kept mask."""
        n = len(self)
        b = self.n_sites
        if b < 1 or n < b * min_repeats:
            kept = np.arange(n, dtype=np.int64)
            return [], kept, self.pages_at(kept) if n else np.empty(0, np.int32)
        mis = self.mismatches()
        runs = _runs_between(mis, 0, len(mis), 0, n, b, min_repeats)
        kept = np.flatnonzero(kept_mask(n, runs)).astype(np.int64)
        return runs, kept, self.pages_at(kept)
