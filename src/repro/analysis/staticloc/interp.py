"""Static partial evaluation: the run-structured string with no trace.

:class:`StaticCompiler` is the symbolic compiler with one change: every
committed batch is structured *at commit time* through the interpreter's
:class:`~repro.analysis.staticloc.string.RunBuffer` instead of being
appended to a flat list.  Recipe bindings commit
:class:`~repro.analysis.staticloc.affine.ClosedFormPages` — their run
journal comes straight from the affine subscript matrices and loop
bounds, and their page block is never built.  Binder batches structure
their own materialized block and discard it immediately.  Interpreted
references stay literal (they carry no provable structure — exactly the
references the symbolic detector would not collapse either).

``generate_static_string`` mirrors
:func:`~repro.analysis.symbolic.interp.generate_runtrace` — same
arguments, same errors, same directives, the same run journal and kept
references — but returns a
:class:`~repro.analysis.staticloc.string.StaticString`: the complete
flat reference string is never materialized anywhere in the pipeline.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.parameters import PageConfig
from repro.analysis.staticloc.string import RunBuffer, StaticString
from repro.analysis.symbolic.interp import SymbolicCompiler, _period_hints
from repro.directives.model import InstrumentationPlan
from repro.frontend import ast
from repro.frontend.symbols import SymbolTable
from repro.tracegen.compile import _Binder, _Fallback
from repro.tracegen.interpreter import Interpreter, _StopExecution, _TraceFull

__all__ = ["StaticCompiler", "generate_static_string"]


class StaticCompiler(SymbolicCompiler):
    """Symbolic compiler committing structure instead of pages.

    Requires ``interp._refs`` to be a
    :class:`~repro.analysis.staticloc.string.RunBuffer`; every commit is
    preceded by the buffer's ``pending`` hand-off (period hints plus the
    batch's event positions) so the buffer can claim runs without any
    global pass.
    """

    def try_execute(self, loop: ast.DoLoop) -> bool:
        if not self.enabled or not self._static_legal(loop):
            return False
        recipe = self._recipe_for(loop)
        if recipe is not None:
            batch = recipe.bind_static(self.it)
            if batch is not None:
                self.recipe_binds += 1
                self._commit_structured(batch, recipe.period_hints)
                return True
        wins, losses = self._score.get(loop.loop_id, (0, 0))
        if losses >= 4 and not wins:
            return False
        try:
            batch = _Binder(self, loop).run()
        except _Fallback:
            self.fallback_binds += 1
            self._score[loop.loop_id] = (wins, losses + 1)
            return False
        self._score[loop.loop_id] = (wins + 1, losses)
        self._commit_structured(batch, _period_hints(loop))
        return True

    def _commit_structured(self, batch, hints) -> None:
        buffer = self.it._refs
        base = len(buffer)
        self.segments.append((base, base + len(batch.pages), hints))
        buffer.pending = (hints, [e.position for e in batch.events])
        self._commit(batch)


def generate_static_string(
    program: ast.Program,
    plan: Optional[InstrumentationPlan] = None,
    symbols: Optional[SymbolTable] = None,
    page_config: Optional[PageConfig] = None,
    max_references: int = 5_000_000,
    max_operations: int = 100_000_000,
    stats: Optional[Dict[str, int]] = None,
) -> StaticString:
    """Partially evaluate ``program`` into its run-structured string.

    Kept references, run journal, directives, truncation and errors all
    match :func:`~repro.analysis.symbolic.interp.generate_runtrace`
    output exactly (the oracle's ``static-*`` battery asserts it seed by
    seed); the flat page string is simply never built.  ``stats``
    additionally receives ``closed_form_references`` — how much of the
    string existed only as arithmetic.
    """
    interpreter = Interpreter(
        program,
        symbols=symbols,
        page_config=page_config,
        plan=plan,
        max_references=max_references,
        max_operations=max_operations,
        compile_nests=True,
    )
    compiler = StaticCompiler(interpreter)
    interpreter._compiler = compiler
    buffer = RunBuffer()
    interpreter._refs = buffer
    try:
        interpreter._exec_block(program.body)
    except (_StopExecution, _TraceFull):
        pass
    n, kept_pos, kept_pages, runs = buffer.finish()
    string = StaticString(
        program_name=program.name,
        n_references=n,
        total_pages=max(interpreter.layout.total_pages, 1),
        directives=interpreter._events,
        array_pages={
            name: (p.first_page, p.page_count)
            for name, p in interpreter.layout.placements.items()
        },
        truncated=interpreter._truncated,
        kept_pos=kept_pos,
        kept_pages=kept_pages,
        runs=runs,
    )
    if stats is not None:
        compiled_refs = sum(e - s for s, e, _ in compiler.segments)
        stats.update(
            references=n,
            compiled_segments=len(compiler.segments),
            compiled_references=compiled_refs,
            closed_form_references=buffer.closed_form_refs,
            recipe_binds=compiler.recipe_binds,
            fallback_binds=compiler.fallback_binds,
            runs=len(runs),
            kept_references=len(kept_pos),
        )
    return string
