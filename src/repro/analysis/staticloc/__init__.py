"""Closed-form static locality analysis.

The symbolic engine (:mod:`repro.analysis.symbolic`) interprets a
program once, cold, to *detect* periodic runs in the page string it
just generated.  This package removes that last trace: the static
engine partially evaluates the program at compile time — loop bounds,
subscript matrices and directive positions come straight from the AST —
and derives the run structure of every recipe-tier nest **in closed
form** from its affine access functions, never materializing the flat
reference string.  The result is the same weighted surrogate the
symbolic analyzers consume, so LRU reuse histograms, WS(τ) curves and
the CD structure walk are bit-identical to both the trace and symbolic
paths (``repro table 2 --mode static``), at a fraction of the cost.

Layer map:

* :mod:`~repro.analysis.staticloc.affine` — closed-form page-crossing
  and run-claiming math for one affine binding;
* :mod:`~repro.analysis.staticloc.string` — the virtual reference
  string (:class:`StaticString`) and the piecewise buffer that stands
  in for the interpreter's flat page list;
* :mod:`~repro.analysis.staticloc.interp` — the static compiler and
  interpreter subclasses plus :func:`generate_static_string`;
* :mod:`~repro.analysis.staticloc.artifacts` — cache-keyed per-workload
  artifacts (:func:`static_artifacts_for`), the ``--mode static`` twin
  of the trace and symbolic builders.
"""

from repro.analysis.staticloc.affine import ClosedFormPages, ap_crossings
from repro.analysis.staticloc.artifacts import (
    StaticArtifacts,
    clear_static_cache,
    static_artifacts_for,
)
from repro.analysis.staticloc.interp import generate_static_string
from repro.analysis.staticloc.string import RunBuffer, StaticString

__all__ = [
    "ClosedFormPages",
    "ap_crossings",
    "StaticArtifacts",
    "static_artifacts_for",
    "clear_static_cache",
    "generate_static_string",
    "RunBuffer",
    "StaticString",
]
