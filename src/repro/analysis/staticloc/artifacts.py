"""Static (closed-form) per-workload artifacts.

:func:`static_artifacts_for` is the third drop-in twin of
:func:`repro.experiments.runner.artifacts_for` (after the symbolic
builder): same signature, same in-process memo and mode-marked disk
cache, but generation partially evaluates the program into a
:class:`~repro.analysis.staticloc.string.StaticString` — the flat
reference string is never materialized, recipe-tier nests contribute
their run journal in closed form straight from the affine subscripts,
and the weighted analyzers and CD structure walk run on the surrogate
built with :meth:`Surrogate.from_parts`.  Every number matches the
trace-backed and symbolic artifacts exactly (Table 2 produced any of
the three ways is identical); only the cost differs.

Two exact fallbacks remain for CD configurations the structure walk
cannot serve (a memory ceiling, honored LOCKs, or a journal the walk
rejects): a LOCK-instrumented execution compiles nothing, so its
string is fully literal and materializes for free; anything else
regenerates the trace once and counts it in ``gen_stats`` — visible,
never silent.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.locality import LocalityAnalysis, SizingStrategy, analyze_program
from repro.analysis.parameters import PageConfig
from repro.analysis.staticloc.interp import generate_static_string
from repro.analysis.staticloc.string import StaticString
from repro.analysis.symbolic.cd import simulate_cd_symbolic
from repro.analysis.symbolic.collapse import Surrogate
from repro.analysis.symbolic.locality import SymbolicLRU, SymbolicWS
from repro.analysis.symbolic.runtrace import Run, RunTrace
from repro.directives import instrument_program
from repro.directives.model import InstrumentationPlan
from repro.experiments.runner import (
    STATS,
    cache_dir,
    quarantine_paths,
    stat_fingerprint,
)
from repro.tracegen import io as trace_io
from repro.tracegen.events import ReferenceTrace
from repro.tracegen.interpreter import generate_trace
from repro.tracegen.io import _event_from_dict, _event_to_dict
from repro.vm.analyzers import LRUSweep
from repro.vm.fastsim import cd_fast_applicable, simulate_cd_fast
from repro.vm.metrics import SimulationResult
from repro.vm.policies import CDConfig, CDPolicy
from repro.vm.simulator import simulate
from repro.workloads import get_workload

__all__ = ["StaticArtifacts", "static_artifacts_for", "clear_static_cache"]

#: bump when the closed-form math or the cache layout changes
STATIC_FORMAT = 1


@dataclass
class StaticArtifacts:
    """Everything the experiments need, derived without any trace."""

    name: str
    analysis: LocalityAnalysis
    plan: InstrumentationPlan
    string: StaticString
    runtrace: RunTrace = field(repr=False)
    surrogate: Surrogate = field(repr=False)
    lru: SymbolicLRU = field(repr=False)
    ws: SymbolicWS = field(repr=False)
    gen_stats: Dict[str, int] = field(default_factory=dict, repr=False)
    _exact: Optional[ReferenceTrace] = field(default=None, repr=False)

    def cd_result(self, config: Optional[CDConfig] = None) -> SimulationResult:
        """CD replay: structure walk when the closed form applies,
        exact fallback otherwise (ceiling / LOCK pinning / a journal
        the walk rejects)."""
        config = config or CDConfig()
        t0 = time.perf_counter()
        try:
            if cd_fast_applicable(self.string, config):
                try:
                    return simulate_cd_symbolic(
                        self.runtrace,
                        config,
                        surrogate=self.surrogate,
                        kept_distances=self.lru._distances,
                    )
                except ValueError:
                    return simulate_cd_fast(self._exact_trace(), config)
            return simulate(self._exact_trace(), CDPolicy(config))
        finally:
            STATS.add(
                "simulate", time.perf_counter() - t0, self.string.n_references
            )

    def best_cd_result(
        self, caps: Tuple[Optional[int], ...] = (None, 2, 1)
    ) -> SimulationResult:
        """Minimum-ST CD run across directive-set choices (PI caps) —
        same candidates and tie-breaking as the other two builders."""
        candidates = [self.cd_result(CDConfig(pi_cap=cap)) for cap in caps]
        return min(candidates, key=lambda r: r.space_time)

    def coverage(self) -> Dict[str, int]:
        """Static coverage: CD301-flagged subscript sites versus what
        the closed form / compiler proved vs recovered by
        interpretation, plus any exact-trace fallbacks taken."""
        from repro.staticcheck import lint_program

        flagged = sum(
            1
            for d in lint_program(self.analysis.program, plan=self.plan)
            if d.rule == "CD301"
        )
        report = dict(self.gen_stats)
        report["nonaffine_sites"] = flagged
        return report

    def _exact_trace(self) -> ReferenceTrace:
        """The flat trace, for the CD configurations the walk cannot
        serve.  Free for fully literal strings; otherwise a counted
        one-time regeneration."""
        if self._exact is None:
            if self.string.fully_literal:
                self._exact = self.string.to_reference_trace()
            else:
                self.gen_stats["exact_fallback_traces"] = (
                    self.gen_stats.get("exact_fallback_traces", 0) + 1
                )
                workload = get_workload(self.name)
                self._exact = generate_trace(
                    workload.program(),
                    plan=self.plan,
                    symbols=workload.symbols(),
                )
        return self._exact


_STATIC_CACHE: Dict[
    Tuple[str, PageConfig, SizingStrategy, bool], StaticArtifacts
] = {}


def _static_cache_key(
    source: str,
    page_config: PageConfig,
    strategy: SizingStrategy,
    with_locks: bool,
) -> str:
    payload = json.dumps(
        {
            "source": source,
            "page_bytes": page_config.page_bytes,
            "word_bytes": page_config.word_bytes,
            "strategy": strategy.value,
            "with_locks": with_locks,
            "format": trace_io.FORMAT_VERSION,
            "mode": "static",
            "static_format": STATIC_FORMAT,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _entry_path(cdir: Path, key: str) -> Path:
    return cdir / f"static-{key}.npz"


def _load_entry(
    cdir: Path, key: str
) -> Optional[Tuple[StaticString, Dict[str, np.ndarray]]]:
    path = _entry_path(cdir, key)
    if not path.exists():
        return None
    observed = {path: stat_fingerprint(path)}
    try:
        with np.load(path) as arrays:
            header = json.loads(arrays["header"].tobytes().decode("utf-8"))
            if header.get("static_format") != STATIC_FORMAT:
                raise ValueError(
                    f"static cache format {header.get('static_format')}"
                )
            string = StaticString(
                program_name=header["program_name"],
                n_references=int(header["n_references"]),
                total_pages=int(header["total_pages"]),
                directives=[
                    _event_from_dict(d) for d in header["directives"]
                ],
                array_pages={
                    name: (int(first), int(count))
                    for name, (first, count) in header["array_pages"].items()
                },
                truncated=bool(header["truncated"]),
                kept_pos=arrays["kept_pos"].astype(np.int64),
                kept_pages=arrays["kept_pages"].astype(np.int32),
                runs=[
                    Run(int(s), int(b), int(k))
                    for s, b, k in zip(
                        arrays["run_start"],
                        arrays["run_block"],
                        arrays["run_repeats"],
                    )
                ],
            )
            sweeps = {
                name: arrays[name]
                for name in ("distances", "distinct", "ws_best")
                if name in arrays
            }
        return string, sweeps
    except Exception as err:
        quarantine_paths(
            (path,),
            "static",
            key,
            f"{type(err).__name__}: {err}",
            observed=observed,
        )
        return None


def _store_entry(
    cdir: Path,
    key: str,
    string: StaticString,
    lru: SymbolicLRU,
    ws: SymbolicWS,
) -> None:
    try:
        cdir.mkdir(parents=True, exist_ok=True)
        path = _entry_path(cdir, key)
        header = {
            "static_format": STATIC_FORMAT,
            "program_name": string.program_name,
            "n_references": string.n_references,
            "total_pages": string.total_pages,
            "truncated": string.truncated,
            "array_pages": {
                name: [first, count]
                for name, (first, count) in string.array_pages.items()
            },
            "directives": [_event_to_dict(d) for d in string.directives],
        }
        best = ws.min_space_time()
        tmp = path.with_name(path.name + f".tmp{os.getpid()}.npz")
        try:
            np.savez(
                tmp,
                header=np.frombuffer(
                    json.dumps(header).encode("utf-8"), dtype=np.uint8
                ),
                kept_pos=string.kept_pos,
                kept_pages=string.kept_pages,
                run_start=np.array(
                    [r.start for r in string.runs], dtype=np.int64
                ),
                run_block=np.array(
                    [r.block for r in string.runs], dtype=np.int64
                ),
                run_repeats=np.array(
                    [r.repeats for r in string.runs], dtype=np.int64
                ),
                distances=lru._distances,
                distinct=lru._distinct,
                ws_best=np.array(
                    [
                        best.parameter,
                        best.page_faults,
                        best.mem_average,
                        best.space_time,
                        best.fault_service,
                    ]
                ),
            )
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
    except OSError:
        pass  # a read-only filesystem must not break the experiments


def static_artifacts_for(
    name: str,
    page_config: Optional[PageConfig] = None,
    strategy: SizingStrategy = SizingStrategy.ACTIVE_PAGE,
    with_locks: bool = False,
) -> StaticArtifacts:
    """Build (or fetch) the static artifacts for one benchmark."""
    page_config = page_config or PageConfig()
    key = (name.upper(), page_config, strategy, with_locks)
    cached = _STATIC_CACHE.get(key)
    if cached is not None:
        return cached
    workload = get_workload(name)
    program = workload.program()
    symbols = workload.symbols()
    analysis = analyze_program(
        program, symbols=symbols, page_config=page_config, strategy=strategy
    )
    plan = instrument_program(program, analysis=analysis, with_locks=with_locks)

    cdir = cache_dir()
    disk_key = _static_cache_key(workload.source, page_config, strategy, with_locks)
    stats: Dict[str, int] = {}
    loaded = _load_entry(cdir, disk_key) if cdir else None
    if loaded is not None:
        STATS.cache_hits += 1
        string, sweeps = loaded
    else:
        STATS.cache_misses += 1
        sweeps = {}
        t0 = time.perf_counter()
        # FORAY-GEN affine recovery: rewrite recoverable CD301 sites so
        # the closed-form compiler sees affine subscripts.  The rewrite
        # is trace-equivalent by construction (and re-proven by the
        # static oracle battery), so the string is unchanged — only how
        # much of it the recipe/closed-form tiers can serve.
        from repro.staticcheck.recovery import recover_program

        recovery = recover_program(program, symbols=symbols)
        stats["recovered_sites"] = len(recovery.sites)
        string = generate_static_string(
            recovery.program,
            plan=plan,
            symbols=symbols,
            page_config=page_config,
            stats=stats,
        )
        STATS.add("static-gen", time.perf_counter() - t0, string.n_references)

    t0 = time.perf_counter()
    surrogate = string.surrogate()
    runtrace = RunTrace(string, string.runs)
    inner = None
    if "distances" in sweeps and "distinct" in sweeps:
        inner = LRUSweep.from_arrays(
            {
                "pages": surrogate.kept_pages,
                "distances": sweeps["distances"],
                "distinct": sweeps["distinct"],
            },
            program=workload.name,
        )
    lru = SymbolicLRU(surrogate, program=workload.name, inner=inner)
    ws = SymbolicWS(surrogate, program=workload.name)
    best = sweeps.get("ws_best")
    if best is not None and int(best[4]) == ws.fault_service:
        ws._min_st_cache = SimulationResult(
            policy="WS",
            program=workload.name,
            page_faults=int(best[1]),
            references=string.n_references,
            mem_average=float(best[2]),
            space_time=float(best[3]),
            parameter=int(best[0]),
            fault_service=ws.fault_service,
        )
    STATS.add(
        "static-sweeps", time.perf_counter() - t0, 2 * len(surrogate.kept_pos)
    )
    if loaded is None and cdir is not None:
        _store_entry(cdir, disk_key, string, lru, ws)
    artifacts = StaticArtifacts(
        name=workload.name,
        analysis=analysis,
        plan=plan,
        string=string,
        runtrace=runtrace,
        surrogate=surrogate,
        lru=lru,
        ws=ws,
        gen_stats=stats,
    )
    _STATIC_CACHE[key] = artifacts
    return artifacts


def clear_static_cache(disk: bool = True) -> None:
    """Drop memoized static artifacts (and disk entries by default)."""
    _STATIC_CACHE.clear()
    if not disk:
        return
    cdir = cache_dir()
    if cdir is None or not cdir.is_dir():
        return
    for pattern in ("static-*.npz", "static-*.corrupt"):
        for path in cdir.glob(pattern):
            path.unlink(missing_ok=True)
