"""The virtual reference string: structure without the pages.

:class:`RunBuffer` stands in for the interpreter's flat ``_refs`` list.
The interpreter only ever *appends* single pages (interpreted
references), *extends* with a compiled batch's pages, and takes
``len()`` — this class implements exactly that protocol, but instead of
growing one flat list it keeps literal references as-is and structures
every compiled batch the moment it is committed: runs are claimed
(closed form for recipe batches, the ordinary detector over the batch's
own block for binder batches), interior copies are dropped, and the
flat block is discarded.  The complete reference string never exists in
memory.

:class:`StaticString` is the finished product — a duck-typed
:class:`~repro.tracegen.events.ReferenceTrace` whose ``pages`` exposes
only its length.  Everything downstream of run detection (the weighted
LRU/WS analyzers via :meth:`surrogate`, the CD structure walk, the
:class:`~repro.analysis.symbolic.runtrace.RunTrace` validation) needs
nothing more.  A string generated under LOCK instrumentation compiles
nothing, so it stays fully literal and can be materialized back into a
real trace (:meth:`to_reference_trace`) for the exact-simulation
fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.staticloc.affine import ClosedFormPages
from repro.analysis.symbolic.collapse import Surrogate, detect_runs, kept_mask
from repro.analysis.symbolic.runtrace import Run
from repro.tracegen.events import DirectiveEvent, ReferenceTrace

__all__ = ["RunBuffer", "StaticString"]


class RunBuffer:
    """Piecewise, run-structured replacement for the flat page list."""

    def __init__(self) -> None:
        self._n = 0
        self._tail: List[int] = []  # literal refs since the last piece
        self._kept_pos: List[np.ndarray] = []
        self._kept_pages: List[np.ndarray] = []
        self._runs: List[Run] = []
        #: set by the static compiler right before committing a batch:
        #: (period hints, absolute positions of the batch's events)
        self.pending: Optional[Tuple[List[int], List[int]]] = None
        #: references committed without ever materializing their pages
        self.closed_form_refs = 0

    # -- the `_refs` protocol -----------------------------------------------

    def __len__(self) -> int:
        return self._n

    def append(self, page: int) -> None:
        self._tail.append(page)
        self._n += 1

    def extend(self, pages) -> None:
        pending, self.pending = self.pending, None
        base = self._n
        if isinstance(pages, ClosedFormPages):
            self._flush_tail()
            runs, kept, kept_pages = pages.structure()
            self.closed_form_refs += len(pages)
            self._push(base, len(pages), runs, kept, kept_pages)
            return
        arr = np.asarray(pages, dtype=np.int32)
        if pending is None or len(arr) == 0:
            # no structure hints — keep the block literal
            self._tail.extend(arr.tolist())
            self._n += len(arr)
            return
        hints, event_positions = pending
        self._flush_tail()
        bounds = [p - base for p in event_positions if 0 < p - base < len(arr)]
        runs = detect_runs(arr, [(0, len(arr), hints)], bounds)
        kept = np.flatnonzero(kept_mask(len(arr), runs)).astype(np.int64)
        self._push(base, len(arr), runs, kept, arr[kept])

    # -- internals ----------------------------------------------------------

    def _flush_tail(self) -> None:
        if not self._tail:
            return
        count = len(self._tail)
        base = self._n - count
        self._kept_pos.append(base + np.arange(count, dtype=np.int64))
        self._kept_pages.append(np.asarray(self._tail, dtype=np.int32))
        self._tail = []

    def _push(
        self,
        base: int,
        length: int,
        runs: List[Run],
        kept: np.ndarray,
        kept_pages: np.ndarray,
    ) -> None:
        if len(kept):
            self._kept_pos.append(base + kept)
            self._kept_pages.append(np.asarray(kept_pages, dtype=np.int32))
        self._runs.extend(
            Run(base + r.start, r.block, r.repeats) for r in runs
        )
        self._n += length

    def finish(self) -> Tuple[int, np.ndarray, np.ndarray, List[Run]]:
        """``(n, kept_pos, kept_pages, runs)`` — the structured string."""
        self._flush_tail()
        kept_pos = (
            np.concatenate(self._kept_pos)
            if self._kept_pos
            else np.empty(0, dtype=np.int64)
        )
        kept_pages = (
            np.concatenate(self._kept_pages)
            if self._kept_pages
            else np.empty(0, dtype=np.int32)
        )
        return self._n, kept_pos, kept_pages, list(self._runs)


class _VirtualPages:
    """Length-only stand-in for the flat page array."""

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = n

    def __len__(self) -> int:
        return self._n


@dataclass
class StaticString:
    """A run-structured reference string that never had flat pages."""

    program_name: str
    n_references: int
    total_pages: int
    directives: List[DirectiveEvent] = field(default_factory=list)
    array_pages: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    truncated: bool = False
    kept_pos: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    kept_pages: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    runs: List[Run] = field(default_factory=list)

    @property
    def pages(self) -> _VirtualPages:
        return _VirtualPages(self.n_references)

    @property
    def length(self) -> int:
        return self.n_references

    @property
    def fully_literal(self) -> bool:
        """True when nothing was collapsed — every reference is kept."""
        return len(self.kept_pos) == self.n_references

    def surrogate(self) -> Surrogate:
        """The weighted kept-reference view (no flat pages needed)."""
        return Surrogate.from_parts(
            self.n_references, self.kept_pos, self.kept_pages, self.runs
        )

    def to_reference_trace(self) -> ReferenceTrace:
        """Materialize — only possible for fully literal strings (the
        LOCK-instrumented executions, which compile nothing)."""
        if not self.fully_literal:
            raise ValueError(
                "collapsed static string has no flat pages to materialize"
            )
        return ReferenceTrace(
            program_name=self.program_name,
            pages=self.kept_pages,
            total_pages=self.total_pages,
            directives=list(self.directives),
            array_pages=dict(self.array_pages),
            truncated=self.truncated,
        )
