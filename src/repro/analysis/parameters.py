"""Page geometry and the Σ-derived size parameters (AVS, CVS).

The paper's experiments "assume a paged system with a 256 byte page
size"; FORTRAN REALs of the era were 4 bytes, giving 64 elements per
page.  Both are configurable so experiments can sweep the geometry.

Definitions from Section 2 of the paper:

* ``AVS = (M × N) / P`` — the virtual size of an array, in pages;
* ``CVS = M / P`` — the virtual size of one array column, in pages.

We round up (an array occupying any part of a page occupies the page)
and lay arrays out page-aligned, which makes AVS additive across arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.frontend.symbols import ArrayInfo


@dataclass(frozen=True)
class PageConfig:
    """System-dependent geometry: page size and element width.

    ``page_bytes`` is the paper's parameter ``P`` (in bytes);
    ``word_bytes`` is the storage size of one REAL array element.
    """

    page_bytes: int = 256
    word_bytes: int = 4

    def __post_init__(self) -> None:
        if self.page_bytes <= 0 or self.word_bytes <= 0:
            raise ValueError("page_bytes and word_bytes must be positive")
        if self.page_bytes % self.word_bytes != 0:
            raise ValueError("page size must be a whole number of elements")

    @property
    def elements_per_page(self) -> int:
        """Array elements per page (the ``P`` used in AVS/CVS formulas)."""
        return self.page_bytes // self.word_bytes

    def pages_for_elements(self, element_count: int) -> int:
        """Number of pages needed for ``element_count`` contiguous elements."""
        if element_count < 0:
            raise ValueError("element_count must be non-negative")
        return math.ceil(element_count / self.elements_per_page)

    def array_virtual_size(self, info: ArrayInfo) -> int:
        """AVS: pages spanned by the whole (page-aligned) array."""
        return self.pages_for_elements(info.element_count)

    def column_virtual_size(self, info: ArrayInfo) -> int:
        """CVS: pages spanned by one column (``ceil(M / P)``).

        For vectors this is the same as AVS (a vector is its own single
        column, the paper's ``N = 1`` convention).
        """
        return self.pages_for_elements(info.rows)

    def page_of_element(self, linear_index: int) -> int:
        """Page number (within the array) of a 0-based linear element index."""
        if linear_index < 0:
            raise ValueError("linear_index must be non-negative")
        return linear_index // self.elements_per_page
