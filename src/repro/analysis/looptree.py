"""Loop-nest structure: the Δ (nest depth) and Λ (reference level) parameters.

A :class:`LoopTree` organizes every ``DO`` loop of a program into a forest
mirroring the syntactic nesting.  Each :class:`LoopNode` records:

* ``level`` — the paper's Λ: 1 for an outermost loop, increasing inward;
* ``children`` — directly nested loops;
* ``direct_statements`` — statements at this loop's own level (not inside
  a deeper loop), which is where Algorithm 2 looks for arrays to LOCK;
* ``direct_refs`` — the array references contained in those statements.

``Δ`` (the nest depth of a loop structure) is the maximum level within
the subtree of an outermost loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.frontend import ast


@dataclass
class LoopNode:
    """One ``DO`` or ``DO WHILE`` loop within the loop forest."""

    loop: "ast.Stmt"  # DoLoop or WhileLoop
    level: int
    parent: Optional["LoopNode"] = None
    children: List["LoopNode"] = field(default_factory=list)
    #: statements directly at this loop's level (loop bodies excluded)
    direct_statements: List[ast.Stmt] = field(default_factory=list)
    #: array references occurring in ``direct_statements`` plus the
    #: loop-control expressions of immediate child loops
    direct_refs: List[ast.ArrayRef] = field(default_factory=list)

    @property
    def loop_id(self) -> int:
        return self.loop.loop_id

    @property
    def var(self) -> str:
        """The index variable; empty for condition-controlled loops
        (a WHILE loop drives no subscript directly)."""
        return getattr(self.loop, "var", "")

    @property
    def is_while(self) -> bool:
        return isinstance(self.loop, ast.WhileLoop)

    @property
    def is_innermost(self) -> bool:
        return not self.children

    @property
    def subtree_depth(self) -> int:
        """Depth of the deepest loop in this subtree, counting this node
        as 1 — equals the paper's Δ when evaluated on an outermost loop."""
        if not self.children:
            return 1
        return 1 + max(child.subtree_depth for child in self.children)

    def ancestors(self) -> Iterator["LoopNode"]:
        """Enclosing loops from the immediate parent outward."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["LoopNode"]:
        """All loops strictly inside this one, pre-order."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def self_and_descendants(self) -> Iterator["LoopNode"]:
        yield self
        yield from self.descendants()

    def path_down_to(self, other: "LoopNode") -> List["LoopNode"]:
        """Nodes from ``self`` down to ``other`` inclusive.

        Raises :class:`ValueError` when ``other`` is not in this subtree.
        """
        chain = [other]
        node = other
        while node is not self:
            node = node.parent
            if node is None:
                raise ValueError(
                    f"loop {other.loop_id} is not nested inside {self.loop_id}"
                )
            chain.append(node)
        chain.reverse()
        return chain

    def all_refs(self) -> Iterator[ast.ArrayRef]:
        """Array references anywhere within this loop (subtree included)."""
        for node in self.self_and_descendants():
            yield from node.direct_refs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LoopNode(id={self.loop_id}, var={self.var}, level={self.level}, "
            f"children={len(self.children)})"
        )


class LoopTree:
    """Forest of loop nests for one program."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.roots: List[LoopNode] = []
        self.by_id: Dict[int, LoopNode] = {}
        #: array references at program top level (outside every loop)
        self.toplevel_refs: List[ast.ArrayRef] = []
        self._build(program.body, parent=None)

    # -- construction ------------------------------------------------------

    def _build(self, stmts: List[ast.Stmt], parent: Optional[LoopNode]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.DoLoop, ast.WhileLoop)):
                node = LoopNode(
                    loop=stmt,
                    level=(parent.level + 1) if parent else 1,
                    parent=parent,
                )
                self.by_id[stmt.loop_id] = node
                if parent is None:
                    self.roots.append(node)
                else:
                    parent.children.append(node)
                if isinstance(stmt, ast.DoLoop):
                    # DO bounds evaluate once, at the *enclosing* level.
                    control_refs = list(self._stmt_control_refs(stmt))
                    if parent is None:
                        self.toplevel_refs.extend(control_refs)
                    else:
                        parent.direct_refs.extend(control_refs)
                else:
                    # A WHILE condition re-evaluates every iteration: its
                    # references belong to the loop's own level.
                    node.direct_refs.extend(
                        n
                        for n in ast.walk_expressions(stmt.cond)
                        if isinstance(n, ast.ArrayRef)
                    )
                self._build(stmt.body, parent=node)
            elif isinstance(stmt, ast.IfBlock):
                # Branch conditions and bodies stay at the current level.
                for cond, _body in stmt.branches:
                    if cond is not None:
                        self._collect_refs_into(cond, parent)
                for _cond, body in stmt.branches:
                    self._build(body, parent)
            elif isinstance(stmt, ast.LogicalIf):
                self._collect_refs_into(stmt.cond, parent)
                self._build([stmt.stmt], parent)
            else:
                if parent is not None:
                    parent.direct_statements.append(stmt)
                refs = list(ast.statement_array_refs(stmt))
                if parent is None:
                    self.toplevel_refs.extend(refs)
                else:
                    parent.direct_refs.extend(refs)

    @staticmethod
    def _stmt_control_refs(loop: ast.DoLoop) -> Iterator[ast.ArrayRef]:
        for expr in (loop.start, loop.end, loop.step):
            if expr is None:
                continue
            for node in ast.walk_expressions(expr):
                if isinstance(node, ast.ArrayRef):
                    yield node

    def _collect_refs_into(self, expr: ast.Expr, parent: Optional[LoopNode]) -> None:
        refs = [n for n in ast.walk_expressions(expr) if isinstance(n, ast.ArrayRef)]
        if parent is None:
            self.toplevel_refs.extend(refs)
        else:
            parent.direct_refs.extend(refs)

    # -- queries -------------------------------------------------------------

    def nodes(self) -> Iterator[LoopNode]:
        """All loop nodes, pre-order across the forest."""
        for root in self.roots:
            yield from root.self_and_descendants()

    @property
    def max_depth(self) -> int:
        """The paper's Δ for the deepest nest in the program (0 if no loops)."""
        if not self.roots:
            return 0
        return max(root.subtree_depth for root in self.roots)

    def nest_depth(self, node: LoopNode) -> int:
        """Δ of the nest containing ``node`` (depth of its outermost root)."""
        root = node
        while root.parent is not None:
            root = root.parent
        return root.subtree_depth

    def enclosing_vars(self, node: LoopNode) -> List[str]:
        """Loop variables of ``node`` and all its ancestors (inner first)."""
        names = [node.var]
        names.extend(anc.var for anc in node.ancestors())
        return names
