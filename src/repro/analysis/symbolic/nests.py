"""Closed-form generation recipes for single affine DO loops.

The general binder (:class:`repro.tracegen.compile._Binder`) re-derives
a nest's iteration grids, subscript vectors and interleave sort on
*every* binding.  For the two nests that dominate generation cost
(Givens-rotation rows in TQL, elimination rows in HYBRJ) that work is
overkill: one non-nested loop whose subscripts are affine in the loop
variable touches, per site, the arithmetic progression

    offset(t) = lin0 + dlin * t,        t = 0 .. trips-1

so the page string of the whole binding is ``S`` interleaved
progressions — computable (and memoizable) directly.

A recipe is built once per loop (structural checks) and *bound* per
execution (bounds, subscript endpoints, values).  Every rule the binder
enforces is mirrored here; anything not provably identical to
interpretation — non-affine subscripts, loop-carried scalars,
overlapping array updates, any operation that could raise — declines,
and the binder (then the interpreter) takes over.  Declining is always
safe: the recipe touches no interpreter state before returning its
fully materialized :class:`~repro.tracegen.compile._Batch`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.frontend import ast
from repro.tracegen.compile import _Batch, _expr_refs, _overlaps
from repro.tracegen.events import DirectiveEvent, DirectiveKind
from repro.tracegen.interpreter import _fortran_int_div

__all__ = ["Recipe", "build_recipe"]

#: mirrors of the binder's guards
_MAX_INSTANCES = 40_000_000
_BOUND_LIMIT = 1 << 31
#: ints at or above this are not exactly representable as float64
_FLOAT_EXACT_INT = 1 << 53


class _Decline(Exception):
    """Internal: this loop (or this binding of it) has no recipe."""


# -- build-time structural checks -------------------------------------------


def _index_degree(expr, var: str, body_defined: Set[str], free: Set[str]) -> int:
    """Degree of a subscript expression in the loop variable; collects
    free scalar names.  Only integer +,-,* forms qualify."""
    if isinstance(expr, ast.Num):
        if not isinstance(expr.value, int):
            raise _Decline
        return 0
    if isinstance(expr, ast.Var):
        if expr.name == var:
            return 1
        if expr.name in body_defined:
            raise _Decline  # varies per iteration in a non-affine way
        free.add(expr.name)
        return 0
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return _index_degree(expr.operand, var, body_defined, free)
    if isinstance(expr, ast.BinOp):
        ld = _index_degree(expr.left, var, body_defined, free)
        rd = _index_degree(expr.right, var, body_defined, free)
        if expr.op in ("+", "-"):
            return max(ld, rd)
        if expr.op == "*":
            return ld + rd
    raise _Decline


def _value_ok(expr, var: str, body_defined: Set[str], defined: Set[str]) -> None:
    """Value expressions may read scalars/arrays and combine them with
    +,-,*,/ and unary minus; the loop variable itself and any
    body-defined scalar not yet textually defined decline."""
    if isinstance(expr, ast.Num):
        return
    if isinstance(expr, ast.Var):
        if expr.name == var:
            raise _Decline
        if expr.name in body_defined and expr.name not in defined:
            raise _Decline  # loop-carried (or uninitialized) scalar
        return
    if isinstance(expr, ast.ArrayRef):
        return  # subscripts are validated as sites
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        _value_ok(expr.operand, var, body_defined, defined)
        return
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "-", "*", "/"):
        _value_ok(expr.left, var, body_defined, defined)
        _value_ok(expr.right, var, body_defined, defined)
        return
    raise _Decline


def _ieval(expr, var: str, vval: int, scalars: Dict[str, int]) -> int:
    """Exact integer value of a subscript expression at one loop-variable
    value (all participating values pre-verified to be ints)."""
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Var):
        return vval if expr.name == var else scalars[expr.name]
    if isinstance(expr, ast.UnaryOp):
        return -_ieval(expr.operand, var, vval, scalars)
    op = expr.op
    left = _ieval(expr.left, var, vval, scalars)
    right = _ieval(expr.right, var, vval, scalars)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    return left * right


class _Assign:
    __slots__ = ("target_name", "array_site", "rhs", "rhs_sites", "tainted")

    def __init__(self, target_name, array_site, rhs, rhs_sites, tainted):
        self.target_name = target_name
        self.array_site = array_site  # site index, or None for scalars
        self.rhs = rhs
        self.rhs_sites = rhs_sites  # id(ArrayRef) -> site index
        self.tainted = tainted


def build_recipe(comp, loop: ast.DoLoop) -> Optional["Recipe"]:
    """Structural eligibility check; returns a bindable Recipe or None."""
    try:
        return _build(comp, loop)
    except _Decline:
        return None


def _build(comp, loop: ast.DoLoop) -> "Recipe":
    var = loop.var
    arrays = comp.it.symbols.arrays
    body = loop.body
    assign_stmts = []
    for stmt in body:
        if isinstance(stmt, ast.Continue):
            continue
        if not isinstance(stmt, ast.Assign):
            raise _Decline  # nested loops / IFs / PRINTs: binder's job
        assign_stmts.append(stmt)
    body_defined = {
        s.target.name for s in assign_stmts if isinstance(s.target, ast.Var)
    }
    if var in body_defined:
        raise _Decline
    for bound in (loop.start, loop.end, loop.step):
        if bound is not None and any(True for _ in _expr_refs(bound)):
            raise _Decline  # bounds with references stay on the binder path

    sites: List[ast.ArrayRef] = []
    free: Set[str] = set()
    specs: List[_Assign] = []
    defined: Set[str] = set()
    writes_by_array: Dict[str, List[Tuple[int, int]]] = {}

    def check_site(ref: ast.ArrayRef) -> None:
        info = arrays.get(ref.name)
        if info is None or len(ref.indices) not in (1, 2):
            raise _Decline
        for e in ref.indices:
            if _index_degree(e, var, body_defined, free) > 1:
                raise _Decline

    for stmt in assign_stmts:
        rhs_sites: Dict[int, int] = {}
        for ref in _expr_refs(stmt.expr):
            check_site(ref)
            rhs_sites[id(ref)] = len(sites)
            sites.append(ref)
        _value_ok(stmt.expr, var, body_defined, defined)
        target = stmt.target
        if isinstance(target, ast.Var):
            specs.append(
                _Assign(target.name, None, stmt.expr, rhs_sites,
                        target.name in comp.tainted)
            )
            defined.add(target.name)
        elif isinstance(target, ast.ArrayRef):
            check_site(target)
            site_idx = len(sites)
            sites.append(target)
            specs.append(
                _Assign(target.name, site_idx, stmt.expr, rhs_sites,
                        target.name in comp.tainted)
            )
            writes_by_array.setdefault(target.name, []).append(
                (len(specs) - 1, site_idx)
            )
        else:
            raise _Decline
    return Recipe(loop, len(body), sites, specs, writes_by_array, free)


# -- the recipe itself -------------------------------------------------------


class Recipe:
    """A bindable closed form for one structurally eligible loop."""

    def __init__(self, loop, body_len, sites, specs, writes_by_array, free):
        self.loop = loop
        self.body_len = body_len
        self.sites = sites
        self.specs = specs
        self.writes_by_array = writes_by_array
        self.free_names = free
        self.n_sites = len(sites)
        self.period_hints = [self.n_sites] if self.n_sites else []
        #: (trips, site APs) -> (pages list, offsets per site)
        self._page_memo: Dict[tuple, tuple] = {}
        #: (trips, site APs) -> offsets per site (static binds skip pages)
        self._offset_memo: Dict[tuple, list] = {}

    def bind(self, it) -> Optional[_Batch]:
        """One execution of the loop as a fully materialized batch, or
        None when this binding is not provably exact."""
        try:
            return self._bind(it)
        except _Decline:
            return None

    def bind_static(self, it) -> Optional[_Batch]:
        """Like :meth:`bind`, but the batch's pages are a
        :class:`~repro.analysis.staticloc.affine.ClosedFormPages`
        placeholder — length and run structure in closed form, no
        per-reference list.  A truncating binding still materializes
        its capped prefix (truncation is terminal and happens once)."""
        try:
            return self._bind(it, materialize=False)
        except _Decline:
            return None

    # -- bind-time ----------------------------------------------------------

    def _bind(self, it, materialize: bool = True) -> _Batch:
        loop = self.loop
        try:
            start = _int_like(it._eval(loop.start))
            end = _int_like(it._eval(loop.end))
            step = _int_like(it._eval(loop.step)) if loop.step is not None else 1
        except _Decline:
            raise
        except Exception:
            raise _Decline from None  # interpreter will raise the real error
        if step == 0:
            raise _Decline
        if max(abs(start), abs(end), abs(step)) > _BOUND_LIMIT:
            raise _Decline
        trips = max(0, (end - start + step) // step)
        if trips < 1 or trips > _MAX_INSTANCES:
            raise _Decline
        nest_ops = trips * self.body_len
        if nest_ops > it.max_operations - it._operations:
            raise _Decline  # the interpreter must raise mid-nest

        fv: Dict[str, int] = {}
        for nm in self.free_names:
            v = it.scalars.get(nm)
            if not isinstance(v, int):
                raise _Decline
            fv[nm] = v
        v0 = start
        v1 = start + (trips - 1) * step
        aps: List[Tuple[int, int]] = []
        for ref in self.sites:
            placement = it.layout.placements.get(ref.name)
            if placement is None:
                raise _Decline
            info = placement.info
            i0 = _ieval(ref.indices[0], loop.var, v0, fv)
            i1 = _ieval(ref.indices[0], loop.var, v1, fv)
            if not (1 <= i0 <= info.rows and 1 <= i1 <= info.rows):
                raise _Decline  # interpreter raises a subscript error
            if len(ref.indices) == 2:
                j0 = _ieval(ref.indices[1], loop.var, v0, fv)
                j1 = _ieval(ref.indices[1], loop.var, v1, fv)
                if not (1 <= j0 <= info.columns and 1 <= j1 <= info.columns):
                    raise _Decline
                lin0 = (j0 - 1) * info.rows + (i0 - 1)
                lin1 = (j1 - 1) * info.rows + (i1 - 1)
            else:
                lin0, lin1 = i0 - 1, i1 - 1
            if trips > 1:
                if (lin1 - lin0) % (trips - 1):
                    raise _Decline  # non-affine after all; play safe
                dlin = (lin1 - lin0) // (trips - 1)
            else:
                dlin = 0
            aps.append((lin0, dlin))

        if materialize:
            pages_list, offsets = self._pages_for(it, trips, aps)
        else:
            offsets = self._offsets_for(trips, aps)
            pages_list = self._closed_pages(it, trips, aps)
        env, writer_vals = self._run_values(it, trips, aps, offsets)

        base = len(it._refs)
        n_refs = self.n_sites * trips
        cap = it.max_references - base
        truncated = n_refs >= cap
        events = []
        plan = it.plan
        if plan is not None:
            allocate = plan.allocates.get(loop.loop_id)
            if allocate is not None:
                events.append(DirectiveEvent(
                    position=base, kind=DirectiveKind.ALLOCATE,
                    site=loop.loop_id, requests=allocate.requests,
                ))
            if loop.loop_id in plan.unlocks_after and not truncated:
                events.append(DirectiveEvent(
                    position=base + n_refs, kind=DirectiveKind.UNLOCK,
                    site=loop.loop_id, lock_pages=(),
                ))
        if truncated:
            if not materialize:
                pages_list = pages_list.materialize().tolist()
            return _Batch(pages_list[:cap], events, True, nest_ops, {}, [])

        scalars_out: Dict[str, object] = {}
        for spec in self.specs:
            if spec.array_site is None:
                if spec.tainted:
                    kind, v = env[spec.target_name]
                    scalars_out[spec.target_name] = (
                        float(v[-1]) if kind == "v" else v
                    )
                else:
                    scalars_out[spec.target_name] = 0.0
        scalars_out[loop.var] = start + trips * step
        array_stores = []
        for name, entries in self.writes_by_array.items():
            if name not in it.arrays or name not in self._tainted(it):
                continue
            if len(entries) == 1:
                aidx, site = entries[0]
                array_stores.append(
                    (name, offsets[site], _as_vec(writer_vals[aidx], trips))
                )
            else:
                omat = np.stack([offsets[site] for _a, site in entries])
                vmat = np.stack(
                    [_as_vec(writer_vals[aidx], trips) for aidx, _s in entries]
                )
                array_stores.append(
                    (name, omat.T.ravel(), vmat.T.ravel())
                )
        return _Batch(pages_list, events, False, nest_ops, scalars_out,
                      array_stores)

    def _tainted(self, it):
        return it._compiler.tainted

    def _offsets_for(self, trips: int, aps: List[Tuple[int, int]]):
        """Per-site element-offset vectors (the value engine's index
        space) — shared by the materializing and static binds."""
        key = (trips, tuple(aps))
        hit = self._offset_memo.get(key)
        if hit is not None:
            return hit
        t = np.arange(trips, dtype=np.int64)
        offsets = [np.int64(lin0) + np.int64(dlin) * t for lin0, dlin in aps]
        if len(self._offset_memo) > 128:
            self._offset_memo.clear()
        self._offset_memo[key] = offsets
        return offsets

    def _closed_pages(self, it, trips: int, aps: List[Tuple[int, int]]):
        from repro.analysis.staticloc.affine import ClosedFormPages

        return ClosedFormPages(
            [it.layout.placements[ref.name].first_page for ref in self.sites],
            [lin0 for lin0, _dlin in aps],
            [dlin for _lin0, dlin in aps],
            it.page_config.elements_per_page,
            trips,
        )

    def _pages_for(self, it, trips: int, aps: List[Tuple[int, int]]):
        key = (trips, tuple(aps))
        hit = self._page_memo.get(key)
        if hit is not None:
            return hit
        offsets = self._offsets_for(trips, aps)
        epp = it.page_config.elements_per_page
        if self.n_sites:
            mat = np.empty((self.n_sites, trips), dtype=np.int64)
            for s, ref in enumerate(self.sites):
                first = it.layout.placements[ref.name].first_page
                mat[s] = first + offsets[s] // epp
            pages_list = mat.T.ravel().tolist()
        else:
            pages_list = []
        if len(self._page_memo) > 128:
            self._page_memo.clear()
        self._page_memo[key] = (pages_list, offsets)
        return pages_list, offsets

    # -- value engine -------------------------------------------------------

    def _run_values(self, it, trips, aps, offsets):
        """Evaluate every assignment exactly (kinds: ('c', py int/float)
        or ('v', float64 per-iteration vector)); any condition under
        which the interpreter could raise, or forwarding could not be
        proven, declines the binding."""
        env: Dict[str, tuple] = {}
        writer_vals: Dict[int, tuple] = {}

        def read_array(ref, ridx):
            name = ref.name
            rsite = self.specs[ridx].rhs_sites[id(ref)]
            ap_r = aps[rsite]
            chosen = None
            for widx, wsite in self.writes_by_array.get(name, ()):
                ap_w = aps[wsite]
                if ap_w == ap_r:
                    if widx < ridx:
                        chosen = widx  # same-iteration forward, last wins
                    elif ap_w[1] == 0 and trips > 1:
                        raise _Decline  # reads a cell a past iteration wrote
                elif _overlaps(offsets[rsite], offsets[wsite]):
                    raise _Decline  # interleaving we cannot replay
            if chosen is not None:
                kind, v = writer_vals[chosen]
                if kind == "c":
                    if isinstance(v, int):
                        if abs(v) >= _FLOAT_EXACT_INT:
                            raise _Decline
                        return ("c", float(v))
                    return ("c", v)
                return ("v", v)
            return ("v", it.arrays[name][offsets[rsite]])

        def veval(expr, ridx):
            if isinstance(expr, ast.Num):
                return ("c", expr.value)
            if isinstance(expr, ast.Var):
                got = env.get(expr.name)
                if got is not None:
                    return got
                v = it.scalars.get(expr.name)
                if v is None:
                    raise _Decline  # interpreter: used before assignment
                return ("c", v)
            if isinstance(expr, ast.ArrayRef):
                return read_array(expr, ridx)
            if isinstance(expr, ast.UnaryOp):
                kind, v = veval(expr.operand, ridx)
                return (kind, -v)
            lkv = veval(expr.left, ridx)
            rkv = veval(expr.right, ridx)
            return _binop(expr.op, lkv, rkv, trips)

        for aidx, spec in enumerate(self.specs):
            val = veval(spec.rhs, aidx)
            if spec.array_site is None:
                env[spec.target_name] = val
            else:
                writer_vals[aidx] = val
        return env, writer_vals


# -- arithmetic mirrors ------------------------------------------------------


def _int_like(value) -> int:
    """The interpreter's ``_int_value`` without the error (declines)."""
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise _Decline


def _as_vec(kv, trips: int) -> np.ndarray:
    kind, v = kv
    if kind == "v":
        return v
    if isinstance(v, int):
        if abs(v) >= _FLOAT_EXACT_INT:
            raise _Decline  # float() would round; let the binder decide
        return np.full(trips, float(v), dtype=np.float64)
    return np.full(trips, v, dtype=np.float64)


def _binop(op, lkv, rkv, trips):
    lk, lv = lkv
    rk, rv = rkv
    if lk == "c" and rk == "c":
        try:
            if op == "+":
                return ("c", lv + rv)
            if op == "-":
                return ("c", lv - rv)
            if op == "*":
                return ("c", lv * rv)
            if op == "/":
                if isinstance(lv, int) and isinstance(rv, int):
                    return ("c", _fortran_int_div(lv, rv))
                return ("c", lv / rv)
        except (ZeroDivisionError, OverflowError):
            raise _Decline from None
        raise _Decline
    la = _as_vec(lkv, trips)
    ra = _as_vec(rkv, trips)
    with np.errstate(all="ignore"):  # IEEE inf/nan, exactly like python
        if op == "+":
            return ("v", la + ra)
        if op == "-":
            return ("v", la - ra)
        if op == "*":
            return ("v", la * ra)
        if op == "/":
            if (ra == 0.0).any():
                raise _Decline  # interpreter: division by zero
            return ("v", la / ra)
    raise _Decline
