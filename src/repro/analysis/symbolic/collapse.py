"""Verified run detection and the weighted surrogate reference string.

``detect_runs`` finds periodic stretches by direct comparison —
``pages[i] == pages[i - b]`` — over candidate periods supplied by the
compiler (references per innermost iteration), inside segments that are
pre-split at every directive position.  Because each run is verified
element-wise against the actual page string, a wrong period hint or a
non-periodic nest costs only compression, never correctness.

``Surrogate`` collapses each run of ``k`` repeats down to three kept
copies — the first (0), the second (1) and the last (k−1), at their
*true* positions — and gives every copy-1 reference weight ``1 + Ω``
(``Ω = k − 3`` omitted copies).  Two gap patches restore exact
backward/forward inter-reference gaps for the kept references:

* the last copy's backward gaps are the steady-state gaps every copy
  ``≥ 1`` has (its raw kept gaps would span the omitted hole), which
  are exactly copy-1's raw backward gaps;
* copy-1's forward gaps likewise become copy-0's raw forward gaps
  (copy-1's raw forward gaps would span the hole).

Every omitted copy then shares copy-1's patched gaps and caps: within a
run, a page's next/previous occurrence is at most one block away, so
the steady-state gap is the same for all interior copies, and the
position-dependent cap ``n − pos`` never binds (it is at least
``block + 1`` for omitted references).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.symbolic.runtrace import Run

#: same "never" sentinel the exact analyzers use
_INFINITE_DISTANCE = np.int64(2**62)

#: collapse only runs long enough to leave an interior (Ω >= 1)
MIN_REPEATS = 4


def _runs_in_interval(
    pages: np.ndarray, s: int, e: int, b: int, min_repeats: int
) -> List[Run]:
    """Maximal verified runs of period ``b`` inside ``pages[s:e]``."""
    if e - s < b * min_repeats:
        return []
    mis = np.flatnonzero(pages[s : e - b] != pages[s + b : e])
    mis += s
    return _runs_between(mis, 0, len(mis), s, e, b, min_repeats)


def _runs_between(
    mis: np.ndarray, i0: int, i1: int, s: int, e: int, b: int, min_repeats: int
) -> List[Run]:
    """Runs of period ``b`` in ``[s, e)`` given the sorted lower
    positions ``mis[i0:i1]`` of every mismatch ``pages[p] != pages[p+b]``
    with ``p`` in ``[s, e - b)``.  A mismatch-free stretch ``[st, en)``
    of lower positions means ``pages[st : en + b]`` is ``b``-periodic;
    runs are claimed left to right so they never overlap."""
    runs: List[Run] = []
    prev = s - 1
    prev_end = s
    for q in [*mis[i0:i1].tolist(), e - b]:
        st, en = prev + 1, q
        prev = q
        if en <= st:
            continue
        start = max(st, prev_end)
        k = (en + b - start) // b
        if k >= min_repeats:
            runs.append(Run(start, b, k))
            prev_end = start + k * b
    return runs


def detect_runs(
    pages: np.ndarray,
    segments: Sequence[Tuple[int, int, Sequence[int]]],
    boundaries: Sequence[int] = (),
    min_repeats: int = MIN_REPEATS,
) -> List[Run]:
    """Find verified periodic runs.

    ``segments`` — (start, end, candidate_periods) stretches emitted by
    one compiled nest each; ``boundaries`` — positions (directive
    firing points) no run may straddle.  Periods are tried smallest
    first; positions claimed by a run are excluded from later periods.
    """
    bounds = np.asarray(sorted(set(boundaries)), dtype=np.int64)
    runs: List[Run] = []
    for s0, e0, periods in segments:
        if e0 - s0 < min_repeats:
            continue
        inner = bounds[(bounds > s0) & (bounds < e0)]
        cuts = [s0, *inner.tolist(), e0]
        free = [
            (cuts[i], cuts[i + 1])
            for i in range(len(cuts) - 1)
            if cuts[i + 1] > cuts[i]
        ]
        for b in sorted({int(p) for p in periods if p >= 1}):
            if not free:
                break
            min_len = b * min_repeats
            if all(e - s < min_len for s, e in free):
                continue
            # mismatch lower positions for the whole segment, computed
            # once per period and shared by every free interval
            mis = np.flatnonzero(pages[s0 : e0 - b] != pages[s0 + b : e0])
            mis += s0
            next_free: List[Tuple[int, int]] = []
            for s, e in free:
                if e - s < min_len:
                    next_free.append((s, e))
                    continue
                i0 = int(np.searchsorted(mis, s, side="left"))
                i1 = int(np.searchsorted(mis, e - b, side="left"))
                found = _runs_between(mis, i0, i1, s, e, b, min_repeats)
                cur = s
                for run in found:
                    if run.start > cur:
                        next_free.append((cur, run.start))
                    cur = run.end
                if cur < e:
                    next_free.append((cur, e))
                runs.extend(found)
            free = next_free
    runs.sort(key=lambda r: r.start)
    return runs


def kept_mask(n: int, runs: Sequence[Run]) -> np.ndarray:
    """Boolean mask over ``n`` positions: True where the surrogate keeps
    the reference.  Each collapsible run keeps block copies 0, 1 and
    k−1; copies 2 … k−2 are dropped (their weight moves onto copy 1)."""
    mask = np.ones(n, dtype=bool)
    for r in runs:
        if r.repeats >= MIN_REPEATS:
            mask[r.start + 2 * r.block : r.start + (r.repeats - 1) * r.block] = (
                False
            )
    return mask


class Surrogate:
    """The weighted kept-reference view of a run-structured trace.

    Kept references carry their true positions; each collapsed run
    contributes three kept block copies (0, 1 and k−1) with copy-1
    weighted ``1 + Ω``.  ``backward``/``forward`` are the *true*
    inter-reference gaps of every kept reference (patched as described
    in the module docstring); ``cap`` is the WS residency cap
    ``min(forward, n − pos)``.
    """

    def __init__(self, pages: np.ndarray, runs: Sequence[Run]) -> None:
        pages = np.asarray(pages, dtype=np.int32)
        n = len(pages)
        mask = kept_mask(n, runs)
        kept_pos = np.flatnonzero(mask).astype(np.int64)
        self._init_from_parts(n, kept_pos, pages[kept_pos], runs)

    @classmethod
    def from_parts(
        cls,
        n_orig: int,
        kept_pos: np.ndarray,
        kept_pages: np.ndarray,
        runs: Sequence[Run],
    ) -> "Surrogate":
        """Build the surrogate without the flat page string.

        Contract: ``kept_pos`` must be exactly the positions
        :func:`kept_mask` keeps for ``runs`` (ascending), and
        ``kept_pages[i]`` the page referenced at ``kept_pos[i]`` — the
        static engine produces both in closed form.  The result is
        indistinguishable from ``Surrogate(pages, runs)``.
        """
        self = cls.__new__(cls)
        self._init_from_parts(
            n_orig,
            np.asarray(kept_pos, dtype=np.int64),
            np.asarray(kept_pages, dtype=np.int32),
            runs,
        )
        return self

    def _init_from_parts(
        self,
        n: int,
        kept_pos: np.ndarray,
        kept_pages: np.ndarray,
        runs: Sequence[Run],
    ) -> None:
        self.n_orig = n
        collapsed = [r for r in runs if r.repeats >= MIN_REPEATS]
        self.kept_pos = kept_pos
        self.kept_pages = kept_pages
        m = len(self.kept_pos)
        self.weights = np.ones(m, dtype=np.int64)
        nr = len(collapsed)
        self.r_start = np.empty(nr, dtype=np.int64)
        self.r_block = np.empty(nr, dtype=np.int64)
        self.r_omega = np.empty(nr, dtype=np.int64)
        self.r_c1ki = np.empty(nr, dtype=np.int64)
        self.r_olo = np.empty(nr, dtype=np.int64)
        self.r_ohi = np.empty(nr, dtype=np.int64)
        self.r_c1off = np.empty(nr, dtype=np.int64)
        # kept index of each run's copy-1 start (position r.start + b is
        # always kept, so a left bisect lands exactly on it)
        c1ki_all = (
            np.searchsorted(
                self.kept_pos,
                np.array([r.start + r.block for r in collapsed], dtype=np.int64),
            )
            if nr
            else np.empty(0, dtype=np.int64)
        )
        off = 0
        for i, r in enumerate(collapsed):
            b, omega = r.block, r.repeats - 3
            self.r_start[i] = r.start
            self.r_block[i] = b
            self.r_omega[i] = omega
            c1ki = int(c1ki_all[i])
            self.r_c1ki[i] = c1ki
            self.r_olo[i] = r.start + 2 * b
            self.r_ohi[i] = r.start + (r.repeats - 1) * b
            self.r_c1off[i] = off
            off += b
            self.weights[c1ki : c1ki + b] += omega
        #: kept indices of every copy-1 slot, concatenated run by run
        self.c1_kept = np.concatenate(
            [
                np.arange(ki, ki + b, dtype=np.int64)
                for ki, b in zip(self.r_c1ki.tolist(), self.r_block.tolist())
            ]
        ) if nr else np.empty(0, dtype=np.int64)
        self.slot_run = np.repeat(np.arange(nr, dtype=np.int64), self.r_block)
        self.slot_j = (
            np.arange(len(self.c1_kept), dtype=np.int64)
            - self.r_c1off[self.slot_run]
        )
        self._compute_gaps()

    def _compute_gaps(self) -> None:
        m = len(self.kept_pos)
        backward = np.full(m, _INFINITE_DISTANCE, dtype=np.int64)
        forward = np.full(m, _INFINITE_DISTANCE, dtype=np.int64)
        if m:
            order = np.lexsort((self.kept_pos, self.kept_pages))
            pos = self.kept_pos[order]
            same = self.kept_pages[order][1:] == self.kept_pages[order][:-1]
            gaps = pos[1:] - pos[:-1]
            backward[order[1:][same]] = gaps[same]
            forward[order[:-1][same]] = gaps[same]
        # patches: last copy's backward := copy-1's (steady state);
        # copy-1's forward := copy-0's (steady state)
        for ki, b in zip(self.r_c1ki.tolist(), self.r_block.tolist()):
            backward[ki + b : ki + 2 * b] = backward[ki : ki + b]
            forward[ki : ki + b] = forward[ki - b : ki]
        self.backward = backward
        self.forward = forward
        self.cap = np.minimum(
            forward, self.n_orig - self.kept_pos
        )

    @property
    def total_weight(self) -> int:
        return self.n_orig

    @property
    def kept_count(self) -> np.ndarray:
        """``kept_count[x]`` = number of kept positions ``< x`` — the
        O(1) twin of ``searchsorted(kept_pos, x, side="left")`` for any
        ``x`` in ``[0, n_orig]``."""
        cached = getattr(self, "_kept_count", None)
        if cached is None:
            marks = np.zeros(self.n_orig + 1, dtype=np.int64)
            marks[self.kept_pos + 1] = 1
            cached = np.cumsum(marks)
            self._kept_count = cached
        return cached

    def verify_weights(self) -> bool:
        """Self-check: kept weights account for every original reference."""
        return int(self.weights.sum()) == self.n_orig
