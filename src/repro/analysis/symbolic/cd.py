"""Closed-form CD replay over the run-structured trace.

:func:`~repro.vm.fastsim.simulate_cd_fast` is already a segment-level
replay: a reference faults iff its LRU stack distance exceeds the
current residency ``r``, which ramps up by one per fault toward a
piecewise-constant target.  This module replays the same recurrence
over the *collapsed* structure instead of the full distance array:

* **kept stretches** are processed exactly like the fast path (ramp by
  ``argmax`` over the kept distance slice, then a per-target prefix sum
  for the saturated remainder);
* **omitted spans** — the interior copies of a collapsed run — reuse
  the copy-1 distance block ``dc``.  Saturated spans are pure
  arithmetic (``faults += Ω · #(dc > target)``); spans reached while
  still ramping are walked copy by copy, but each faulting copy raises
  ``r``, so at most ``target`` copies are walked before the span either
  saturates or stops faulting (a fault-free copy at unchanged ``r``
  proves all remaining copies fault-free too).

The decomposition is sound because runs never straddle a directive
position (:func:`~repro.analysis.symbolic.collapse.detect_runs` splits
segments there), so every allocation boundary falls between structure
pieces; this is re-checked defensively and a :exc:`ValueError` falls
back to the exact replay at the call site.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.symbolic.collapse import Surrogate
from repro.analysis.symbolic.runtrace import RunTrace
from repro.vm.fastsim import _allocation_schedule, cd_fast_applicable
from repro.vm.metrics import FAULT_SERVICE_REFERENCES, SimulationResult
from repro.vm.policies.cd import CDConfig

__all__ = ["simulate_cd_symbolic"]


def simulate_cd_symbolic(
    runtrace: RunTrace,
    config: Optional[CDConfig] = None,
    surrogate: Optional[Surrogate] = None,
    kept_distances: Optional[np.ndarray] = None,
    fault_service: int = FAULT_SERVICE_REFERENCES,
) -> SimulationResult:
    """Replay CD from the run journal; equals ``simulate_cd_fast``.

    ``kept_distances`` are the kept string's LRU stack distances (they
    equal the true distances at kept references); pass
    ``LRUSweep(surrogate.kept_pages)._distances`` to share work with
    :class:`~repro.analysis.symbolic.locality.SymbolicLRU`, or leave
    None to compute them here.  Raises :exc:`ValueError` when the
    closed form does not apply (ceiling/LOCK, like the fast path) or a
    directive lands inside a collapsed span (never for detector-built
    journals — re-checked anyway).
    """
    trace = runtrace.trace
    config = config or CDConfig()
    if not cd_fast_applicable(trace, config):
        raise ValueError("trace/config requires the event-driven simulator")
    s = surrogate if surrogate is not None else Surrogate(trace.pages, runtrace.runs)
    if kept_distances is None:
        from repro.vm.analyzers import LRUSweep

        kept_distances = LRUSweep(s.kept_pages)._distances
    d = kept_distances
    kept_pos = s.kept_pos
    kept_count = s.kept_count
    n = len(trace.pages)
    nr = len(s.r_olo)

    prefix_cache = {}

    def kprefix(tgt: int) -> np.ndarray:
        p = prefix_cache.get(tgt)
        if p is None:
            p = np.empty(len(d) + 1, dtype=np.int64)
            p[0] = 0
            np.cumsum(d > tgt, out=p[1:])
            prefix_cache[tgt] = p
        return p

    r = 0
    target = config.min_allocation
    mem_sum = 0
    fault_space = 0
    faults = 0

    def kept_piece(x: int, y: int) -> None:
        """True references [x, y), all kept — fastsim's run_segment."""
        nonlocal r, mem_sum, fault_space, faults
        if y <= x:
            return
        j0 = int(kept_count[x])
        j1 = j0 + (y - x)
        if j1 > len(kept_pos) or int(kept_pos[j1 - 1]) != y - 1:
            raise ValueError("collapsed span overlaps a kept stretch")
        cur = j0
        while r < target and cur < j1:
            window = d[cur:j1] > r
            hit = int(np.argmax(window))
            if not window[hit]:
                mem_sum += r * (j1 - cur)
                return
            mem_sum += r * hit
            r = min(r + 1, target)
            mem_sum += r
            fault_space += r * fault_service
            faults += 1
            cur += hit + 1
        if cur < j1:
            p = kprefix(target)
            seg_faults = int(p[j1] - p[cur])
            faults += seg_faults
            mem_sum += target * (j1 - cur)
            fault_space += target * fault_service * seg_faults

    def omit_piece(i: int) -> None:
        """The Ω omitted copies of run ``i`` (copy-1 distance layout)."""
        nonlocal r, mem_sum, fault_space, faults
        block = int(s.r_block[i])
        c1 = int(s.r_c1ki[i])
        dc = d[c1 : c1 + block]
        left = int(s.r_omega[i])
        while left:
            if r >= target:
                f1 = int((dc > target).sum())
                faults += f1 * left
                mem_sum += target * block * left
                fault_space += target * fault_service * f1 * left
                return
            cur = 0
            faulted = False
            while r < target and cur < block:
                window = dc[cur:] > r
                hit = int(np.argmax(window))
                if not window[hit]:
                    mem_sum += r * (block - cur)
                    cur = block
                    break
                mem_sum += r * hit
                r = min(r + 1, target)
                mem_sum += r
                fault_space += r * fault_service
                faults += 1
                faulted = True
                cur += hit + 1
            if cur < block:  # saturated mid-copy
                f1 = int((dc[cur:] > target).sum())
                faults += f1
                mem_sum += target * (block - cur)
                fault_space += target * fault_service * f1
            left -= 1
            if not faulted and r < target:
                # Steady state below target: the remaining identical
                # copies can never fault.
                mem_sum += r * block * left
                return

    next_run = 0  # runs are disjoint and sorted; segments arrive in order

    def run_segment(a: int, b: int) -> None:
        nonlocal next_run
        i = next_run
        if i > 0 and int(s.r_ohi[i - 1]) > a:
            raise ValueError("allocation boundary inside a collapsed span")
        cur = a
        while i < nr and int(s.r_olo[i]) < b:
            if int(s.r_ohi[i]) > b:
                raise ValueError("allocation boundary inside a collapsed span")
            kept_piece(cur, int(s.r_olo[i]))
            omit_piece(i)
            cur = int(s.r_ohi[i])
            i += 1
        next_run = i
        kept_piece(cur, b)

    at = 0
    for position, new_target, _granted, _event in _allocation_schedule(
        trace, config
    ):
        position = min(position, n)
        if position > at:
            run_segment(at, position)
            at = position
        target = new_target
        if r > target:
            r = target
    if at < n:
        run_segment(at, n)

    return SimulationResult(
        policy="CD",
        program=trace.program_name,
        page_faults=faults,
        references=n,
        mem_average=mem_sum / n if n else 0.0,
        space_time=float(mem_sum + fault_space),
        parameter=config.pi_cap,
        fault_service=fault_service,
        swaps=0,
        denied_requests=0,
        lock_releases=0,
    )
