"""Run-length-structured traces: the symbolic engine's intermediate form.

A :class:`RunTrace` is an exact :class:`~repro.tracegen.events.ReferenceTrace`
plus a *journal* of periodic runs: maximal stretches where the page
string repeats a block of ``block`` pages ``repeats`` times back to
back.  The flat trace is authoritative — ``expand()`` simply returns
it — while the journal is what the weighted analyzers exploit: inside a
run, every interior copy of the block has the same reuse behaviour as
its neighbours, so LRU/WS/CD statistics for all ``repeats`` copies
follow from three representative copies and integer weights.

Runs are *verified* at detection time (``pages[s+b:e] == pages[s:e-b]``
element-wise), so a missed run only costs compression, never exactness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.tracegen.events import ReferenceTrace


@dataclass(frozen=True)
class Run:
    """One verified periodic stretch: ``pages[start : start + block*repeats]``
    is ``repeats`` back-to-back copies of a ``block``-page pattern."""

    start: int
    block: int
    repeats: int

    @property
    def end(self) -> int:
        return self.start + self.block * self.repeats

    @property
    def length(self) -> int:
        return self.block * self.repeats


@dataclass
class RunTrace:
    """An exact reference trace together with its run journal."""

    trace: ReferenceTrace
    runs: List[Run]

    def __post_init__(self) -> None:
        last_end = 0
        n = len(self.trace.pages)
        for run in self.runs:
            if run.start < last_end:
                raise ValueError("runs must be ordered and disjoint")
            if run.end > n:
                raise ValueError("run extends past the trace")
            if run.block < 1 or run.repeats < 2:
                raise ValueError("degenerate run")
            last_end = run.end

    def expand(self) -> ReferenceTrace:
        """The exact flat trace (identical to ``generate_trace`` output)."""
        return self.trace

    @property
    def length(self) -> int:
        return int(len(self.trace.pages))

    def compressed_length(self) -> int:
        """References a weighted analyzer actually looks at: everything
        outside runs plus three block copies per run."""
        saved = sum(r.block * (r.repeats - 3) for r in self.runs if r.repeats > 3)
        return self.length - saved

    def summary(self) -> str:
        n = self.length
        kept = self.compressed_length()
        pct = 100.0 * (1 - kept / n) if n else 0.0
        return (
            f"{self.trace.program_name}: {n} refs, {len(self.runs)} runs, "
            f"{kept} kept ({pct:.1f}% collapsed)"
        )
